// Capacity planning with the predictor (paper Section IV-D): without
// touching any GPU, estimate how many A100s each framework needs as a
// client scales its S5 service portfolio, and what the bill difference is.
//
//   $ ./examples/capacity_planning [--max-fold 6] [--gpu-hour-usd 4.1]
#include <iostream>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "scenarios/experiment.hpp"

int main(int argc, char** argv) {
  using namespace parva;
  using namespace parva::scenarios;
  const CliArgs args(argc, argv);
  const int max_fold = static_cast<int>(args.get_int("max-fold", 6));
  // p4de.24xlarge on-demand is ~$40.96/h for 8 GPUs => ~$5.12 per GPU-hour;
  // default rounds down to a typical reserved price.
  const double gpu_hour_usd = args.get_double("gpu-hour-usd", 4.1);

  std::cout << "Capacity planning on scenario S5 (predictor mode, no GPUs touched)\n\n";
  const ExperimentContext context = ExperimentContext::create();

  TextTable table({"services", "gpulet", "MIG-serving", "ParvaGPU", "monthly saving vs best baseline"});
  for (int fold = 1; fold <= max_fold; ++fold) {
    const Scenario scaled = scale_scenario(scenario("S5"), fold);
    const auto gpulet = run_experiment(context, Framework::kGpulet, scaled);
    const auto mig = run_experiment(context, Framework::kMigServing, scaled);
    const auto parva = run_experiment(context, Framework::kParvaGpu, scaled);
    const int best_baseline = std::min(gpulet.gpu_count, mig.gpu_count);
    const double saving =
        (best_baseline - parva.gpu_count) * gpu_hour_usd * 24 * 30;
    table.add_row({std::to_string(scaled.services.size()), std::to_string(gpulet.gpu_count),
                   std::to_string(mig.gpu_count), std::to_string(parva.gpu_count),
                   "$" + format_double(saving, 0)});
  }
  table.print(std::cout);
  std::cout << "\n(at $" << gpu_hour_usd << "/GPU-hour; iGniter omitted: it cannot run S5)\n";
  return 0;
}
