// parvactl — command-line front end to the ParvaGPU scheduler.
//
// Subcommands:
//   profile  --models a,b,c --out profiles.csv
//       Run the one-time profiling sweep and save the grid.
//   schedule --services services.csv [--profiles profiles.csv]
//            [--framework ParvaGPU|ParvaGPU-single|ParvaGPU-unoptimized]
//       Produce a deployment map for a service list. The services CSV has
//       a header and rows: id,model,slo_latency_ms,request_rate.
//   scenarios
//       List the built-in Table IV scenarios.
//   simulate --scenario S2 | --services services.csv
//            [--inject-fault gpu=0@t=10000] [--transient-p 0.15]
//            [--seed 7] [--duration-ms 28000] [--telemetry-out PREFIX]
//            [--shards N]
//       Schedule, then replay the deployment in the discrete-event
//       simulator. --shards N partitions the services across N engine
//       shards running on a thread pool (DESIGN.md §4.5); the report and
//       telemetry exports are byte-identical for every N. With --inject-fault the named GPU drops out XID-style at
//       the given simulated time; the self-healing repair path re-places
//       the displaced segments and the report shows compliance through the
//       failure (pre / degraded / recovered) plus recovery metrics.
//       --telemetry-out records metrics and a structured event log across
//       the control plane and the simulation, writing PREFIX.prom
//       (Prometheus text exposition), PREFIX.jsonl (event log), and
//       PREFIX.csv (metric summary). The printed report is byte-identical
//       with or without it.
//
// Examples:
//   $ parvactl profile --models resnet-50,vgg-19 --out /tmp/profiles.csv
//   $ parvactl schedule --services my_services.csv
//   $ parvactl simulate --scenario S2 --inject-fault gpu=0@t=10000
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "common/table.hpp"
#include "core/metrics.hpp"
#include "core/parvagpu.hpp"
#include "core/repair.hpp"
#include "gpu/dcgm_sim.hpp"
#include "profiler/profile_store.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/scenarios.hpp"
#include "serving/cluster_sim.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace parva;

int usage() {
  std::cerr << "usage: parvactl <profile|schedule|scenarios|simulate> [flags]\n"
               "  profile   --models a,b,c [--out profiles.csv]\n"
               "  schedule  --services services.csv | --scenario S2\n"
               "            [--profiles profiles.csv] [--framework ParvaGPU]\n"
               "  scenarios\n"
               "  simulate  --services services.csv | --scenario S2|S7\n"
               "            [--inject-fault gpu=0@t=10000] [--transient-p 0.15]\n"
               "            [--seed 7] [--duration-ms 28000] [--telemetry-out PREFIX]\n"
               "            [--shards N] [--arrivals deterministic|poisson|bursty]\n"
               "            [--llm-admission reject|evict] [--llm-eviction fifo|lru]\n"
               "            [--llm-dispatch least-loaded|round-robin|p2c]\n"
               "            [--llm-chunk TOKENS]\n";
  return 2;
}

/// Parses the --inject-fault spec "gpu=K@t=MS" (t in simulated ms).
bool parse_fault_spec(const std::string& spec, gpu::GpuFailureEvent* out) {
  int gpu_index = -1;
  double at_ms = -1.0;
  for (const auto& part : split(spec, '@')) {
    const auto kv = split(trim(part), '=');
    if (kv.size() != 2) return false;
    const auto key = trim(kv[0]);
    double value = 0.0;
    if (!parse_double(trim(kv[1]), value)) return false;
    if (key == "gpu") {
      gpu_index = static_cast<int>(value);
    } else if (key == "t") {
      at_ms = value;
    } else {
      return false;
    }
  }
  if (gpu_index < 0 || at_ms < 0.0) return false;
  out->gpu_index = gpu_index;
  out->at_ms = at_ms;
  return true;
}

[[nodiscard]] Result<std::vector<core::ServiceSpec>> load_services(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Error(ErrorCode::kNotFound, "cannot open " + path);
  std::vector<core::ServiceSpec> services;
  std::string line;
  bool first = true;
  while (std::getline(file, line)) {
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (first) {  // header
      first = false;
      continue;
    }
    const auto fields = split(trimmed, ',');
    if (fields.size() != 4) {
      return Error(ErrorCode::kInvalidArgument, "bad row: " + std::string(trimmed));
    }
    core::ServiceSpec spec;
    unsigned long long id = 0;
    double value = 0.0;
    if (!parse_uint(trim(fields[0]), id)) {
      return Error(ErrorCode::kInvalidArgument, "bad id: " + fields[0]);
    }
    spec.id = static_cast<int>(id);
    spec.model = std::string(trim(fields[1]));
    if (!parse_double(trim(fields[2]), value)) {
      return Error(ErrorCode::kInvalidArgument, "bad slo: " + fields[2]);
    }
    spec.slo_latency_ms = value;
    if (!parse_double(trim(fields[3]), value)) {
      return Error(ErrorCode::kInvalidArgument, "bad rate: " + fields[3]);
    }
    spec.request_rate = value;
    services.push_back(std::move(spec));
  }
  return services;
}

int cmd_profile(const CliArgs& args) {
  const std::string models_arg = args.get("models", "");
  std::vector<std::string> models;
  if (models_arg.empty()) {
    models = perfmodel::ModelCatalog::builtin().names();
  } else {
    for (const auto& name : split(models_arg, ',')) models.push_back(std::string(trim(name)));
  }
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(perf);
  profiler::ProfileSet set;
  for (const auto& model : models) {
    if (perfmodel::ModelCatalog::builtin().find(model) == nullptr) {
      std::cerr << "unknown model: " << model << "\n";
      return 1;
    }
    set.add(profiler.profile(model));
  }
  const std::string out = args.get("out", "profiles.csv");
  const Status saved = profiler::save_csv_file(set, out);
  if (!saved.ok()) {
    std::cerr << saved.to_string() << "\n";
    return 1;
  }
  std::cout << "profiled " << set.size() << " model(s) -> " << out << "\n";
  return 0;
}

int cmd_schedule(const CliArgs& args) {
  // Services: from CSV or a built-in scenario.
  std::vector<core::ServiceSpec> services;
  if (args.has("services")) {
    auto loaded = load_services(args.get("services", ""));
    if (!loaded.ok()) {
      std::cerr << loaded.error().to_string() << "\n";
      return 1;
    }
    services = std::move(loaded).value();
  } else if (args.has("scenario")) {
    services = scenarios::scenario(args.get("scenario", "S2")).services;
  } else {
    return usage();
  }

  // Profiles: from CSV or computed on the fly (over the LLM-extended
  // catalog, a strict superset of the builtin one).
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::with_llm());
  profiler::ProfileSet profiles;
  if (args.has("profiles")) {
    auto loaded = profiler::load_csv_file(args.get("profiles", ""));
    if (!loaded.ok()) {
      std::cerr << loaded.error().to_string() << "\n";
      return 1;
    }
    profiles = std::move(loaded).value();
  } else {
    profiler::Profiler profiler(perf);
    profiles = profiler.profile_all(perfmodel::ModelCatalog::with_llm().names());
  }

  core::ParvaGpuOptions options;
  const std::string framework = args.get("framework", "ParvaGPU");
  if (framework == "ParvaGPU-single") {
    options.use_mps = false;
  } else if (framework == "ParvaGPU-unoptimized") {
    options.optimize_allocation = false;
  } else if (framework != "ParvaGPU") {
    std::cerr << "unknown framework: " << framework << "\n";
    return 1;
  }

  core::ParvaGpuScheduler scheduler(profiles, options);
  const auto result = scheduler.schedule(services);
  if (!result.ok()) {
    std::cerr << "scheduling failed: " << result.error().to_string() << "\n";
    return 1;
  }

  std::cout << "deployment map: " << scheduler.last_plan().to_string() << "\n\n";
  TextTable table({"service", "model", "gpu", "segment", "batch", "procs", "capacity",
                   "latency_ms"});
  for (const auto& unit : result.value().deployment.units) {
    table.add_row({std::to_string(unit.service_id), unit.model,
                   std::to_string(unit.gpu_index),
                   format_double(unit.gpc_grant, 0) + "g@" +
                       std::to_string(unit.placement->start_slot),
                   std::to_string(unit.batch), std::to_string(unit.procs),
                   format_double(unit.actual_throughput, 1),
                   format_double(unit.actual_latency_ms, 2)});
  }
  table.print(std::cout);

  const auto metrics = core::compute_metrics(result.value().deployment, services);
  std::cout << "\nGPUs: " << metrics.gpu_count
            << "  slack: " << format_double(metrics.internal_slack * 100, 1)
            << "%  fragmentation: "
            << format_double(metrics.external_fragmentation * 100, 1)
            << "%  delay: " << format_double(result.value().scheduling_delay_ms, 3)
            << " ms\n";
  return 0;
}

int cmd_simulate(const CliArgs& args) {
  std::vector<core::ServiceSpec> services;
  bool streaming_default = false;
  if (args.has("services")) {
    auto loaded = load_services(args.get("services", ""));
    if (!loaded.ok()) {
      std::cerr << loaded.error().to_string() << "\n";
      return 1;
    }
    services = std::move(loaded).value();
  } else if (args.has("scenario")) {
    const scenarios::Scenario& scenario = scenarios::scenario(args.get("scenario", "S2"));
    services = scenario.services;
    streaming_default = scenario.streaming;
  } else {
    return usage();
  }

  // The LLM-extended catalog is a superset of the builtin one, so Table-IV
  // scenarios schedule identically while S7's llama rows resolve.
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::with_llm());
  profiler::Profiler profiler(perf);
  const auto profiles = profiler.profile_all(perfmodel::ModelCatalog::with_llm().names());
  core::ParvaGpuScheduler scheduler(profiles);
  const auto scheduled = scheduler.schedule(services);
  if (!scheduled.ok()) {
    std::cerr << "scheduling failed: " << scheduled.error().to_string() << "\n";
    return 1;
  }
  core::Deployment deployment = scheduled.value().deployment;
  for (auto& unit : deployment.units) {
    for (const auto& spec : services) {
      if (spec.id == unit.service_id) unit.model = spec.model;
    }
  }

  double value = 0.0;
  gpu::FaultPlan fault_plan;
  if (args.has("seed") && parse_double(args.get("seed", ""), value)) {
    fault_plan.seed = static_cast<std::uint64_t>(value);
  }
  if (args.has("transient-p")) {
    if (!parse_double(args.get("transient-p", ""), value) || value < 0.0 || value > 1.0) {
      std::cerr << "bad --transient-p (want a probability)\n";
      return 1;
    }
    fault_plan.transient_create_failure_prob = value;
  }
  gpu::GpuFailureEvent failure;
  if (args.has("inject-fault")) {
    if (!parse_fault_spec(args.get("inject-fault", ""), &failure)) {
      std::cerr << "bad --inject-fault (want gpu=K@t=MS)\n";
      return 1;
    }
    if (failure.gpu_index >= deployment.gpu_count) {
      std::cerr << "--inject-fault gpu out of range (fleet has " << deployment.gpu_count
                << " GPUs)\n";
      return 1;
    }
    fault_plan.gpu_failures.push_back(failure);
  }

  serving::SimulationOptions options;
  options.seed = fault_plan.seed;
  if (args.has("duration-ms") && parse_double(args.get("duration-ms", ""), value)) {
    options.duration_ms = value;
  } else {
    options.duration_ms = 28'000.0;
  }
  options.warmup_ms = 2'000.0;
  options.timeline_bucket_ms = 2'000.0;

  // Sharded engine (DESIGN.md §4.5/§4.6): one process-wide pool serves
  // every parallel surface — here the shard windows. The pool's
  // parallel_for is nesting-safe (cooperative caller), so the same pool
  // could simultaneously drive a sweep of sharded simulations; no
  // dedicated shard pool exists anymore.
  std::unique_ptr<ThreadPool> pool;
  if (args.has("shards")) {
    // Hard error, not a silent fallback: "--shards 0", a negative count, or
    // trailing junk ("4x") is a typo the user needs to see.
    if (!args.int_in_range("shards", 1, 4096)) {
      std::cerr << "bad --shards '" << args.get("shards", "")
                << "' (want an integer in [1, 4096])\n";
      return 1;
    }
    options.shards = static_cast<int>(args.get_int("shards", 1));
    if (options.shards > 1) {
      pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(options.shards));
      options.shard_pool = pool.get();
    }
  }

  // Arrival process and generative-LLM policies (DESIGN.md §4.7). Every
  // value is validated up front; an unknown spelling is a hard CLI error.
  // Streaming scenarios (S7) default to bursty arrivals; --arrivals
  // overrides either way.
  if (streaming_default) options.arrivals = serving::ArrivalProcess::kBursty;
  if (args.has("arrivals")) {
    const std::string arrivals = args.get("arrivals", "");
    if (arrivals == "deterministic") {
      options.arrivals = serving::ArrivalProcess::kDeterministic;
    } else if (arrivals == "poisson") {
      options.arrivals = serving::ArrivalProcess::kPoisson;
    } else if (arrivals == "bursty") {
      options.arrivals = serving::ArrivalProcess::kBursty;
    } else {
      std::cerr << "bad --arrivals '" << arrivals
                << "' (want deterministic|poisson|bursty)\n";
      return 1;
    }
  }
  if (args.has("llm-admission") &&
      !serving::parse_llm_admission(args.get("llm-admission", ""), &options.llm.admission)) {
    std::cerr << "bad --llm-admission '" << args.get("llm-admission", "")
              << "' (want reject|evict)\n";
    return 1;
  }
  if (args.has("llm-eviction") &&
      !serving::parse_llm_eviction(args.get("llm-eviction", ""), &options.llm.eviction)) {
    std::cerr << "bad --llm-eviction '" << args.get("llm-eviction", "")
              << "' (want fifo|lru)\n";
    return 1;
  }
  if (args.has("llm-dispatch") &&
      !serving::parse_llm_dispatch(args.get("llm-dispatch", ""), &options.llm.dispatch)) {
    std::cerr << "bad --llm-dispatch '" << args.get("llm-dispatch", "")
              << "' (want least-loaded|round-robin|p2c)\n";
    return 1;
  }
  if (args.has("llm-chunk")) {
    if (!args.int_in_range("llm-chunk", 1, 4096)) {
      std::cerr << "bad --llm-chunk '" << args.get("llm-chunk", "")
                << "' (want an integer in [1, 4096])\n";
      return 1;
    }
    options.llm.decode_chunk_tokens = static_cast<int>(args.get_int("llm-chunk", 32));
  }

  // Materialise the fleet on the (possibly faulty) control plane; on a
  // scheduled loss, run the repair path and feed its replacements into the
  // simulation as mid-run activations.
  // Optional telemetry: one sink shared by the control plane and the
  // simulation, exported to PREFIX.{prom,jsonl,csv} at the end.
  std::unique_ptr<telemetry::Telemetry> telemetry;
  const std::string telemetry_prefix = args.get("telemetry-out", "");
  if (!telemetry_prefix.empty()) telemetry = std::make_unique<telemetry::Telemetry>();

  gpu::GpuCluster cluster(static_cast<std::size_t>(deployment.gpu_count));
  gpu::NvmlSim nvml(cluster);
  gpu::DcgmSim dcgm;
  gpu::FaultInjector injector(fault_plan);
  nvml.set_fault_injector(&injector);
  nvml.attach_health_monitor(&dcgm);
  nvml.set_telemetry(telemetry.get());
  dcgm.set_telemetry(telemetry.get());
  core::Deployer deployer(nvml, perf);
  deployer.set_telemetry(telemetry.get());
  auto state = deployer.deploy(deployment);
  if (!state.ok()) {
    std::cerr << "deploy failed: " << state.error().to_string() << "\n";
    return 1;
  }

  core::Deployment sim_deployment = deployment;
  if (!fault_plan.gpu_failures.empty()) {
    nvml.set_time_ms(failure.at_ms);
    // parva-audit: allow(R6) fault injection: the replay plants the failure on purpose
    (void)nvml.fail_device(static_cast<unsigned>(failure.gpu_index), failure.xid);
    core::LiveUpdater updater(deployer);
    core::RepairOptions repair_options;
    repair_options.telemetry = telemetry.get();
    core::RepairCoordinator repairer(deployer, updater, repair_options);
    auto repaired =
        repairer.handle_gpu_loss(deployment, state.value(), failure.gpu_index);
    if (!repaired.ok()) {
      std::cerr << "repair failed: " << repaired.error().to_string() << "\n";
      return 1;
    }
    const auto& repair = repaired.value();
    const double recovered_at = failure.at_ms + repair.recovery_ms;
    options.fault_plan = &fault_plan;
    options.recovered_at_ms = recovered_at;
    for (const auto& unit : repair.replacements) {
      options.activations.push_back({sim_deployment.units.size(), recovered_at});
      sim_deployment.units.push_back(unit);
    }
    sim_deployment.gpu_count = repair.deployment.gpu_count;
    std::cout << "fault: GPU " << failure.gpu_index << " lost at t="
              << format_double(failure.at_ms, 0) << " ms (XID " << failure.xid << "), "
              << repair.lost_units << " unit(s) displaced, repaired in "
              << format_double(repair.recovery_ms, 0) << " ms ("
              << repair.replaced_units << " replacement(s))\n\n";
  }

  serving::ClusterSimulation sim(sim_deployment, services, perf);
  options.telemetry = telemetry.get();
  const auto result = sim.run(options);

  TextTable table({"t (s)", "batches", "compliance", "shed"});
  for (const auto& bucket : result.timeline) {
    table.add_row({format_double((options.warmup_ms + bucket.t_ms) / 1000.0, 0),
                   std::to_string(bucket.batches), format_double(bucket.compliance(), 4),
                   std::to_string(bucket.shed_requests)});
  }
  table.print(std::cout);

  std::cout << "\noverall compliance: " << format_double(result.overall_compliance(), 4);
  const bool llm_run = result.generated_tokens > 0 || result.requests_rejected > 0 ||
                       result.requests_evicted > 0;
  if (llm_run) {
    double kv_peak = 0.0;
    for (const double ratio : result.unit_kv_peak) kv_peak = std::max(kv_peak, ratio);
    std::cout << "\nllm: " << result.generated_tokens << " tokens generated, "
              << result.requests_rejected << " rejected, " << result.requests_evicted
              << " evicted, peak KV " << format_double(kv_peak * 100.0, 1) << "% ("
              << serving::to_string(options.llm.admission) << "/"
              << serving::to_string(options.llm.eviction) << "/"
              << serving::to_string(options.llm.dispatch) << ")";
  }
  if (result.failure_at_ms >= 0.0) {
    std::cout << "  pre-failure: " << format_double(result.pre_failure.compliance(), 4)
              << "  degraded: " << format_double(result.degraded.compliance(), 4)
              << "  recovered: " << format_double(result.post_recovery.compliance(), 4)
              << "\nrequests shed: " << result.requests_shed;
  }
  const auto& stats = deployer.total_stats();
  if (stats.transient_retries > 0) {
    std::cout << "\ntransient retries: " << stats.transient_retries
              << "  backoff: " << format_double(stats.backoff_ms, 0) << " ms"
              << "  fallback placements: " << stats.fallback_placements;
  }
  std::cout << "\n";

  if (telemetry != nullptr) {
    struct Export {
      const char* suffix;
      std::string content;
    };
    const Export exports[] = {
        {".prom", telemetry::to_prometheus(telemetry->metrics())},
        {".jsonl", telemetry::to_json_lines(telemetry->events())},
        {".csv", telemetry::to_csv_summary(telemetry->metrics())},
    };
    for (const auto& e : exports) {
      const std::string path = telemetry_prefix + e.suffix;
      const Status written = telemetry::write_text_file(path, e.content);
      if (!written.ok()) {
        std::cerr << "telemetry export failed: " << written.to_string() << "\n";
        return 1;
      }
    }
    std::cerr << "telemetry: " << telemetry->metrics().series_count() << " series, "
              << telemetry->events().size() << " events -> " << telemetry_prefix
              << ".{prom,jsonl,csv}\n";
  }
  return 0;
}

int cmd_scenarios() {
  TextTable table({"scenario", "services", "total req/s", "tightest SLO (ms)", "class"});
  auto add = [&table](const scenarios::Scenario& sc, const char* klass) {
    double total = 0.0;
    double tightest = 1e18;
    for (const auto& spec : sc.services) {
      total += spec.request_rate;
      tightest = std::min(tightest, spec.slo_latency_ms);
    }
    table.add_row({sc.name, std::to_string(sc.services.size()), format_double(total, 0),
                   format_double(tightest, 0), klass});
  };
  for (const auto& sc : scenarios::all_scenarios()) add(sc, "Table IV");
  add(scenarios::llm_scenario(), "LLM (prefill/decode)");
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (!args.repeated().empty()) {
    std::cerr << "error: flag --" << args.repeated().front()
              << " given more than once (each flag may appear at most once)\n";
    return 2;
  }
  if (args.positional().empty()) return usage();
  const std::string& command = args.positional().front();
  try {
    if (command == "profile") return cmd_profile(args);
    if (command == "schedule") return cmd_schedule(args);
    if (command == "scenarios") return cmd_scenarios();
    if (command == "simulate") return cmd_simulate(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
