// parvactl — command-line front end to the ParvaGPU scheduler.
//
// Subcommands:
//   profile  --models a,b,c --out profiles.csv
//       Run the one-time profiling sweep and save the grid.
//   schedule --services services.csv [--profiles profiles.csv]
//            [--framework ParvaGPU|ParvaGPU-single|ParvaGPU-unoptimized]
//       Produce a deployment map for a service list. The services CSV has
//       a header and rows: id,model,slo_latency_ms,request_rate.
//   scenarios
//       List the built-in Table IV scenarios.
//
// Examples:
//   $ parvactl profile --models resnet-50,vgg-19 --out /tmp/profiles.csv
//   $ parvactl schedule --services my_services.csv
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/metrics.hpp"
#include "core/parvagpu.hpp"
#include "profiler/profile_store.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/scenarios.hpp"

namespace {

using namespace parva;

int usage() {
  std::cerr << "usage: parvactl <profile|schedule|scenarios> [flags]\n"
               "  profile   --models a,b,c [--out profiles.csv]\n"
               "  schedule  --services services.csv | --scenario S2\n"
               "            [--profiles profiles.csv] [--framework ParvaGPU]\n"
               "  scenarios\n";
  return 2;
}

Result<std::vector<core::ServiceSpec>> load_services(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Error(ErrorCode::kNotFound, "cannot open " + path);
  std::vector<core::ServiceSpec> services;
  std::string line;
  bool first = true;
  while (std::getline(file, line)) {
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (first) {  // header
      first = false;
      continue;
    }
    const auto fields = split(trimmed, ',');
    if (fields.size() != 4) {
      return Error(ErrorCode::kInvalidArgument, "bad row: " + std::string(trimmed));
    }
    core::ServiceSpec spec;
    unsigned long long id = 0;
    double value = 0.0;
    if (!parse_uint(trim(fields[0]), id)) {
      return Error(ErrorCode::kInvalidArgument, "bad id: " + fields[0]);
    }
    spec.id = static_cast<int>(id);
    spec.model = std::string(trim(fields[1]));
    if (!parse_double(trim(fields[2]), value)) {
      return Error(ErrorCode::kInvalidArgument, "bad slo: " + fields[2]);
    }
    spec.slo_latency_ms = value;
    if (!parse_double(trim(fields[3]), value)) {
      return Error(ErrorCode::kInvalidArgument, "bad rate: " + fields[3]);
    }
    spec.request_rate = value;
    services.push_back(std::move(spec));
  }
  return services;
}

int cmd_profile(const CliArgs& args) {
  const std::string models_arg = args.get("models", "");
  std::vector<std::string> models;
  if (models_arg.empty()) {
    models = perfmodel::ModelCatalog::builtin().names();
  } else {
    for (const auto& name : split(models_arg, ',')) models.push_back(std::string(trim(name)));
  }
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(perf);
  profiler::ProfileSet set;
  for (const auto& model : models) {
    if (perfmodel::ModelCatalog::builtin().find(model) == nullptr) {
      std::cerr << "unknown model: " << model << "\n";
      return 1;
    }
    set.add(profiler.profile(model));
  }
  const std::string out = args.get("out", "profiles.csv");
  const Status saved = profiler::save_csv_file(set, out);
  if (!saved.ok()) {
    std::cerr << saved.to_string() << "\n";
    return 1;
  }
  std::cout << "profiled " << set.size() << " model(s) -> " << out << "\n";
  return 0;
}

int cmd_schedule(const CliArgs& args) {
  // Services: from CSV or a built-in scenario.
  std::vector<core::ServiceSpec> services;
  if (args.has("services")) {
    auto loaded = load_services(args.get("services", ""));
    if (!loaded.ok()) {
      std::cerr << loaded.error().to_string() << "\n";
      return 1;
    }
    services = std::move(loaded).value();
  } else if (args.has("scenario")) {
    services = scenarios::scenario(args.get("scenario", "S2")).services;
  } else {
    return usage();
  }

  // Profiles: from CSV or computed on the fly.
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::ProfileSet profiles;
  if (args.has("profiles")) {
    auto loaded = profiler::load_csv_file(args.get("profiles", ""));
    if (!loaded.ok()) {
      std::cerr << loaded.error().to_string() << "\n";
      return 1;
    }
    profiles = std::move(loaded).value();
  } else {
    profiler::Profiler profiler(perf);
    profiles = profiler.profile_all(perfmodel::ModelCatalog::builtin().names());
  }

  core::ParvaGpuOptions options;
  const std::string framework = args.get("framework", "ParvaGPU");
  if (framework == "ParvaGPU-single") {
    options.use_mps = false;
  } else if (framework == "ParvaGPU-unoptimized") {
    options.optimize_allocation = false;
  } else if (framework != "ParvaGPU") {
    std::cerr << "unknown framework: " << framework << "\n";
    return 1;
  }

  core::ParvaGpuScheduler scheduler(profiles, options);
  const auto result = scheduler.schedule(services);
  if (!result.ok()) {
    std::cerr << "scheduling failed: " << result.error().to_string() << "\n";
    return 1;
  }

  std::cout << "deployment map: " << scheduler.last_plan().to_string() << "\n\n";
  TextTable table({"service", "model", "gpu", "segment", "batch", "procs", "capacity",
                   "latency_ms"});
  for (const auto& unit : result.value().deployment.units) {
    table.add_row({std::to_string(unit.service_id), unit.model,
                   std::to_string(unit.gpu_index),
                   format_double(unit.gpc_grant, 0) + "g@" +
                       std::to_string(unit.placement->start_slot),
                   std::to_string(unit.batch), std::to_string(unit.procs),
                   format_double(unit.actual_throughput, 1),
                   format_double(unit.actual_latency_ms, 2)});
  }
  table.print(std::cout);

  const auto metrics = core::compute_metrics(result.value().deployment, services);
  std::cout << "\nGPUs: " << metrics.gpu_count
            << "  slack: " << format_double(metrics.internal_slack * 100, 1)
            << "%  fragmentation: "
            << format_double(metrics.external_fragmentation * 100, 1)
            << "%  delay: " << format_double(result.value().scheduling_delay_ms, 3)
            << " ms\n";
  return 0;
}

int cmd_scenarios() {
  TextTable table({"scenario", "services", "total req/s", "tightest SLO (ms)"});
  for (const auto& sc : scenarios::all_scenarios()) {
    double total = 0.0;
    double tightest = 1e18;
    for (const auto& spec : sc.services) {
      total += spec.request_rate;
      tightest = std::min(tightest, spec.slo_latency_ms);
    }
    table.add_row({sc.name, std::to_string(sc.services.size()), format_double(total, 0),
                   format_double(tightest, 0)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string& command = args.positional().front();
  try {
    if (command == "profile") return cmd_profile(args);
    if (command == "schedule") return cmd_schedule(args);
    if (command == "scenarios") return cmd_scenarios();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
