// SLO-change reconfiguration (paper Section III-F): a running S2 cluster
// receives a tightened SLO for InceptionV3. Only that service is
// re-configured and re-placed — no re-profiling, and untouched services
// keep their segments.
//
//   $ ./examples/slo_reconfiguration
#include <iostream>

#include "core/metrics.hpp"
#include "core/parvagpu.hpp"
#include "core/reconfigure.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/scenarios.hpp"
#include "serving/cluster_sim.hpp"

int main() {
  using namespace parva;

  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(perf);
  const auto profiles = profiler.profile_all(perfmodel::ModelCatalog::builtin().names());

  auto scenario = scenarios::scenario("S2");
  core::ParvaGpuScheduler scheduler(profiles);
  (void)scheduler.schedule(scenario.services).value();
  auto plan = scheduler.last_plan();
  auto configured = scheduler.last_configured();

  std::cout << "initial plan:  " << plan.to_string() << "\n";
  std::cout << "GPUs: " << plan.gpus_in_use() << ", GPCs: " << plan.total_allocated_gpcs()
            << "\n\n";

  // The client tightens InceptionV3's SLO from 419 ms to 150 ms.
  core::ServiceSpec updated = scenario.services[4];
  std::cout << "client update: " << updated.model << " SLO " << updated.slo_latency_ms
            << " ms -> 150 ms (rate unchanged at " << updated.request_rate << " req/s)\n\n";
  updated.slo_latency_ms = 150.0;

  core::Reconfigurer reconfigurer{core::SegmentConfigurator(), core::SegmentAllocator()};
  const auto stats = reconfigurer.update_service(plan, configured, updated, profiles);
  if (!stats.ok()) {
    std::cerr << "reconfiguration failed: " << stats.error().to_string() << "\n";
    return 1;
  }
  std::cout << "reconfiguration: removed " << stats.value().segments_removed
            << " segment(s), added " << stats.value().segments_added << ", left "
            << stats.value().segments_untouched << " other-service segment(s) in place\n";
  std::cout << "updated plan:  " << plan.to_string() << "\n";
  std::cout << "GPUs: " << plan.gpus_in_use() << ", GPCs: " << plan.total_allocated_gpcs()
            << "\n\n";

  // Verify the updated cluster still serves everything within SLO.
  scenario.services[4] = updated;
  auto deployment = core::ParvaGpuScheduler::to_deployment(plan, "ParvaGPU");
  for (auto& unit : deployment.units) {
    for (const auto& spec : scenario.services) {
      if (spec.id == unit.service_id) unit.model = spec.model;
    }
  }
  serving::ClusterSimulation sim(deployment, scenario.services, perf);
  serving::SimulationOptions options;
  options.duration_ms = 6'000.0;
  const auto result = sim.run(options);
  std::cout << "post-reconfiguration compliance: " << result.overall_compliance() * 100
            << "% (worst service " << result.worst_compliance() * 100 << "%)\n";
  return 0;
}
