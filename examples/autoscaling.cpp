// Autoscaling walkthrough: follow a diurnal demand curve for one simulated
// day, reconfiguring only drifted services each epoch (Section III-F), and
// compare GPU-hours against static peak provisioning.
//
//   $ ./examples/autoscaling [--epoch-minutes 30]
#include <iostream>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "profiler/profiler.hpp"
#include "serving/autoscaler.hpp"

int main(int argc, char** argv) {
  using namespace parva;
  const CliArgs args(argc, argv);

  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(perf);
  const auto profiles = profiler.profile_all(perfmodel::ModelCatalog::builtin().names());

  const std::vector<core::ServiceSpec> services = {
      {0, "resnet-50", 205, 2500},
      {1, "inceptionv3", 419, 2000},
      {2, "mobilenetv2", 167, 3500},
      {3, "vgg-19", 397, 1100},
      {4, "bert-large", 6434, 120},
  };

  serving::AutoscalerOptions options;
  options.epoch_minutes = args.get_double("epoch-minutes", 30.0);
  serving::Autoscaler autoscaler(profiles, perf, options);
  const auto report = autoscaler.run_day(services, serving::RateTrace::diurnal());
  if (!report.ok()) {
    std::cerr << "autoscaling failed: " << report.error().to_string() << "\n";
    return 1;
  }

  TextTable table({"hour", "load", "offered req/s", "GPUs", "reconfigs", "compliance",
                   "slack"});
  for (const serving::EpochRecord& epoch : report.value().epochs) {
    if (std::fmod(epoch.t_hours, 2.0) > 1e-9) continue;  // print every 2nd hour
    table.add_row({format_double(epoch.t_hours, 1), format_double(epoch.multiplier, 2),
                   format_double(epoch.offered_total, 0), std::to_string(epoch.gpus),
                   std::to_string(epoch.services_reconfigured),
                   format_double(epoch.slo_compliance, 4),
                   format_double(epoch.internal_slack, 3)});
  }
  table.print(std::cout);

  std::cout << "\nelastic fleet:     " << format_double(report.value().gpu_hours, 1)
            << " GPU-hours/day (peak " << report.value().peak_gpus << " GPUs)\n"
            << "static (peak-provisioned): "
            << format_double(report.value().static_gpu_hours, 1) << " GPU-hours/day\n"
            << "saving:            "
            << format_double(100.0 * report.value().saving_vs_static(), 1) << "% ("
            << report.value().total_reconfigurations << " service reconfigurations)\n";
  return 0;
}
