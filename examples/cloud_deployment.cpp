// Cloud-deployment walkthrough: the paper's S2 workload end to end —
// profile, schedule, materialise on a simulated 8-GPU p4de node through the
// NVML-shaped control plane, then serve 10 simulated seconds of traffic and
// report SLO compliance and measured utilisation.
//
//   $ ./examples/cloud_deployment [--scenario S2] [--duration-ms 10000]
#include <iostream>

#include "common/cli.hpp"
#include "core/deployer.hpp"
#include "core/metrics.hpp"
#include "core/parvagpu.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/scenarios.hpp"
#include "serving/cluster_sim.hpp"

int main(int argc, char** argv) {
  using namespace parva;
  const CliArgs args(argc, argv);
  const std::string scenario_name = args.get("scenario", "S2");
  const double duration_ms = args.get_double("duration-ms", 10'000.0);

  const auto& scenario = scenarios::scenario(scenario_name);
  std::cout << "=== " << scenario_name << ": " << scenario.services.size()
            << " services ===\n";

  // Profile and schedule.
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(perf);
  const auto profiles = profiler.profile_all(perfmodel::ModelCatalog::builtin().names());
  core::ParvaGpuScheduler scheduler(profiles);
  const auto schedule = scheduler.schedule(scenario.services);
  if (!schedule.ok()) {
    std::cerr << "scheduling failed: " << schedule.error().to_string() << "\n";
    return 1;
  }
  const core::Deployment& deployment = schedule.value().deployment;
  std::cout << "plan: " << scheduler.last_plan().to_string() << "\n";

  // Materialise on a simulated p4de.24xlarge (8x A100; grows elastically).
  gpu::GpuCluster cluster(8);
  gpu::NvmlSim nvml(cluster);
  core::Deployer deployer(nvml, perf);
  const auto state = deployer.deploy(deployment);
  if (!state.ok()) {
    std::cerr << "deployment failed: " << state.error().to_string() << "\n";
    return 1;
  }
  std::cout << "\ncontrol-plane operations (" << nvml.operation_count() << " total):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(6, nvml.operation_log().size()); ++i) {
    std::cout << "  " << nvml.operation_log()[i] << "\n";
  }
  if (nvml.operation_count() > 6) std::cout << "  ...\n";
  for (std::size_t g = 0; g < cluster.size(); ++g) {
    if (!cluster.gpu(g).empty()) std::cout << "  " << cluster.gpu(g).to_string() << "\n";
  }

  // Serve traffic.
  serving::ClusterSimulation sim(deployment, scenario.services, perf);
  serving::SimulationOptions options;
  options.duration_ms = duration_ms;
  const auto result = sim.run(options);

  std::cout << "\nserved " << duration_ms / 1000.0 << " s of traffic:\n";
  for (const auto& outcome : result.services) {
    std::cout << "  service " << outcome.service_id << ": " << outcome.requests
              << " requests, p50=" << (outcome.request_latency_ms.empty()
                                           ? 0.0
                                           : outcome.request_latency_ms.p50())
              << " ms, p99="
              << (outcome.request_latency_ms.empty() ? 0.0 : outcome.request_latency_ms.p99())
              << " ms, compliance=" << outcome.compliance() * 100 << "%\n";
  }
  std::cout << "\noverall SLO compliance:   " << result.overall_compliance() * 100 << "%"
            << "\nmeasured internal slack:  " << result.internal_slack * 100 << "%\n";

  // parva-audit: allow(R6) best-effort teardown at example exit; nothing to recover into
  (void)deployer.teardown(state.value());
  return 0;
}
