// Quickstart: register three inference services, profile their models,
// and let ParvaGPU produce a minimal-GPU deployment map.
//
//   $ ./examples/quickstart
//
// Walks the whole public API in ~50 lines: ModelCatalog -> Profiler ->
// ParvaGpuScheduler -> metrics.
#include <iostream>

#include "core/metrics.hpp"
#include "core/parvagpu.hpp"
#include "profiler/profiler.hpp"

int main() {
  using namespace parva;

  // 1. The built-in catalog describes the paper's 11 DNN workloads.
  const auto& catalog = perfmodel::ModelCatalog::builtin();
  perfmodel::AnalyticalPerfModel perf(catalog);

  // 2. One-time profiling: throughput/latency over (instance size, batch,
  //    MPS process count). On real hardware this sweep runs on a spare GPU.
  profiler::Profiler profiler(perf);
  const profiler::ProfileSet profiles =
      profiler.profile_all({"resnet-50", "bert-large", "mobilenetv2"});

  // 3. Register services: model + SLO latency (ms) + request rate (req/s).
  const std::vector<core::ServiceSpec> services = {
      {0, "resnet-50", 205.0, 829.0},
      {1, "bert-large", 6434.0, 19.0},
      {2, "mobilenetv2", 167.0, 677.0},
  };

  // 4. Schedule: Segment Configurator + Segment Allocator.
  core::ParvaGpuScheduler scheduler(profiles);
  const auto result = scheduler.schedule(services);
  if (!result.ok()) {
    std::cerr << "scheduling failed: " << result.error().to_string() << "\n";
    return 1;
  }

  // 5. Inspect the deployment map.
  const core::Deployment& deployment = result.value().deployment;
  std::cout << "deployment map: " << scheduler.last_plan().to_string() << "\n\n";
  for (const core::DeployedUnit& unit : deployment.units) {
    std::cout << "  service " << unit.service_id << " (" << unit.model << ") -> GPU"
              << unit.gpu_index << " " << unit.gpc_grant << "g@"
              << unit.placement->start_slot << "  batch=" << unit.batch
              << " procs=" << unit.procs << "  " << unit.actual_throughput
              << " req/s @ " << unit.actual_latency_ms << " ms\n";
  }

  const auto metrics = core::compute_metrics(deployment, services);
  std::cout << "\nGPUs used:              " << metrics.gpu_count
            << "\ninternal slack:         " << metrics.internal_slack * 100 << "%"
            << "\nexternal fragmentation: " << metrics.external_fragmentation * 100 << "%"
            << "\nscheduling delay:       " << result.value().scheduling_delay_ms << " ms\n";
  return 0;
}
