// Interactive profile explorer: inspect a model's profiled operating grid,
// its optimal triplets under an SLO, and the Demand Matching outcome for a
// request rate — the data ParvaGPU's decisions are made of.
//
//   $ ./examples/profile_explorer --model inceptionv3 --slo-ms 419 --rate 5722
#include <iostream>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/configurator.hpp"
#include "profiler/profiler.hpp"

int main(int argc, char** argv) {
  using namespace parva;
  const CliArgs args(argc, argv);
  const std::string model = args.get("model", "inceptionv3");
  const double slo_ms = args.get_double("slo-ms", 419.0);
  const double rate = args.get_double("rate", 5722.0);

  const auto& catalog = perfmodel::ModelCatalog::builtin();
  if (catalog.find(model) == nullptr) {
    std::cerr << "unknown model '" << model << "'. Available: ";
    for (const auto& name : catalog.names()) std::cerr << name << " ";
    std::cerr << "\n";
    return 1;
  }

  perfmodel::AnalyticalPerfModel perf(catalog);
  profiler::Profiler profiler(perf);
  const profiler::ProfileTable table = profiler.profile(model);

  std::cout << "=== profile grid for " << model << " (feasible points) ===\n";
  TextTable grid({"gpcs", "batch", "procs", "throughput", "latency_ms", "memory_gib"});
  for (const auto& point : table.points()) {
    if (point.oom) continue;
    grid.add_row({std::to_string(point.gpcs), std::to_string(point.batch),
                  std::to_string(point.procs), format_double(point.throughput, 1),
                  format_double(point.latency_ms, 2), format_double(point.memory_gib, 2)});
  }
  grid.print(std::cout);

  std::cout << "\n=== Segment Configurator @ SLO " << slo_ms << " ms, rate " << rate
            << " req/s ===\n";
  core::SegmentConfigurator configurator;
  const core::ServiceSpec spec{0, model, slo_ms, rate};
  auto configured = configurator.triplet_decision(spec, table);
  if (!configured.ok()) {
    std::cout << "no instance size meets the internal latency bound of " << slo_ms * 0.5
              << " ms\n";
    return 0;
  }
  if (!configurator.demand_matching(configured.value()).ok()) return 1;
  const auto& c = configured.value();

  TextTable triplets({"instance", "batch", "procs", "throughput", "latency_ms", "tp/GPC"});
  for (const auto& slot : c.opt_tri_array) {
    if (!slot.has_value()) continue;
    triplets.add_row({std::to_string(slot->gpcs) + "g", std::to_string(slot->batch),
                      std::to_string(slot->procs), format_double(slot->throughput, 1),
                      format_double(slot->latency_ms, 2),
                      format_double(slot->throughput_per_gpc(), 1)});
  }
  std::cout << "optimal triplets (max throughput per instance size):\n";
  triplets.print(std::cout);

  std::cout << "\nDemand Matching:\n  optimal segment: " << c.opt_seg.gpcs << "g batch "
            << c.opt_seg.batch << " x" << c.opt_seg.procs << " procs ("
            << format_double(c.opt_seg.throughput, 1) << " req/s)\n  whole segments:  "
            << c.num_opt_seg << "\n";
  if (c.last_seg.has_value()) {
    std::cout << "  last segment:    " << c.last_seg->gpcs << "g batch " << c.last_seg->batch
              << " x" << c.last_seg->procs << " procs ("
              << format_double(c.last_seg->throughput, 1) << " req/s)\n";
  }
  std::cout << "  total: " << c.total_gpcs() << " GPCs, capacity "
            << format_double(c.total_throughput(), 1) << " req/s for " << rate
            << " req/s offered (load " << format_double(100.0 * rate / c.total_throughput(), 1)
            << "%)\n";
  return 0;
}
