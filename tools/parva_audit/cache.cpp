#include "cache.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "callgraph.hpp"
#include "dataflow.hpp"
#include "fixits.hpp"
#include "internal.hpp"
#include "lexer.hpp"

namespace parva::audit::internal {
namespace {

// ------------------------------------------------------------- hashing ----

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

// ------------------------------------------------- record (de)serializer ----

// Line-oriented records, fields joined with '|'. Field content is escaped
// so a literal '|' or newline can never corrupt the framing.
std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '|') {
      out += "\\p";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unesc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    if (s[i] == 'p') {
      out += '|';
    } else if (s[i] == 'n') {
      out += '\n';
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == '|') {
      out.push_back(unesc(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(unesc(cur));
  return out;
}

bool to_int(const std::string& s, int& out) {
  if (s.empty()) return false;
  try {
    out = std::stoi(s);
  } catch (...) {
    return false;
  }
  return true;
}

bool to_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  try {
    out = std::stoull(s);
  } catch (...) {
    return false;
  }
  return true;
}

// --------------------------------------------------------- cache model ----

/// Everything phases 1/1.5/2 learned from one file.
struct CachedFile {
  std::string hash;
  std::map<int, std::set<std::string>> allows;
  std::vector<Finding> findings;  ///< per-file rules only (no graph rules)
  std::map<std::string, bool> status;
  std::map<std::string, std::map<int, std::string>> unit_params;
  FileFacts facts;  ///< functions carry finished bodies; class_members too
};

void write_manifest(std::ostream& out, const std::string& context_hash,
                    const std::vector<std::pair<std::string, CachedFile>>& entries) {
  out << "parva-audit-cache 1\n";
  out << "context|" << context_hash << "\n";
  for (const auto& [path, cf] : entries) {
    out << "file|" << esc(path) << "|" << cf.hash << "\n";
    for (const auto& [line, rules] : cf.allows) {
      for (const std::string& rule : rules) {
        out << "A|" << line << "|" << esc(rule) << "\n";
      }
    }
    for (const Finding& f : cf.findings) {
      out << "F|" << f.line << "|" << esc(f.rule) << "|" << esc(f.message) << "\n";
    }
    for (const auto& [name, nodiscard] : cf.status) {
      out << "S|" << esc(name) << "|" << (nodiscard ? 1 : 0) << "\n";
    }
    for (const auto& [fn, slots] : cf.unit_params) {
      for (const auto& [idx, unit] : slots) {
        out << "U|" << esc(fn) << "|" << idx << "|" << esc(unit) << "\n";
      }
    }
    for (const auto& [cls, members] : cf.facts.class_members) {
      for (const auto& [member, type] : members) {
        out << "M|" << esc(cls) << "|" << esc(member) << "|" << esc(type) << "\n";
      }
    }
    for (const FunctionDef& fn : cf.facts.functions) {
      out << "D|" << esc(fn.name) << "|" << esc(fn.class_name) << "|" << fn.line << "\n";
      for (const CallSite& call : fn.calls) {
        out << "C|" << esc(call.name) << "|" << esc(call.class_qual) << "|"
            << esc(call.receiver_type) << "|" << (call.is_method_syntax ? 1 : 0)
            << "|" << call.line << "\n";
        for (const std::string& held : call.held_locks) {
          out << "h|" << esc(held) << "\n";
        }
      }
      for (const LockAcquisition& acq : fn.locks) {
        out << "L|" << esc(acq.lock) << "|" << acq.line << "\n";
        for (const std::string& held : acq.held) {
          out << "h|" << esc(held) << "\n";
        }
      }
      for (const BlockingOp& op : fn.blocking) {
        out << "B|" << static_cast<int>(op.kind) << "|" << esc(op.what) << "|"
            << op.line << "\n";
      }
      for (const UnorderedIteration& it : fn.unordered) {
        out << "O|" << esc(it.name) << "|" << it.line << "|" << it.token_index
            << "|" << (it.iterator_walk ? 1 : 0) << "\n";
      }
      for (const FpAccumulation& acc : fn.fp_accums) {
        out << "P|" << esc(acc.name) << "|" << acc.line << "|" << acc.token_index
            << "|" << (acc.subtract ? 1 : 0) << "\n";
      }
    }
    for (const RngTagDef& tag : cf.facts.rng_tags) {
      out << "T|" << esc(tag.name) << "|" << tag.value << "|" << tag.line << "\n";
    }
    for (const RngStreamUse& use : cf.facts.rng_uses) {
      out << "R|" << esc(use.tag_name) << "|" << (use.literal ? 1 : 0) << "|"
          << use.line << "\n";
    }
  }
}

bool load_manifest(const std::string& path, std::map<std::string, CachedFile>& cached,
                   std::string& context_hash) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != "parva-audit-cache 1") return false;
  if (!std::getline(in, line)) return false;
  {
    const std::vector<std::string> f = split_fields(line);
    if (f.size() != 2 || f[0] != "context") return false;
    context_hash = f[1];
  }

  CachedFile* cf = nullptr;
  FunctionDef* fn = nullptr;
  std::vector<std::string>* held_sink = nullptr;
  std::string current_path;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = split_fields(line);
    const std::string& kind = f[0];
    int iv = 0;
    if (kind == "file") {
      if (f.size() != 3) return false;
      current_path = f[1];
      cf = &cached[current_path];
      cf->hash = f[2];
      cf->facts.path = current_path;
      fn = nullptr;
      held_sink = nullptr;
      continue;
    }
    if (cf == nullptr) return false;
    if (kind == "A") {
      if (f.size() != 3 || !to_int(f[1], iv)) return false;
      cf->allows[iv].insert(f[2]);
    } else if (kind == "F") {
      if (f.size() != 4 || !to_int(f[1], iv)) return false;
      Finding finding;
      finding.file = current_path;
      finding.line = iv;
      finding.rule = f[2];
      finding.message = f[3];
      cf->findings.push_back(std::move(finding));
    } else if (kind == "S") {
      if (f.size() != 3) return false;
      cf->status[f[1]] = f[2] == "1";
    } else if (kind == "U") {
      if (f.size() != 4 || !to_int(f[2], iv)) return false;
      cf->unit_params[f[1]][iv] = f[3];
    } else if (kind == "M") {
      if (f.size() != 4) return false;
      cf->facts.class_members[f[1]][f[2]] = f[3];
    } else if (kind == "D") {
      if (f.size() != 4 || !to_int(f[3], iv)) return false;
      cf->facts.functions.emplace_back();
      fn = &cf->facts.functions.back();
      fn->name = f[1];
      fn->class_name = f[2];
      fn->file = current_path;
      fn->line = iv;
      held_sink = nullptr;
    } else if (kind == "C") {
      if (fn == nullptr || f.size() != 6 || !to_int(f[5], iv)) return false;
      fn->calls.push_back({f[1], f[2], f[3], f[4] == "1", iv, {}});
      held_sink = &fn->calls.back().held_locks;
    } else if (kind == "L") {
      if (fn == nullptr || f.size() != 3 || !to_int(f[2], iv)) return false;
      fn->locks.push_back({f[1], iv, {}});
      held_sink = &fn->locks.back().held;
    } else if (kind == "h") {
      if (held_sink == nullptr || f.size() != 2) return false;
      held_sink->push_back(f[1]);
    } else if (kind == "B") {
      int kv = 0;
      if (fn == nullptr || f.size() != 4 || !to_int(f[1], kv) || !to_int(f[3], iv)) {
        return false;
      }
      if (kv < 0 || kv > static_cast<int>(BlockKind::kAlloc)) return false;
      fn->blocking.push_back({static_cast<BlockKind>(kv), f[2], iv});
      held_sink = nullptr;
    } else if (kind == "O") {
      std::uint64_t tok = 0;
      if (fn == nullptr || f.size() != 5 || !to_int(f[2], iv) || !to_u64(f[3], tok)) {
        return false;
      }
      fn->unordered.push_back({f[1], iv, static_cast<std::size_t>(tok), f[4] == "1"});
      held_sink = nullptr;
    } else if (kind == "P") {
      std::uint64_t tok = 0;
      if (fn == nullptr || f.size() != 5 || !to_int(f[2], iv) || !to_u64(f[3], tok)) {
        return false;
      }
      fn->fp_accums.push_back({f[1], iv, static_cast<std::size_t>(tok), f[4] == "1"});
      held_sink = nullptr;
    } else if (kind == "T") {
      std::uint64_t value = 0;
      if (f.size() != 4 || !to_u64(f[2], value) || !to_int(f[3], iv)) return false;
      cf->facts.rng_tags.push_back({f[1], value, current_path, iv});
    } else if (kind == "R") {
      if (f.size() != 4 || !to_int(f[3], iv)) return false;
      cf->facts.rng_uses.push_back({f[1], f[2] == "1", current_path, iv});
    } else {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------ context merging ----

/// Order-independent join of per-file status contributions (OR, matching
/// scan_status_functions_into_index) and unit-param contributions (equal
/// keeps, conflict poisons to "", matching scan_unit_params_into_index).
void merge_status(const std::map<std::string, bool>& from,
                  std::map<std::string, bool>& into) {
  for (const auto& [name, nodiscard] : from) {
    auto [it, inserted] = into.emplace(name, nodiscard);
    if (!inserted && nodiscard) it->second = true;
  }
}

void merge_units(const std::map<std::string, std::map<int, std::string>>& from,
                 std::map<std::string, std::map<int, std::string>>& into) {
  for (const auto& [fn, slots] : from) {
    auto& dst = into[fn];
    for (const auto& [idx, unit] : slots) {
      auto [it, inserted] = dst.emplace(idx, unit);
      if (!inserted && it->second != unit) it->second.clear();
    }
  }
}

std::string serialize_context(
    const SymbolIndex& index,
    const std::map<std::string, std::map<std::string, std::string>>& members) {
  std::ostringstream out;
  for (const auto& [name, nodiscard] : index.status_functions) {
    out << "S|" << esc(name) << "|" << (nodiscard ? 1 : 0) << "\n";
  }
  for (const auto& [fn, slots] : index.unit_params) {
    for (const auto& [idx, unit] : slots) {
      out << "U|" << esc(fn) << "|" << idx << "|" << esc(unit) << "\n";
    }
  }
  for (const auto& [cls, mem] : members) {
    for (const auto& [member, type] : mem) {
      out << "M|" << esc(cls) << "|" << esc(member) << "|" << esc(type) << "\n";
    }
  }
  return out.str();
}

std::string config_fingerprint(const AuditConfig& config) {
  std::ostringstream out;
  out << "parva-audit-cache 1\n";
  std::vector<std::string> rules = config.rules;
  std::sort(rules.begin(), rules.end());
  for (const std::string& r : rules) out << "rule|" << esc(r) << "\n";
  for (const std::string& m : config.export_manifest) out << "manifest|" << esc(m) << "\n";
  for (const std::string& r : config.hotpath_roots) out << "root|" << esc(r) << "\n";
  out << "alloc|" << (config.r11_allocations ? 1 : 0) << "\n";
  return out.str();
}

}  // namespace

std::vector<Finding> audit_files_cached(
    const std::string& scan_key,
    const std::vector<std::pair<std::string, std::string>>& files,
    const AuditConfig& config, CacheStats* stats) {
  namespace fs = std::filesystem;
  CacheStats local;
  CacheStats& st = stats != nullptr ? *stats : local;
  st = CacheStats{};
  st.enabled = true;

  const std::string cfg = config_fingerprint(config);
  std::error_code ec;
  fs::create_directories(config.cache_dir, ec);
  const std::string manifest_path =
      (fs::path(config.cache_dir) /
       ("scan-" + hex64(fnv1a(scan_key + "\x1f" + cfg)) + ".txt"))
          .string();

  std::map<std::string, CachedFile> cached;
  std::string stored_context;
  const bool loaded = load_manifest(manifest_path, cached, stored_context);

  std::vector<std::string> hashes(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    hashes[i] = hex64(fnv1a(files[i].second));
  }
  const auto cache_hit = [&](std::size_t i) {
    const auto it = cached.find(files[i].first);
    return it != cached.end() && it->second.hash == hashes[i];
  };

  // Pass 1 (changed files only): lex, per-file context contributions, and
  // the scope-machine facts scan. All per-file pure, so --jobs applies.
  struct Fresh {
    bool analyzed = false;
    LexedFile lexed;
    std::vector<BodySpan> spans;
    CachedFile record;
  };
  std::vector<Fresh> fresh(files.size());
  const auto analyze = [&](std::size_t i) {
    Fresh& f = fresh[i];
    f.analyzed = true;
    f.lexed = lex(files[i].second);
    f.record.hash = hashes[i];
    f.record.allows = f.lexed.allows;
    SymbolIndex contrib;
    scan_status_functions_into_index(f.lexed, contrib);
    // Match audit_files: only header declarations contribute cross-file
    // unit bindings (check_r13 re-scans its own file for .cpp-local ones).
    if (is_header_path(files[i].first)) {
      scan_unit_params_into_index(f.lexed, contrib);
    }
    f.record.status = std::move(contrib.status_functions);
    f.record.unit_params = std::move(contrib.unit_params);
    f.record.facts = scan_file_facts(files[i].first, f.lexed, f.spans);
  };

  std::vector<std::size_t> changed;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!loaded || !cache_hit(i)) changed.push_back(i);
  }
  for_each_index(changed.size(), config.jobs,
                 [&](std::size_t k) { analyze(changed[k]); });

  // Merged cross-file context, from cached contributions where the content
  // hash matched and fresh ones where it did not. Join order does not
  // matter (see merge_*), but iterate in file order anyway.
  SymbolIndex index;
  std::map<std::string, std::map<std::string, std::string>> members;
  const auto contributions = [&](std::size_t i) -> const CachedFile& {
    return fresh[i].analyzed ? fresh[i].record : cached[files[i].first];
  };
  for (std::size_t i = 0; i < files.size(); ++i) {
    const CachedFile& c = contributions(i);
    merge_status(c.status, index.status_functions);
    merge_units(c.unit_params, index.unit_params);
    for (const auto& [cls, mem] : c.facts.class_members) {
      for (const auto& [member, type] : mem) members[cls][member] = type;
    }
  }
  const std::string context_hash = hex64(fnv1a(serialize_context(index, members)));

  // The per-file findings of unchanged files were computed under the old
  // cross-file context; if the merged context moved, they are all suspect
  // (R6 call-discard and R13 literal-arg findings read it), so fall back to
  // a full cold analysis. The context itself is already correct -- hashed
  // contributions are pure functions of content.
  st.cold = !loaded || context_hash != stored_context;
  if (st.cold) {
    std::vector<std::size_t> rest;
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (!fresh[i].analyzed) rest.push_back(i);
    }
    for_each_index(rest.size(), config.jobs,
                   [&](std::size_t k) { analyze(rest[k]); });
  }

  // Phase 2 on analyzed files (per-file rules), and pass 2 of the facts
  // scan with the merged class-member map.
  std::vector<std::size_t> analyzed;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (fresh[i].analyzed) analyzed.push_back(i);
  }
  for_each_index(analyzed.size(), config.jobs, [&](std::size_t k) {
    const std::size_t i = analyzed[k];
    Fresh& f = fresh[i];
    run_per_file_rules(files[i].first, files[i].second, f.lexed, config, index,
                       f.record.findings);
    std::sort(f.record.findings.begin(), f.record.findings.end());
    finish_file_facts(f.record.facts, f.lexed, f.spans, members);
  });
  st.analyzed = analyzed.size();
  st.reused = files.size() - analyzed.size();

  // Collect per-file findings (cached or fresh) in file order.
  std::vector<Finding> findings;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const CachedFile& c = contributions(i);
    findings.insert(findings.end(), c.findings.begin(), c.findings.end());
  }

  // Graph rules, recomputed every run over the merged facts. Facts arrive
  // in sorted file order whether cached or fresh, so function indexes --
  // and therefore every graph finding -- match a cold run exactly.
  std::vector<RngTagDef> rng_tags;
  const bool graph_rules = rule_enabled(config, "R9") || rule_enabled(config, "R10") ||
                           rule_enabled(config, "R11") || rule_enabled(config, "R12") ||
                           rule_enabled(config, "R14");
  if (graph_rules) {
    std::vector<const FileFacts*> facts;
    facts.reserve(files.size());
    LexedByFile by_file;
    std::deque<LexedFile> synthetic;  // stable storage for allow-only stubs
    for (std::size_t i = 0; i < files.size(); ++i) {
      facts.push_back(&contributions(i).facts);
      if (fresh[i].analyzed) {
        by_file[files[i].first] = &fresh[i].lexed;
      } else {
        synthetic.emplace_back();
        synthetic.back().allows = contributions(i).allows;
        by_file[files[i].first] = &synthetic.back();
      }
    }
    const CallGraph graph = assemble_call_graph(facts);
    rng_tags = graph.rng_tags;
    if (rule_enabled(config, "R9")) check_r9(graph, by_file, findings);
    if (rule_enabled(config, "R10")) check_r10(graph, by_file, findings);
    if (rule_enabled(config, "R11")) check_r11(graph, config, by_file, findings);
    if (rule_enabled(config, "R12")) check_r12(graph, config, by_file, findings);
    if (rule_enabled(config, "R14")) check_r14(graph, config, by_file, findings);
  }

  std::sort(findings.begin(), findings.end());
  attach_fixits(files, rng_tags, findings);

  // Persist: every file's record, fresh where analyzed, carried over where
  // not. Entries for files that left the scan set simply drop out.
  std::vector<std::pair<std::string, CachedFile>> entries;
  entries.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    entries.emplace_back(files[i].first, contributions(i));
  }
  std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
  if (out) write_manifest(out, context_hash, entries);

  return findings;
}

}  // namespace parva::audit::internal
