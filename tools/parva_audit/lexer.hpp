// Lightweight C++ lexer for parva_audit. Produces a token stream with
// comments and strings stripped (so rule scans never match inside either),
// while recording which lines carry comments (rule R5 wants a justification
// comment near every memory_order_relaxed) and any
// `// parva-audit: allow(R1,R3)` suppression directives.
//
// This is deliberately NOT a full C++ front end: no preprocessing, no name
// lookup, no template instantiation. The rules it feeds are lexical
// contracts (banned identifiers, declaration shapes, comment adjacency)
// chosen to be checkable at this level; DESIGN.md §4.3 documents the
// residual blind spots.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace parva::audit {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  /// line_has_comment[n] is true when 1-based line n contains (part of) a
  /// comment. Index 0 is unused.
  std::vector<bool> line_has_comment;
  /// Suppression directives: line -> rule ids named in a
  /// `parva-audit: allow(...)` comment on that line. The id "all" matches
  /// every rule.
  std::map<int, std::set<std::string>> allows;
  int line_count = 0;
};

/// Tokenizes `content`. Comments, string literals (including raw strings)
/// and character literals never produce identifier/punct tokens; string and
/// char literals are kept as single placeholder tokens so statement shapes
/// survive. Preprocessor directive lines (leading `#`, with backslash
/// continuations) are swallowed whole -- macro bodies with unbalanced braces
/// must not corrupt the scope tracking in rule R3.
LexedFile lex(const std::string& content);

/// True when a finding for `rule` on `line` is suppressed by an allow()
/// directive on the same line or the line directly above.
bool is_allowed(const LexedFile& file, int line, const std::string& rule);

}  // namespace parva::audit
