#include "lexer.hpp"

#include <cctype>

namespace parva::audit {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Parses `parva-audit: allow(R1,R3)` out of a comment body and records the
/// named rules for `line`.
void record_allows(LexedFile& out, int line, const std::string& comment) {
  const std::string tag = "parva-audit:";
  std::size_t at = comment.find(tag);
  if (at == std::string::npos) return;
  at = comment.find("allow(", at + tag.size());
  if (at == std::string::npos) return;
  at += 6;
  const std::size_t close = comment.find(')', at);
  if (close == std::string::npos) return;
  std::string id;
  for (std::size_t i = at; i <= close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')') {
      if (!id.empty()) out.allows[line].insert(id);
      id.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      id += c;
    }
  }
}

void mark_comment(LexedFile& out, int first_line, int last_line) {
  if (static_cast<int>(out.line_has_comment.size()) <= last_line) {
    out.line_has_comment.resize(last_line + 1, false);
  }
  for (int l = first_line; l <= last_line; ++l) out.line_has_comment[l] = true;
}

}  // namespace

LexedFile lex(const std::string& content) {
  LexedFile out;
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (content[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Preprocessor directive: swallow the whole (possibly continued) line.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (content[i] == '\n') break;
        advance(1);
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const int start_line = line;
      std::string body;
      while (i < n && content[i] != '\n') {
        body += content[i];
        advance(1);
      }
      mark_comment(out, start_line, start_line);
      record_allows(out, start_line, body);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const int start_line = line;
      std::string body;
      advance(2);
      while (i < n && !(content[i] == '*' && i + 1 < n && content[i + 1] == '/')) {
        body += content[i];
        advance(1);
      }
      advance(2);
      mark_comment(out, start_line, line);
      record_allows(out, start_line, body);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(') delim += content[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = content.find(closer, j);
      const int tok_line = line;
      advance((end == std::string::npos ? n : end + closer.size()) - i);
      out.tokens.push_back({Token::Kind::kString, "<raw-string>", tok_line});
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int tok_line = line;
      advance(1);
      while (i < n && content[i] != quote) {
        advance(content[i] == '\\' ? 2 : 1);
      }
      advance(1);
      out.tokens.push_back({quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
                            quote == '"' ? "<string>" : "<char>", tok_line});
      continue;
    }
    if (ident_start(c)) {
      std::string text;
      const int tok_line = line;
      while (i < n && ident_char(content[i])) {
        text += content[i];
        advance(1);
      }
      out.tokens.push_back({Token::Kind::kIdent, text, tok_line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      const int tok_line = line;
      while (i < n && (ident_char(content[i]) || content[i] == '.' || content[i] == '\'')) {
        text += content[i];
        advance(1);
      }
      out.tokens.push_back({Token::Kind::kNumber, text, tok_line});
      continue;
    }
    out.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    advance(1);
  }
  out.line_count = line;
  if (static_cast<int>(out.line_has_comment.size()) <= line) {
    out.line_has_comment.resize(line + 1, false);
  }
  return out;
}

bool is_allowed(const LexedFile& file, int line, const std::string& rule) {
  for (int l = line - 1; l <= line; ++l) {
    auto it = file.allows.find(l);
    if (it == file.allows.end()) continue;
    if (it->second.count(rule) != 0 || it->second.count("all") != 0) return true;
  }
  return false;
}

}  // namespace parva::audit
