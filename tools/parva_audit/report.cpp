// Output formats (text / JSON / SARIF 2.1.0) and baseline support for
// parva_audit. The SARIF output is the minimal valid subset GitHub code
// scanning accepts: one run, driver metadata with the rule catalog, one
// result per finding with a physical location.
#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "audit.hpp"

namespace parva::audit {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string format_findings(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message + "\n";
  }
  return out;
}

std::string format_findings_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"file\": \"" + json_escape(f.file) +
           "\", \"line\": " + std::to_string(f.line) +
           ", \"rule\": \"" + json_escape(f.rule) +
           "\", \"message\": \"" + json_escape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

std::string format_findings_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"parva_audit\",\n"
      "          \"informationUri\": \"DESIGN.md\",\n"
      "          \"rules\": [\n";
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out += "            {\"id\": \"" + std::string(catalog[i].id) +
           "\", \"shortDescription\": {\"text\": \"" + json_escape(catalog[i].summary) +
           "\"}}";
    out += (i + 1 < catalog.size()) ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" + json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.file) + "\"}, \"region\": {\"startLine\": " +
           std::to_string(f.line) + "}}}]";
    if (!f.fix_edits.empty()) {
      // SARIF `fixes`: one fix, one artifact change, N replacements. A
      // zero-length deletedRegion (endColumn == startColumn) is an insert.
      out += ", \"fixes\": [{\"description\": {\"text\": \"" +
             json_escape(f.fix_description) +
             "\"}, \"artifactChanges\": [{\"artifactLocation\": {\"uri\": \"" +
             json_escape(f.file) + "\"}, \"replacements\": [";
      for (std::size_t e = 0; e < f.fix_edits.size(); ++e) {
        const FixEdit& edit = f.fix_edits[e];
        if (e != 0) out += ", ";
        out += "{\"deletedRegion\": {\"startLine\": " + std::to_string(edit.line) +
               ", \"startColumn\": " + std::to_string(edit.column) +
               ", \"endLine\": " + std::to_string(edit.line) +
               ", \"endColumn\": " + std::to_string(edit.column + edit.length) +
               "}, \"insertedContent\": {\"text\": \"" + json_escape(edit.text) +
               "\"}}";
      }
      out += "]}]}]";
    }
    out += "}";
    out += (i + 1 < findings.size()) ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

std::string baseline_key(const Finding& finding) {
  return finding.file + "|" + finding.rule + "|" + finding.message;
}

std::multiset<std::string> parse_baseline(const std::string& content) {
  std::multiset<std::string> out;
  std::string line;
  for (std::size_t i = 0; i <= content.size(); ++i) {
    if (i < content.size() && content[i] != '\n') {
      line += content[i];
      continue;
    }
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    std::size_t start = line.find_first_not_of(" \t");
    if (start != std::string::npos && line[start] != '#') {
      out.insert(line.substr(start));
    }
    line.clear();
  }
  return out;
}

std::string format_baseline(const std::vector<Finding>& findings) {
  std::string out =
      "# parva_audit baseline: accepted findings, one `file|rule|message` per\n"
      "# line (line numbers excluded so edits above a finding do not churn\n"
      "# this file). Regenerate with: parva_audit --update-baseline ...\n";
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(baseline_key(f));
  std::sort(keys.begin(), keys.end());
  for (const std::string& key : keys) out += key + "\n";
  return out;
}

BaselineResult apply_baseline(const std::vector<Finding>& findings,
                              std::multiset<std::string> baseline) {
  BaselineResult result;
  for (const Finding& f : findings) {
    auto it = baseline.find(baseline_key(f));
    if (it != baseline.end()) {
      baseline.erase(it);  // a multiset entry suppresses one occurrence
      ++result.suppressed;
    } else {
      result.fresh.push_back(f);
    }
  }
  result.stale = baseline.size();
  return result;
}

}  // namespace parva::audit
