// Fix-it engine: machine-applicable replacements for the mechanical rules.
//
//   R4  missing #pragma once        -> insert it after the leading comment
//   R6  missing [[nodiscard]]       -> insert before the declaration
//   R10 literal Rng::stream tag     -> rewrite to the registered enumerator
//
// Fixes ride on Finding.fix_description / Finding.fix_edits: report.cpp
// emits them into SARIF `fixes`, and main.cpp's --fix applies them to the
// working tree. attach_fixits() is deterministic and derived purely from
// (file contents, RngStreamTag registry, findings), so the incremental
// cache never needs to persist fixes -- re-attaching reproduces them.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "audit.hpp"
#include "callgraph.hpp"

namespace parva::audit {

/// Attaches fix edits to every finding in `findings` that one of the
/// supported rules produced, leaving the rest untouched. `files` is the
/// audited scan set (path -> content); findings for paths outside it keep
/// no fix. `rng_tags` is the RngStreamTag registry from the call graph
/// (empty when R10 did not run: no R10 findings exist then either).
void attach_fixits(const std::vector<std::pair<std::string, std::string>>& files,
                   const std::vector<RngTagDef>& rng_tags,
                   std::vector<Finding>& findings);

/// Applies every fix whose finding targets `path` to `content`, in reverse
/// document order so earlier edits never shift later offsets. Returns the
/// number of findings whose fixes were applied. Edits that fall outside the
/// content (stale line numbers) are skipped, not clamped.
std::size_t apply_fix_edits(const std::string& path,
                            const std::vector<Finding>& findings,
                            std::string& content);

}  // namespace parva::audit
