// Internal helpers shared between the per-file lexical rules (rules.cpp)
// and the symbol-aware rules R6-R8 (symbols.cpp). Not part of the public
// audit API.
#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "audit.hpp"
#include "callgraph.hpp"
#include "lexer.hpp"

namespace parva::audit::internal {

inline bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
inline bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

inline std::string normalize(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

inline bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), std::string::npos, suffix) == 0;
}

/// Path-manifest matching shared by R2 (per-file) and R12 (reachability):
/// a file is on the manifest when its normalized path contains any entry.
inline bool path_matches(const std::string& path, const std::vector<std::string>& manifest) {
  const std::string p = normalize(path);
  for (const std::string& entry : manifest) {
    if (!entry.empty() && p.find(entry) != std::string::npos) return true;
  }
  return false;
}

inline void add_finding(std::vector<Finding>& findings, const LexedFile& lexed,
                        const std::string& path, int line, const char* rule,
                        std::string message) {
  if (is_allowed(lexed, line, rule)) return;
  findings.push_back({path, line, rule, std::move(message)});
}

// R6/R7/R8 entry points (implemented in symbols.cpp).
void scan_status_functions_into_index(const LexedFile& lexed, SymbolIndex& index);
void check_r6(const LexedFile& lexed, const std::string& path, const SymbolIndex& index,
              std::vector<Finding>& findings);
void check_r7(const LexedFile& lexed, const std::string& path,
              std::vector<Finding>& findings);
void check_r8(const LexedFile& lexed, const std::string& path,
              std::vector<Finding>& findings);

// R9-R12 entry points (implemented in lockgraph.cpp): interprocedural
// rules over the phase-1.5 call graph. `lexed` maps each scanned path to
// its token stream so allow() suppression anchors at the finding's file.
using LexedByFile = std::map<std::string, const LexedFile*>;
void check_r9(const CallGraph& graph, const LexedByFile& lexed,
              std::vector<Finding>& findings);
void check_r10(const CallGraph& graph, const LexedByFile& lexed,
               std::vector<Finding>& findings);
void check_r11(const CallGraph& graph, const AuditConfig& config,
               const LexedByFile& lexed, std::vector<Finding>& findings);
void check_r12(const CallGraph& graph, const AuditConfig& config,
               const LexedByFile& lexed, std::vector<Finding>& findings);

}  // namespace parva::audit::internal
