// Internal helpers shared between the per-file lexical rules (rules.cpp)
// and the symbol-aware rules R6-R8 (symbols.cpp). Not part of the public
// audit API.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "audit.hpp"
#include "callgraph.hpp"
#include "lexer.hpp"

namespace parva::audit::internal {

inline bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
inline bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

inline std::string normalize(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

inline bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), std::string::npos, suffix) == 0;
}

/// Files whose declarations are visible across translation units. R13's
/// cross-file unit bindings come only from these (exported APIs live in
/// headers); a .cpp-local declaration binds call sites in its own file
/// alone, so a common method name in one TU cannot taint every other TU.
inline bool is_header_path(const std::string& path) {
  const std::string p = normalize(path);
  for (const char* ext : {".hpp", ".h", ".hh", ".hxx", ".ipp"}) {
    if (ends_with(p, ext)) return true;
  }
  return false;
}

/// Path-manifest matching shared by R2 (per-file) and R12 (reachability):
/// a file is on the manifest when its normalized path contains any entry.
inline bool path_matches(const std::string& path, const std::vector<std::string>& manifest) {
  const std::string p = normalize(path);
  for (const std::string& entry : manifest) {
    if (!entry.empty() && p.find(entry) != std::string::npos) return true;
  }
  return false;
}

inline void add_finding(std::vector<Finding>& findings, const LexedFile& lexed,
                        const std::string& path, int line, const char* rule,
                        std::string message) {
  if (is_allowed(lexed, line, rule)) return;
  Finding f;
  f.file = path;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  findings.push_back(std::move(f));
}

/// True when `rule` should run under `config` (empty rule list = all).
/// Implemented in rules.cpp.
bool rule_enabled(const AuditConfig& config, const char* rule);

/// Phase 2 over one already-lexed file: every per-file rule (R1-R8, R13,
/// R15), findings appended unsorted. Shared between audit_files() and the
/// incremental cache (cache.cpp), which re-runs it only on changed files.
void run_per_file_rules(const std::string& path, const std::string& content,
                        const LexedFile& lexed, const AuditConfig& config,
                        const SymbolIndex& index, std::vector<Finding>& findings);

// R6/R7/R8 entry points (implemented in symbols.cpp).
void scan_status_functions_into_index(const LexedFile& lexed, SymbolIndex& index);
void check_r6(const LexedFile& lexed, const std::string& path, const SymbolIndex& index,
              std::vector<Finding>& findings);
void check_r7(const LexedFile& lexed, const std::string& path,
              std::vector<Finding>& findings);
void check_r8(const LexedFile& lexed, const std::string& path,
              std::vector<Finding>& findings);

// R9-R12 entry points (implemented in lockgraph.cpp): interprocedural
// rules over the phase-1.5 call graph. `lexed` maps each scanned path to
// its token stream so allow() suppression anchors at the finding's file.
using LexedByFile = std::map<std::string, const LexedFile*>;
void check_r9(const CallGraph& graph, const LexedByFile& lexed,
              std::vector<Finding>& findings);
void check_r10(const CallGraph& graph, const LexedByFile& lexed,
               std::vector<Finding>& findings);
void check_r11(const CallGraph& graph, const AuditConfig& config,
               const LexedByFile& lexed, std::vector<Finding>& findings);
void check_r12(const CallGraph& graph, const AuditConfig& config,
               const LexedByFile& lexed, std::vector<Finding>& findings);

// Shared token-stream utilities (implemented in callgraph.cpp): the
// matching close delimiter for the open at toks[i], and an argument list
// split at top-level commas.
std::size_t match_close(const std::vector<Token>& toks, std::size_t i,
                        const char* open, const char* close);
std::vector<std::vector<Token>> split_args(const std::vector<Token>& toks,
                                           std::size_t i, std::size_t end);

// The reachability machinery shared by R11/R12/R14 (implemented in
// lockgraph.cpp): BFS over resolved call edges with a parent map so every
// finding can carry its witness chain.
struct Reachability {
  std::vector<std::size_t> order;
  std::map<std::size_t, std::size_t> parent;  // absent for start nodes
};
Reachability reach(const CallGraph& graph, const std::vector<std::size_t>& starts);
std::vector<std::string> witness_chain(const CallGraph& graph, const Reachability& r,
                                       std::size_t idx);
std::string join_path(const std::vector<std::string>& names);

/// add_finding against the right file's allow() table; findings for files
/// outside the lexed map get no suppression.
void add_graph_finding(std::vector<Finding>& findings, const LexedByFile& lexed,
                       const std::string& file, int line, const char* rule,
                       std::string message);

/// Runs fn(0..n-1): serially when jobs == 1, else on a work-stealing
/// ThreadPool (jobs == 0 selects the hardware concurrency). Implemented in
/// rules.cpp; callers must make fn(i) write only to slot i of any shared
/// output.
void for_each_index(std::size_t n, std::size_t jobs,
                    const std::function<void(std::size_t)>& fn);

}  // namespace parva::audit::internal
