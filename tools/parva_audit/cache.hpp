// Incremental cache for parva_audit (--cache-dir).
//
// One manifest per (scan set, config): content-hash keyed per-file records
// holding everything phase 1/1.5/2 learned from the file -- per-file
// findings, allow() table, SymbolIndex contributions, class-member types
// and finished call-graph facts. On a warm run only changed files are
// re-lexed and re-ruled; the interprocedural rules (R9-R12, R14) are
// recomputed every run from the merged facts, which is what makes the
// invalidation call-graph-aware: a changed file's facts flow into the same
// graph positions a cold run would give them, so downstream findings move
// with the change while untouched per-file results are reused verbatim.
//
// A cross-file context hash (merged symbol index + unit-param index +
// class-member map) guards the per-file reuse: R6/R13 findings depend on
// that context, so a change to it forces a full re-analysis. Unchanged
// tree => 0 files analyzed and byte-identical findings.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "audit.hpp"

namespace parva::audit::internal {

/// audit_files() with the cache behind it. `scan_key` names the manifest
/// (the sorted scan roots); `files` is the full sorted (path, content) scan
/// set. Falls back to a cold full run -- still writing the cache -- on any
/// manifest miss, version/config/context mismatch, or parse error.
std::vector<Finding> audit_files_cached(
    const std::string& scan_key,
    const std::vector<std::pair<std::string, std::string>>& files,
    const AuditConfig& config, CacheStats* stats);

}  // namespace parva::audit::internal
