// parva_audit CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//   parva_audit src/                      # full scan with built-in manifest
//   parva_audit --rules R1,R4 src/ tests/ # subset of rules
//   parva_audit --manifest paths.txt src/ # replace the R2 manifest
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "audit.hpp"

namespace {

constexpr const char* kUsage = R"(usage: parva_audit [options] <path>...

Project-specific static analysis for the ParvaGPU determinism and
concurrency contracts (DESIGN.md 4.3). Scans C++ sources/headers under the
given files or directories.

options:
  --rules R1,R2,...    run only the named rules (default: all)
  --manifest FILE      replace the built-in R2 export-path manifest with the
                       newline-separated path substrings in FILE ('#' comments)
  --list-rules         print the rule catalog and exit
  -h, --help           this message

suppression: '// parva-audit: allow(R3)' on the offending line or the line
directly above; allow(all) silences every rule for that line.
)";

constexpr const char* kRuleCatalog =
    "R1  banned nondeterminism sources (rand, srand, std::random_device,\n"
    "    time(nullptr), std::chrono::system_clock) outside src/common/rng.hpp\n"
    "R2  no unordered_{map,set} iteration in exporter/CSV/fingerprint TUs\n"
    "    (path manifest; see --manifest)\n"
    "R3  no mutable namespace-scope state in library code\n"
    "R4  header hygiene: #pragma once, no `using namespace` in headers\n"
    "R5  every memory_order_relaxed carries a nearby justification comment\n";

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  for (char c : text) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += c;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  parva::audit::AuditConfig config;
  config.export_manifest = parva::audit::default_export_manifest();
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--list-rules") {
      std::cout << kRuleCatalog;
      return 0;
    }
    if (arg == "--rules") {
      if (++i >= argc) {
        std::cerr << "parva_audit: --rules needs an argument\n";
        return 2;
      }
      config.rules = split_csv(argv[i]);
      continue;
    }
    if (arg == "--manifest") {
      if (++i >= argc) {
        std::cerr << "parva_audit: --manifest needs an argument\n";
        return 2;
      }
      std::ifstream in(argv[i]);
      if (!in) {
        std::cerr << "parva_audit: cannot open manifest " << argv[i] << "\n";
        return 2;
      }
      config.export_manifest.clear();
      std::string line;
      while (std::getline(in, line)) {
        const std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#') continue;
        const std::size_t end = line.find_last_not_of(" \t\r");
        config.export_manifest.push_back(line.substr(start, end - start + 1));
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "parva_audit: unknown option " << arg << "\n" << kUsage;
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  std::vector<std::string> errors;
  const std::vector<parva::audit::Finding> findings =
      parva::audit::audit_paths(paths, config, errors);
  for (const std::string& error : errors) {
    std::cerr << "parva_audit: " << error << "\n";
  }
  std::cout << parva::audit::format_findings(findings);
  if (!findings.empty()) {
    std::cout << "parva_audit: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  if (!errors.empty()) return 2;
  std::cout << "parva_audit: clean\n";
  return 0;
}
