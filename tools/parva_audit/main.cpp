// parva_audit CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//   parva_audit src/                        # full scan with built-in manifest
//   parva_audit --rules R1-R5 src/ tests/   # subset of rules (ranges ok)
//   parva_audit --manifest paths.txt src/   # replace the R2 manifest
//   parva_audit --format sarif src/         # SARIF 2.1.0 for CI upload
//   parva_audit --baseline accepted.txt src/  # only NEW findings fail
//   parva_audit --fix src/                  # apply machine-applicable fixes
//   parva_audit --cache-dir build/audit_cache --jobs 0 src/  # fast CI scan
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "audit.hpp"
#include "fixits.hpp"

namespace {

constexpr const char* kUsage = R"(usage: parva_audit [options] <path>...

Project-specific static analysis for the ParvaGPU determinism, concurrency,
status-flow and geometry contracts (DESIGN.md 4.3/4.4/4.8/4.9). Scans C++
sources/headers under the given files or directories; rules R6-R8 are
symbol-aware (phase 1 indexes declarations across the whole scan set),
rules R9-R12 are call-graph-aware (phase 1.5 builds a lexical call graph;
phase 3 runs lock-order, RNG-tag and reachability checks over it), and
rules R13-R15 are dataflow rules (phase 4: unit discipline, floating-point
determinism, iterator/reference invalidation).

options:
  --rules R1,R2,...    run only the named rules; ranges expand (R1-R15)
  --manifest FILE      replace the built-in R2/R12/R14 export-path manifest
                       with the newline-separated path substrings in FILE
                       ('#' comments)
  --hotpath-roots FILE replace the built-in R11 hot-path roots with the
                       newline-separated qualified function names in FILE
  --r11-alloc          R11 also flags std::{map,set} insert/emplace on the
                       hot path (an allocation per insert)
  --format FMT         output format: text (default), json, sarif
  --baseline FILE      suppress findings listed in FILE (file|rule|message
                       lines); exit 1 only on findings NOT in the baseline
  --update-baseline    with --baseline: rewrite FILE from current findings
                       and exit 0
  --fix                apply machine-applicable fixes (R4 #pragma once,
                       R6 [[nodiscard]], R10 literal->enumerator RNG tags)
                       to the files in place; exit 0 when every remaining
                       finding was fixed, 1 when unfixable findings remain
  --cache-dir DIR      incremental cache: per-file results keyed by content
                       hash; unchanged files are not re-analyzed (stats on
                       stderr; findings are byte-identical either way)
  --jobs N             lex/analyze files on N worker threads (0 = hardware
                       concurrency, default 1); output order is unaffected
  --list-rules         print the rule catalog and exit
  -h, --help           this message

suppression: '// parva-audit: allow(R3)' on the offending line or the line
directly above; allow(all) silences every rule for that line.
)";

std::vector<std::string> split_rules(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  auto flush = [&] {
    if (item.empty()) return;
    // Range expansion: R1-R8 -> R1,R2,...,R8.
    const std::size_t dash = item.find('-');
    if (dash != std::string::npos && dash + 1 < item.size() && item[0] == 'R' &&
        item[dash + 1] == 'R') {
      const int lo = std::atoi(item.substr(1, dash - 1).c_str());
      const int hi = std::atoi(item.substr(dash + 2).c_str());
      if (lo > 0 && hi >= lo) {
        for (int r = lo; r <= hi; ++r) {
          std::string rule = "R";  // avoids a GCC 12 -Wrestrict false positive
          rule += std::to_string(r);
          out.push_back(std::move(rule));
        }
        item.clear();
        return;
      }
    }
    out.push_back(item);
    item.clear();
  };
  for (char c : text) {
    if (c == ',') {
      flush();
    } else {
      item += c;
    }
  }
  flush();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  parva::audit::AuditConfig config;
  config.export_manifest = parva::audit::default_export_manifest();
  config.hotpath_roots = parva::audit::default_hotpath_roots();
  std::vector<std::string> paths;
  std::string format = "text";
  std::string baseline_path;
  bool update_baseline = false;
  bool apply_fixes = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--list-rules") {
      for (const parva::audit::RuleInfo& rule : parva::audit::rule_catalog()) {
        std::cout << rule.id << "  " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--rules") {
      if (++i >= argc) {
        std::cerr << "parva_audit: --rules needs an argument\n";
        return 2;
      }
      config.rules = split_rules(argv[i]);
      // A typo here would silently audit nothing and read as a clean
      // pass, so unknown rule names are a usage error.
      for (const std::string& rule : config.rules) {
        bool known = false;
        for (const parva::audit::RuleInfo& info : parva::audit::rule_catalog()) {
          if (info.id == rule) { known = true; break; }
        }
        if (!known) {
          std::cerr << "parva_audit: unknown rule '" << rule
                    << "' (--list-rules prints the catalog)\n";
          return 2;
        }
      }
      continue;
    }
    if (arg == "--format") {
      if (++i >= argc) {
        std::cerr << "parva_audit: --format needs an argument\n";
        return 2;
      }
      format = argv[i];
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "parva_audit: unknown format '" << format
                  << "' (expected text, json or sarif)\n";
        return 2;
      }
      continue;
    }
    if (arg == "--baseline") {
      if (++i >= argc) {
        std::cerr << "parva_audit: --baseline needs an argument\n";
        return 2;
      }
      baseline_path = argv[i];
      continue;
    }
    if (arg == "--update-baseline") {
      update_baseline = true;
      continue;
    }
    if (arg == "--manifest" || arg == "--hotpath-roots") {
      if (++i >= argc) {
        std::cerr << "parva_audit: " << arg << " needs an argument\n";
        return 2;
      }
      std::ifstream in(argv[i]);
      if (!in) {
        std::cerr << "parva_audit: cannot open " << arg.substr(2) << " file "
                  << argv[i] << "\n";
        return 2;
      }
      std::vector<std::string>& target =
          arg == "--manifest" ? config.export_manifest : config.hotpath_roots;
      target.clear();
      std::string line;
      while (std::getline(in, line)) {
        const std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#') continue;
        const std::size_t end = line.find_last_not_of(" \t\r");
        target.push_back(line.substr(start, end - start + 1));
      }
      continue;
    }
    if (arg == "--r11-alloc") {
      config.r11_allocations = true;
      continue;
    }
    if (arg == "--fix") {
      apply_fixes = true;
      continue;
    }
    if (arg == "--cache-dir") {
      if (++i >= argc) {
        std::cerr << "parva_audit: --cache-dir needs an argument\n";
        return 2;
      }
      config.cache_dir = argv[i];
      continue;
    }
    if (arg == "--jobs") {
      if (++i >= argc) {
        std::cerr << "parva_audit: --jobs needs an argument\n";
        return 2;
      }
      const int jobs = std::atoi(argv[i]);
      if (jobs < 0 || (jobs == 0 && std::string(argv[i]) != "0")) {
        std::cerr << "parva_audit: --jobs needs a non-negative integer\n";
        return 2;
      }
      config.jobs = static_cast<std::size_t>(jobs);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "parva_audit: unknown option " << arg << "\n" << kUsage;
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  if (update_baseline && baseline_path.empty()) {
    std::cerr << "parva_audit: --update-baseline requires --baseline FILE\n";
    return 2;
  }

  std::vector<std::string> errors;
  parva::audit::CacheStats cache_stats;
  std::vector<parva::audit::Finding> findings =
      parva::audit::audit_paths(paths, config, errors, &cache_stats);
  for (const std::string& error : errors) {
    std::cerr << "parva_audit: " << error << "\n";
  }
  if (cache_stats.enabled) {
    std::cerr << "parva_audit: cache " << (cache_stats.cold ? "cold" : "warm")
              << ": analyzed " << cache_stats.analyzed << ", reused "
              << cache_stats.reused << "\n";
  }

  if (update_baseline) {
    std::ofstream out(baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "parva_audit: cannot write baseline " << baseline_path << "\n";
      return 2;
    }
    out << parva::audit::format_baseline(findings);
    std::cout << "parva_audit: baseline updated (" << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << ")\n";
    return errors.empty() ? 0 : 2;
  }

  std::size_t suppressed = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "parva_audit: cannot open baseline " << baseline_path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    parva::audit::BaselineResult result = parva::audit::apply_baseline(
        findings, parva::audit::parse_baseline(buffer.str()));
    suppressed = result.suppressed;
    if (result.stale != 0) {
      std::cerr << "parva_audit: " << result.stale
                << " stale baseline entr" << (result.stale == 1 ? "y" : "ies")
                << " (fixed findings; regenerate with --update-baseline)\n";
    }
    findings = std::move(result.fresh);
  }

  if (apply_fixes) {
    // Applies to post-baseline findings only: accepted legacy findings are
    // not silently rewritten out from under their baseline entries.
    std::set<std::string> fix_files;
    for (const parva::audit::Finding& f : findings) {
      if (!f.fix_edits.empty()) fix_files.insert(f.file);
    }
    std::size_t fixed = 0;
    std::size_t files_changed = 0;
    for (const std::string& file : fix_files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        std::cerr << "parva_audit: cannot open " << file << " for fixing\n";
        continue;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      std::string content = buffer.str();
      in.close();
      const std::size_t n = parva::audit::apply_fix_edits(file, findings, content);
      if (n == 0) continue;
      std::ofstream out(file, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::cerr << "parva_audit: cannot write " << file << "\n";
        continue;
      }
      out << content;
      fixed += n;
      ++files_changed;
    }
    const std::size_t remaining = findings.size() - fixed;
    std::cout << "parva_audit: fixed " << fixed << " finding"
              << (fixed == 1 ? "" : "s") << " in " << files_changed << " file"
              << (files_changed == 1 ? "" : "s") << "; " << remaining
              << " not auto-fixable\n";
    if (remaining != 0) return 1;
    return errors.empty() ? 0 : 2;
  }

  if (format == "json") {
    std::cout << parva::audit::format_findings_json(findings);
  } else if (format == "sarif") {
    std::cout << parva::audit::format_findings_sarif(findings);
  } else {
    std::cout << parva::audit::format_findings(findings);
    if (!findings.empty()) {
      std::cout << "parva_audit: " << findings.size() << " finding"
                << (findings.size() == 1 ? "" : "s");
      if (suppressed != 0) std::cout << " (+" << suppressed << " baselined)";
      std::cout << "\n";
    }
  }
  if (!findings.empty()) return 1;
  if (!errors.empty()) return 2;
  if (format == "text") {
    std::cout << "parva_audit: clean";
    if (suppressed != 0) std::cout << " (" << suppressed << " baselined)";
    std::cout << "\n";
  }
  return 0;
}
