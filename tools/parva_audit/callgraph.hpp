// Phase-1.5 of parva_audit: a lightweight intraprocedural call-graph over
// the scan set, feeding the interprocedural rules R9-R12 (DESIGN.md §4.8).
//
// The builder is lexical, like the rest of the tool: it walks each file's
// token stream with a brace-matched scope machine, records every function
// definition (free functions, in-class method bodies, out-of-line
// Class::method definitions) together with per-body facts -- call sites,
// lock-acquisition scopes, blocking operations, unordered-container
// iteration, Rng::stream tag arguments -- and resolves call sites against
// the definition index conservatively:
//
//   * `Class::method(...)`  -> every definition with that qualified name
//     (all overloads); no fallback when the class is unknown.
//   * `obj.method(...)` / `obj->method(...)` -> the receiver's declared
//     type when the builder can see it (a member of the enclosing class, a
//     parameter, or a local declared with a known class type); when the
//     receiver is unresolvable the edge is followed only if every
//     definition of that bare name lives in one class -- an ambiguous
//     method name (`size`, defined by half a dozen containers) produces no
//     edge rather than an edge to everything. This is the documented
//     soundness gap of the lexical graph.
//   * unqualified `f(...)` inside a method -> the enclosing class's `f`
//     overload set when one exists, otherwise the free functions named `f`.
//   * recursion and mutual recursion are ordinary edges; the reachability
//     walks (R11/R12) and the cycle search (R9) all terminate on visited
//     sets.
//
// Calls with no definition in the scan set (std::, macros like PARVA_CHECK,
// system headers) resolve to the empty set: the graph cannot see into them,
// which DESIGN.md §4.8 lists among the known gaps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace parva::audit {

/// How a call site names its callee; drives resolution.
struct CallSite {
  std::string name;        ///< bare callee name
  std::string class_qual;  ///< "Class" for `Class::name(` calls, else empty
  /// Declared type of the receiver for `obj.name(` / `obj->name(` calls;
  /// "?" when the receiver exists but its type is unresolvable; empty for
  /// non-member call syntax.
  std::string receiver_type;
  bool is_method_syntax = false;  ///< called through `.` or `->`
  int line = 0;
  std::vector<std::string> held_locks;  ///< lock ids held at the call (R9)
};

/// One lock-guard scope (parva::MutexLock / SharedMutexLock, or a std
/// lock_guard / unique_lock / scoped_lock / shared_lock) in a body.
struct LockAcquisition {
  std::string lock;  ///< qualified lock id; see lock_id() in callgraph.cpp
  int line = 0;
  std::vector<std::string> held;  ///< ids already held when this one is taken
};

/// Blocking-operation classes R11 recognizes.
enum class BlockKind : std::uint8_t {
  kLock,   ///< mutex acquisition (any lock-guard scope)
  kPool,   ///< ThreadPool::submit / parallel_for, condition waits, sleeps
  kIo,     ///< iostream / FILE* / fstream traffic
  kAlloc,  ///< std::{map,set} insert/emplace (opt-in; AuditConfig.r11_allocations)
};

struct BlockingOp {
  BlockKind kind = BlockKind::kLock;
  std::string what;  ///< human-readable operation, e.g. "MutexLock(mutex_)"
  int line = 0;
};

/// An iteration over a name declared with an unordered container type in
/// the same file (range-for or begin()-family walk); shared with R2.
struct UnorderedIteration {
  std::string name;
  int line = 0;
  std::size_t token_index = 0;    ///< into LexedFile.tokens, for attribution
  bool iterator_walk = false;     ///< begin()-family walk (vs range-for)
};

/// A `+=` / `-=` on a name declared double/float in the same file, inside a
/// loop body; the phase-4 detector behind R14 (see dataflow.hpp).
struct FpAccumulation {
  std::string name;
  int line = 0;
  std::size_t token_index = 0;  ///< into LexedFile.tokens, for attribution
  bool subtract = false;        ///< `-=` rather than `+=`
};

/// One function definition (a declarator with a brace body).
struct FunctionDef {
  std::string name;        ///< bare name
  std::string class_name;  ///< enclosing or qualifying class; empty = free
  std::string file;
  int line = 0;  ///< line of the body's declarator
  std::vector<CallSite> calls;
  std::vector<LockAcquisition> locks;
  std::vector<BlockingOp> blocking;
  std::vector<UnorderedIteration> unordered;
  std::vector<FpAccumulation> fp_accums;

  std::string qualified() const {
    return class_name.empty() ? name : class_name + "::" + name;
  }
};

/// One enumerator of the RngStreamTag registry (common/rng.hpp).
struct RngTagDef {
  std::string name;
  std::uint64_t value = 0;
  std::string file;
  int line = 0;
};

/// One `Rng::stream(seed, TAG, ...)` call site; R10 validates TAG.
struct RngStreamUse {
  /// Last identifier of the tag argument ("kArrival" for
  /// `RngStreamTag::kArrival`), empty when the argument carries none.
  std::string tag_name;
  bool literal = false;  ///< the tag argument is a bare numeric literal
  std::string file;
  int line = 0;
};

struct CallGraph {
  std::vector<FunctionDef> functions;
  /// bare name -> function indices (overload sets span files).
  std::map<std::string, std::vector<std::size_t>> by_name;
  /// "Class::name" (or bare name for free functions) -> function indices.
  std::map<std::string, std::vector<std::size_t>> by_qualified;
  std::vector<RngTagDef> rng_tags;     ///< RngStreamTag registry enumerators
  std::vector<RngStreamUse> rng_uses;  ///< Rng::stream call sites
  /// Every class name that owns at least one definition; distinguishes
  /// `UnknownClass::f(...)` (no edge) from `some_namespace::f(...)`.
  std::set<std::string> classes;

  /// Resolves a call site made from `caller` to definition indices under
  /// the conservative rules documented above. Deterministic: indices come
  /// back sorted.
  std::vector<std::size_t> resolve(const CallSite& call,
                                   const FunctionDef& caller) const;
};

/// Per-file call-graph facts: everything phase 1.5 learns from one file,
/// independent of the rest of the scan set except for the global
/// class-member map threaded into finish_file_facts(). This is the unit of
/// the incremental cache (cache.cpp): facts for unchanged files are
/// deserialized instead of re-scanned, and assemble_call_graph() merges
/// cached and fresh facts into the same graph a cold run would build.
struct FileFacts {
  std::string path;
  std::vector<FunctionDef> functions;
  std::vector<RngTagDef> rng_tags;
  std::vector<RngStreamUse> rng_uses;
  /// class name -> member name -> last identifier of the declared type.
  std::map<std::string, std::map<std::string, std::string>> class_members;
};

/// A function body recorded by pass 1, before its tokens are scanned.
struct BodySpan {
  std::size_t fn_index = 0;   ///< into FileFacts.functions
  std::vector<Token> params;  ///< tokens between the signature's parens
  std::size_t begin = 0;      ///< first token index inside the body brace
  std::size_t end = 0;        ///< index of the body's closing brace
};

/// Pass 1 over one file: the scope machine. Produces function skeletons
/// (name/class/file/line), their body spans, the file's class-member types
/// and its RngStreamTag registry enumerators.
FileFacts scan_file_facts(const std::string& path, const LexedFile& lexed,
                          std::vector<BodySpan>& spans);

/// Pass 2 over one file: scans each body span with the *global* merged
/// class-member map (so out-of-line methods resolve receivers declared in
/// another file's class body) and attributes the file's unordered
/// iterations and floating-point accumulations to the enclosing function.
void finish_file_facts(
    FileFacts& facts, const LexedFile& lexed, const std::vector<BodySpan>& spans,
    const std::map<std::string, std::map<std::string, std::string>>& class_members);

/// Merges finished per-file facts -- in file order, which must be the scan
/// set's sorted order for the graph to be deterministic -- and builds the
/// name/qualified indexes.
CallGraph assemble_call_graph(const std::vector<const FileFacts*>& facts);

/// Builds the graph over pre-lexed files. Paths are used verbatim in
/// FunctionDef.file; pass them normalized. Equivalent to scan + merge
/// members + finish + assemble over every file.
CallGraph build_call_graph(
    const std::vector<std::pair<std::string, const LexedFile*>>& files);

/// (caller qualified name, callee qualified name) edges, sorted and
/// deduplicated -- the pin format of tests/tools/audit_test.cpp.
std::vector<std::pair<std::string, std::string>> call_graph_edges(const CallGraph& graph);

/// The R2/R12 iteration detector: names declared with an unordered
/// container type anywhere in `lexed`, then every range-for or
/// begin()-family walk over one of them.
std::vector<UnorderedIteration> collect_unordered_iterations(const LexedFile& lexed);

}  // namespace parva::audit
