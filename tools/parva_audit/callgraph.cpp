// Phase-1.5: the lexical call-graph builder. Two passes over the scan set:
//
//   Pass 1 (per file): a brace-matched scope machine (the same shape as
//   check_r3 / check_r7) records every class's data-member types, every
//   function definition's body token span + signature, and the RngStreamTag
//   registry enumerators.
//
//   Pass 2 (per function): the body span is re-walked with the *global*
//   class map in hand -- out-of-line `Class::method` bodies in a .cpp can
//   resolve receivers against members declared in the class's header --
//   extracting call sites (with the lock-hold set at each), lock-guard
//   scopes, blocking operations, unordered-container iterations, and
//   Rng::stream tag arguments.
//
// Resolution semantics live in CallGraph::resolve at the bottom and are
// documented in callgraph.hpp.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "callgraph.hpp"
#include "dataflow.hpp"
#include "internal.hpp"

namespace parva::audit {

namespace internal {

std::size_t match_close(const std::vector<Token>& toks, std::size_t i,
                        const char* open, const char* close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], open)) ++depth;
    if (is_punct(toks[i], close)) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

std::vector<std::vector<Token>> split_args(const std::vector<Token>& toks,
                                           std::size_t i, std::size_t end) {
  std::vector<std::vector<Token>> groups(1);
  int paren = 0;
  int bracket = 0;
  for (; i < end; ++i) {
    if (is_punct(toks[i], "(") || is_punct(toks[i], "{")) ++paren;
    if (is_punct(toks[i], ")") || is_punct(toks[i], "}")) --paren;
    if (is_punct(toks[i], "[")) ++bracket;
    if (is_punct(toks[i], "]")) --bracket;
    if (paren == 0 && bracket == 0 && is_punct(toks[i], ",")) {
      groups.emplace_back();
      continue;
    }
    groups.back().push_back(toks[i]);
  }
  if (groups.back().empty()) groups.pop_back();
  return groups;
}

}  // namespace internal

namespace {

using internal::is_ident;
using internal::is_punct;
using internal::match_close;
using internal::split_args;

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if", "else", "for", "while", "do", "switch", "case", "default", "break",
      "continue", "return", "goto", "new", "delete", "throw", "try", "catch",
      "sizeof", "alignof", "alignas", "decltype", "typeid", "noexcept",
      "static_assert", "using", "typedef", "template", "typename", "operator",
      "co_await", "co_return", "co_yield", "const", "constexpr", "constinit",
      "static", "inline", "extern", "mutable", "volatile", "thread_local",
      "public", "private", "protected", "virtual", "override", "final",
      "class", "struct", "union", "enum", "namespace", "friend", "requires",
      "and", "or", "not", "this"};
  return kKeywords.count(s) != 0;
}

// Lock-guard scope types: the project wrappers plus the std guards they
// wrap, so fixtures and any future direct std usage are both seen.
bool is_lock_guard_type(const std::string& s) {
  return s == "MutexLock" || s == "SharedMutexLock" || s == "lock_guard" ||
         s == "unique_lock" || s == "scoped_lock" || s == "shared_lock";
}

bool is_decl_specifier(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "constinit" || s == "static" ||
         s == "mutable" || s == "inline" || s == "extern" || s == "volatile" ||
         s == "thread_local" || s == "typename";
}

/// member name -> last identifier of its declared type ("Mutex",
/// "EventQueue", "map", ...); merged across files by class name.
using MemberTypes = std::map<std::string, std::string>;
using ClassMembers = std::map<std::string, MemberTypes>;

// Skips a balanced <...> starting at toks[i] == '<'; returns the index one
// past the closing '>'. Tokens are single characters, so '>>' is two tokens
// and nesting balances naturally.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  do {
    if (is_punct(toks[i], "<")) ++depth;
    if (is_punct(toks[i], ">")) --depth;
    ++i;
  } while (i < toks.size() && depth > 0);
  return i;
}

/// Parses `[specifiers] a::b::Type<...>[*&const] name` out of `toks`
/// starting at `i`. Returns (type, name, index-after-name); for smart
/// pointers the pointee's type is used (`std::unique_ptr<ForJob> j` -> the
/// receiver type of `j->` is ForJob, not unique_ptr).
struct DeclParse {
  std::string type;
  std::string name;
  std::size_t next = 0;
};
std::optional<DeclParse> parse_decl(const std::vector<Token>& toks, std::size_t i,
                                    std::size_t end) {
  while (i < end && toks[i].kind == Token::Kind::kIdent &&
         is_decl_specifier(toks[i].text)) {
    ++i;
  }
  if (i >= end || toks[i].kind != Token::Kind::kIdent) return std::nullopt;
  if (is_keyword(toks[i].text) || toks[i].text == "auto") {
    if (toks[i].text != "auto") return std::nullopt;
  }
  std::string type = toks[i].text;
  ++i;
  while (i + 2 < end && is_punct(toks[i], ":") && is_punct(toks[i + 1], ":") &&
         toks[i + 2].kind == Token::Kind::kIdent) {
    type = toks[i + 2].text;
    i += 3;
  }
  if (i < end && is_punct(toks[i], "<")) {
    // Smart pointers / wrappers: the interesting type is the first argument.
    if (type == "unique_ptr" || type == "shared_ptr" || type == "optional") {
      auto inner = parse_decl(toks, i + 1, end);
      if (inner) type = inner->type;
    }
    i = skip_angles(toks, i);
  }
  while (i < end && (is_punct(toks[i], "*") || is_punct(toks[i], "&") ||
                     is_ident(toks[i], "const"))) {
    ++i;
  }
  if (i >= end || toks[i].kind != Token::Kind::kIdent || is_keyword(toks[i].text)) {
    return std::nullopt;
  }
  return DeclParse{type, toks[i].text, i + 1};
}

/// Stable identity for a lock object, so the same mutex named from two
/// functions collapses to one graph node and two same-named mutexes in
/// different classes stay distinct:
///   * a local / parameter        -> "local:<fn-qualified>:<name>" (never
///     shared, so never part of a cross-function cycle)
///   * a bare name inside a method -> "<Class>::<name>" (member access)
///   * a bare name in a free fn    -> "::<name>" (namespace-scope object)
///   * `recv.m` / `recv->m`        -> "<ReceiverType>::<m>" when the
///     receiver's declared type is visible, else the raw spelling.
std::string lock_id(const std::vector<Token>& arg, const FunctionDef& fn,
                    const std::map<std::string, std::string>& local_types) {
  std::vector<const Token*> idents;
  for (const Token& t : arg) {
    if (t.kind == Token::Kind::kIdent) idents.push_back(&t);
  }
  if (idents.size() == 1) {
    const std::string& m = idents[0]->text;
    if (local_types.count(m) != 0) return "local:" + fn.qualified() + ":" + m;
    if (!fn.class_name.empty()) return fn.class_name + "::" + m;
    return "::" + m;
  }
  if (idents.size() == 2) {
    const std::string& recv = idents[0]->text;
    const std::string& m = idents[1]->text;
    if (recv == "this" && !fn.class_name.empty()) return fn.class_name + "::" + m;
    auto it = local_types.find(recv);
    if (it != local_types.end()) return it->second + "::" + m;
  }
  std::string raw;
  for (const Token& t : arg) raw += t.text;
  return raw;
}

/// Extracts the class name out of a `class`/`struct`/`union` head statement:
/// the last identifier after the keyword and before the base-clause ':' or
/// the body (skips attributes, export macros, `final`).
std::string class_name_from_stmt(const std::vector<Token>& stmt) {
  std::size_t k = 0;
  while (k < stmt.size() && !(is_ident(stmt[k], "class") || is_ident(stmt[k], "struct") ||
                              is_ident(stmt[k], "union"))) {
    ++k;
  }
  std::string name;
  for (std::size_t i = k + 1; i < stmt.size(); ++i) {
    if (is_punct(stmt[i], ":") &&
        !(i > 0 && is_punct(stmt[i - 1], ":")) &&
        !(i + 1 < stmt.size() && is_punct(stmt[i + 1], ":"))) {
      break;  // base clause
    }
    if (is_punct(stmt[i], "<")) break;  // template head / specialization
    if (stmt[i].kind == Token::Kind::kIdent && !is_ident(stmt[i], "final") &&
        !is_ident(stmt[i], "alignas")) {
      name = stmt[i].text;
    }
  }
  return name;
}

/// Parses one class-body statement as a data-member declaration; access
/// specifiers are stripped, anything function-shaped (a '(' before any '=')
/// is skipped, as are usings/friends/nested types.
void record_member(const std::vector<Token>& stmt_in, MemberTypes& members) {
  std::vector<Token> stmt = stmt_in;
  while (stmt.size() >= 2 && stmt[0].kind == Token::Kind::kIdent &&
         (stmt[0].text == "public" || stmt[0].text == "private" ||
          stmt[0].text == "protected") &&
         is_punct(stmt[1], ":")) {
    stmt.erase(stmt.begin(), stmt.begin() + 2);
  }
  if (stmt.size() < 2) return;
  for (const Token& t : stmt) {
    if (t.kind == Token::Kind::kIdent &&
        (t.text == "using" || t.text == "typedef" || t.text == "friend" ||
         t.text == "static_assert" || t.text == "template" || t.text == "operator" ||
         t.text == "enum" || t.text == "namespace")) {
      return;
    }
  }
  std::size_t paren = stmt.size();
  std::size_t assign = stmt.size();
  int depth = 0;
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    if (is_punct(stmt[i], "(")) {
      if (depth == 0 && paren == stmt.size()) paren = i;
      ++depth;
    } else if (is_punct(stmt[i], ")")) {
      --depth;
    } else if (depth == 0 && assign == stmt.size() && is_punct(stmt[i], "=")) {
      assign = i;
    }
  }
  if (paren < assign) return;  // method declaration
  auto decl = parse_decl(stmt, 0, stmt.size());
  if (decl) members[decl->name] = decl->type;
}

/// Parses the RngStreamTag registry out of a file's token stream. Auto
/// increment follows C++ enum semantics; only single-number initializers
/// are evaluated (the registry is expected to use plain literals).
void collect_rng_registry(const std::vector<Token>& toks, const std::string& file,
                          std::vector<RngTagDef>& out) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "enum")) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && (is_ident(toks[j], "class") || is_ident(toks[j], "struct"))) ++j;
    if (j >= toks.size() || !is_ident(toks[j], "RngStreamTag")) continue;
    ++j;
    while (j < toks.size() && !is_punct(toks[j], "{")) ++j;  // underlying type
    if (j >= toks.size()) return;
    const std::size_t close = match_close(toks, j, "{", "}");
    std::uint64_t next_value = 0;
    for (std::size_t k = j + 1; k < close; ++k) {
      if (toks[k].kind != Token::Kind::kIdent) continue;
      RngTagDef def;
      def.name = toks[k].text;
      def.file = file;
      def.line = toks[k].line;
      def.value = next_value;
      std::size_t m = k + 1;
      if (m < close && is_punct(toks[m], "=")) {
        std::vector<Token> init;
        int paren = 0;
        for (++m; m < close; ++m) {
          if (is_punct(toks[m], "(")) ++paren;
          if (is_punct(toks[m], ")")) --paren;
          if (paren == 0 && is_punct(toks[m], ",")) break;
          init.push_back(toks[m]);
        }
        if (init.size() == 1 && init[0].kind == Token::Kind::kNumber) {
          std::string digits = init[0].text;
          while (!digits.empty() && std::isalpha(static_cast<unsigned char>(digits.back()))) {
            digits.pop_back();  // integer suffixes (u, ull, ...)
          }
          try {
            def.value = std::stoull(digits, nullptr, 0);
          } catch (...) {
            // non-numeric initializer: keep the auto-increment value
          }
        }
      } else {
        while (m < close && !is_punct(toks[m], ",")) ++m;
      }
      next_value = def.value + 1;
      out.push_back(def);
      k = m;  // continue after the ',' (loop ++k steps past it)
    }
    i = close;
  }
}

struct LockScope {
  std::string id;
  int depth = 0;
};

/// Pass 2 over one function body: local-type map first (parameters, then
/// declarations as they appear), then calls / locks / blocking ops /
/// Rng::stream uses in token order.
void scan_body(FunctionDef& fn, const LexedFile& lexed, const BodySpan& span,
               const ClassMembers& classes, std::vector<RngStreamUse>& rng_uses) {
  const auto& toks = lexed.tokens;

  std::map<std::string, std::string> local_types;
  for (const auto& group : split_args(span.params, 0, span.params.size())) {
    // Strip a trailing `= default` before parsing the declarator.
    std::size_t end = group.size();
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (is_punct(group[i], "=")) {
        end = i;
        break;
      }
    }
    auto decl = parse_decl(group, 0, end);
    if (decl) local_types[decl->name] = decl->type;
  }

  auto member_type = [&](const std::string& name) -> std::string {
    auto lt = local_types.find(name);
    if (lt != local_types.end()) return lt->second;
    if (!fn.class_name.empty()) {
      auto ct = classes.find(fn.class_name);
      if (ct != classes.end()) {
        auto mt = ct->second.find(name);
        if (mt != ct->second.end()) return mt->second;
      }
    }
    return "";
  };

  int depth = 1;
  int paren_depth = 0;
  std::vector<LockScope> lock_stack;
  bool stmt_start = true;
  std::set<std::pair<int, std::string>> io_seen;  // dedupe stream mentions per line

  auto held_ids = [&] {
    std::vector<std::string> ids;
    ids.reserve(lock_stack.size());
    for (const LockScope& l : lock_stack) ids.push_back(l.id);
    return ids;
  };

  for (std::size_t i = span.begin; i < span.end; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      ++depth;
      stmt_start = true;
      continue;
    }
    if (is_punct(t, "}")) {
      --depth;
      while (!lock_stack.empty() && lock_stack.back().depth > depth) lock_stack.pop_back();
      stmt_start = true;
      continue;
    }
    if (is_punct(t, ";")) {
      stmt_start = true;
      continue;
    }
    if (is_punct(t, "(")) ++paren_depth;
    if (is_punct(t, ")")) --paren_depth;
    if (t.kind != Token::Kind::kIdent) {
      stmt_start = false;
      continue;
    }
    const bool at_stmt_start = stmt_start;
    stmt_start = false;

    // Lock-guard declaration: `MutexLock lock(mutex_);` (or brace-init).
    if (is_lock_guard_type(t.text)) {
      std::size_t j = i + 1;
      if (j < span.end && is_punct(toks[j], "<")) j = skip_angles(toks, j);
      if (j + 1 < span.end && toks[j].kind == Token::Kind::kIdent &&
          (is_punct(toks[j + 1], "(") || is_punct(toks[j + 1], "{"))) {
        const bool brace = is_punct(toks[j + 1], "{");
        const std::size_t close = match_close(toks, j + 1, brace ? "{" : "(",
                                              brace ? "}" : ")");
        auto groups = split_args(toks, j + 2, std::min(close, span.end));
        // scoped_lock locks every argument; unique_lock/shared_lock may
        // carry a tag argument -- only the first is the mutex.
        const std::size_t nlocks =
            t.text == "scoped_lock" ? groups.size() : std::min<std::size_t>(1, groups.size());
        for (std::size_t g = 0; g < nlocks; ++g) {
          const std::string id = lock_id(groups[g], fn, local_types);
          LockAcquisition acq;
          acq.lock = id;
          acq.line = t.line;
          acq.held = held_ids();
          fn.locks.push_back(acq);
          fn.blocking.push_back({BlockKind::kLock, t.text + "(" + id + ")", t.line});
          lock_stack.push_back({id, depth});
        }
        continue;
      }
    }

    // Bare iostream / file-stream mentions (not call syntax).
    static const std::set<std::string> kIoIdents = {"cout", "cerr", "clog",
                                                    "ofstream", "ifstream", "fstream"};
    if (kIoIdents.count(t.text) != 0) {
      if (io_seen.insert({t.line, t.text}).second) {
        fn.blocking.push_back({BlockKind::kIo, "std::" + t.text, t.line});
      }
      continue;
    }

    // Local declaration: `Type name ...` at statement start (outside parens).
    if (at_stmt_start && paren_depth == 0) {
      auto decl = parse_decl(toks, i, span.end);
      if (decl && decl->next < span.end &&
          (is_punct(toks[decl->next], ";") || is_punct(toks[decl->next], "=") ||
           is_punct(toks[decl->next], "(") || is_punct(toks[decl->next], "{"))) {
        local_types[decl->name] = decl->type;
        // fall through: the tokens are still scanned (a `Type name(args)`
        // init is not a call because its previous token is an identifier)
      }
    }

    // Call site: `ident (` with a non-declaration context.
    if (i + 1 >= span.end || !is_punct(toks[i + 1], "(")) continue;
    if (is_keyword(t.text) && t.text != "this") continue;
    const Token* prev = i > span.begin ? &toks[i - 1] : nullptr;
    if (prev != nullptr) {
      if (prev->kind == Token::Kind::kIdent && !is_keyword(prev->text)) continue;  // decl
      if (is_punct(*prev, ">") && !(i >= 2 && is_punct(toks[i - 2], "-"))) continue;
      if (is_punct(*prev, "~")) continue;  // destructor call
    }

    CallSite call;
    call.name = t.text;
    call.line = t.line;
    call.held_locks = held_ids();
    if (prev != nullptr && is_punct(*prev, ".") && i >= 2) {
      call.is_method_syntax = true;
      if (toks[i - 2].kind == Token::Kind::kIdent) {
        const std::string ty = member_type(toks[i - 2].text);
        call.receiver_type = ty.empty() ? "?" : ty;
      } else {
        call.receiver_type = "?";
      }
    } else if (prev != nullptr && is_punct(*prev, ">") && i >= 3 &&
               is_punct(toks[i - 2], "-")) {
      call.is_method_syntax = true;
      if (toks[i - 3].kind == Token::Kind::kIdent) {
        const std::string recv = toks[i - 3].text;
        if (recv == "this") {
          call.receiver_type = fn.class_name.empty() ? "?" : fn.class_name;
        } else {
          const std::string ty = member_type(recv);
          call.receiver_type = ty.empty() ? "?" : ty;
        }
      } else {
        call.receiver_type = "?";
      }
    } else if (prev != nullptr && is_punct(*prev, ":") && i >= 3 &&
               is_punct(toks[i - 2], ":") && toks[i - 3].kind == Token::Kind::kIdent) {
      call.class_qual = toks[i - 3].text;
    }

    // Rng::stream(seed, TAG, ...): record the tag argument for R10.
    if (call.class_qual == "Rng" && call.name == "stream") {
      const std::size_t close = match_close(toks, i + 1, "(", ")");
      auto groups = split_args(toks, i + 2, std::min(close, span.end));
      if (groups.size() >= 2) {
        static const std::set<std::string> kTagNoise = {
            "static_cast", "std", "uint64_t", "uint32_t", "uint16_t", "uint8_t",
            "size_t", "unsigned", "long", "int", "RngStreamTag", "const"};
        RngStreamUse use;
        use.file = fn.file;
        use.line = t.line;
        bool has_number = false;
        for (const Token& a : groups[1]) {
          if (a.kind == Token::Kind::kNumber) has_number = true;
          if (a.kind == Token::Kind::kIdent && kTagNoise.count(a.text) == 0) {
            use.tag_name = a.text;
          }
        }
        use.literal = use.tag_name.empty() && has_number;
        rng_uses.push_back(use);
      }
    }

    // Blocking-operation classification by callee name (R11). The graph
    // edge catches the callee's own blocking ops too; classifying here
    // anchors the finding at the call site with a better message.
    static const std::set<std::string> kPoolNames = {"submit", "parallel_for", "wait",
                                                     "wait_for", "wait_until", "sleep_for",
                                                     "sleep_until", "join"};
    static const std::set<std::string> kIoCalls = {"fopen", "fclose", "fread", "fwrite",
                                                   "fprintf", "printf", "fputs", "fgets",
                                                   "fflush", "getline", "system"};
    if (kPoolNames.count(call.name) != 0 &&
        (call.is_method_syntax || call.class_qual == "ThreadPool")) {
      fn.blocking.push_back({BlockKind::kPool, call.name + "()", t.line});
    } else if (kIoCalls.count(call.name) != 0) {
      fn.blocking.push_back({BlockKind::kIo, call.name + "()", t.line});
    } else if (call.is_method_syntax && call.name == "lock") {
      fn.blocking.push_back({BlockKind::kLock, call.receiver_type + ".lock()", t.line});
    } else if (call.is_method_syntax &&
               (call.name == "insert" || call.name == "emplace" ||
                call.name == "emplace_hint")) {
      static const std::set<std::string> kNodeContainers = {"map", "set", "multimap",
                                                            "multiset"};
      if (kNodeContainers.count(call.receiver_type) != 0) {
        fn.blocking.push_back(
            {BlockKind::kAlloc, "std::" + call.receiver_type + "::" + call.name + "()",
             t.line});
      }
    }

    fn.calls.push_back(std::move(call));
  }
}

}  // namespace

std::vector<UnorderedIteration> collect_unordered_iterations(const LexedFile& lexed) {
  const auto& toks = lexed.tokens;
  std::vector<UnorderedIteration> out;

  // Pass 1: names declared with an unordered container type.
  std::set<std::string> unordered_names;
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || kUnordered.count(toks[i].text) == 0) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) {
      int depth = 1;
      for (++j; j < toks.size() && depth > 0; ++j) {
        if (is_punct(toks[j], "<")) ++depth;
        if (is_punct(toks[j], ">")) --depth;
      }
    }
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") || is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
      unordered_names.insert(toks[j].text);
    }
  }
  if (unordered_names.empty()) return out;

  // Pass 2a: range-for over a tracked name.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    int depth = 1;
    std::size_t colon = 0;
    std::size_t j = i + 2;
    for (; j < toks.size() && depth > 0; ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      if (is_punct(toks[j], ")")) --depth;
      // A single ':' at paren depth 1 (not part of '::') is the range-for colon.
      if (depth == 1 && colon == 0 && is_punct(toks[j], ":") &&
          !is_punct(toks[j - 1], ":") &&
          (j + 1 >= toks.size() || !is_punct(toks[j + 1], ":"))) {
        colon = j;
      }
    }
    if (colon == 0) continue;
    for (std::size_t k = colon + 1; k < j - 1; ++k) {
      if (toks[k].kind == Token::Kind::kIdent && unordered_names.count(toks[k].text) != 0) {
        out.push_back({toks[k].text, toks[k].line, k, false});
        break;
      }
    }
  }

  // Pass 2b: explicit iterator walks / algorithm calls: name.begin() etc.
  static const std::set<std::string> kBegin = {"begin", "cbegin", "rbegin", "crbegin"};
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kIdent && unordered_names.count(toks[i].text) != 0 &&
        is_punct(toks[i + 1], ".") && toks[i + 2].kind == Token::Kind::kIdent &&
        kBegin.count(toks[i + 2].text) != 0) {
      out.push_back({toks[i].text, toks[i].line, i, true});
    }
  }
  return out;
}

FileFacts scan_file_facts(const std::string& path, const LexedFile& lexed,
                          std::vector<BodySpan>& spans) {
  FileFacts facts;
  facts.path = path;
  {
    const auto& toks = lexed.tokens;
    collect_rng_registry(toks, path, facts.rng_tags);

    enum class ScopeKind { kNamespace, kClass, kFunction, kOther };
    struct Scope {
      ScopeKind kind;
      std::string class_name;     // kClass only
      std::size_t span_index;     // kFunction only; npos otherwise
      std::vector<Token> saved_stmt;
      bool continues_stmt;
    };
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::vector<Scope> stack;
    std::vector<Token> stmt;
    int function_depth = 0;

    auto contains_ident = [](const std::vector<Token>& s,
                             std::initializer_list<const char*> names) {
      for (const Token& t : s) {
        if (t.kind != Token::Kind::kIdent) continue;
        for (const char* name : names) {
          if (t.text == name) return true;
        }
      }
      return false;
    };

    auto enclosing_class = [&]() -> std::string {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->kind == ScopeKind::kClass) return it->class_name;
      }
      return "";
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (is_punct(t, "{")) {
        ScopeKind kind = ScopeKind::kOther;
        bool continues = false;
        std::size_t span_index = kNone;
        if (function_depth > 0) {
          // Inside a function body every brace is opaque to the machine;
          // scan_body re-walks the span with its own depth tracking.
          kind = ScopeKind::kOther;
        } else {
          int paren_depth = 0;
          std::size_t depth0_assign = stmt.size();
          std::size_t depth0_paren = stmt.size();
          bool has_parens = false;
          for (std::size_t k = 0; k < stmt.size(); ++k) {
            if (is_punct(stmt[k], "(")) {
              if (paren_depth == 0 && depth0_paren == stmt.size()) depth0_paren = k;
              ++paren_depth;
              has_parens = true;
            } else if (is_punct(stmt[k], ")")) {
              --paren_depth;
            } else if (paren_depth == 0 && depth0_assign == stmt.size() &&
                       is_punct(stmt[k], "=")) {
              depth0_assign = k;
            }
          }
          if (contains_ident(stmt, {"namespace"})) {
            kind = ScopeKind::kNamespace;
          } else if (contains_ident(stmt, {"class", "struct", "union", "enum"})) {
            kind = ScopeKind::kClass;
            continues = true;
          } else if (stmt.empty()) {
            kind = ScopeKind::kOther;
          } else if (depth0_assign != stmt.size()) {
            kind = ScopeKind::kOther;  // brace initializer after '='
            continues = true;
          } else if (has_parens || is_punct(stmt.back(), ")")) {
            kind = ScopeKind::kFunction;
            // Extract the declarator around the first top-level '('.
            if (depth0_paren != stmt.size() && depth0_paren > 0 &&
                stmt[depth0_paren - 1].kind == Token::Kind::kIdent &&
                !is_keyword(stmt[depth0_paren - 1].text) &&
                !contains_ident(stmt, {"operator"})) {
              FunctionDef fn;
              fn.name = stmt[depth0_paren - 1].text;
              fn.line = stmt[depth0_paren - 1].line;
              fn.file = path;
              if (depth0_paren >= 4 && is_punct(stmt[depth0_paren - 2], ":") &&
                  is_punct(stmt[depth0_paren - 3], ":") &&
                  stmt[depth0_paren - 4].kind == Token::Kind::kIdent) {
                fn.class_name = stmt[depth0_paren - 4].text;  // out-of-line method
              } else {
                fn.class_name = enclosing_class();
              }
              BodySpan span;
              span.fn_index = facts.functions.size();
              const std::size_t close =
                  [&] {  // matching ')' of the parameter list within stmt
                    int d = 0;
                    for (std::size_t k = depth0_paren; k < stmt.size(); ++k) {
                      if (is_punct(stmt[k], "(")) ++d;
                      if (is_punct(stmt[k], ")") && --d == 0) return k;
                    }
                    return stmt.size();
                  }();
              span.params.assign(stmt.begin() + depth0_paren + 1,
                                 stmt.begin() + std::min(close, stmt.size()));
              span.begin = i + 1;  // body tokens; end patched at the close brace
              facts.functions.push_back(std::move(fn));
              span_index = spans.size();
              spans.push_back(std::move(span));
            }
          } else if (stmt.back().kind == Token::Kind::kIdent ||
                     is_punct(stmt.back(), ">") || is_punct(stmt.back(), "]")) {
            kind = ScopeKind::kOther;  // direct brace init: Type name{...}
            continues = true;
          }
        }
        std::string cls;
        if (kind == ScopeKind::kClass && !contains_ident(stmt, {"enum"})) {
          cls = class_name_from_stmt(stmt);
        }
        if (kind == ScopeKind::kFunction) ++function_depth;
        stack.push_back({kind, cls, span_index,
                         continues ? stmt : std::vector<Token>{}, continues});
        stmt.clear();
      } else if (is_punct(t, "}")) {
        if (!stack.empty()) {
          Scope top = std::move(stack.back());
          stack.pop_back();
          if (top.kind == ScopeKind::kFunction) {
            --function_depth;
            if (top.span_index != kNone) spans[top.span_index].end = i;
          }
          stmt.clear();
          if (top.continues_stmt) {
            stmt = std::move(top.saved_stmt);
            stmt.push_back({Token::Kind::kPunct, "@body", 0});
          }
        }
      } else if (is_punct(t, ";")) {
        if (!stack.empty() && stack.back().kind == ScopeKind::kClass &&
            !stack.back().class_name.empty() && function_depth == 0) {
          record_member(stmt, facts.class_members[stack.back().class_name]);
        }
        stmt.clear();
      } else {
        stmt.push_back(t);
      }
    }
  }
  return facts;
}

void finish_file_facts(FileFacts& facts, const LexedFile& lexed,
                       const std::vector<BodySpan>& spans,
                       const ClassMembers& class_members) {
  for (const BodySpan& span : spans) {
    if (span.end <= span.begin) continue;  // unterminated body (lex anomaly)
    FunctionDef& fn = facts.functions[span.fn_index];
    scan_body(fn, lexed, span, class_members, facts.rng_uses);
  }

  // Attribute the file's unordered-container iterations (the shared R2
  // detector) and floating-point loop accumulations (the R14 detector) to
  // the function whose body span contains the token.
  for (const UnorderedIteration& it : collect_unordered_iterations(lexed)) {
    for (const BodySpan& span : spans) {
      if (it.token_index < span.begin || it.token_index >= span.end) continue;
      facts.functions[span.fn_index].unordered.push_back(it);
      break;
    }
  }
  for (const FpAccumulation& acc : collect_fp_accumulations(lexed)) {
    for (const BodySpan& span : spans) {
      if (acc.token_index < span.begin || acc.token_index >= span.end) continue;
      facts.functions[span.fn_index].fp_accums.push_back(acc);
      break;
    }
  }
}

CallGraph assemble_call_graph(const std::vector<const FileFacts*>& facts) {
  CallGraph graph;
  for (const FileFacts* file : facts) {
    graph.functions.insert(graph.functions.end(), file->functions.begin(),
                           file->functions.end());
    graph.rng_tags.insert(graph.rng_tags.end(), file->rng_tags.begin(),
                          file->rng_tags.end());
    graph.rng_uses.insert(graph.rng_uses.end(), file->rng_uses.begin(),
                          file->rng_uses.end());
  }
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    const FunctionDef& fn = graph.functions[i];
    graph.by_name[fn.name].push_back(i);
    graph.by_qualified[fn.qualified()].push_back(i);
    if (!fn.class_name.empty()) graph.classes.insert(fn.class_name);
  }
  return graph;
}

CallGraph build_call_graph(
    const std::vector<std::pair<std::string, const LexedFile*>>& files) {
  // Pass 1 per file, then a merged class-member map (last declaration in
  // file order wins, matching the historical single-map behavior), then
  // pass 2 per file against the merged map.
  std::vector<FileFacts> facts;
  std::vector<std::vector<BodySpan>> spans(files.size());
  facts.reserve(files.size());
  for (std::size_t f = 0; f < files.size(); ++f) {
    facts.push_back(scan_file_facts(files[f].first, *files[f].second, spans[f]));
  }
  ClassMembers merged;
  for (const FileFacts& file : facts) {
    for (const auto& [cls, members] : file.class_members) {
      for (const auto& [name, type] : members) merged[cls][name] = type;
    }
  }
  std::vector<const FileFacts*> finished;
  finished.reserve(facts.size());
  for (std::size_t f = 0; f < files.size(); ++f) {
    finish_file_facts(facts[f], *files[f].second, spans[f], merged);
    finished.push_back(&facts[f]);
  }
  return assemble_call_graph(finished);
}

std::vector<std::size_t> CallGraph::resolve(const CallSite& call,
                                            const FunctionDef& caller) const {
  auto lookup = [&](const std::string& key) -> std::vector<std::size_t> {
    auto it = by_qualified.find(key);
    return it == by_qualified.end() ? std::vector<std::size_t>{} : it->second;
  };
  if (!call.class_qual.empty()) {
    auto hits = lookup(call.class_qual + "::" + call.name);
    if (!hits.empty()) return hits;
    // Unknown qualifier: treat as a namespace qualifier over free functions
    // (`detail::helper(...)`) -- but never fall back when the qualifier IS a
    // known class (an undefined static method resolves to nothing).
    if (classes.count(call.class_qual) == 0) return lookup(call.name);
    return {};
  }
  if (call.is_method_syntax) {
    if (call.receiver_type != "?" && !call.receiver_type.empty()) {
      return lookup(call.receiver_type + "::" + call.name);
    }
    // Unresolvable receiver: follow the edge only when every definition of
    // this bare name lives in one class. Ambiguity produces no edge.
    auto it = by_name.find(call.name);
    if (it == by_name.end()) return {};
    const std::string& cls = functions[it->second.front()].class_name;
    if (cls.empty()) return {};
    for (std::size_t idx : it->second) {
      if (functions[idx].class_name != cls) return {};
    }
    return it->second;
  }
  // Unqualified call: the enclosing class's overload set wins, then free
  // functions of that name.
  if (!caller.class_name.empty()) {
    auto hits = lookup(caller.class_name + "::" + call.name);
    if (!hits.empty()) return hits;
  }
  return lookup(call.name);
}

std::vector<std::pair<std::string, std::string>> call_graph_edges(const CallGraph& graph) {
  std::vector<std::pair<std::string, std::string>> edges;
  for (const FunctionDef& fn : graph.functions) {
    for (const CallSite& call : fn.calls) {
      for (std::size_t target : graph.resolve(call, fn)) {
        edges.emplace_back(fn.qualified(), graph.functions[target].qualified());
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace parva::audit
