#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/thread_pool.hpp"

#include "audit.hpp"
#include "cache.hpp"
#include "callgraph.hpp"
#include "dataflow.hpp"
#include "fixits.hpp"
#include "internal.hpp"
#include "lexer.hpp"

namespace parva::audit {
namespace {

using internal::add_finding;
using internal::ends_with;
using internal::is_ident;
using internal::is_punct;
using internal::normalize;
using internal::path_matches;

bool is_header(const std::string& path) {
  const std::string p = normalize(path);
  for (const char* ext : {".hpp", ".h", ".hh", ".hxx"}) {
    if (ends_with(p, ext)) return true;
  }
  return false;
}

// R1 -- banned nondeterminism sources. The simulator's only sanctioned
// randomness is parva::Rng (seeded, stable across platforms); wall-clock
// reads are banned because any value derived from one diverges run-to-run.
void check_r1(const LexedFile& lexed, const std::string& path,
              std::vector<Finding>& findings) {
  if (ends_with(normalize(path), "common/rng.hpp")) {
    return;  // the one sanctioned randomness implementation
  }
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    const bool member_access =
        i > 0 && (is_punct(toks[i - 1], ".") ||
                  (i > 1 && is_punct(toks[i - 1], ">") && is_punct(toks[i - 2], "-")));
    if ((t.text == "rand" || t.text == "srand") && !member_access &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      add_finding(findings, lexed, path, t.line, "R1",
                  t.text + "() is banned: seed-stable randomness must come from "
                  "parva::Rng (src/common/rng.hpp)");
    } else if (t.text == "random_device") {
      add_finding(findings, lexed, path, t.line, "R1",
                  "std::random_device is banned: it is nondeterministic by design; "
                  "derive streams from parva::Rng::split()");
    } else if (t.text == "system_clock") {
      add_finding(findings, lexed, path, t.line, "R1",
                  "std::chrono::system_clock is banned in simulation code: wall-clock "
                  "values diverge run-to-run (steady_clock durations for measured "
                  "scheduling time are exempt)");
    } else if (t.text == "time" && !member_access && i + 3 < toks.size() &&
               is_punct(toks[i + 1], "(") &&
               (is_ident(toks[i + 2], "nullptr") || is_ident(toks[i + 2], "NULL") ||
                (toks[i + 2].kind == Token::Kind::kNumber && toks[i + 2].text == "0")) &&
               is_punct(toks[i + 3], ")")) {
      add_finding(findings, lexed, path, t.line, "R1",
                  "time(" + toks[i + 2].text + ") is banned: wall-clock seeds break "
                  "byte-identical replay; thread an explicit seed instead");
    }
  }
}

// R2 -- unordered-container iteration on export paths. Iteration order of
// unordered_{map,set} is implementation- and insertion-history-dependent;
// on a translation unit that feeds a CSV, Prometheus exposition, or
// determinism fingerprint it silently breaks byte-identity. Lookups are
// fine; iteration (range-for or begin()/cbegin()/rbegin()) is not.
void check_r2(const LexedFile& lexed, const std::string& path,
              const AuditConfig& config, std::vector<Finding>& findings) {
  if (!path_matches(path, config.export_manifest)) return;
  // The detector is shared with R12 (which applies it to non-manifest
  // files reachable from manifest entry points); see callgraph.cpp.
  for (const UnorderedIteration& it : collect_unordered_iterations(lexed)) {
    add_finding(findings, lexed, path, it.line, "R2",
                std::string(it.iterator_walk ? "iterator" : "iteration") +
                " over unordered container '" + it.name +
                "' on an export path: iteration order is not deterministic; "
                "copy to a sorted vector (or use std::map) before emitting");
  }
}

// R3 -- mutable namespace-scope state. A mutable global is (a) shared state
// the ThreadPool can race on and (b) cross-run state that can leak between
// simulations; both break the contracts. Constants are fine; deliberate
// exceptions (the logging sink, per-thread shard caches) carry an
// allow(R3) with their safety argument.
//
// Implementation: a brace-matching scope machine over the token stream.
// Statements are accumulated between ';'/'{'/'}' and evaluated only when
// the enclosing scope is a namespace (or the file top level).
void check_r3(const LexedFile& lexed, const std::string& path,
              std::vector<Finding>& findings) {
  enum class ScopeKind { kNamespace, kClass, kFunction, kOther };
  struct Scope {
    ScopeKind kind;
    std::vector<Token> saved_stmt;
    bool continues_stmt;
  };
  const Token kBodyMarker{Token::Kind::kPunct, "@body", 0};

  auto contains_ident = [](const std::vector<Token>& stmt,
                           std::initializer_list<const char*> names) {
    for (const Token& t : stmt) {
      if (t.kind != Token::Kind::kIdent) continue;
      for (const char* name : names) {
        if (t.text == name) return true;
      }
    }
    return false;
  };

  auto evaluate_stmt = [&](const std::vector<Token>& stmt) {
    if (stmt.size() < 2) return;  // lone macro invocations / stray tokens
    if (contains_ident(stmt, {"using", "typedef", "friend", "static_assert", "template",
                              "concept", "requires", "operator"})) {
      return;
    }
    if (contains_ident(stmt, {"const", "constexpr", "constinit"})) return;
    std::size_t paren = stmt.size();
    std::size_t assign = stmt.size();
    bool has_body = false;
    for (std::size_t i = 0; i < stmt.size(); ++i) {
      if (paren == stmt.size() && is_punct(stmt[i], "(")) paren = i;
      if (assign == stmt.size() && is_punct(stmt[i], "=")) assign = i;
      if (stmt[i].text == "@body") has_body = true;
    }
    if (contains_ident(stmt, {"extern"}) && assign == stmt.size() && !has_body) {
      return;  // pure declaration; the defining TU gets the finding
    }
    const Token* declarator = nullptr;
    if (contains_ident(stmt, {"class", "struct", "union", "enum"})) {
      // Type definitions are fine; `struct X {...} instance;` is not.
      if (!has_body) return;
      for (auto it = stmt.rbegin(); it != stmt.rend() && it->text != "@body"; ++it) {
        if (it->kind == Token::Kind::kIdent) {
          declarator = &*it;
          break;
        }
      }
    } else if (paren == stmt.size() || assign < paren) {
      // No parens at all, or an initializer before the first paren: a
      // variable. (A paren with no preceding '=' is a function signature.)
      for (auto it = stmt.rbegin(); it != stmt.rend(); ++it) {
        if (it->kind == Token::Kind::kIdent &&
            (assign == stmt.size() || &*it <= &stmt[assign])) {
          declarator = &*it;
          break;
        }
      }
    }
    if (declarator == nullptr) return;
    add_finding(findings, lexed, path, declarator->line, "R3",
                "mutable namespace-scope state '" + declarator->text +
                "': shared globals race under the ThreadPool and leak state "
                "across runs; pass state explicitly or justify with allow(R3)");
  };

  std::vector<Scope> stack;
  std::vector<Token> stmt;
  auto scope_kind = [&] {
    return stack.empty() ? ScopeKind::kNamespace : stack.back().kind;
  };

  for (const Token& t : lexed.tokens) {
    if (is_punct(t, "{")) {
      ScopeKind kind = ScopeKind::kOther;
      bool continues = false;
      int paren_depth = 0;
      std::size_t depth0_assign = stmt.size();
      bool has_parens = false;
      for (std::size_t i = 0; i < stmt.size(); ++i) {
        if (is_punct(stmt[i], "(")) {
          ++paren_depth;
          has_parens = true;
        } else if (is_punct(stmt[i], ")")) {
          --paren_depth;
        } else if (paren_depth == 0 && depth0_assign == stmt.size() &&
                   is_punct(stmt[i], "=")) {
          depth0_assign = i;
        }
      }
      if (contains_ident(stmt, {"namespace"})) {
        kind = ScopeKind::kNamespace;
      } else if (contains_ident(stmt, {"class", "struct", "union", "enum"})) {
        kind = ScopeKind::kClass;
        continues = true;
      } else if (stmt.empty()) {
        kind = ScopeKind::kOther;
      } else if (depth0_assign != stmt.size()) {
        kind = ScopeKind::kOther;  // brace initializer after '='
        continues = true;
      } else if (has_parens || is_punct(stmt.back(), ")")) {
        kind = ScopeKind::kFunction;
      } else if (stmt.back().kind == Token::Kind::kIdent || is_punct(stmt.back(), ">") ||
                 is_punct(stmt.back(), "]")) {
        kind = ScopeKind::kOther;  // direct brace init: Type name{...}
        continues = true;
      }
      stack.push_back({kind, continues ? stmt : std::vector<Token>{}, continues});
      stmt.clear();
    } else if (is_punct(t, "}")) {
      if (!stack.empty()) {
        Scope top = std::move(stack.back());
        stack.pop_back();
        stmt.clear();
        if (top.continues_stmt) {
          stmt = std::move(top.saved_stmt);
          stmt.push_back(kBodyMarker);
        }
      }
    } else if (is_punct(t, ";")) {
      if (scope_kind() == ScopeKind::kNamespace) evaluate_stmt(stmt);
      stmt.clear();
    } else {
      stmt.push_back(t);
    }
  }
}

// R4 -- header hygiene: every header starts with #pragma once (double
// inclusion otherwise produces ODR violations the linker may or may not
// catch) and never opens a namespace into every includer's scope.
void check_r4(const LexedFile& lexed, const std::string& path,
              const std::string& content, std::vector<Finding>& findings) {
  if (!is_header(path)) return;
  if (content.find("#pragma once") == std::string::npos) {
    add_finding(findings, lexed, path, 1, "R4",
                "header is missing #pragma once");
  }
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "using") && is_ident(toks[i + 1], "namespace")) {
      add_finding(findings, lexed, path, toks[i].line, "R4",
                  "`using namespace` in a header leaks into every includer; "
                  "qualify names instead");
    }
  }
}

// R5 -- memory_order_relaxed must carry its safety argument. Relaxed
// atomics are correct only under a side condition the type system cannot
// see (single writer, monotonic flag, id allocation, ...); requiring the
// argument next to the code keeps the concurrency contract reviewable.
void check_r5(const LexedFile& lexed, const std::string& path,
              std::vector<Finding>& findings) {
  std::set<int> flagged_lines;
  for (const Token& t : lexed.tokens) {
    if (t.kind != Token::Kind::kIdent || t.text != "memory_order_relaxed") continue;
    if (flagged_lines.count(t.line) != 0) continue;
    bool justified = false;
    for (int l = t.line; l >= t.line - 3 && l >= 1; --l) {
      if (l < static_cast<int>(lexed.line_has_comment.size()) && lexed.line_has_comment[l]) {
        justified = true;
        break;
      }
    }
    if (!justified) {
      flagged_lines.insert(t.line);
      add_finding(findings, lexed, path, t.line, "R5",
                  "memory_order_relaxed without a nearby justification comment "
                  "(same line or the three lines above): state why relaxed "
                  "ordering is sufficient here");
    }
  }
}

using internal::rule_enabled;

}  // namespace

namespace internal {

bool rule_enabled(const AuditConfig& config, const char* rule) {
  if (config.rules.empty()) return true;
  return std::find(config.rules.begin(), config.rules.end(), rule) != config.rules.end();
}

}  // namespace internal

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"R1", "banned nondeterminism sources (rand, srand, std::random_device, "
             "time(nullptr), std::chrono::system_clock) outside src/common/rng.hpp"},
      {"R2", "no unordered_{map,set} iteration in exporter/CSV/fingerprint TUs "
             "(path manifest; see --manifest)"},
      {"R3", "no mutable namespace-scope state in library code"},
      {"R4", "header hygiene: #pragma once, no `using namespace` in headers"},
      {"R5", "every memory_order_relaxed carries a nearby justification comment"},
      {"R6", "status-returning functions (NvmlReturn/ErrorCode/Status/Result) are "
             "[[nodiscard]] and no call site discards the result"},
      {"R7", "every mutable data member of a mutex-owning class carries "
             "PARVA_GUARDED_BY(lock) (src/common/thread_annotations.hpp)"},
      {"R8", "MIG geometry is table-driven: constexpr kProfileTable/kPlacementTable "
             "with static_assert proofs; no hardcoded slot tables or shadow APIs"},
      {"R9", "the lock-acquisition order graph (lock-guard scopes, including one "
             "level through a call) is acyclic; cycles are potential deadlocks"},
      {"R10", "every Rng::stream tag is a named enumerator of the RngStreamTag "
              "registry (src/common/rng.hpp) with pairwise-distinct values"},
      {"R11", "no blocking operation (locks, pool submit/wait, iostream/file I/O) "
              "is transitively reachable from a hot-path root (--hotpath-roots)"},
      {"R12", "no unordered-container iteration transitively reachable from "
              "functions defined in export/fingerprint manifest files"},
      {"R13", "unit discipline: no mixed-unit arithmetic between quantity-"
              "suffixed names (_ms/_s/_bytes/...), no bare literals for "
              "unit-suffixed parameters, no suffix-less laundering sinks"},
      {"R14", "floating-point determinism: loop +=/-= reductions on "
              "double/float reachable from export-manifest entries must use "
              "parva::sorted_sum or carry allow(R14)"},
      {"R15", "iterator/reference invalidation: no use of a vector/deque "
              "reference/pointer/iterator after push_back/insert/erase/clear "
              "on the same container in the same scope"},
  };
  return kCatalog;
}

void index_file(const std::string& content, SymbolIndex& index) {
  const LexedFile lexed = lex(content);
  internal::scan_status_functions_into_index(lexed, index);
  internal::scan_unit_params_into_index(lexed, index);
}

SymbolIndex build_index(const std::vector<std::pair<std::string, std::string>>& files) {
  SymbolIndex index;
  for (const auto& [path, content] : files) {
    (void)path;  // the index is keyed by symbol name, not by file
    index_file(content, index);
  }
  return index;
}

std::vector<std::string> default_export_manifest() {
  // Translation units where container order reaches persisted bytes:
  // Prometheus/JSON/CSV exporters, the CSV table renderer, the
  // discrete-event simulator (CSV rows + determinism fingerprints), the
  // experiment harness (results/*.csv), and the metrics used in summaries.
  return {
      "src/telemetry/exporters.cpp",
      "src/telemetry/metrics_registry.cpp",
      "src/telemetry/event_log.cpp",
      "src/common/table.cpp",
      "src/serving/cluster_sim.cpp",
      "src/serving/shard_engine.cpp",
      // Generative-LLM paths: policy spellings reach parvactl reports, and
      // the token laws feed the determinism fingerprints byte-for-byte.
      "src/serving/llm_engine.cpp",
      "src/serving/sim_runner.cpp",
      "src/perfmodel/llm_model.cpp",
      "src/scenarios/experiment.cpp",
      "src/core/metrics.cpp",
      // Name-based tags: any file announcing itself as an export or
      // fingerprint path is held to R2 without a manifest edit.
      "export",
      "fingerprint",
  };
}

namespace internal {

void run_per_file_rules(const std::string& path, const std::string& content,
                        const LexedFile& lexed, const AuditConfig& config,
                        const SymbolIndex& index, std::vector<Finding>& findings) {
  if (rule_enabled(config, "R1")) check_r1(lexed, path, findings);
  if (rule_enabled(config, "R2")) check_r2(lexed, path, config, findings);
  if (rule_enabled(config, "R3")) check_r3(lexed, path, findings);
  if (rule_enabled(config, "R4")) check_r4(lexed, path, content, findings);
  if (rule_enabled(config, "R5")) check_r5(lexed, path, findings);
  if (rule_enabled(config, "R6")) internal::check_r6(lexed, path, index, findings);
  if (rule_enabled(config, "R7")) internal::check_r7(lexed, path, findings);
  if (rule_enabled(config, "R8")) internal::check_r8(lexed, path, findings);
  if (rule_enabled(config, "R13")) check_r13(lexed, path, index, findings);
  if (rule_enabled(config, "R15")) check_r15(lexed, path, findings);
}

}  // namespace internal

std::vector<Finding> audit_file(const std::string& path, const std::string& content,
                                const AuditConfig& config, const SymbolIndex& index) {
  const LexedFile lexed = lex(content);
  std::vector<Finding> findings;
  internal::run_per_file_rules(path, content, lexed, config, index, findings);
  std::sort(findings.begin(), findings.end());
  return findings;
}

std::vector<Finding> audit_file(const std::string& path, const std::string& content,
                                const AuditConfig& config) {
  return audit_files({{path, content}}, config);
}

std::vector<Finding> audit_files(const std::vector<std::pair<std::string, std::string>>& files,
                                 const AuditConfig& config) {
  // Phase 1: lex everything once (parallel under --jobs; slot-per-file so
  // order is input order regardless of scheduling), then build the
  // cross-file symbol index serially -- merge order is file order.
  std::vector<LexedFile> lexed(files.size());
  internal::for_each_index(files.size(), config.jobs, [&](std::size_t i) {
    lexed[i] = lex(files[i].second);
  });
  SymbolIndex index;
  for (std::size_t i = 0; i < lexed.size(); ++i) {
    internal::scan_status_functions_into_index(lexed[i], index);
    // Unit bindings cross TU boundaries only through headers; check_r13
    // re-scans each file locally for its own .cpp-level declarations.
    if (internal::is_header_path(files[i].first)) {
      internal::scan_unit_params_into_index(lexed[i], index);
    }
  }

  // Phase 2: per-file rules, each file into its own slot; concatenation in
  // file order plus the final sort keeps findings independent of --jobs.
  std::vector<std::vector<Finding>> per_file(files.size());
  internal::for_each_index(files.size(), config.jobs, [&](std::size_t i) {
    internal::run_per_file_rules(files[i].first, files[i].second, lexed[i], config,
                                 index, per_file[i]);
  });
  std::vector<Finding> findings;
  for (std::vector<Finding>& slot : per_file) {
    findings.insert(findings.end(), std::make_move_iterator(slot.begin()),
                    std::make_move_iterator(slot.end()));
  }

  // Phase 1.5 + 3/4: the call graph and the interprocedural rules, skipped
  // entirely when none of them is enabled.
  const bool graph_rules = rule_enabled(config, "R9") || rule_enabled(config, "R10") ||
                           rule_enabled(config, "R11") || rule_enabled(config, "R12") ||
                           rule_enabled(config, "R14");
  std::vector<RngTagDef> rng_tags;
  if (graph_rules) {
    std::vector<std::pair<std::string, const LexedFile*>> graph_input;
    internal::LexedByFile by_file;
    graph_input.reserve(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      graph_input.emplace_back(files[i].first, &lexed[i]);
      by_file[files[i].first] = &lexed[i];
    }
    const CallGraph graph = build_call_graph(graph_input);
    rng_tags = graph.rng_tags;
    if (rule_enabled(config, "R9")) internal::check_r9(graph, by_file, findings);
    if (rule_enabled(config, "R10")) internal::check_r10(graph, by_file, findings);
    if (rule_enabled(config, "R11")) internal::check_r11(graph, config, by_file, findings);
    if (rule_enabled(config, "R12")) internal::check_r12(graph, config, by_file, findings);
    if (rule_enabled(config, "R14")) internal::check_r14(graph, config, by_file, findings);
  }

  std::sort(findings.begin(), findings.end());
  attach_fixits(files, rng_tags, findings);
  return findings;
}

std::vector<Finding> audit_paths(const std::vector<std::string>& paths,
                                 const AuditConfig& config,
                                 std::vector<std::string>& errors) {
  return audit_paths(paths, config, errors, nullptr);
}

std::vector<Finding> audit_paths(const std::vector<std::string>& paths,
                                 const AuditConfig& config,
                                 std::vector<std::string>& errors,
                                 CacheStats* stats) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExtensions = {".cpp", ".cc", ".cxx", ".hpp",
                                                    ".h",   ".hh", ".hxx", ".ipp"};
  // Collect first, then sort: directory enumeration order is OS-dependent
  // and the audit's own output must be deterministic.
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end; !ec && it != end;
           it.increment(ec)) {
        if (it->is_regular_file() && kExtensions.count(it->path().extension().string()) != 0) {
          files.push_back(normalize(it->path().string()));
        }
      }
      if (ec) errors.push_back(path + ": " + ec.message());
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(normalize(path));
    } else {
      errors.push_back(path + ": not a file or directory");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Phase 1: read everything and build the cross-file symbol index, so a
  // [[nodiscard]] declaration in a header excuses the definition in its
  // .cpp and call sites see every status-returning function in the set.
  std::vector<std::pair<std::string, std::string>> contents;
  contents.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      errors.push_back(file + ": cannot open");
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    contents.emplace_back(file, buffer.str());
  }

  // The cache manifest is keyed per scan set (the sorted roots), so
  // lint.sh's distinct scans (src/, tools/, tree) never evict each other.
  if (!config.cache_dir.empty()) {
    std::vector<std::string> roots;
    roots.reserve(paths.size());
    for (const std::string& p : paths) roots.push_back(normalize(p));
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    std::string scan_key;
    for (const std::string& r : roots) {
      if (!scan_key.empty()) scan_key += ';';
      scan_key += r;
    }
    return internal::audit_files_cached(scan_key, contents, config, stats);
  }
  if (stats != nullptr) *stats = CacheStats{};

  // Phases 1, 1.5, 2 and 3/4 over the in-memory scan set.
  return audit_files(contents, config);
}

namespace internal {

void for_each_index(std::size_t n, std::size_t jobs,
                    const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  parva::ThreadPool pool(jobs);
  pool.parallel_for(n, fn);
}

}  // namespace internal

}  // namespace parva::audit
