// parva_audit: project-specific static analysis enforcing the two contracts
// every result in this reproduction rests on (DESIGN.md §4.3):
//
//   * determinism  -- simulation output must be byte-identical run-to-run,
//   * concurrency  -- shared state must be race-free under the ThreadPool.
//
// Rules:
//   R1  no banned nondeterminism sources (rand(), std::random_device,
//       time(nullptr), std::chrono::system_clock) outside src/common/rng.hpp
//   R2  no iteration over unordered_{map,set} in exporter/CSV/fingerprint
//       translation units (tagged by a path manifest)
//   R3  no mutable namespace-scope state in library code
//   R4  header hygiene: #pragma once present, no `using namespace` in headers
//   R5  every memory_order_relaxed carries a nearby justification comment
//
// Suppression: `// parva-audit: allow(R3)` on the offending line or the line
// directly above; `allow(all)` silences every rule for that line.
#pragma once

#include <string>
#include <vector>

namespace parva::audit {

struct Finding {
  std::string file;  ///< Path as given on the command line / to audit_file().
  int line = 0;
  std::string rule;  ///< "R1".."R5".
  std::string message;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    return rule < other.rule;
  }
  bool operator==(const Finding& other) const {
    return file == other.file && line == other.line && rule == other.rule;
  }
};

struct AuditConfig {
  /// R2 applies to files whose normalized path contains one of these
  /// entries. Defaults to default_export_manifest().
  std::vector<std::string> export_manifest;
  /// Rules to run; empty means all.
  std::vector<std::string> rules;
};

/// The built-in R2 manifest: translation units on the exporter / CSV /
/// determinism-fingerprint paths, where container iteration order reaches
/// persisted output byte-for-byte.
std::vector<std::string> default_export_manifest();

/// Audits one in-memory file. `path` is used for reporting, extension
/// dispatch (R4 runs on headers) and manifest matching (R2).
std::vector<Finding> audit_file(const std::string& path, const std::string& content,
                                const AuditConfig& config);

/// Audits files and directories (recursing into known C++ extensions).
/// Findings come back sorted by (file, line, rule) regardless of argument or
/// directory enumeration order -- the audit obeys the determinism contract
/// it enforces. Unreadable paths are reported via `errors`.
std::vector<Finding> audit_paths(const std::vector<std::string>& paths,
                                 const AuditConfig& config,
                                 std::vector<std::string>& errors);

/// `file:line: [R#] message` -- one line per finding.
std::string format_findings(const std::vector<Finding>& findings);

}  // namespace parva::audit
