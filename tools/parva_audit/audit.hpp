// parva_audit: project-specific static analysis enforcing the contracts
// every result in this reproduction rests on (DESIGN.md §4.3, §4.4):
//
//   * determinism  -- simulation output must be byte-identical run-to-run,
//   * concurrency  -- shared state must be race-free under the ThreadPool,
//   * status flow  -- fallible MIG control-plane calls must never drop
//                     their result (a silently ignored NvmlReturn corrupts
//                     the placement state the Segment Allocator reasons on),
//   * geometry     -- all A100 slot arithmetic must come from the proved
//                     constexpr tables in src/gpu/mig_geometry.hpp.
//
// Rules:
//   R1  no banned nondeterminism sources (rand(), std::random_device,
//       time(nullptr), std::chrono::system_clock) outside src/common/rng.hpp
//   R2  no iteration over unordered_{map,set} in exporter/CSV/fingerprint
//       translation units (tagged by a path manifest)
//   R3  no mutable namespace-scope state in library code
//   R4  header hygiene: #pragma once present, no `using namespace` in headers
//   R5  every memory_order_relaxed carries a nearby justification comment
//   R6  status-returning functions (NvmlReturn/ErrorCode/Status/Result) are
//       declared [[nodiscard]] and no call site discards the result
//       (symbol-aware: call sites are checked against a cross-file index)
//   R7  every mutable data member of a mutex-owning class carries a
//       PARVA_GUARDED_BY(lock) annotation (src/common/thread_annotations.hpp)
//   R8  MIG geometry is table-driven: src/gpu/mig_geometry.hpp must keep its
//       constexpr kProfileTable/kPlacementTable + static_assert proofs, and
//       no other file may hardcode slot tables or shadow the geometry API
//   R9  the lock-acquisition order graph (MutexLock/SharedMutexLock scopes,
//       including one level through a call) is acyclic; any cycle is a
//       potential deadlock, reported with its witness path
//       (call-graph-aware; see callgraph.hpp)
//   R10 every Rng::stream(seed, TAG, ...) call passes a named enumerator of
//       the RngStreamTag registry (src/common/rng.hpp) and registry values
//       are pairwise distinct; literal tags, unregistered constants and
//       duplicate values are findings
//   R11 no blocking operation (mutex acquisition, ThreadPool submit/wait,
//       iostream/file I/O, opt-in std::{map,set} inserts) is transitively
//       reachable from a hot-path root (shard window advance, event-engine
//       push/pop, arrival-tournament replay; see --hotpath-roots)
//   R12 R2 upgraded to reachability: unordered-container iteration anywhere
//       transitively reachable from a function defined in an export/
//       fingerprint manifest file is flagged, closing the helper-in-a-
//       non-manifest-file hole
//   R13 unit discipline: identifiers with quantity suffixes (_ms, _s, _us,
//       _bytes, _gib, _tokens, _per_s, ...) form inferred unit classes;
//       mixed-unit arithmetic (`x_ms + y_s`), bare numeric literals passed
//       for unit-suffixed parameters, and suffix-less assignment sinks that
//       launder a unit away are findings (dataflow.hpp)
//   R14 floating-point determinism: a double/float `+=`/`-=` inside a loop
//       in any function reachable from an export-manifest entry must go
//       through the canonical-order helper parva::sorted_sum or carry
//       allow(R14) -- summation order is observable in exported bytes
//   R15 iterator/reference invalidation: a reference/pointer/iterator
//       obtained from a vector/deque must not be used after a
//       push_back/insert/erase/clear/... on the same container in the same
//       scope; rebinding (`it = v.erase(it)`) revalidates
//
// Suppression: `// parva-audit: allow(R3)` on the offending line or the line
// directly above; `allow(all)` silences every rule for that line.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace parva::audit {

/// One machine-applicable replacement of a fix-it (fixits.hpp): replace
/// `length` bytes starting at 1-based (line, column) with `text`. Inserts
/// have length 0.
struct FixEdit {
  int line = 0;
  int column = 0;  ///< 1-based byte offset within the line
  int length = 0;  ///< bytes replaced
  std::string text;
};

struct Finding {
  std::string file;  ///< Path as given on the command line / to audit_file().
  int line = 0;
  std::string rule;  ///< "R1".."R15".
  std::string message;
  /// Optional machine-applicable fix (fixits.hpp): a human description plus
  /// byte-exact edits. Emitted into SARIF `fixes` and applied by `--fix`.
  /// Excluded from ordering/equality -- fixes are derived, not identity.
  std::string fix_description;
  std::vector<FixEdit> fix_edits;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    // Total order: two findings on one line from one rule (distinct
    // messages) must sort identically on cold and warm cache runs.
    return message < other.message;
  }
  bool operator==(const Finding& other) const {
    return file == other.file && line == other.line && rule == other.rule;
  }
};

struct AuditConfig {
  /// R2/R12 apply to files whose normalized path contains one of these
  /// entries. Defaults to default_export_manifest().
  std::vector<std::string> export_manifest;
  /// Rules to run; empty means all.
  std::vector<std::string> rules;
  /// R11 reachability roots as qualified function names ("Shard::advance");
  /// empty means default_hotpath_roots().
  std::vector<std::string> hotpath_roots;
  /// R11: also flag node-based std::{map,set} insert/emplace on the hot
  /// path (allocation per insert). Off by default.
  bool r11_allocations = false;
  /// Incremental-cache directory (cache.hpp). Empty disables the cache.
  std::string cache_dir;
  /// Worker threads for lexing + per-file rules (common/thread_pool). 1 =
  /// serial (default); 0 = hardware concurrency. Finding order is
  /// independent of the job count.
  std::size_t jobs = 1;
};

/// One catalog row per rule; drives --list-rules and the SARIF rules array.
struct RuleInfo {
  const char* id;
  const char* summary;
};
const std::vector<RuleInfo>& rule_catalog();

/// Phase-1 output: the cross-file declaration index the symbol-aware rules
/// (R6) consult in phase 2. Built once over every file in the scan set so a
/// definition in a .cpp is excused by the [[nodiscard]] declaration in its
/// header, and call sites anywhere see every status-returning function.
struct SymbolIndex {
  /// Function name -> true when at least one declaration of that name
  /// carries [[nodiscard]]. Every key returns a status-like type
  /// (NvmlReturn / ErrorCode / Status / Result<...>).
  std::map<std::string, bool> status_functions;
  /// R13: function name -> parameter index -> inferred unit of the declared
  /// parameter name ("" when overloads disagree; such slots never flag).
  std::map<std::string, std::map<int, std::string>> unit_params;
};

/// Phase 1: index one in-memory file into `index` (merges with prior files).
void index_file(const std::string& content, SymbolIndex& index);

/// Phase 1 over a whole scan set of (path, content) pairs.
SymbolIndex build_index(const std::vector<std::pair<std::string, std::string>>& files);

/// The built-in R2/R12 manifest: translation units on the exporter / CSV /
/// determinism-fingerprint paths, where container iteration order reaches
/// persisted output byte-for-byte.
std::vector<std::string> default_export_manifest();

/// The built-in R11 roots: the sharded DES's hot loops (window advance,
/// event-engine heap operations, arrival-tournament replay).
std::vector<std::string> default_hotpath_roots();

/// Audits one in-memory file against a pre-built cross-file index. `path`
/// is used for reporting, extension dispatch (R4 runs on headers), manifest
/// matching (R2) and geometry-file dispatch (R8). Runs the per-file rules
/// R1-R8 only; the interprocedural rules need the whole scan set (use
/// audit_files / audit_paths).
std::vector<Finding> audit_file(const std::string& path, const std::string& content,
                                const AuditConfig& config, const SymbolIndex& index);

/// Single-file convenience: all three phases over just this file --
/// per-file rules plus the call-graph rules R9-R12 restricted to what one
/// translation unit can see.
std::vector<Finding> audit_file(const std::string& path, const std::string& content,
                                const AuditConfig& config);

/// The full three-phase pipeline over an in-memory scan set: phase 1
/// builds the cross-file SymbolIndex, phase 1.5 the call graph, phase 2
/// runs R1-R8 per file, phase 3 runs R9-R12 over the graph. Findings come
/// back sorted by (file, line, rule).
std::vector<Finding> audit_files(const std::vector<std::pair<std::string, std::string>>& files,
                                 const AuditConfig& config);

/// Audits files and directories (recursing into known C++ extensions).
/// Runs both phases: the index spans every file in the scan set. Findings
/// come back sorted by (file, line, rule) regardless of argument or
/// directory enumeration order -- the audit obeys the determinism contract
/// it enforces. Unreadable paths are reported via `errors`.
std::vector<Finding> audit_paths(const std::vector<std::string>& paths,
                                 const AuditConfig& config,
                                 std::vector<std::string>& errors);

/// What the incremental cache (cache.hpp) did for one audit_paths run.
struct CacheStats {
  bool enabled = false;   ///< config.cache_dir was set and usable
  bool cold = false;      ///< no manifest, config/context change, or IO error
  std::size_t analyzed = 0;  ///< files lexed + per-file-ruled this run
  std::size_t reused = 0;    ///< files served from the cache
};

/// audit_paths with cache telemetry: when config.cache_dir is set, per-file
/// results are keyed by content hash and a cross-file context hash so an
/// unchanged tree re-analyzes nothing yet produces byte-identical findings.
std::vector<Finding> audit_paths(const std::vector<std::string>& paths,
                                 const AuditConfig& config,
                                 std::vector<std::string>& errors,
                                 CacheStats* stats);

/// `file:line: [R#] message` -- one line per finding.
std::string format_findings(const std::vector<Finding>& findings);

/// Machine-readable formats for CI. JSON is an array of
/// {"file","line","rule","message"} objects; SARIF is a minimal but valid
/// SARIF 2.1.0 log (one run, rule metadata from rule_catalog()).
std::string format_findings_json(const std::vector<Finding>& findings);
std::string format_findings_sarif(const std::vector<Finding>& findings);

/// Baseline support: CI diffs findings against an accepted set instead of
/// hard-failing on legacy code. A baseline entry is `file|rule|message`
/// (line numbers are deliberately excluded so unrelated edits above a
/// finding do not churn the baseline); the file is newline-separated with
/// '#' comments, and entries form a multiset so N accepted occurrences
/// suppress at most N findings.
std::string baseline_key(const Finding& finding);
std::multiset<std::string> parse_baseline(const std::string& content);
std::string format_baseline(const std::vector<Finding>& findings);

struct BaselineResult {
  std::vector<Finding> fresh;     ///< Findings not covered by the baseline.
  std::size_t suppressed = 0;     ///< Findings matched (and consumed) by it.
  std::size_t stale = 0;          ///< Baseline entries no finding matched.
};
BaselineResult apply_baseline(const std::vector<Finding>& findings,
                              std::multiset<std::string> baseline);

}  // namespace parva::audit
