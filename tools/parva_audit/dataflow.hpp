// Phase-4 of parva_audit: intraprocedural dataflow rules (DESIGN.md §4.9).
//
//   R13 unit discipline -- identifiers carrying a quantity suffix (_ms, _s,
//       _us, _bytes, _gib, _tokens, ...) form inferred unit classes. Flagged:
//       mixed-unit arithmetic/comparison (`x_ms + y_s`), bare numeric
//       literals passed to unit-carrying parameters of indexed functions,
//       and declarations that launder a unit into a suffix-less arithmetic
//       variable (`double t = window_ms;`).
//   R14 floating-point determinism -- a double/float `+=`/`-=` inside a loop
//       in any function reachable from an export-manifest entry (the R12
//       reachability machinery) makes summation order observable in exported
//       bytes; such reductions must go through the canonical-order helper
//       `sorted_sum` (the bit-pattern-sort idiom of MetricsRegistry::scrape)
//       or carry an allow(R14) justification.
//   R15 iterator/reference invalidation -- a reference, pointer or iterator
//       obtained from a vector/deque must not be used after a push_back/
//       emplace_back/insert/erase/clear/resize/... on the same container in
//       the same scope. Rebinding (`it = v.erase(it)`) revalidates.
//
// Like every other phase this is lexical: no types, no aliasing, no
// control-flow ordering beyond token order. The soundness gaps (documented
// in DESIGN.md §4.9) are: unit inference sees suffixes, not semantics;
// R14 only tracks names declared double/float in the same file; R15 does
// not model loop back-edges or mutation through aliases.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "audit.hpp"
#include "callgraph.hpp"
#include "lexer.hpp"

namespace parva::audit {

/// The unit inferred from an identifier's quantity suffix, or "" when the
/// name carries none. One trailing '_' (the data-member convention) is
/// stripped first; `_per_<unit>` suffixes form distinct rate units so
/// `decode_tok_per_s` (a rate) never collides with `elapsed_s` (a time).
std::string unit_suffix(const std::string& name);

/// The R14 detector: every `+=` / `-=` on a name declared double/float in
/// this file, inside a for/while/do loop. Shared with the call-graph
/// builder, which attributes each hit to its enclosing function.
std::vector<FpAccumulation> collect_fp_accumulations(const LexedFile& lexed);

namespace internal {

/// Phase-1 contribution: records `name -> param index -> unit` for every
/// function declaration whose parameter names carry a unit suffix.
/// Conflicting declarations (same name+index, different unit) poison the
/// entry with "" so overload ambiguity never produces a finding.
void scan_unit_params_into_index(const LexedFile& lexed, SymbolIndex& index);

void check_r13(const LexedFile& lexed, const std::string& path,
               const SymbolIndex& index, std::vector<Finding>& findings);
void check_r14(const CallGraph& graph, const AuditConfig& config,
               const std::map<std::string, const LexedFile*>& lexed,
               std::vector<Finding>& findings);
void check_r15(const LexedFile& lexed, const std::string& path,
               std::vector<Finding>& findings);

}  // namespace internal

}  // namespace parva::audit
