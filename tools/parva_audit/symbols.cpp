// Phase-1 symbol indexing and the symbol-aware rules R6-R8.
//
// Phase 1 walks every file in the scan set and records each function whose
// return type is status-like (NvmlReturn / ErrorCode / Status / Result<...>)
// together with whether any declaration of it carries [[nodiscard]]. Phase 2
// then checks each file against that index: declarations must be
// [[nodiscard]] (a definition is excused when its header declaration is),
// and no expression statement may drop the result of an indexed call.
//
// Like the rest of parva_audit this is lexical, not a front end: no name
// lookup and no overload resolution. The index is keyed by bare function
// name, which is precise enough for this codebase (status-returning names
// are not reused for non-status functions) and keeps phase 1 a single
// token-stream pass per file.
#include <cctype>
#include <initializer_list>
#include <set>
#include <string>
#include <vector>

#include "internal.hpp"

namespace parva::audit::internal {
namespace {

const std::set<std::string>& status_types() {
  static const std::set<std::string> kTypes = {"NvmlReturn", "ErrorCode", "Status",
                                               "Result"};
  return kTypes;
}

bool is_decl_specifier(const Token& t) {
  static const std::set<std::string> kSpecifiers = {
      "static", "virtual", "inline",   "constexpr", "consteval",
      "extern", "friend",  "explicit", "mutable"};
  return t.kind == Token::Kind::kIdent && kSpecifiers.count(t.text) != 0;
}

/// One status-returning function declarator found in a file.
struct StatusFunction {
  std::string name;
  int line = 0;
  bool nodiscard = false;    ///< declarator carries a [[nodiscard]] attribute
  bool has_body = false;     ///< definition (brace body follows)
  bool qualified = false;    ///< out-of-class declarator: Type Class::name(...)
};

/// Walks backwards from `type_begin` (the index of the return-type token)
/// over decl-specifiers and attribute blocks. Returns true when what
/// precedes is a declaration boundary (';', '{', '}', ':', '>', or file
/// start) rather than an expression context, and reports whether a
/// [[nodiscard]] attribute was crossed on the way.
bool in_decl_context(const std::vector<Token>& toks, std::size_t type_begin,
                     bool* saw_nodiscard) {
  *saw_nodiscard = false;
  std::size_t i = type_begin;
  while (i > 0) {
    const Token& prev = toks[i - 1];
    if (is_decl_specifier(prev)) {
      --i;
      continue;
    }
    if (i >= 2 && is_punct(prev, "]") && is_punct(toks[i - 2], "]")) {
      // Attribute block [[...]]: scan back to the opening '[' '['.
      std::size_t j = i - 2;  // index of the inner ']'
      bool opened = false;
      while (j > 0) {
        if (j >= 2 && is_punct(toks[j - 1], "[") && is_punct(toks[j - 2], "[")) {
          opened = true;
          j -= 2;
          break;
        }
        if (toks[j - 1].kind == Token::Kind::kIdent && toks[j - 1].text == "nodiscard") {
          *saw_nodiscard = true;
        }
        --j;
      }
      if (!opened) return false;  // stray brackets (array subscript): not a decl
      i = j;
      continue;
    }
    return is_punct(prev, ";") || is_punct(prev, "{") || is_punct(prev, "}") ||
           is_punct(prev, ":") || is_punct(prev, ">");
  }
  return true;  // file start
}

/// Scans a token stream for status-returning function declarators.
std::vector<StatusFunction> scan_status_functions(const LexedFile& lexed) {
  const auto& toks = lexed.tokens;
  const std::size_t n = toks.size();
  std::vector<StatusFunction> out;

  for (std::size_t i = 0; i < n; ++i) {
    if (toks[i].kind != Token::Kind::kIdent || status_types().count(toks[i].text) == 0) {
      continue;
    }
    // Rewind over a namespace qualifier chain (gpu::NvmlReturn lexes as
    // `gpu : : NvmlReturn`) so the decl-context test sees the chain start.
    std::size_t type_begin = i;
    while (type_begin >= 3 && is_punct(toks[type_begin - 1], ":") &&
           is_punct(toks[type_begin - 2], ":") &&
           toks[type_begin - 3].kind == Token::Kind::kIdent) {
      type_begin -= 3;
    }
    bool saw_nodiscard = false;
    if (!in_decl_context(toks, type_begin, &saw_nodiscard)) continue;

    std::size_t j = i + 1;
    if (toks[i].text == "Result") {
      // Result must carry template arguments to be a return type here.
      if (j >= n || !is_punct(toks[j], "<")) continue;
      int depth = 1;
      for (++j; j < n && depth > 0; ++j) {
        if (is_punct(toks[j], "<")) ++depth;
        if (is_punct(toks[j], ">")) --depth;
      }
      if (depth > 0) continue;
    }
    while (j < n && (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
                     is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j >= n || toks[j].kind != Token::Kind::kIdent) continue;

    // Declarator name, possibly qualified: ident (:: ident)*. The finding
    // anchors at the return type's line (where [[nodiscard]] belongs).
    std::string name = toks[j].text;
    const int decl_line = toks[type_begin].line;
    bool qualified = false;
    ++j;
    bool chain_ok = true;
    while (j + 1 < n && is_punct(toks[j], ":") && is_punct(toks[j + 1], ":")) {
      j += 2;
      if (j >= n || toks[j].kind != Token::Kind::kIdent) {
        chain_ok = false;
        break;
      }
      name = toks[j].text;
      qualified = true;
      ++j;
    }
    if (!chain_ok) continue;
    if (name == toks[i].text) continue;  // out-of-class constructor: Status::Status
    if (j >= n || !is_punct(toks[j], "(")) continue;  // variable, not a function

    // Skip the parameter list.
    int pd = 1;
    for (++j; j < n && pd > 0; ++j) {
      if (is_punct(toks[j], "(")) ++pd;
      if (is_punct(toks[j], ")")) --pd;
    }
    if (pd > 0) continue;
    // Post-qualifiers: const, noexcept(...), override, final, trailing attrs.
    while (j < n) {
      if (is_ident(toks[j], "const") || is_ident(toks[j], "override") ||
          is_ident(toks[j], "final")) {
        ++j;
      } else if (is_ident(toks[j], "noexcept")) {
        ++j;
        if (j < n && is_punct(toks[j], "(")) {
          int d = 1;
          for (++j; j < n && d > 0; ++j) {
            if (is_punct(toks[j], "(")) ++d;
            if (is_punct(toks[j], ")")) --d;
          }
        }
      } else {
        break;
      }
    }
    bool has_body = false;
    bool is_decl = false;
    if (j < n) {
      if (is_punct(toks[j], "{")) {
        has_body = true;
      } else if (is_punct(toks[j], ";") || is_punct(toks[j], "=")) {
        is_decl = true;  // pure declaration, or `= default` / `= delete`
      }
    }
    if (!has_body && !is_decl) continue;
    out.push_back({name, decl_line, saw_nodiscard, has_body, qualified});
  }
  return out;
}

// ---------------------------------------------------------------------------
// R6 call-site scan: expression statements that drop an indexed call's
// result, and status temporaries constructed and discarded.
// ---------------------------------------------------------------------------

/// Validates a statement prefix as a pure member/scope access chain ending
/// in a separator right before the call name: `deployer_->nvml().`,
/// `gpu::`, empty, or a leading `(void)` cast (which is tracked so the
/// finding can demand an allow(R6) justification). Anything else -- `return`,
/// `if`, an assignment, a declaration (`Status teardown(...)`) -- means the
/// result is consumed or this is not a call.
bool prefix_is_discard_chain(const std::vector<Token>& toks, std::size_t begin,
                             std::size_t end, bool* void_cast) {
  std::size_t idx = begin;
  *void_cast = false;
  // Strip leading control-flow constructs so `if (lost) kill(x);` is seen.
  for (;;) {
    if (idx < end && toks[idx].kind == Token::Kind::kIdent &&
        (toks[idx].text == "else" || toks[idx].text == "do")) {
      ++idx;
      continue;
    }
    if (idx < end && toks[idx].kind == Token::Kind::kIdent &&
        (toks[idx].text == "if" || toks[idx].text == "while" ||
         toks[idx].text == "for" || toks[idx].text == "switch")) {
      std::size_t j = idx + 1;
      // `if constexpr (...)`
      if (j < end && is_ident(toks[j], "constexpr")) ++j;
      if (j < end && is_punct(toks[j], "(")) {
        int d = 1;
        for (++j; j < end && d > 0; ++j) {
          if (is_punct(toks[j], "(")) ++d;
          if (is_punct(toks[j], ")")) --d;
        }
        if (d > 0) return false;
        idx = j;
        continue;
      }
      return false;
    }
    break;
  }
  if (idx + 2 < end && is_punct(toks[idx], "(") && is_ident(toks[idx + 1], "void") &&
      is_punct(toks[idx + 2], ")")) {
    *void_cast = true;
    idx += 3;
  }
  enum class State { kExpectIdent, kAfterIdent };
  State state = State::kExpectIdent;
  while (idx < end) {
    const Token& t = toks[idx];
    if (state == State::kExpectIdent) {
      if (t.kind != Token::Kind::kIdent) return false;
      state = State::kAfterIdent;
      ++idx;
      continue;
    }
    // kAfterIdent: a separator, or an intermediate call's argument list.
    if (is_punct(t, ".")) {
      state = State::kExpectIdent;
      ++idx;
    } else if (idx + 1 < end && is_punct(t, "-") && is_punct(toks[idx + 1], ">")) {
      state = State::kExpectIdent;
      idx += 2;
    } else if (idx + 1 < end && is_punct(t, ":") && is_punct(toks[idx + 1], ":")) {
      state = State::kExpectIdent;
      idx += 2;
    } else if (is_punct(t, "(")) {
      int d = 1;
      for (++idx; idx < end && d > 0; ++idx) {
        if (is_punct(toks[idx], "(")) ++d;
        if (is_punct(toks[idx], ")")) --d;
      }
      if (d > 0) return false;
      // Still kAfterIdent: `.nvml()` is followed by another separator.
    } else {
      return false;
    }
  }
  // The prefix must end mid-chain (after a separator) or be empty: the call
  // name itself completes the chain.
  return state == State::kExpectIdent;
}

void check_call_discards(const LexedFile& lexed, const std::string& path,
                         const SymbolIndex& index, std::vector<Finding>& findings) {
  const auto& toks = lexed.tokens;
  const std::size_t n = toks.size();
  std::size_t stmt_start = 0;  // index AFTER the last boundary token

  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) {
      stmt_start = i + 1;
      continue;
    }
    if (t.kind != Token::Kind::kIdent || i + 1 >= n || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const bool is_indexed_call = index.status_functions.count(t.text) != 0;
    const bool is_status_temporary = status_types().count(t.text) != 0;
    if (!is_indexed_call && !is_status_temporary) continue;

    bool void_cast = false;
    if (!prefix_is_discard_chain(toks, stmt_start, i, &void_cast)) continue;
    // Match the call's argument list.
    std::size_t j = i + 1;
    int d = 1;
    for (++j; j < n && d > 0; ++j) {
      if (is_punct(toks[j], "(")) ++d;
      if (is_punct(toks[j], ")")) --d;
    }
    if (d > 0 || j >= n || !is_punct(toks[j], ";")) continue;  // result consumed

    if (is_indexed_call) {
      std::string message =
          void_cast
              ? "call to '" + t.text + "' discards its status result via (void) "
                "without justification: add `// parva-audit: allow(R6) <why>` "
                "if the discard is deliberate"
              : "call to '" + t.text + "' discards its status result: check it, "
                "log via common/logging and propagate or count the failure";
      add_finding(findings, lexed, path, t.line, "R6", std::move(message));
    } else {
      add_finding(findings, lexed, path, t.line, "R6",
                  "status temporary '" + t.text + "(...)' constructed and "
                  "immediately discarded: the error it carries is lost");
    }
  }
}

// ---------------------------------------------------------------------------
// R7: mutex-owning classes must annotate their mutable data members.
// ---------------------------------------------------------------------------

bool token_in(const std::vector<Token>& stmt, std::initializer_list<const char*> names) {
  for (const Token& t : stmt) {
    if (t.kind != Token::Kind::kIdent) continue;
    for (const char* name : names) {
      if (t.text == name) return true;
    }
  }
  return false;
}

bool is_lock_type(const std::vector<Token>& stmt) {
  return token_in(stmt, {"mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
                         "recursive_timed_mutex", "shared_timed_mutex", "Mutex",
                         "SharedMutex"});
}

bool is_exempt_member_type(const std::vector<Token>& stmt) {
  // Self-synchronizing or synchronization-primitive members need no guard
  // annotation; const members are immutable after construction.
  return token_in(stmt, {"atomic", "atomic_flag", "condition_variable",
                         "condition_variable_any", "once_flag", "const", "constexpr"});
}

/// Last identifier before the initializer ('=', '@body') or subscript.
const Token* member_declarator(const std::vector<Token>& stmt) {
  const Token* declarator = nullptr;
  for (const Token& t : stmt) {
    if (is_punct(t, "=") || t.text == "@body" || is_punct(t, "[")) break;
    if (t.kind == Token::Kind::kIdent) declarator = &t;
  }
  return declarator;
}

}  // namespace

void check_r7(const LexedFile& lexed, const std::string& path,
              std::vector<Finding>& findings) {
  enum class ScopeKind { kNamespace, kClass, kFunction, kOther };
  struct Member {
    std::string name;
    int line = 0;
    bool annotated = false;
    std::string guard;  ///< PARVA_GUARDED_BY argument, when annotated
  };
  struct Scope {
    ScopeKind kind = ScopeKind::kOther;
    std::string class_name;
    std::vector<Member> members;
    std::vector<std::string> lock_members;
    std::vector<Token> saved_stmt;
    bool continues_stmt = false;
  };
  const Token kBodyMarker{Token::Kind::kPunct, "@body", 0};

  auto parse_member = [&](Scope& scope, std::vector<Token> stmt) {
    // Strip leading access specifiers: `public : ...`.
    while (stmt.size() >= 2 && stmt[0].kind == Token::Kind::kIdent &&
           (stmt[0].text == "public" || stmt[0].text == "private" ||
            stmt[0].text == "protected") &&
           is_punct(stmt[1], ":")) {
      stmt.erase(stmt.begin(), stmt.begin() + 2);
    }
    if (stmt.size() < 2) return;
    if (token_in(stmt, {"using", "typedef", "friend", "static_assert", "template",
                        "operator", "enum", "class", "struct", "union", "static"})) {
      return;
    }
    // Function vs data member: a '(' at angle-depth 0 before any '='.
    int angle = 0;
    std::size_t paren = stmt.size();
    std::size_t assign = stmt.size();
    bool has_body = false;
    for (std::size_t i = 0; i < stmt.size(); ++i) {
      if (is_punct(stmt[i], "<")) ++angle;
      if (is_punct(stmt[i], ">") && angle > 0) --angle;
      if (angle != 0) continue;
      if (paren == stmt.size() && is_punct(stmt[i], "(")) paren = i;
      if (assign == stmt.size() && is_punct(stmt[i], "=")) assign = i;
      if (stmt[i].text == "@body") has_body = true;
    }
    // PARVA_GUARDED_BY(...) contributes a paren; detect the annotation first.
    bool annotated = false;
    std::string guard;
    for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
      if (stmt[i].kind == Token::Kind::kIdent &&
          (stmt[i].text == "PARVA_GUARDED_BY" || stmt[i].text == "PARVA_PT_GUARDED_BY") &&
          is_punct(stmt[i + 1], "(")) {
        annotated = true;
        for (std::size_t k = i + 2; k < stmt.size() && !is_punct(stmt[k], ")"); ++k) {
          guard += stmt[k].text;
        }
      }
    }
    if (!annotated && paren < assign && !has_body) return;  // member function decl
    if (is_lock_type(stmt)) {
      if (const Token* decl = member_declarator(stmt)) {
        scope.lock_members.push_back(decl->text);
      }
      return;
    }
    if (is_exempt_member_type(stmt)) return;
    const Token* decl = member_declarator(stmt);
    if (decl == nullptr) return;
    scope.members.push_back({decl->text, decl->line, annotated, guard});
  };

  auto evaluate_class = [&](const Scope& scope) {
    if (scope.lock_members.empty()) return;
    for (const Member& m : scope.members) {
      if (!m.annotated) {
        add_finding(findings, lexed, path, m.line, "R7",
                    "mutable member '" + m.name + "' of mutex-owning class '" +
                    scope.class_name + "' lacks PARVA_GUARDED_BY(" +
                    scope.lock_members.front() + ") (src/common/thread_annotations.hpp); "
                    "make it const, atomic, or annotate the lock that guards it");
        continue;
      }
      bool known = false;
      for (const std::string& lock : scope.lock_members) {
        if (m.guard.find(lock) != std::string::npos) known = true;
      }
      if (!known) {
        add_finding(findings, lexed, path, m.line, "R7",
                    "PARVA_GUARDED_BY(" + m.guard + ") on member '" + m.name +
                    "' names no mutex member of class '" + scope.class_name + "'");
      }
    }
  };

  std::vector<Scope> stack;
  std::vector<Token> stmt;
  auto in_class = [&] { return !stack.empty() && stack.back().kind == ScopeKind::kClass; };

  for (const Token& t : lexed.tokens) {
    if (is_punct(t, "{")) {
      Scope scope;
      bool has_parens = false;
      int paren_depth = 0;
      std::size_t depth0_assign = stmt.size();
      for (std::size_t i = 0; i < stmt.size(); ++i) {
        if (is_punct(stmt[i], "(")) {
          ++paren_depth;
          has_parens = true;
        } else if (is_punct(stmt[i], ")")) {
          --paren_depth;
        } else if (paren_depth == 0 && depth0_assign == stmt.size() &&
                   is_punct(stmt[i], "=")) {
          depth0_assign = i;
        }
      }
      if (token_in(stmt, {"namespace"})) {
        scope.kind = ScopeKind::kNamespace;
      } else if (token_in(stmt, {"class", "struct", "union"}) &&
                 !token_in(stmt, {"enum"})) {
        scope.kind = ScopeKind::kClass;
        scope.continues_stmt = true;
        // Class name: last identifier before a base-clause ':' (skipping
        // 'final'), or simply the last identifier of the head.
        for (std::size_t i = 0; i < stmt.size(); ++i) {
          if (is_punct(stmt[i], ":") &&
              !(i > 0 && is_punct(stmt[i - 1], ":")) &&
              !(i + 1 < stmt.size() && is_punct(stmt[i + 1], ":"))) {
            break;
          }
          if (stmt[i].kind == Token::Kind::kIdent && stmt[i].text != "final" &&
              stmt[i].text != "class" && stmt[i].text != "struct" &&
              stmt[i].text != "union" && stmt[i].text != "alignas") {
            scope.class_name = stmt[i].text;
          }
        }
      } else if (stmt.empty()) {
        scope.kind = ScopeKind::kOther;
      } else if (depth0_assign != stmt.size()) {
        scope.kind = ScopeKind::kOther;
        scope.continues_stmt = true;
      } else if (has_parens || is_punct(stmt.back(), ")")) {
        scope.kind = ScopeKind::kFunction;
      } else {
        scope.kind = ScopeKind::kOther;
        scope.continues_stmt = true;  // direct brace init: Type name{...}
      }
      if (scope.continues_stmt) scope.saved_stmt = stmt;
      stack.push_back(std::move(scope));
      stmt.clear();
    } else if (is_punct(t, "}")) {
      if (!stack.empty()) {
        Scope top = std::move(stack.back());
        stack.pop_back();
        stmt.clear();
        if (top.kind == ScopeKind::kClass) evaluate_class(top);
        if (top.continues_stmt) {
          stmt = std::move(top.saved_stmt);
          stmt.push_back(kBodyMarker);
        }
      }
    } else if (is_punct(t, ";")) {
      if (in_class()) parse_member(stack.back(), stmt);
      stmt.clear();
    } else {
      stmt.push_back(t);
    }
  }
}

// ---------------------------------------------------------------------------
// R8: MIG geometry is table-driven.
// ---------------------------------------------------------------------------

namespace {

bool name_suggests_geometry(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lower.find("slot") != std::string::npos ||
         lower.find("start") != std::string::npos ||
         lower.find("placement") != std::string::npos;
}

}  // namespace

void check_r8(const LexedFile& lexed, const std::string& path,
              std::vector<Finding>& findings) {
  const std::string p = normalize(path);
  const auto& toks = lexed.tokens;

  if (ends_with(p, "gpu/mig_geometry.hpp")) {
    // The geometry header itself must keep the proved constexpr tables.
    bool has_profile = false, has_placement = false, has_assert = false,
         has_constexpr = false;
    for (const Token& t : toks) {
      if (t.kind != Token::Kind::kIdent) continue;
      if (t.text == "kProfileTable") has_profile = true;
      if (t.text == "kPlacementTable") has_placement = true;
      if (t.text == "static_assert") has_assert = true;
      if (t.text == "constexpr") has_constexpr = true;
    }
    if (!has_profile || !has_placement || !has_assert || !has_constexpr) {
      add_finding(findings, lexed, path, 1, "R8",
                  "mig_geometry.hpp must define constexpr kProfileTable and "
                  "kPlacementTable with static_assert proofs of the Fig. 1 "
                  "invariants (GPC sums <= 7, memory slices <= 8, start-slot "
                  "legality, no intra-profile overlap)");
    }
    return;
  }
  if (ends_with(p, "gpu/mig_geometry.cpp") || ends_with(p, "gpu/arch.hpp")) {
    return;  // the geometry implementation itself
  }

  // (a) Hardcoded slot tables: a declarator whose name mentions
  // slot/start/placement, brace-initialized from >= 2 ascending integer
  // literals all within the A100 slot range 0..6.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || !name_suggests_geometry(t.text)) continue;
    // Declarator context: preceded by a type token, not an expression.
    if (i == 0) continue;
    const Token& prev = toks[i - 1];
    const bool decl_context =
        prev.kind == Token::Kind::kIdent || is_punct(prev, ">");
    if (!decl_context) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "[")) {  // array declarator
      for (++j; j < toks.size() && !is_punct(toks[j], "]"); ++j) {
      }
      if (j < toks.size()) ++j;
    }
    if (j < toks.size() && is_punct(toks[j], "=")) ++j;
    if (j >= toks.size() || !is_punct(toks[j], "{")) continue;
    int depth = 1;
    std::vector<long> values;
    bool only_numbers = true;
    for (++j; j < toks.size() && depth > 0; ++j) {
      if (is_punct(toks[j], "{")) ++depth;
      else if (is_punct(toks[j], "}")) --depth;
      else if (toks[j].kind == Token::Kind::kNumber) values.push_back(std::stol(toks[j].text));
      else if (!is_punct(toks[j], ",")) only_numbers = false;
    }
    if (!only_numbers || values.size() < 2) continue;
    bool slot_range = true;
    for (std::size_t k = 0; k < values.size(); ++k) {
      if (values[k] < 0 || values[k] > 6) slot_range = false;
      if (k > 0 && values[k] <= values[k - 1]) slot_range = false;
    }
    if (!slot_range) continue;
    add_finding(findings, lexed, path, t.line, "R8",
                "hardcoded slot table '" + t.text + "': A100 start-slot/placement "
                "data must come from the proved constexpr tables in "
                "src/gpu/mig_geometry.hpp (legal_start_slots / kPlacementTable)");
  }

  // (b) Shadow definitions of the geometry API outside the geometry files.
  static const std::set<std::string> kGeometryApi = {
      "legal_start_slots", "preferred_start_slots", "is_legal_placement",
      "find_start_slot",   "enumerate_maximal_configs", "enumerate_all_configs"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || kGeometryApi.count(t.text) == 0) continue;
    if (!is_punct(toks[i + 1], "(")) continue;
    if (i == 0) continue;
    const Token& prev = toks[i - 1];
    if (prev.kind != Token::Kind::kIdent && !is_punct(prev, ">") &&
        !is_punct(prev, "&") && !is_punct(prev, "*") && !is_punct(prev, ":")) {
      continue;
    }
    std::size_t j = i + 1;
    int d = 1;
    for (++j; j < toks.size() && d > 0; ++j) {
      if (is_punct(toks[j], "(")) ++d;
      if (is_punct(toks[j], ")")) --d;
    }
    while (j < toks.size() &&
           (is_ident(toks[j], "const") || is_ident(toks[j], "noexcept"))) {
      ++j;
    }
    if (j < toks.size() && is_punct(toks[j], "{")) {
      add_finding(findings, lexed, path, t.line, "R8",
                  "'" + t.text + "' redefines the MIG geometry API outside "
                  "src/gpu/mig_geometry.*: runtime placement code must consult "
                  "the single proved implementation");
    }
  }
}

void scan_status_functions_into_index(const LexedFile& lexed, SymbolIndex& index) {
  for (const StatusFunction& fn : scan_status_functions(lexed)) {
    auto [it, inserted] = index.status_functions.emplace(fn.name, fn.nodiscard);
    if (!inserted && fn.nodiscard) it->second = true;
  }
}

void check_r6(const LexedFile& lexed, const std::string& path, const SymbolIndex& index,
              std::vector<Finding>& findings) {
  for (const StatusFunction& fn : scan_status_functions(lexed)) {
    if (fn.nodiscard) continue;
    if (fn.has_body || fn.qualified) {
      // A definition is excused when some declaration of the same name in
      // the scan set carries the attribute (header decl covers cpp def).
      auto it = index.status_functions.find(fn.name);
      if (it != index.status_functions.end() && it->second) continue;
    }
    add_finding(findings, lexed, path, fn.line, "R6",
                "function '" + fn.name + "' returns a status type but is not "
                "declared [[nodiscard]]: a dropped MIG control-plane error "
                "corrupts placement state silently");
  }
  check_call_discards(lexed, path, index, findings);
}

}  // namespace parva::audit::internal
