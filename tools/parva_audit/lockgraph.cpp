// Phase-3 interprocedural rules over the call graph (DESIGN.md §4.8):
//
//   R9   lock-order cycles. Every lock-guard scope contributes "held ->
//        acquired" edges, including one level through a call (a function
//        called with L held that itself takes M adds L -> M). Any cycle in
//        the resulting order graph -- including a self-edge, i.e. re-
//        acquiring a held non-recursive mutex -- is a potential deadlock.
//   R10  RNG stream-tag discipline. Rng::stream's tag argument must be a
//        named enumerator of the RngStreamTag registry (common/rng.hpp) and
//        registry values must be pairwise distinct.
//   R11  hot-path blocking reachability. From a manifest of hot-path roots,
//        any transitively reachable blocking operation (lock acquisition,
//        pool submit/wait, iostream/file I/O, opt-in node-container
//        inserts) is flagged with the call chain as witness.
//   R12  export-path reachability for unordered iteration. R2 only sees
//        manifest-matched files; R12 walks the graph from every function
//        defined in a manifest file and flags unordered-container
//        iteration in reachable helpers outside the manifest.
//
// All findings anchor at a concrete token (an acquisition, a call, an
// iteration), so `// parva-audit: allow(R#)` works at the usual place.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "audit.hpp"
#include "callgraph.hpp"
#include "internal.hpp"

namespace parva::audit {
namespace internal {

// The helpers below are shared with the phase-4 dataflow rules (R14 walks
// the same reachability structure); declarations live in internal.hpp.

void add_graph_finding(std::vector<Finding>& findings, const LexedByFile& lexed,
                       const std::string& file, int line, const char* rule,
                       std::string message) {
  auto it = lexed.find(file);
  if (it != lexed.end() && is_allowed(*it->second, line, rule)) return;
  Finding f;
  f.file = file;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  findings.push_back(std::move(f));
}

std::string join_path(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += " -> ";
    out += n;
  }
  return out;
}

/// Breadth-first reachability from `starts` over resolved call edges.
/// Returns the visit order plus a parent map for witness paths. Both are
/// deterministic: start order is the caller's, neighbor order is the
/// resolve() order (ascending definition index).
Reachability reach(const CallGraph& graph, const std::vector<std::size_t>& starts) {
  Reachability r;
  std::set<std::size_t> visited(starts.begin(), starts.end());
  std::deque<std::size_t> queue(starts.begin(), starts.end());
  while (!queue.empty()) {
    const std::size_t idx = queue.front();
    queue.pop_front();
    r.order.push_back(idx);
    const FunctionDef& fn = graph.functions[idx];
    for (const CallSite& call : fn.calls) {
      for (std::size_t target : graph.resolve(call, fn)) {
        if (visited.insert(target).second) {
          r.parent[target] = idx;
          queue.push_back(target);
        }
      }
    }
  }
  return r;
}

std::vector<std::string> witness_chain(const CallGraph& graph, const Reachability& r,
                                       std::size_t idx) {
  std::vector<std::string> names;
  for (;;) {
    names.push_back(graph.functions[idx].qualified());
    auto it = r.parent.find(idx);
    if (it == r.parent.end()) break;
    idx = it->second;
  }
  std::reverse(names.begin(), names.end());
  return names;
}

// ---------------------------------------------------------------- R9 ----

void check_r9(const CallGraph& graph, const LexedByFile& lexed,
              std::vector<Finding>& findings) {
  struct Witness {
    std::string file;
    int line = 0;
    std::string via;  // empty for an intra-function edge
  };
  // lock -> lock -> first witness; std::map keeps everything ordered so
  // cycle discovery below is deterministic.
  std::map<std::string, std::map<std::string, Witness>> adj;

  for (const FunctionDef& fn : graph.functions) {
    for (const LockAcquisition& acq : fn.locks) {
      for (const std::string& held : acq.held) {
        adj[held].emplace(acq.lock, Witness{fn.file, acq.line, ""});
      }
    }
    for (const CallSite& call : fn.calls) {
      if (call.held_locks.empty()) continue;
      for (std::size_t target : graph.resolve(call, fn)) {
        const FunctionDef& callee = graph.functions[target];
        for (const LockAcquisition& acq : callee.locks) {
          for (const std::string& held : call.held_locks) {
            adj[held].emplace(
                acq.lock,
                Witness{fn.file, call.line,
                        callee.qualified() + " acquires '" + acq.lock + "' at " +
                            callee.file + ":" + std::to_string(acq.line)});
          }
        }
      }
    }
  }

  // Report each elementary cycle once, keyed by its lexicographically
  // smallest node; DFS follows the sorted adjacency so the first cycle
  // found through a node is stable.
  std::set<std::pair<std::string, int>> anchors;
  for (const auto& [start, _] : adj) {
    std::vector<std::string> path{start};
    std::set<std::string> on_path{start};
    std::vector<std::string> cycle;
    std::function<bool(const std::string&)> dfs = [&](const std::string& cur) {
      auto it = adj.find(cur);
      if (it == adj.end()) return false;
      for (const auto& [next, w] : it->second) {
        (void)w;
        if (next == start) {
          cycle = path;
          cycle.push_back(start);
          return true;
        }
        if (next < start) continue;  // cycle will be reported from its min node
        if (on_path.insert(next).second) {
          path.push_back(next);
          if (dfs(next)) return true;
          path.pop_back();
          on_path.erase(next);
        }
      }
      return false;
    };
    if (!dfs(start) || cycle.empty()) continue;

    std::string edges_text;
    const Witness* anchor = nullptr;
    for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
      const Witness& w = adj.at(cycle[i]).at(cycle[i + 1]);
      if (anchor == nullptr) anchor = &w;
      if (!edges_text.empty()) edges_text += ", ";
      edges_text += "'" + cycle[i] + "' -> '" + cycle[i + 1] + "' at " + w.file + ":" +
                    std::to_string(w.line);
      if (!w.via.empty()) edges_text += " (via " + w.via + ")";
    }
    if (anchor == nullptr) continue;
    if (!anchors.insert({anchor->file, anchor->line}).second) continue;
    std::string nodes;
    for (const std::string& n : cycle) {
      if (!nodes.empty()) nodes += " -> ";
      nodes += "'" + n + "'";
    }
    add_graph_finding(findings, lexed, anchor->file, anchor->line, "R9",
                      "lock-order cycle (potential deadlock): " + nodes +
                          "; edges: " + edges_text +
                          "; acquire these locks in one global order");
  }
}

// --------------------------------------------------------------- R10 ----

void check_r10(const CallGraph& graph, const LexedByFile& lexed,
               std::vector<Finding>& findings) {
  std::map<std::uint64_t, const RngTagDef*> by_value;
  std::set<std::string> registered;
  for (const RngTagDef& tag : graph.rng_tags) {
    registered.insert(tag.name);
    auto [it, inserted] = by_value.emplace(tag.value, &tag);
    if (!inserted) {
      add_graph_finding(findings, lexed, tag.file, tag.line, "R10",
                        "RngStreamTag enumerator '" + tag.name + "' reuses value " +
                            std::to_string(tag.value) + " already held by '" +
                            it->second->name +
                            "': stream tags must be pairwise distinct or the "
                            "derived RNG streams correlate");
    }
  }

  for (const RngStreamUse& use : graph.rng_uses) {
    // The registry header itself forwards the typed overload to the raw one.
    if (ends_with(normalize(use.file), "common/rng.hpp")) continue;
    if (use.literal) {
      add_graph_finding(findings, lexed, use.file, use.line, "R10",
                        "literal RNG stream tag in Rng::stream(...): pass a named "
                        "RngStreamTag enumerator (common/rng.hpp) so tag uniqueness "
                        "is enforced by the registry");
    } else if (use.tag_name.empty()) {
      add_graph_finding(findings, lexed, use.file, use.line, "R10",
                        "Rng::stream(...) tag argument names no constant: pass a "
                        "RngStreamTag enumerator (common/rng.hpp)");
    } else if (registered.count(use.tag_name) == 0) {
      add_graph_finding(findings, lexed, use.file, use.line, "R10",
                        "RNG stream tag '" + use.tag_name +
                            "' is not registered in the RngStreamTag registry "
                            "(common/rng.hpp): register it so uniqueness is "
                            "statically checked");
    }
  }
}

// --------------------------------------------------------------- R11 ----

void check_r11(const CallGraph& graph, const AuditConfig& config,
               const LexedByFile& lexed, std::vector<Finding>& findings) {
  const std::vector<std::string> roots =
      config.hotpath_roots.empty() ? default_hotpath_roots() : config.hotpath_roots;
  std::set<std::tuple<std::string, int, std::string>> seen;
  for (const std::string& root : roots) {
    auto it = graph.by_qualified.find(root);
    if (it == graph.by_qualified.end()) continue;  // root not in the scan set
    const Reachability r = reach(graph, it->second);
    for (const std::size_t idx : r.order) {
      const FunctionDef& fn = graph.functions[idx];
      for (const BlockingOp& op : fn.blocking) {
        if (op.kind == BlockKind::kAlloc && !config.r11_allocations) continue;
        if (!seen.insert({fn.file, op.line, op.what}).second) continue;
        const std::vector<std::string> chain = witness_chain(graph, r, idx);
        std::string message = "blocking operation " + op.what +
                              " is reachable from hot-path root '" + root + "'";
        if (chain.size() > 1) message += " via " + join_path(chain);
        message +=
            ": shard windows must never block (move the work off the hot "
            "path or justify with allow(R11))";
        add_graph_finding(findings, lexed, fn.file, op.line, "R11", std::move(message));
      }
    }
  }
}

// --------------------------------------------------------------- R12 ----

void check_r12(const CallGraph& graph, const AuditConfig& config,
               const LexedByFile& lexed, std::vector<Finding>& findings) {
  // Entry points: every function defined in a manifest-matched file.
  std::vector<std::size_t> entries;
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    if (path_matches(graph.functions[i].file, config.export_manifest)) {
      entries.push_back(i);
    }
  }
  if (entries.empty()) return;
  const Reachability r = reach(graph, entries);

  std::set<std::pair<std::string, int>> seen;
  for (const std::size_t idx : r.order) {
    const FunctionDef& fn = graph.functions[idx];
    // Manifest files are R2's jurisdiction; R12 closes the helper hole.
    if (path_matches(fn.file, config.export_manifest)) continue;
    for (const UnorderedIteration& u : fn.unordered) {
      if (!seen.insert({fn.file, u.line}).second) continue;
      std::vector<std::string> chain = witness_chain(graph, r, idx);
      add_graph_finding(
          findings, lexed, fn.file, u.line, "R12",
          "iteration over unordered container '" + u.name + "' in '" + fn.qualified() +
              "' is reachable from export-path entry '" + chain.front() +
              "' (" + join_path(chain) +
              "): iteration order is not deterministic; copy to a sorted "
              "vector (or use std::map) before emitting");
    }
  }
}

}  // namespace internal

std::vector<std::string> default_hotpath_roots() {
  // The three hot loops of the sharded DES (DESIGN.md §4.5-§4.7): the
  // shard window advance, the event-engine heap, and the arrival
  // tournament's replay. Override with --hotpath-roots.
  return {
      "Shard::advance",
      "EventQueue::push",
      "EventQueue::pop",
      "ArrivalStreams::replay_matches",
  };
}

}  // namespace parva::audit
