// Phase-4 dataflow rules R13/R14/R15 (DESIGN.md §4.9). Everything here is
// token-order dataflow over the stripped lexer stream: R13 propagates unit
// classes inferred from identifier suffixes, R14 marks floating-point loop
// reductions and defers judgment to the call graph's export reachability,
// R15 tracks reference/iterator bindings against container mutations with a
// statement-granular invalidation frontier.

#include "dataflow.hpp"

#include <array>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "internal.hpp"

namespace parva::audit {

namespace {

using internal::add_finding;
using internal::add_graph_finding;
using internal::is_ident;
using internal::is_punct;
using internal::match_close;
using internal::path_matches;
using internal::split_args;

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if", "else", "for", "while", "do", "switch", "case", "default", "break",
      "continue", "return", "goto", "new", "delete", "throw", "try", "catch",
      "sizeof", "alignof", "alignas", "decltype", "typeid", "noexcept",
      "static_assert", "using", "typedef", "template", "typename", "operator",
      "co_await", "co_return", "co_yield", "const", "constexpr", "constinit",
      "static", "inline", "extern", "mutable", "volatile", "thread_local",
      "public", "private", "protected", "virtual", "override", "final",
      "class", "struct", "union", "enum", "namespace", "friend", "requires",
      "and", "or", "not", "this", "true", "false", "nullptr", "void", "bool",
      "char", "int", "long", "short", "float", "double", "signed", "unsigned",
      "auto"};
  return kKeywords.count(s) != 0;
}

bool is_plain_ident(const Token& t) {
  return t.kind == Token::Kind::kIdent && !is_keyword(t.text);
}

bool suffix_matches(const std::string& name, const char* suffix,
                    std::size_t suffix_len) {
  return name.size() > suffix_len &&
         name.compare(name.size() - suffix_len, suffix_len, suffix) == 0;
}

}  // namespace

// ------------------------------------------------------- unit inference ----

std::string unit_suffix(const std::string& name_in) {
  // The data-member convention (`window_ms_`) strips one trailing '_'.
  std::string name = name_in;
  if (!name.empty() && name.back() == '_') name.pop_back();

  struct Suffix {
    const char* text;
    const char* unit;
  };
  // Rates first: `_per_s` would otherwise be eaten by the `_s` row, and a
  // tokens-per-second rate must never unify with a plain seconds quantity.
  static const std::array<Suffix, 7> kRates = {{
      {"_per_ms", "per_ms"},
      {"_per_us", "per_us"},
      {"_per_ns", "per_ns"},
      {"_per_sec", "per_s"},
      {"_per_s", "per_s"},
      {"_per_token", "per_token"},
      {"_per_hour", "per_hour"},
  }};
  static const std::array<Suffix, 11> kBases = {{
      {"_ms", "ms"},
      {"_us", "us"},
      {"_ns", "ns"},
      {"_sec", "s"},
      {"_s", "s"},
      {"_bytes", "bytes"},
      {"_gib", "gib"},
      {"_mib", "mib"},
      {"_kib", "kib"},
      {"_tokens", "tokens"},
      {"_hours", "hours"},
  }};
  for (const Suffix& s : kRates) {
    if (suffix_matches(name, s.text, std::string(s.text).size())) return s.unit;
  }
  for (const Suffix& s : kBases) {
    if (suffix_matches(name, s.text, std::string(s.text).size())) return s.unit;
  }
  return "";
}

// -------------------------------------------------------- R14 detector ----

std::vector<FpAccumulation> collect_fp_accumulations(const LexedFile& lexed) {
  const auto& toks = lexed.tokens;

  // Names declared double/float anywhere in the file. Declarator-only: the
  // name must not open a call/function paren.
  std::set<std::string> fp_names;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "double") && !is_ident(toks[i], "float")) continue;
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (is_punct(toks[j], "*") || is_punct(toks[j], "&") ||
            is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j >= toks.size() || !is_plain_ident(toks[j])) continue;
    if (j + 1 < toks.size() && is_punct(toks[j + 1], "(")) continue;
    fp_names.insert(toks[j].text);
  }
  if (fp_names.empty()) return {};

  // Loop body token ranges [begin, end], inclusive of the interior.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if ((is_ident(toks[i], "for") || is_ident(toks[i], "while")) &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      const std::size_t close = match_close(toks, i + 1, "(", ")");
      if (close >= toks.size()) continue;
      if (close + 1 < toks.size() && is_punct(toks[close + 1], "{")) {
        const std::size_t body_end = match_close(toks, close + 1, "{", "}");
        if (body_end < toks.size()) ranges.emplace_back(close + 2, body_end);
      } else {
        // Single-statement body: up to the next top-level ';'.
        std::size_t k = close + 1;
        int depth = 0;
        for (; k < toks.size(); ++k) {
          if (is_punct(toks[k], "(") || is_punct(toks[k], "{")) ++depth;
          if (is_punct(toks[k], ")") || is_punct(toks[k], "}")) --depth;
          if (depth == 0 && is_punct(toks[k], ";")) break;
        }
        ranges.emplace_back(close + 1, k);
      }
    } else if (is_ident(toks[i], "do") && i + 1 < toks.size() &&
               is_punct(toks[i + 1], "{")) {
      const std::size_t body_end = match_close(toks, i + 1, "{", "}");
      if (body_end < toks.size()) ranges.emplace_back(i + 2, body_end);
    }
  }
  if (ranges.empty()) return {};

  const auto in_loop = [&ranges](std::size_t idx) {
    for (const auto& [b, e] : ranges) {
      if (idx >= b && idx < e) return true;
    }
    return false;
  };

  std::vector<FpAccumulation> out;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_plain_ident(toks[i]) || fp_names.count(toks[i].text) == 0) continue;
    const bool plus = is_punct(toks[i + 1], "+");
    const bool minus = is_punct(toks[i + 1], "-");
    if (!plus && !minus) continue;
    if (!is_punct(toks[i + 2], "=")) continue;
    // `a + ==` cannot lex; guard anyway so `!=`/`==` chains never match.
    if (i + 3 < toks.size() && is_punct(toks[i + 3], "=")) continue;
    if (!in_loop(i)) continue;
    out.push_back({toks[i].text, toks[i].line, i, minus});
  }
  return out;
}

namespace internal {

// ---------------------------------------------------------------- R13 ----

namespace {

/// True when the identifier at `i` opens a *declaration* parameter list
/// rather than a call: preceded by a type-ish token (plain identifier,
/// builtin type keyword, template close that is not an arrow, `&` or `*`).
bool decl_context(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  const Token& prev = toks[i - 1];
  if (is_plain_ident(prev)) return true;
  if (prev.kind == Token::Kind::kIdent) {
    // Builtin type keywords open declarations; statement keywords
    // (`return foo(...)`) do not.
    static const std::set<std::string> kTypeWords = {
        "void", "bool",  "char",   "int",    "long",     "short",
        "float", "double", "signed", "unsigned", "auto"};
    return kTypeWords.count(prev.text) != 0;
  }
  if (is_punct(prev, ">")) return i < 2 || !is_punct(toks[i - 2], "-");
  return is_punct(prev, "&") || is_punct(prev, "*");
}

/// Strips a default argument (`= expr`) from a parameter group; returns
/// false when the group looks like a call-site argument instead of a
/// declared parameter (contains member access or a bare number outside a
/// default).
bool clean_param_group(std::vector<Token>& group) {
  int depth = 0;
  for (std::size_t k = 0; k < group.size(); ++k) {
    if (is_punct(group[k], "(") || is_punct(group[k], "{") ||
        is_punct(group[k], "[")) {
      ++depth;
    }
    if (is_punct(group[k], ")") || is_punct(group[k], "}") ||
        is_punct(group[k], "]")) {
      --depth;
    }
    if (depth == 0 && is_punct(group[k], "=")) {
      group.resize(k);
      break;
    }
  }
  for (std::size_t k = 0; k < group.size(); ++k) {
    if (group[k].kind == Token::Kind::kNumber) return false;
    if (is_punct(group[k], ".")) return false;
    if (k + 1 < group.size() && is_punct(group[k], "-") &&
        is_punct(group[k + 1], ">")) {
      return false;
    }
  }
  return true;
}

}  // namespace

void scan_unit_params_into_index(const LexedFile& lexed, SymbolIndex& index) {
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_plain_ident(toks[i]) || !is_punct(toks[i + 1], "(")) continue;
    if (!decl_context(toks, i)) continue;
    const std::size_t close = match_close(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    std::vector<std::vector<Token>> groups = split_args(toks, i + 2, close);

    bool is_decl = true;
    std::vector<std::pair<int, std::string>> units;  // param idx -> unit
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (!clean_param_group(groups[g])) {
        is_decl = false;
        break;
      }
      // A parameter needs a type and a name; `void` / unnamed params carry
      // no unit by construction.
      if (groups[g].size() < 2) continue;
      const Token& last = groups[g].back();
      if (!is_plain_ident(last)) continue;
      const std::string unit = unit_suffix(last.text);
      if (!unit.empty()) units.emplace_back(static_cast<int>(g), unit);
    }
    if (!is_decl || units.empty()) continue;

    auto& slots = index.unit_params[toks[i].text];
    for (const auto& [idx, unit] : units) {
      auto it = slots.find(idx);
      if (it == slots.end()) {
        slots.emplace(idx, unit);
      } else if (it->second != unit) {
        it->second.clear();  // overload conflict: poison, never flag
      }
    }
  }
}

namespace {

/// Binary operators R13 treats as unit-preserving: addition, subtraction
/// and the comparisons. Multiplicative operators are conversions by
/// construction and never flagged. Returns the operator's token length
/// (1 or 2) or 0 when toks[i] does not start one.
std::size_t unit_op_len(const std::vector<Token>& toks, std::size_t i) {
  if (i >= toks.size() || toks[i].kind != Token::Kind::kPunct) return 0;
  const std::string& c = toks[i].text;
  const bool eq_next = i + 1 < toks.size() && is_punct(toks[i + 1], "=");
  if (c == "+") return eq_next ? 2 : 1;
  if (c == "-") {
    if (i + 1 < toks.size() && is_punct(toks[i + 1], ">")) return 0;  // arrow
    return eq_next ? 2 : 1;
  }
  if (c == "<" || c == ">") return eq_next ? 2 : 1;
  if (c == "=" || c == "!") return eq_next ? 2 : 0;
  return 0;
}

/// Zero is unit-neutral in any spelling: 0, 0.0, 0., 0x0, 0.0f, 0ULL...
/// Everything else (including non-numeric garbage) counts as a quantity.
bool is_zero_literal(const std::string& text) {
  std::string digits;
  for (const char c : text) {
    if (c == '\'' || c == 'u' || c == 'U' || c == 'l' || c == 'L' ||
        c == 'f' || c == 'F') {
      continue;  // integer/float suffixes and digit separators
    }
    digits += c;
  }
  if (digits.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(digits.c_str(), &end);
  return end == digits.c_str() + digits.size() && value == 0.0;
}

const std::set<std::string>& arith_type_words() {
  static const std::set<std::string> kArith = {
      "auto", "double", "float", "int", "long", "short", "unsigned",
      "size_t", "ptrdiff_t", "ssize_t", "int8_t", "int16_t", "int32_t",
      "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t"};
  return kArith;
}

}  // namespace

void check_r13(const LexedFile& lexed, const std::string& path,
               const SymbolIndex& index, std::vector<Finding>& findings) {
  const auto& toks = lexed.tokens;

  // The shared index carries only header-declared (cross-TU visible) unit
  // parameters; this file's own .cpp-local declarations bind its call
  // sites too, so scan them here and merge. A disagreement between the
  // local and header view poisons the slot -- never flag on a guess.
  SymbolIndex local;
  scan_unit_params_into_index(lexed, local);
  std::map<std::string, std::map<int, std::string>> units = index.unit_params;
  for (const auto& [fn_name, slots] : local.unit_params) {
    auto& dst = units[fn_name];
    for (const auto& [idx, unit] : slots) {
      auto it = dst.find(idx);
      if (it == dst.end()) {
        dst.emplace(idx, unit);
      } else if (it->second != unit) {
        it->second.clear();
      }
    }
  }

  // (a) mixed-unit arithmetic / comparison: identU1 OP identU2.
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_plain_ident(toks[i])) continue;
    const std::string lhs_unit = unit_suffix(toks[i].text);
    if (lhs_unit.empty()) continue;
    const std::size_t op_len = unit_op_len(toks, i + 1);
    if (op_len == 0) continue;
    const std::size_t rhs = i + 1 + op_len;
    if (rhs >= toks.size() || !is_plain_ident(toks[rhs])) continue;
    const std::string rhs_unit = unit_suffix(toks[rhs].text);
    if (rhs_unit.empty() || rhs_unit == lhs_unit) continue;
    // A neighboring multiplicative operator means a conversion is in
    // progress (`a_ms + b_s * 1000.0` converts, badly, but explicitly).
    if (i > 0 && (is_punct(toks[i - 1], "*") || is_punct(toks[i - 1], "/") ||
                  is_punct(toks[i - 1], "%"))) {
      continue;
    }
    if (rhs + 1 < toks.size() &&
        (is_punct(toks[rhs + 1], "*") || is_punct(toks[rhs + 1], "/") ||
         is_punct(toks[rhs + 1], "%"))) {
      continue;
    }
    // `x_ms < y_s(...)`: the rhs is a call, not a quantity.
    if (rhs + 1 < toks.size() && is_punct(toks[rhs + 1], "(")) continue;
    add_finding(findings, lexed, path, toks[i].line, "R13",
                "mixed-unit arithmetic: '" + toks[i].text + "' carries " +
                    lhs_unit + " but '" + toks[rhs].text + "' carries " +
                    rhs_unit +
                    " -- convert through a named scale constant or align the "
                    "suffixes");
  }

  // (b) bare numeric literal passed for a unit-carrying parameter.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_plain_ident(toks[i]) || !is_punct(toks[i + 1], "(")) continue;
    if (decl_context(toks, i)) continue;
    if (i > 0 && is_punct(toks[i - 1], "~")) continue;  // destructor
    auto fn = units.find(toks[i].text);
    if (fn == units.end()) continue;
    const std::size_t close = match_close(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    const std::vector<std::vector<Token>> args = split_args(toks, i + 2, close);
    for (const auto& [idx, unit] : fn->second) {
      if (unit.empty()) continue;
      if (idx < 0 || static_cast<std::size_t>(idx) >= args.size()) continue;
      const std::vector<Token>& arg = args[static_cast<std::size_t>(idx)];
      if (arg.size() != 1 || arg[0].kind != Token::Kind::kNumber) continue;
      if (is_zero_literal(arg[0].text)) continue;  // zero is unit-neutral
      add_finding(findings, lexed, path, arg[0].line, "R13",
                  "bare numeric literal '" + arg[0].text +
                      "' passed for unit-carrying parameter #" +
                      std::to_string(idx + 1) + " (" + unit + ") of '" +
                      toks[i].text +
                      "' -- pass a named constant with a matching unit "
                      "suffix");
    }
  }

  // (c) unit-laundering sink: `ArithType lhs = rhs_ms;`.
  for (std::size_t i = 2; i + 2 < toks.size(); ++i) {
    if (!is_punct(toks[i], "=")) continue;
    if (!is_plain_ident(toks[i + 1]) || !is_punct(toks[i + 2], ";")) continue;
    const std::string unit = unit_suffix(toks[i + 1].text);
    if (unit.empty()) continue;
    const Token& lhs = toks[i - 1];
    if (!is_plain_ident(lhs) || !unit_suffix(lhs.text).empty()) continue;
    const Token& type = toks[i - 2];
    if (type.kind != Token::Kind::kIdent ||
        arith_type_words().count(type.text) == 0) {
      continue;
    }
    add_finding(findings, lexed, path, lhs.line, "R13",
                "assignment launders the " + unit + " unit away: '" +
                    lhs.text + "' has no quantity suffix but is initialized "
                    "from '" + toks[i + 1].text +
                    "' -- keep the suffix on the new name");
  }
}

// ---------------------------------------------------------------- R14 ----

void check_r14(const CallGraph& graph, const AuditConfig& config,
               const std::map<std::string, const LexedFile*>& lexed,
               std::vector<Finding>& findings) {
  // Entries: every function defined in an export-manifest file. Unlike R12
  // (which flags *non*-manifest code reached from manifest files), R14
  // cares about the manifest files themselves too -- an unsorted reduction
  // inside an exporter is the canonical bug.
  std::vector<std::size_t> entries;
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    if (path_matches(graph.functions[i].file, config.export_manifest)) {
      entries.push_back(i);
    }
  }
  if (entries.empty()) return;

  const Reachability r = reach(graph, entries);
  std::set<std::pair<std::string, int>> seen;
  for (std::size_t idx : r.order) {
    const FunctionDef& fn = graph.functions[idx];
    // The canonical-order helper is the sanctioned accumulation site.
    if (fn.name == "sorted_sum") continue;
    for (const FpAccumulation& acc : fn.fp_accums) {
      if (!seen.emplace(fn.file, acc.line).second) continue;
      std::vector<std::string> chain = witness_chain(graph, r, idx);
      std::string message =
          "floating-point accumulation '" + acc.name +
          (acc.subtract ? " -=" : " +=") + "' in a loop in '" +
          fn.qualified() + "' is reachable from the export manifest (" +
          join_path(chain) +
          "); summation order becomes observable in exported bytes -- "
          "accumulate through parva::sorted_sum (common/stats.hpp) or "
          "annotate allow(R14) with why the order is fixed";
      add_graph_finding(findings, lexed, fn.file, acc.line, "R14",
                        std::move(message));
    }
  }
}

// ---------------------------------------------------------------- R15 ----

namespace {

const std::set<std::string>& invalidating_members() {
  static const std::set<std::string> kMut = {
      "push_back", "emplace_back", "pop_back", "insert", "emplace", "erase",
      "clear", "resize", "reserve", "assign", "shrink_to_fit"};
  return kMut;
}

const std::set<std::string>& iterator_members() {
  static const std::set<std::string> kIter = {
      "begin", "end", "cbegin", "cend", "rbegin", "rend",
      "find", "lower_bound", "upper_bound"};
  return kIter;
}

const std::set<std::string>& element_members() {
  static const std::set<std::string> kElem = {"back", "front", "at", "data"};
  return kElem;
}

/// Names declared in this file with a contiguous-storage container type
/// (vector / deque): the containers whose mutations invalidate.
std::set<std::string> collect_containers(const std::vector<Token>& toks) {
  std::set<std::string> out;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "vector") && !is_ident(toks[i], "deque")) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (is_punct(toks[j], "<")) ++depth;
        if (is_punct(toks[j], ">") && --depth == 0) {
          ++j;
          break;
        }
        if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) break;
      }
    }
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && is_plain_ident(toks[j])) out.insert(toks[j].text);
  }
  return out;
}

/// True when the declarator ending just before `i` (the bound name) is a
/// reference or pointer: scan back to the statement boundary for `&`/`*`.
bool ref_declarator_before(const std::vector<Token>& toks, std::size_t i) {
  while (i > 0) {
    --i;
    const Token& t = toks[i];
    if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") ||
        is_punct(t, ")")) {
      return false;
    }
    if (is_punct(t, "&") || is_punct(t, "*")) return true;
  }
  return false;
}

struct Binding {
  std::string name;
  std::string container;
  int depth = 0;           ///< brace depth at the declaration
  bool valid = true;
  bool rebound_this_stmt = false;
  std::string invalidated_by;  ///< mutating member that killed it
};

}  // namespace

void check_r15(const LexedFile& lexed, const std::string& path,
               std::vector<Finding>& findings) {
  const auto& toks = lexed.tokens;
  const std::set<std::string> containers = collect_containers(toks);
  if (containers.empty()) return;

  std::vector<Binding> bindings;
  struct Pending {
    std::string container;
    std::string op;
  };
  std::vector<Pending> pending;
  int depth = 0;

  const auto find_binding = [&bindings](const std::string& name) -> Binding* {
    for (Binding& b : bindings) {
      if (b.name == name) return &b;
    }
    return nullptr;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      ++depth;
      continue;
    }
    if (is_punct(t, "}")) {
      --depth;
      for (std::size_t b = bindings.size(); b-- > 0;) {
        if (bindings[b].depth > depth) bindings.erase(bindings.begin() + b);
      }
      continue;
    }
    if (is_punct(t, ";")) {
      // Statement frontier: mutations queued inside the statement now
      // invalidate, except bindings the same statement rebound
      // (`it = v.erase(it)` stays valid).
      for (const Pending& p : pending) {
        for (Binding& b : bindings) {
          if (b.container == p.container && !b.rebound_this_stmt) {
            b.valid = false;
            b.invalidated_by = p.op;
          }
        }
      }
      pending.clear();
      for (Binding& b : bindings) b.rebound_this_stmt = false;
      continue;
    }
    if (!is_plain_ident(t)) continue;

    // Container mutation: `cont . member (`.
    if (containers.count(t.text) != 0 && i + 3 < toks.size() &&
        is_punct(toks[i + 1], ".") && toks[i + 2].kind == Token::Kind::kIdent &&
        invalidating_members().count(toks[i + 2].text) != 0 &&
        is_punct(toks[i + 3], "(")) {
      pending.push_back({t.text, toks[i + 2].text});
      // Fall through: `t` may also be a binding name (it is not, since
      // binding names are ref/iterator declarators, not containers).
      continue;
    }

    // Binding creation / rebinding: `name = <source>`.
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "=") &&
        !(i + 2 < toks.size() && is_punct(toks[i + 2], "="))) {
      const std::size_t k = i + 2;
      std::string cont;
      bool makes_binding = false;
      // Iterator by value: `it = cont.begin(` and friends.
      if (k + 3 < toks.size() && is_plain_ident(toks[k]) &&
          containers.count(toks[k].text) != 0 && is_punct(toks[k + 1], ".") &&
          toks[k + 2].kind == Token::Kind::kIdent &&
          iterator_members().count(toks[k + 2].text) != 0 &&
          is_punct(toks[k + 3], "(")) {
        cont = toks[k].text;
        makes_binding = true;
      }
      // Reference / element pointer: `&name = cont.back(` / `&name = cont[`
      // (declarator must be ref or pointer) and `p = &cont[`.
      if (!makes_binding && k + 1 < toks.size() && is_plain_ident(toks[k]) &&
          containers.count(toks[k].text) != 0 &&
          (is_punct(toks[k + 1], "[") ||
           (k + 3 < toks.size() && is_punct(toks[k + 1], ".") &&
            toks[k + 2].kind == Token::Kind::kIdent &&
            element_members().count(toks[k + 2].text) != 0 &&
            is_punct(toks[k + 3], "(")))) {
        if (ref_declarator_before(toks, i)) {
          cont = toks[k].text;
          makes_binding = true;
        }
      }
      if (!makes_binding && k + 2 < toks.size() && is_punct(toks[k], "&") &&
          is_plain_ident(toks[k + 1]) &&
          containers.count(toks[k + 1].text) != 0 &&
          (is_punct(toks[k + 2], "[") || is_punct(toks[k + 2], "."))) {
        cont = toks[k + 1].text;
        makes_binding = true;
      }

      Binding* existing = find_binding(t.text);
      if (makes_binding) {
        if (existing != nullptr) {
          existing->container = cont;
          existing->valid = true;
          existing->rebound_this_stmt = true;
        } else {
          bindings.push_back({t.text, cont, depth, true, true, ""});
        }
        continue;
      }
      if (existing != nullptr) {
        // Plain reassignment from something else: the old capture is gone,
        // whatever replaced it is the programmer's problem, not R15's.
        existing->valid = true;
        existing->rebound_this_stmt = true;
        continue;
      }
      continue;
    }

    // Use of an invalidated binding.
    Binding* b = find_binding(t.text);
    if (b != nullptr && !b->valid) {
      add_finding(findings, lexed, path, t.line, "R15",
                  "'" + b->name + "' was obtained from '" + b->container +
                      "' and is used after '" + b->container + "." +
                      b->invalidated_by +
                      "()' may have invalidated it -- re-acquire the "
                      "reference/iterator after the mutation");
      // One finding per capture: drop the binding so a chain of uses does
      // not cascade.
      const std::string name = b->name;
      for (std::size_t bi = 0; bi < bindings.size(); ++bi) {
        if (bindings[bi].name == name) {
          bindings.erase(bindings.begin() + bi);
          break;
        }
      }
    }
  }
}

}  // namespace internal

}  // namespace parva::audit
