#include "fixits.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>

#include "internal.hpp"

namespace parva::audit {
namespace {

/// Byte offset of the start of each 1-based line; one trailing entry for
/// the end of the content so line lengths are derivable.
std::vector<std::size_t> line_starts(const std::string& content) {
  std::vector<std::size_t> starts = {0};
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') starts.push_back(i + 1);
  }
  starts.push_back(content.size() + 1);  // sentinel past-the-end
  return starts;
}

/// The raw text of 1-based `line`, without its newline.
std::string line_text(const std::string& content,
                      const std::vector<std::size_t>& starts, int line) {
  if (line < 1 || static_cast<std::size_t>(line) + 1 >= starts.size()) return "";
  const std::size_t b = starts[static_cast<std::size_t>(line) - 1];
  std::size_t e = starts[static_cast<std::size_t>(line)];
  if (e > b && e <= content.size() + 1) --e;  // drop '\n' (or the sentinel)
  if (e > content.size()) e = content.size();
  while (e > b && content[e - 1] == '\r') --e;
  return content.substr(b, e - b);
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------- R4 ----

/// Insert `#pragma once` on the first line that is not a `//` comment --
/// directly after the file's leading comment block, before any blank line
/// or code.
void fix_r4_pragma(const std::string& content, Finding& finding) {
  const std::vector<std::size_t> starts = line_starts(content);
  int line = 1;
  const int last = static_cast<int>(starts.size()) - 1;
  while (line <= last) {
    const std::string text = line_text(content, starts, line);
    std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos || text.compare(first, 2, "//") != 0) break;
    ++line;
  }
  finding.fix_description = "insert `#pragma once` after the leading comment";
  finding.fix_edits.push_back({line, 1, 0, "#pragma once\n"});
}

// ---------------------------------------------------------------- R6 ----

/// Insert `[[nodiscard]] ` before the declaration whose return type sits on
/// the finding's line: find the status-type word, then walk left over
/// declaration specifiers and the type's qualification chain.
void fix_r6_nodiscard(const std::string& content, Finding& finding) {
  static const std::set<std::string> kStatusTypes = {"NvmlReturn", "ErrorCode",
                                                     "Status", "Result"};
  static const std::set<std::string> kSpecifiers = {
      "static", "virtual", "inline", "constexpr", "consteval",
      "extern", "friend", "explicit", "mutable"};
  const std::vector<std::size_t> starts = line_starts(content);
  const std::string text = line_text(content, starts, finding.line);

  // First whole-word occurrence of a status type on the line.
  std::size_t type_pos = std::string::npos;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (!ident_char(text[i]) || (i > 0 && ident_char(text[i - 1]))) continue;
    std::size_t j = i;
    while (j < text.size() && ident_char(text[j])) ++j;
    if (kStatusTypes.count(text.substr(i, j - i)) != 0) {
      type_pos = i;
      break;
    }
  }
  if (type_pos == std::string::npos) return;

  std::size_t col = type_pos;  // 0-based insertion byte
  for (;;) {
    std::size_t e = col;
    while (e > 0 && (text[e - 1] == ' ' || text[e - 1] == '\t')) --e;
    if (e >= 2 && text[e - 1] == ':' && text[e - 2] == ':') {
      // Qualification chain `ns::Type`: hop over `::` and its identifier.
      std::size_t b = e - 2;
      while (b > 0 && ident_char(text[b - 1])) --b;
      if (b == e - 2) return;  // `::Type` at line start or stray colon: bail
      col = b;
      continue;
    }
    if (e == 0) {
      col = 0;
      break;
    }
    if (!ident_char(text[e - 1])) break;  // `;`, `{`, `(`, ... : stop here
    std::size_t b = e;
    while (b > 0 && ident_char(text[b - 1])) --b;
    if (kSpecifiers.count(text.substr(b, e - b)) == 0) break;
    col = b;
  }

  finding.fix_description = "declare the status-returning function [[nodiscard]]";
  finding.fix_edits.push_back(
      {finding.line, static_cast<int>(col) + 1, 0, "[[nodiscard]] "});
}

// ---------------------------------------------------------------- R10 ----

/// Rewrite a literal `Rng::stream(seed, 7, ...)` tag to the RngStreamTag
/// enumerator registered with that value. Single-line calls only: the tag
/// argument and the closing paren must share the finding's line.
void fix_r10_tag(const std::string& content,
                 const std::map<std::uint64_t, std::string>& tags_by_value,
                 Finding& finding) {
  const std::vector<std::size_t> starts = line_starts(content);
  const std::string text = line_text(content, starts, finding.line);

  const std::size_t stream_pos = text.find("stream");
  if (stream_pos == std::string::npos) return;
  std::size_t open = stream_pos + 6;
  while (open < text.size() && (text[open] == ' ' || text[open] == '\t')) ++open;
  if (open >= text.size() || text[open] != '(') return;

  // The second top-level argument's byte range.
  int depth = 0;
  int arg = 0;
  std::size_t arg_begin = open + 1;
  std::size_t tag_begin = std::string::npos;
  std::size_t tag_end = std::string::npos;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') {
      if (--depth == 0) {
        if (arg == 1) {
          tag_begin = arg_begin;
          tag_end = i;
        }
        break;
      }
    }
    if (depth == 1 && c == ',') {
      if (arg == 1) {
        tag_begin = arg_begin;
        tag_end = i;
        break;
      }
      ++arg;
      arg_begin = i + 1;
    }
  }
  if (tag_begin == std::string::npos) return;  // multi-line call: no fix
  while (tag_begin < tag_end && (text[tag_begin] == ' ' || text[tag_begin] == '\t')) {
    ++tag_begin;
  }
  while (tag_end > tag_begin &&
         (text[tag_end - 1] == ' ' || text[tag_end - 1] == '\t')) {
    --tag_end;
  }
  const std::string literal = text.substr(tag_begin, tag_end - tag_begin);
  if (literal.empty()) return;
  std::size_t digits = 0;
  while (digits < literal.size() &&
         std::isdigit(static_cast<unsigned char>(literal[digits])) != 0) {
    ++digits;
  }
  if (digits == 0) return;
  for (std::size_t i = digits; i < literal.size(); ++i) {
    const char c = literal[i];
    if (c != 'u' && c != 'U' && c != 'l' && c != 'L' && c != '\'') return;
  }
  const std::uint64_t value =
      std::strtoull(literal.substr(0, digits).c_str(), nullptr, 10);
  const auto it = tags_by_value.find(value);
  if (it == tags_by_value.end()) return;  // unregistered value: nothing to name

  finding.fix_description =
      "replace the literal tag with RngStreamTag::" + it->second;
  finding.fix_edits.push_back({finding.line, static_cast<int>(tag_begin) + 1,
                               static_cast<int>(tag_end - tag_begin),
                               "RngStreamTag::" + it->second});
}

}  // namespace

void attach_fixits(const std::vector<std::pair<std::string, std::string>>& files,
                   const std::vector<RngTagDef>& rng_tags,
                   std::vector<Finding>& findings) {
  std::map<std::string, const std::string*> by_path;
  for (const auto& [path, content] : files) by_path[path] = &content;
  std::map<std::uint64_t, std::string> tags_by_value;
  for (const RngTagDef& tag : rng_tags) tags_by_value.emplace(tag.value, tag.name);

  for (Finding& f : findings) {
    if (!f.fix_edits.empty()) continue;  // already attached (cached rerun)
    const auto file = by_path.find(f.file);
    if (file == by_path.end()) continue;
    const std::string& content = *file->second;
    if (f.rule == "R4" && f.message == "header is missing #pragma once") {
      fix_r4_pragma(content, f);
    } else if (f.rule == "R6" &&
               f.message.find("is not declared [[nodiscard]]") != std::string::npos) {
      fix_r6_nodiscard(content, f);
    } else if (f.rule == "R10" &&
               f.message.compare(0, 22, "literal RNG stream tag") == 0) {
      fix_r10_tag(content, tags_by_value, f);
    }
  }
}

std::size_t apply_fix_edits(const std::string& path,
                            const std::vector<Finding>& findings,
                            std::string& content) {
  struct Planned {
    std::size_t offset = 0;
    std::size_t length = 0;
    const std::string* text = nullptr;
    std::size_t finding_idx = 0;
  };
  const std::vector<std::size_t> starts = line_starts(content);
  std::vector<Planned> plan;
  std::set<std::size_t> applied;
  for (std::size_t fi = 0; fi < findings.size(); ++fi) {
    const Finding& f = findings[fi];
    if (f.file != path || f.fix_edits.empty()) continue;
    bool ok = true;
    std::vector<Planned> local;
    for (const FixEdit& e : f.fix_edits) {
      if (e.line < 1 || static_cast<std::size_t>(e.line) + 1 >= starts.size() ||
          e.column < 1 || e.length < 0) {
        ok = false;
        break;
      }
      const std::size_t line_b = starts[static_cast<std::size_t>(e.line) - 1];
      std::size_t line_e = starts[static_cast<std::size_t>(e.line)];
      if (line_e > 0) --line_e;  // the '\n' (or the sentinel's overshoot)
      if (line_e > content.size()) line_e = content.size();
      const std::size_t offset = line_b + static_cast<std::size_t>(e.column) - 1;
      if (offset > line_e || offset + static_cast<std::size_t>(e.length) > content.size()) {
        ok = false;
        break;
      }
      local.push_back({offset, static_cast<std::size_t>(e.length), &e.text, fi});
    }
    if (!ok) continue;  // stale fix: skip the whole finding
    plan.insert(plan.end(), local.begin(), local.end());
    applied.insert(fi);
  }
  // Highest offset first: applied edits never shift a pending one. Ties
  // (two inserts at one offset) apply in reverse finding order, which keeps
  // the first finding's text first in the file.
  std::stable_sort(plan.begin(), plan.end(), [](const Planned& a, const Planned& b) {
    return a.offset > b.offset;
  });
  for (const Planned& p : plan) {
    content.replace(p.offset, p.length, *p.text);
  }
  return applied.size();
}

}  // namespace parva::audit
