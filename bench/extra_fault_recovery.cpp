// Extension: fault injection + self-healing reconfiguration. Kills one GPU
// of the S2 fleet mid-run, drives the repair path (detect -> re-place the
// displaced segments on survivors -> live-update), and measures SLO
// compliance through the failure: pre-failure, degraded (between the loss
// and the repair's activation), and post-recovery, plus a bucketed
// compliance-vs-time series. Transient NVML_ERROR_IN_USE faults are active
// throughout, so the retry/backoff accounting shows up in the same table.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "core/parvagpu.hpp"
#include "core/repair.hpp"
#include "gpu/dcgm_sim.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/scenarios.hpp"
#include "serving/cluster_sim.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/telemetry.hpp"

int main() {
  using namespace parva;

  bench::banner("Extension", "Fault recovery: kill one GPU, self-heal, measure compliance");

  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(perf);
  const auto profiles = profiler.profile_all(perfmodel::ModelCatalog::builtin().names());
  const auto& scenario = scenarios::scenario("S2");

  core::ParvaGpuScheduler scheduler(profiles);
  core::Deployment deployment = scheduler.schedule(scenario.services).value().deployment;
  for (auto& unit : deployment.units) {
    for (const auto& spec : scenario.services) {
      if (spec.id == unit.service_id) unit.model = spec.model;
    }
  }
  const core::Deployment healthy = deployment;

  // Fault plan: lose the busiest GPU at t=10 s; transient create faults at
  // p=0.15 are live for every control-plane call, including the repair's.
  constexpr double kFailAtMs = 10'000.0;
  std::vector<int> units_per_gpu(static_cast<std::size_t>(deployment.gpu_count), 0);
  for (const auto& unit : deployment.units) {
    ++units_per_gpu[static_cast<std::size_t>(unit.gpu_index)];
  }
  int victim = 0;
  for (std::size_t g = 0; g < units_per_gpu.size(); ++g) {
    if (units_per_gpu[g] > units_per_gpu[static_cast<std::size_t>(victim)]) {
      victim = static_cast<int>(g);
    }
  }
  gpu::FaultPlan fault_plan;
  fault_plan.seed = 99;
  fault_plan.gpu_failures = {{kFailAtMs, victim, 79}};
  fault_plan.transient_create_failure_prob = 0.15;

  // Materialise the fleet on the faulty control plane and execute the loss.
  // One telemetry sink across the control plane, the repair, and the
  // simulation — the audit trail of the whole failure drill.
  telemetry::Telemetry telemetry;

  gpu::GpuCluster cluster(static_cast<std::size_t>(deployment.gpu_count));
  gpu::NvmlSim nvml(cluster);
  gpu::DcgmSim dcgm;
  gpu::FaultInjector injector(fault_plan);
  nvml.set_fault_injector(&injector);
  nvml.attach_health_monitor(&dcgm);
  nvml.set_telemetry(&telemetry);
  dcgm.set_telemetry(&telemetry);
  core::Deployer deployer(nvml, perf);
  deployer.set_telemetry(&telemetry);
  core::LiveUpdater updater(deployer);
  auto state = deployer.deploy(deployment).value();

  nvml.set_time_ms(kFailAtMs);
  // parva-audit: allow(R6) fault injection: the bench plants the failure and measures recovery
  (void)nvml.fail_device(static_cast<unsigned>(victim));

  core::RepairOptions repair_options;
  repair_options.telemetry = &telemetry;
  core::RepairCoordinator repairer(deployer, updater, repair_options);
  const auto repair = repairer.handle_gpu_loss(deployment, state, victim).value();
  const double recovered_at = kFailAtMs + repair.recovery_ms;

  // Simulate through the failure: the original units serve until the loss,
  // the repair's replacements activate once recovery completes.
  core::Deployment sim_deployment = healthy;
  serving::SimulationOptions options;
  options.duration_ms = 28'000.0;
  options.warmup_ms = 2'000.0;
  options.seed = 7;
  options.fault_plan = &fault_plan;
  options.recovered_at_ms = recovered_at;
  options.timeline_bucket_ms = 2'000.0;
  for (const auto& unit : repair.replacements) {
    options.activations.push_back({sim_deployment.units.size(), recovered_at});
    sim_deployment.units.push_back(unit);
  }
  sim_deployment.gpu_count = repair.deployment.gpu_count;

  options.telemetry = &telemetry;
  serving::ClusterSimulation sim(sim_deployment, scenario.services, perf);
  const auto result = sim.run(options);

  TextTable timeline({"t (s)", "batches", "compliance", "shed"});
  for (const auto& bucket : result.timeline) {
    timeline.add_row({format_double((options.warmup_ms + bucket.t_ms) / 1000.0, 0),
                      std::to_string(bucket.batches), format_double(bucket.compliance(), 4),
                      std::to_string(bucket.shed_requests)});
  }
  bench::emit(timeline, "extra_fault_recovery_timeline");

  TextTable summary({"metric", "value"});
  summary.add_row({"victim GPU", std::to_string(victim)});
  summary.add_row({"units lost", std::to_string(repair.lost_units)});
  summary.add_row({"displaced rate (req/s)", format_double(repair.displaced_rate, 0)});
  summary.add_row({"recovery time (ms)", format_double(repair.recovery_ms, 0)});
  summary.add_row({"requests shed", std::to_string(result.requests_shed)});
  summary.add_row({"compliance pre-failure", format_double(result.pre_failure.compliance(), 4)});
  summary.add_row({"compliance degraded", format_double(result.degraded.compliance(), 4)});
  summary.add_row(
      {"compliance post-recovery", format_double(result.post_recovery.compliance(), 4)});
  summary.add_row(
      {"transient retries", std::to_string(deployer.total_stats().transient_retries)});
  summary.add_row({"retry backoff (ms)", format_double(deployer.total_stats().backoff_ms, 0)});
  summary.add_row(
      {"fallback placements", std::to_string(deployer.total_stats().fallback_placements)});
  summary.add_row({"health events", std::to_string(dcgm.health_events().size())});
  bench::emit(summary, "extra_fault_recovery_summary");

  const Status prom = telemetry::write_text_file(
      "results/extra_fault_recovery_telemetry.prom",
      telemetry::to_prometheus(telemetry.metrics()));
  const Status jsonl = telemetry::write_text_file(
      "results/extra_fault_recovery_events.jsonl",
      telemetry::to_json_lines(telemetry.events()));
  if (prom.ok() && jsonl.ok()) {
    std::cout << "[telemetry: results/extra_fault_recovery_telemetry.prom ("
              << telemetry.metrics().series_count() << " series), "
              << "results/extra_fault_recovery_events.jsonl ("
              << telemetry.events().size() << " events)]\n\n";
  }

  std::cout << "One device loss degrades compliance only between the XID and the\n"
               "repair's activation; the displaced segments land on surviving GPUs\n"
               "(standby capacity only when their geometry is full), and compliance\n"
               "returns to the pre-failure level.\n";
  return 0;
}
