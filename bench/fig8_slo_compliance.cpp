// Reproduces Figure 8: SLO compliance rate of each framework under load
// (discrete-event simulation, three seeds per cell, batch-weighted
// compliance as Section IV-C1 defines). The paper shows every framework at
// 100% except a gpulet episode (~3.5% violations) caused by its optimistic
// interference estimates; iGniter cannot run S5/S6.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "scenarios/experiment.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/telemetry.hpp"

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Figure 8", "SLO compliance rate of each baseline and ParvaGPU");

  const ExperimentContext context = ExperimentContext::create();

  // One shared sink across every (framework, scenario, seed) simulation;
  // the sharded registry merges the concurrent seed runs. The exposition
  // snapshot lands next to the figure CSVs.
  telemetry::Telemetry telemetry;

  std::vector<std::string> header = {"compliance"};
  for (const Scenario& sc : all_scenarios()) header.push_back(sc.name);
  TextTable table(header);
  std::vector<std::string> tail_header = {"worst p99/SLO"};
  for (const Scenario& sc : all_scenarios()) tail_header.push_back(sc.name);
  TextTable tail_table(tail_header);

  for (Framework framework : all_frameworks()) {
    std::vector<std::string> row = {framework_name(framework)};
    std::vector<std::string> tail_row = {framework_name(framework)};
    for (const Scenario& sc : all_scenarios()) {
      OnlineStats compliance;
      OnlineStats tail;
      bool feasible = true;
      // One schedule per cell; the three seed simulations run concurrently
      // on the context pool and come back in seed order, so the running
      // means below accumulate exactly as the old serial loop did.
      const std::uint64_t seeds[] = {11ULL, 23ULL, 47ULL};
      ExperimentOptions options;
      options.run_simulation = true;
      options.sim.duration_ms = 15'000.0;
      options.sim.telemetry = &telemetry;
      for (const ExperimentResult& r :
           run_experiment_seeds(context, framework, sc, options, seeds)) {
        if (!r.feasible) {
          feasible = false;
          break;
        }
        compliance.add(r.slo_compliance);
        tail.add(r.worst_p99_over_slo);
      }
      row.push_back(feasible ? format_double(compliance.mean(), 4) : "fail");
      tail_row.push_back(feasible ? format_double(tail.mean(), 3) : "fail");
    }
    table.add_row(std::move(row));
    tail_table.add_row(std::move(tail_row));
  }
  bench::emit(table, "fig8_slo_compliance");
  std::cout << "Tail headroom (worst per-service p99 latency over SLO; < 1 = headroom):\n";
  bench::emit(tail_table, "fig8_tail_headroom");

  const Status snapshot = telemetry::write_text_file(
      "results/fig8_telemetry.prom", telemetry::to_prometheus(telemetry.metrics()));
  if (snapshot.ok()) {
    std::cout << "[telemetry: results/fig8_telemetry.prom ("
              << telemetry.metrics().series_count() << " series)]\n\n";
  }

  std::cout << "Paper: all frameworks compliant except gpulet (3.5% violations in one\n"
               "       scenario, attributed to interference misprediction); iGniter\n"
               "       cannot execute S5/S6.\n";
  return 0;
}
