// Shared helpers for the per-figure bench binaries: consistent headers,
// table printing, and CSV output under results/.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>

#include "common/table.hpp"

namespace parva::bench {

/// Prints the figure banner.
inline void banner(const std::string& figure, const std::string& caption) {
  std::cout << "==============================================================\n"
            << figure << " — " << caption << "\n"
            << "==============================================================\n";
}

/// Prints a table and mirrors it to results/<stem>.csv.
inline void emit(const TextTable& table, const std::string& stem) {
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  if (!ec) write_csv_file("results/" + stem + ".csv", table.to_csv());
  std::cout << "\n[csv: results/" << stem << ".csv]\n\n";
}

}  // namespace parva::bench
