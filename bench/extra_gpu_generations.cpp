// Extension (paper Section V discussion): ParvaGPU across GPU generations.
// Ampere/Hopper/Blackwell MIG parts share the A100's instance geometry, so
// the algorithms transfer unchanged; only the per-GPC compute rate (and
// hence the profiles) differ. This bench re-profiles for an H100-class
// part and compares fleet sizes per scenario.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "core/metrics.hpp"
#include "core/parvagpu.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Extension", "ParvaGPU fleet size across GPU generations (A100 vs H100)");

  TextTable table({"generation", "S1", "S2", "S3", "S4", "S5", "S6", "total"});
  for (const perfmodel::GpuGeneration generation :
       {perfmodel::kA100, perfmodel::kH100}) {
    perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin(), generation);
    profiler::Profiler profiler(perf);
    const auto profiles = profiler.profile_all(perfmodel::ModelCatalog::builtin().names());
    core::ParvaGpuScheduler scheduler(profiles);

    std::vector<std::string> row = {generation.name};
    int total = 0;
    for (const Scenario& sc : all_scenarios()) {
      const auto result = scheduler.schedule(sc.services);
      if (!result.ok()) {
        row.push_back("fail");
        continue;
      }
      const int gpus = result.value().deployment.gpu_count;
      row.push_back(std::to_string(gpus));
      total += gpus;
    }
    row.push_back(std::to_string(total));
    table.add_row(std::move(row));
  }
  bench::emit(table, "extra_gpu_generations");

  std::cout << "The 19 MIG configurations and all ParvaGPU algorithms apply unchanged;\n"
               "only the profiles move. An H100-class part (~1.9x per-GPC compute)\n"
               "roughly halves the fleet at high request rates.\n";
  return 0;
}
