// google-benchmark microbenchmarks of the building blocks: MIG geometry
// enumeration, the Segment Configurator, the Segment Allocator stages, the
// end-to-end schedulers, and the discrete-event simulator throughput.
#include <benchmark/benchmark.h>

#include "core/allocator.hpp"
#include "core/configurator.hpp"
#include "core/parvagpu.hpp"
#include "gpu/mig_geometry.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/experiment.hpp"
#include "serving/cluster_sim.hpp"

namespace {

using namespace parva;
using namespace parva::scenarios;

const ExperimentContext& context() {
  static const ExperimentContext ctx = ExperimentContext::create();
  return ctx;
}

void BM_MigEnumerateMaximalConfigs(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpu::enumerate_maximal_configs());
  }
}
BENCHMARK(BM_MigEnumerateMaximalConfigs);

void BM_ProfileOneModel(benchmark::State& state) {
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(perf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.profile("inceptionv3"));
  }
}
BENCHMARK(BM_ProfileOneModel);

// The production path: Optimal Triplet Decision against the indexed
// surfaces (one prefix-argmax lookup per instance size).
void BM_SegmentConfigurator(benchmark::State& state) {
  const auto& services = scenario("S6").services;
  core::SegmentConfigurator configurator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(configurator.configure(services, context().surfaces()));
  }
}
BENCHMARK(BM_SegmentConfigurator);

// The reference path the surfaces replaced: full profile-table scans.
// Kept as the before/after yardstick for the fast-path speedup.
void BM_SegmentConfiguratorScan(benchmark::State& state) {
  const auto& services = scenario("S6").services;
  core::SegmentConfigurator configurator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(configurator.configure(services, context().profiles()));
  }
}
BENCHMARK(BM_SegmentConfiguratorScan);

// Parallel per-service configuration on the shared pool (same output).
void BM_SegmentConfiguratorParallel(benchmark::State& state) {
  const auto& services = scenario("S6").services;
  core::SegmentConfigurator configurator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        configurator.configure(services, context().surfaces(), context().pool()));
  }
}
BENCHMARK(BM_SegmentConfiguratorParallel);

void BM_SegmentAllocator(benchmark::State& state) {
  const auto& services = scenario("S6").services;
  core::SegmentConfigurator configurator;
  auto configured = configurator.configure(services, context().profiles()).value();
  core::SegmentAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(configured));
  }
}
BENCHMARK(BM_SegmentAllocator);

void BM_Scheduler(benchmark::State& state, Framework framework, const char* scenario_name) {
  const Scenario& sc = scenario(scenario_name);
  for (auto _ : state) {
    auto scheduler = context().make_scheduler(framework);
    benchmark::DoNotOptimize(scheduler->schedule(sc.services));
  }
}
BENCHMARK_CAPTURE(BM_Scheduler, parvagpu_s2, Framework::kParvaGpu, "S2");
BENCHMARK_CAPTURE(BM_Scheduler, parvagpu_s6, Framework::kParvaGpu, "S6");
BENCHMARK_CAPTURE(BM_Scheduler, gpulet_s6, Framework::kGpulet, "S6");
BENCHMARK_CAPTURE(BM_Scheduler, migserving_s2, Framework::kMigServing, "S2");

void BM_ClusterSimulationS2(benchmark::State& state) {
  const Scenario& sc = scenario("S2");
  auto scheduler = context().make_scheduler(Framework::kParvaGpu);
  const auto schedule = scheduler->schedule(sc.services).value();
  serving::SimulationOptions options;
  options.duration_ms = 1'000.0;
  options.warmup_ms = 100.0;
  std::size_t events = 0;
  for (auto _ : state) {
    serving::ClusterSimulation sim(schedule.deployment, sc.services, context().perf());
    const serving::SimulationResult result = sim.run(options);
    events += result.events_processed;
    benchmark::DoNotOptimize(result);
  }
  state.counters["events/s"] = benchmark::Counter(static_cast<double>(events),
                                                  benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterSimulationS2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
