// Reproduces Figure 5: total number of GPUs used by each framework across
// scenarios S1-S6, plus the average ParvaGPU savings the paper headlines
// (46.5% vs gpulet, 34.6% vs iGniter, 41.0% vs MIG-serving; 12.5/7.1/11.1%
// vs ParvaGPU-single in S4/S5/S6).
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "scenarios/experiment.hpp"

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Figure 5", "Total number of GPUs of each baseline and ParvaGPU");

  const ExperimentContext context = ExperimentContext::create();
  const auto frameworks = all_frameworks();

  std::vector<std::string> header = {"framework"};
  for (const Scenario& sc : all_scenarios()) header.push_back(sc.name);
  TextTable table(header);

  // savings[f] accumulates ParvaGPU's relative GPU savings vs framework f.
  std::map<std::string, std::pair<double, int>> savings;
  std::map<std::string, std::map<std::string, int>> gpus;

  for (Framework framework : frameworks) {
    std::vector<std::string> row = {framework_name(framework)};
    for (const Scenario& sc : all_scenarios()) {
      const ExperimentResult r = run_experiment(context, framework, sc);
      if (!r.feasible) {
        row.push_back("fail");
      } else {
        row.push_back(std::to_string(r.gpu_count));
        gpus[framework_name(framework)][sc.name] = r.gpu_count;
      }
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, "fig5_total_gpus");

  const auto& parva_row = gpus["ParvaGPU"];
  for (const auto& [name, by_scenario] : gpus) {
    if (name == "ParvaGPU") continue;
    double sum = 0.0;
    int count = 0;
    for (const auto& [scenario_name, n] : by_scenario) {
      const auto it = parva_row.find(scenario_name);
      if (it == parva_row.end() || n == 0) continue;
      sum += 1.0 - static_cast<double>(it->second) / static_cast<double>(n);
      ++count;
    }
    if (count > 0) {
      std::cout << "ParvaGPU saves on average " << format_double(100.0 * sum / count, 1)
                << "% GPUs vs " << name << " (over " << count << " feasible scenarios)\n";
    }
  }
  std::cout << "Paper: 46.5% vs gpulet, 34.6% vs iGniter, 41.0% vs MIG-serving;\n"
               "       iGniter cannot execute S5/S6 (high request rates).\n";
  return 0;
}
