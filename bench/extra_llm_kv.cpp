// KV-cache pressure study: the same generative workload served by
// different MIG sizings (DESIGN.md §4.7). Small instances replicate the
// model weights per MPS process and leave little headroom for KV cache;
// large instances amortise one weight replica across more GPCs, so under
// memory pressure they admit more concurrent decodes. The figure compares
// fixed-GPC-budget fleets of 1g/2g/3g/7g instances serving an identical
// llama-3b assistant workload, under both admission policies.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "core/deployment.hpp"
#include "gpu/mig_geometry.hpp"
#include "perfmodel/analytical_model.hpp"
#include "perfmodel/llm_model.hpp"
#include "perfmodel/model_catalog.hpp"
#include "scenarios/scenarios.hpp"
#include "serving/cluster_sim.hpp"
#include "serving/llm_engine.hpp"

namespace {

using namespace parva;

/// Four A100s tiled with size-g instances (one MPS process per GPC), all
/// serving the one service.
core::Deployment fleet_of(int g, const core::ServiceSpec& spec) {
  core::Deployment deployment;
  deployment.framework = "llm-kv-study";
  deployment.uses_mig = true;
  deployment.gpu_count = 4;
  const int per_gpu = gpu::kGpcSlots / g;
  for (int gpu = 0; gpu < deployment.gpu_count; ++gpu) {
    for (int i = 0; i < per_gpu; ++i) {
      core::DeployedUnit unit;
      unit.service_id = spec.id;
      unit.model = spec.model;
      unit.gpu_index = gpu;
      unit.gpc_grant = static_cast<double>(g);
      unit.batch = 8;
      unit.procs = g;  // one decode process per GPC at every sizing
      // Aggregate decode ceiling of the slice, as requests/s at the
      // workload's mean generation length — the dispatcher's load score.
      const auto& traits = perfmodel::LlmCatalog::builtin().at(spec.model);
      const double tok_per_s =
          perfmodel::decode_tok_per_s(traits, unit.gpc_grant, unit.batch);
      unit.planned_throughput = unit.actual_throughput =
          tok_per_s / spec.llm->gen_tokens_mean;
      unit.planned_latency_ms = unit.actual_latency_ms = 2'000.0;
      deployment.units.push_back(unit);
    }
  }
  return deployment;
}

}  // namespace

int main() {
  using namespace parva;

  bench::banner("LLM KV pressure",
                "MIG sizings under KV-cache memory pressure (llama-3b)");

  // An assistant-shaped workload with a long-context KV footprint: one
  // resident batch costs ~3.6 GiB, so a 1g slice (10 GiB - 6 GiB weights)
  // fits one batch, while a 7g slice (80 - 42) fits ~10.
  core::ServiceSpec spec{0, "llama-3b", 20'000.0, 30.0, {}};
  spec.llm = core::LlmWorkload{300.0, 0.6, 2048, 150.0, 0.7, 1024, 1.0e6};
  const std::vector<core::ServiceSpec> services = {spec};

  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::with_llm());

  TextTable table({"size", "units", "gpcs", "policy", "tok/s", "rejected", "evicted",
                   "peak KV", "compliance"});
  for (const int g : {1, 2, 3, 7}) {
    const core::Deployment deployment = fleet_of(g, spec);
    serving::ClusterSimulation sim(deployment, services, perf);
    for (const auto admission :
         {serving::LlmAdmissionPolicy::kReject, serving::LlmAdmissionPolicy::kEvict}) {
      serving::SimulationOptions options;
      options.duration_ms = 20'000.0;
      options.arrivals = serving::ArrivalProcess::kBursty;
      options.llm.admission = admission;
      const serving::SimulationResult result = sim.run(options);
      double peak = 0.0;
      for (const double kv : result.unit_kv_peak) peak = std::max(peak, kv);
      table.add_row({std::to_string(g) + "g",
                     std::to_string(deployment.units.size()),
                     format_double(deployment.total_granted_gpcs(), 0),
                     serving::to_string(admission),
                     format_double(static_cast<double>(result.generated_tokens) /
                                       (options.duration_ms / 1000.0),
                                   0),
                     std::to_string(result.requests_rejected),
                     std::to_string(result.requests_evicted),
                     format_double(peak * 100.0, 1) + "%",
                     format_double(result.overall_compliance(), 4)});
    }
  }
  bench::emit(table, "extra_llm_kv");

  std::cout << "Weight replication is the small-instance tax: every 1g process\n"
            << "carries its own copy of the model, so the same GPC budget holds\n"
            << "far less KV cache and sheds work under memory pressure that the\n"
            << "7g sizing absorbs entirely.\n";
  return 0;
}
