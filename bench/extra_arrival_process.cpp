// Robustness study: SLO compliance under paced (deterministic) vs Poisson
// arrivals. The paper's load generators drive a specified request rate
// (paced); open-loop Poisson traffic adds burstiness that eats into the
// queueing half of the SLO budget. This bench quantifies how much headroom
// each framework's deployments carry.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "scenarios/experiment.hpp"

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Robustness", "SLO compliance: paced vs Poisson arrivals");

  const ExperimentContext context = ExperimentContext::create();

  TextTable table({"framework", "scenario", "paced", "poisson"});
  for (Framework framework :
       {Framework::kGpulet, Framework::kMigServing, Framework::kParvaGpu}) {
    for (const char* name : {"S2", "S4", "S6"}) {
      ExperimentOptions paced;
      paced.run_simulation = true;
      paced.sim.duration_ms = 10'000.0;
      ExperimentOptions poisson = paced;
      poisson.sim.arrivals = serving::ArrivalProcess::kPoisson;

      const auto a = run_experiment(context, framework, scenario(name), paced);
      const auto b = run_experiment(context, framework, scenario(name), poisson);
      if (!a.feasible) continue;
      table.add_row({framework_name(framework), name, format_double(a.slo_compliance, 4),
                     format_double(b.slo_compliance, 4)});
    }
  }
  bench::emit(table, "extra_arrival_process");

  std::cout << "The internal-latency budget (SLO/2) absorbs moderate burstiness;\n"
               "deployments running segments near full load lose a few tenths of a\n"
               "percent of batches under Poisson traffic.\n";
  return 0;
}
