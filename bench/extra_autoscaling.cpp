// Extension: elastic fleets under fluctuating demand. Runs scenario S2's
// services through one simulated day of diurnal load with epoch-based
// reconfiguration, and reports GPU-hours vs static peak provisioning —
// the cost argument that motivates the paper's fast reconfiguration path.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/scenarios.hpp"
#include "serving/autoscaler.hpp"

int main() {
  using namespace parva;

  bench::banner("Extension", "Elastic ParvaGPU fleet over one diurnal day (S2 services)");

  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(perf);
  const auto profiles = profiler.profile_all(perfmodel::ModelCatalog::builtin().names());

  // S2 at 4x rates so the fleet is large enough for elasticity to matter.
  std::vector<core::ServiceSpec> services = scenarios::scenario("S2").services;
  for (auto& spec : services) spec.request_rate *= 4.0;

  TextTable table({"trace", "gpu_hours", "static_gpu_hours", "saving", "peak_gpus",
                   "reconfigs", "worst_epoch_compliance"});
  struct Case {
    const char* name;
    serving::RateTrace trace;
  };
  const std::vector<Case> cases = {
      {"diurnal", serving::RateTrace::diurnal()},
      {"flat", serving::RateTrace::flat(1.0)},
      {"flash-surge 2.5x", serving::RateTrace::surge(12.0, 14.0, 2.5)},
  };
  for (const Case& c : cases) {
    serving::Autoscaler autoscaler(profiles, perf);
    const auto report = autoscaler.run_day(services, c.trace);
    if (!report.ok()) {
      std::cerr << c.name << " failed: " << report.error().to_string() << "\n";
      continue;
    }
    double worst = 1.0;
    for (const auto& epoch : report.value().epochs) {
      worst = std::min(worst, epoch.slo_compliance);
    }
    table.add_row({c.name, format_double(report.value().gpu_hours, 1),
                   format_double(report.value().static_gpu_hours, 1),
                   format_double(100.0 * report.value().saving_vs_static(), 1) + "%",
                   format_double(report.value().peak_gpus, 0),
                   std::to_string(report.value().total_reconfigurations),
                   format_double(worst, 4)});
  }
  bench::emit(table, "extra_autoscaling");
  return 0;
}
