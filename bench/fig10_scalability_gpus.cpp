// Reproduces Figure 10: total GPUs as the S5 service count scales from 1x
// to 10x, using each framework's predictor (no physical deployment — the
// schedulers already operate on plans). iGniter is excluded: it cannot run
// S5 (as in the paper).
//
// Paper: ParvaGPU uses on average 45.2% / 30% / 7.4% fewer GPUs than
// gpulet / MIG-serving / ParvaGPU-single across the folds.
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "scenarios/experiment.hpp"

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Figure 10", "Total GPUs with S5 services scaled 1x..10x (predictor mode)");

  const ExperimentContext context = ExperimentContext::create();
  const std::vector<Framework> frameworks = {Framework::kGpulet, Framework::kMigServing,
                                             Framework::kParvaGpu,
                                             Framework::kParvaGpuSingle};

  std::vector<std::string> header = {"framework"};
  for (int fold = 1; fold <= 10; ++fold) header.push_back("x" + std::to_string(fold));
  TextTable table(header);

  std::map<std::string, std::vector<int>> gpus;
  for (Framework framework : frameworks) {
    std::vector<std::string> row = {framework_name(framework)};
    for (int fold = 1; fold <= 10; ++fold) {
      const Scenario scaled = scale_scenario(scenario("S5"), fold);
      const ExperimentResult r = run_experiment(context, framework, scaled);
      if (!r.feasible) {
        row.push_back("fail");
      } else {
        row.push_back(std::to_string(r.gpu_count));
        gpus[framework_name(framework)].push_back(r.gpu_count);
      }
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, "fig10_scalability_gpus");

  const auto& parva = gpus["ParvaGPU"];
  for (const auto& [name, counts] : gpus) {
    if (name == "ParvaGPU" || counts.size() != parva.size()) continue;
    double sum = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      sum += 1.0 - static_cast<double>(parva[i]) / static_cast<double>(counts[i]);
    }
    std::cout << "ParvaGPU saves on average "
              << format_double(100.0 * sum / static_cast<double>(counts.size()), 1)
              << "% GPUs vs " << name << "\n";
  }
  std::cout << "Paper: 45.2% vs gpulet, 30% vs MIG-serving, 7.4% vs ParvaGPU-single.\n";
  return 0;
}
