// Reproduces Figure 10: total GPUs as the S5 service count scales from 1x
// to 10x, using each framework's predictor (no physical deployment — the
// schedulers already operate on plans). iGniter is excluded: it cannot run
// S5 (as in the paper).
//
// Paper: ParvaGPU uses on average 45.2% / 30% / 7.4% fewer GPUs than
// gpulet / MIG-serving / ParvaGPU-single across the folds.
//
// Two cluster-scale extensions follow the paper table (ROADMAP: "100M+
// events/s and 10k-GPU clusters"): ParvaGPU fleets grown to ~1k-10k GPUs,
// and the sharded DES engine (DESIGN.md §4.5) replaying the ~1k-GPU fleet
// with 1/2/4 shards.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "scenarios/experiment.hpp"
#include "serving/cluster_sim.hpp"

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

}  // namespace

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Figure 10", "Total GPUs with S5 services scaled 1x..10x (predictor mode)");

  const ExperimentContext context = ExperimentContext::create();
  const std::vector<Framework> frameworks = {Framework::kGpulet, Framework::kMigServing,
                                             Framework::kParvaGpu,
                                             Framework::kParvaGpuSingle};

  std::vector<std::string> header = {"framework"};
  for (int fold = 1; fold <= 10; ++fold) header.push_back("x" + std::to_string(fold));
  TextTable table(header);

  std::map<std::string, std::vector<int>> gpus;
  for (Framework framework : frameworks) {
    std::vector<std::string> row = {framework_name(framework)};
    for (int fold = 1; fold <= 10; ++fold) {
      const Scenario scaled = scale_scenario(scenario("S5"), fold);
      const ExperimentResult r = run_experiment(context, framework, scaled);
      if (!r.feasible) {
        row.push_back("fail");
      } else {
        row.push_back(std::to_string(r.gpu_count));
        gpus[framework_name(framework)].push_back(r.gpu_count);
      }
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, "fig10_scalability_gpus");

  const auto& parva = gpus["ParvaGPU"];
  for (const auto& [name, counts] : gpus) {
    if (name == "ParvaGPU" || counts.size() != parva.size()) continue;
    double sum = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      sum += 1.0 - static_cast<double>(parva[i]) / static_cast<double>(counts[i]);
    }
    std::cout << "ParvaGPU saves on average "
              << format_double(100.0 * sum / static_cast<double>(counts.size()), 1)
              << "% GPUs vs " << name << "\n";
  }
  std::cout << "Paper: 45.2% vs gpulet, 30% vs MIG-serving, 7.4% vs ParvaGPU-single.\n\n";

  // Cluster scale: folds sized so the ParvaGPU fleet lands at roughly
  // 1k / 2.5k / 5k / 10k GPUs (~14.6 GPUs per S5 fold). Predictor mode,
  // ParvaGPU only — the point is that the scheduler and its data
  // structures hold up at fleet sizes the baselines above never reach.
  bench::banner("Figure 10b", "ParvaGPU fleets grown to 1k-10k GPUs (predictor mode)");
  TextTable cluster({"fold", "services", "gpus", "schedule (ms)", "sim 250ms (ms)"});
  core::Deployment shard_deployment;
  std::vector<core::ServiceSpec> shard_services;
  for (const int fold : {70, 175, 350, 700}) {
    const Scenario scaled = scale_scenario(scenario("S5"), fold);
    auto scheduler = context.make_scheduler(Framework::kParvaGpu);
    const auto start = std::chrono::steady_clock::now();
    const auto outcome = scheduler->schedule(scaled.services);
    const double ms = elapsed_ms(start);
    if (!outcome.ok()) {
      std::cerr << "cluster-scale scheduling failed at fold " << fold << ": "
                << outcome.error().to_string() << "\n";
      return 1;
    }
    // Single-shard replay of 250 ms of fleet time: the tournament arrival
    // scheduler (shard_engine.hpp) keeps the per-event cost O(log services)
    // at every fold — this column used to grow quadratically in fold when
    // the selection was a flat O(services) scan.
    serving::ClusterSimulation fold_sim(outcome.value().deployment, scaled.services,
                                        context.perf());
    serving::SimulationOptions fold_options;
    fold_options.duration_ms = 250.0;
    fold_options.warmup_ms = 50.0;
    const auto sim_start = std::chrono::steady_clock::now();
    const serving::SimulationResult fold_result = fold_sim.run(fold_options);
    const double sim_ms = elapsed_ms(sim_start);
    if (fold_result.events_processed == 0) {
      std::cerr << "cluster-scale replay produced no events at fold " << fold << "\n";
      return 1;
    }
    std::string fold_label = "x";  // avoids a GCC 12 -Wrestrict false positive
    fold_label += std::to_string(fold);
    cluster.add_row({std::move(fold_label), std::to_string(scaled.services.size()),
                     std::to_string(outcome.value().deployment.gpu_count),
                     format_double(ms, 1), format_double(sim_ms, 1)});
    if (fold == 70) {  // ~1k GPUs: the shard-curve workload below
      shard_deployment = outcome.value().deployment;
      shard_services = scaled.services;
    }
  }
  bench::emit(cluster, "fig10_cluster_scale");

  // Shard scaling on the ~1k-GPU fleet: critical-path throughput (total
  // events over the busiest shard's span; shards timed sequentially so the
  // number is scheduler-contention-free — see bench/perf_regression.cpp).
  bench::banner("Figure 10c", "Sharded DES replay of the ~1k-GPU fleet (250 ms)");
  serving::SimulationOptions sim_options;
  sim_options.duration_ms = 250.0;
  sim_options.warmup_ms = 50.0;
  TextTable shard_table({"shards", "events", "events/s (critical path)", "speedup"});
  double base_rate = 0.0;
  for (const int shards : {1, 2, 4}) {
    sim_options.shards = shards;
    serving::ClusterSimulation sim(shard_deployment, shard_services, context.perf());
    const serving::SimulationResult result = sim.run(sim_options);
    double critical_ms = 0.0;
    for (const double busy : result.shard_busy_ms) {
      critical_ms = std::max(critical_ms, busy);
    }
    const double rate = static_cast<double>(result.events_processed) / (critical_ms / 1000.0);
    if (shards == 1) base_rate = rate;
    shard_table.add_row({std::to_string(shards), std::to_string(result.events_processed),
                         format_double(rate, 0), format_double(rate / base_rate, 2) + "x"});
  }
  bench::emit(shard_table, "fig10_shard_scaling");
  std::cout << "With the tournament arrival scheduler the per-event cost is\n"
               "O(log local services), so the speedup tracks the shard count\n"
               "closely — the old flat O(local services) scan made it wildly\n"
               "superlinear at this fleet size by also shrinking per-event cost.\n";
  return 0;
}
