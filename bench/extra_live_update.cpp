// Extension (paper Section III-F future work): live reconfiguration with
// shadow processes. Applies a rate surge to one S2 service and compares
// the per-service unavailability of in-place vs shadowed updates on the
// simulated control plane.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "core/live_update.hpp"
#include "core/parvagpu.hpp"
#include "core/reconfigure.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace parva;

  bench::banner("Extension", "Live reconfiguration: in-place vs shadow processes");

  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(perf);
  const auto profiles = profiler.profile_all(perfmodel::ModelCatalog::builtin().names());

  TextTable table({"updated service", "strategy", "downtime_ms", "makespan_ms",
                   "shadows", "untouched"});
  const auto& scenario = scenarios::scenario("S2");
  for (const int target_service : {4 /*inceptionv3*/, 8 /*resnet-50*/}) {
    for (const auto strategy : {core::UpdateStrategy::kInPlace,
                                core::UpdateStrategy::kShadowed}) {
      core::ParvaGpuScheduler scheduler(profiles);
      const auto current = scheduler.schedule(scenario.services).value().deployment;
      auto plan = scheduler.last_plan();
      auto configured = scheduler.last_configured();

      gpu::GpuCluster cluster(8);
      gpu::NvmlSim nvml(cluster);
      core::Deployer deployer(nvml, perf);
      auto state = deployer.deploy(current).value();

      // The service's rate triples.
      core::ServiceSpec updated = scenario.services[static_cast<std::size_t>(target_service)];
      updated.request_rate *= 3.0;
      core::Reconfigurer reconfigurer{core::SegmentConfigurator(), core::SegmentAllocator()};
      if (!reconfigurer.update_service(plan, configured, updated, profiles).ok()) continue;
      core::Deployment target = core::ParvaGpuScheduler::to_deployment(plan, "ParvaGPU");
      for (auto& unit : target.units) {
        for (const auto& spec : scenario.services) {
          if (spec.id == unit.service_id) unit.model = spec.model;
        }
      }

      core::LiveUpdater updater(deployer);
      const auto report = updater.apply(current, state, target, strategy);
      if (!report.ok()) continue;
      table.add_row({updated.model,
                     strategy == core::UpdateStrategy::kShadowed ? "shadowed" : "in-place",
                     format_double(report.value().worst_downtime_ms(), 0),
                     format_double(report.value().makespan_ms, 0),
                     std::to_string(report.value().shadow_units),
                     std::to_string(report.value().untouched_units)});
    }
  }
  bench::emit(table, "extra_live_update");

  std::cout << "Shadow processes eliminate the reconfiguration window entirely at the\n"
               "cost of temporary spare-GPU capacity — the trade the paper defers to\n"
               "future work.\n";
  return 0;
}
