// Reproduces Figure 7: GPU external fragmentation rate of each framework.
// Reported both strictly (Eq. 4 complement over all GPUs, which charges the
// unavoidable rounding remainder on the trailing GPU) and excluding the
// trailing partial GPU (the unusable-hole measure Allocation Optimization
// targets; the paper reports ParvaGPU at 0%).
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "scenarios/experiment.hpp"

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Figure 7", "External fragmentation rate of each baseline and ParvaGPU");

  const ExperimentContext context = ExperimentContext::create();

  for (const bool excl_tail : {false, true}) {
    std::vector<std::string> header = {excl_tail ? "frag_excl_tail" : "frag_strict"};
    for (const Scenario& sc : all_scenarios()) header.push_back(sc.name);
    TextTable table(header);
    for (Framework framework : all_frameworks()) {
      std::vector<std::string> row = {framework_name(framework)};
      for (const Scenario& sc : all_scenarios()) {
        const ExperimentResult r = run_experiment(context, framework, sc);
        if (!r.feasible) {
          row.push_back("fail");
        } else {
          row.push_back(format_double(
              excl_tail ? r.fragmentation_excl_tail : r.external_fragmentation, 3));
        }
      }
      table.add_row(std::move(row));
    }
    bench::emit(table, excl_tail ? "fig7_fragmentation_excl_tail" : "fig7_fragmentation");
  }

  std::cout << "Paper: ParvaGPU eliminates external fragmentation in all scenarios;\n"
               "       iGniter averages 26.9%; gpulet grants all space (0%);\n"
               "       MIG-serving converts fragmentation into slack via scoring.\n";
  return 0;
}
