// Reproduces Figures 3 and 4: InceptionV3 throughput (req/s) and latency
// (ms) across MIG instance sizes and batch sizes, for 1, 2, and 3 MPS
// processes. Out-of-memory grid points print as "OOM", matching the holes
// in the paper's surfaces.
//
// Paper anchors (A100): g=1,b=4 -> 354/444/446 req/s at 11/18/27 ms;
// g=4,b=8 -> 786/1695/1810 req/s at 10/9/13 ms.
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "profiler/profiler.hpp"

int main() {
  using namespace parva;

  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(perf);
  const profiler::ProfileTable table = profiler.profile("inceptionv3");

  bench::banner("Figure 3 / Figure 4",
                "InceptionV3 throughput and latency vs (instance size, batch, processes)");

  const std::vector<int> sizes = {1, 2, 3, 4, 7};
  const std::vector<int> batches = {1, 2, 4, 8, 16, 32, 64, 128};

  for (int procs = 1; procs <= 3; ++procs) {
    for (const bool latency : {false, true}) {
      std::vector<std::string> header = {latency ? "latency_ms(b)" : "throughput(b)"};
      for (int g : sizes) header.push_back("g=" + std::to_string(g));
      TextTable out(header);
      for (int batch : batches) {
        std::vector<std::string> row = {"b=" + std::to_string(batch)};
        for (int g : sizes) {
          const profiler::ProfilePoint* point = table.find(g, batch, procs);
          if (point == nullptr || point->oom) {
            row.push_back("OOM");
          } else {
            row.push_back(format_double(latency ? point->latency_ms : point->throughput, 1));
          }
        }
        out.add_row(std::move(row));
      }
      std::cout << (latency ? "Latency (ms), " : "Throughput (req/s), ") << procs
                << " process(es):\n";
      bench::emit(out, std::string(latency ? "fig4" : "fig3") + "_p" + std::to_string(procs) +
                           "_inceptionv3");
    }
  }

  std::cout << "Paper anchors: g1/b4 -> 354,444,446 req/s @ 11,18,27 ms; "
               "g4/b8 -> 786,1695,1810 req/s @ 10,9,13 ms\n";
  return 0;
}
