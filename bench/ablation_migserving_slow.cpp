// Ablation: MIG-serving's fast (greedy) vs slow (annealing) optimizer.
// The paper reports the slow algorithm needs ~6 hours per scheduling run,
// making it unusable under fluctuating request rates; here both are run
// with a bounded iteration budget to show the quality/latency trade the
// paper describes (slow is at best marginally better, at orders of
// magnitude more scheduling time).
#include <iostream>

#include "baselines/mig_serving.hpp"
#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "scenarios/experiment.hpp"

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Ablation", "MIG-serving fast (greedy) vs slow (annealing) optimizer");

  const ExperimentContext context = ExperimentContext::create();

  TextTable table({"scenario", "fast.gpus", "fast.delay_ms", "slow.gpus", "slow.delay_ms",
                   "slowdown"});
  for (const Scenario& sc : all_scenarios()) {
    baselines::MigServingScheduler fast(context.profiles());
    baselines::MigServingOptions slow_options;
    slow_options.mode = baselines::MigServingMode::kSlow;
    slow_options.annealing_iterations = 3000;
    baselines::MigServingScheduler slow(context.profiles(), slow_options);

    const auto fast_result = fast.schedule(sc.services);
    const auto slow_result = slow.schedule(sc.services);
    if (!fast_result.ok() || !slow_result.ok()) {
      table.add_row({sc.name, "fail", "-", "fail", "-", "-"});
      continue;
    }
    const double slowdown = slow_result.value().scheduling_delay_ms /
                            std::max(1e-9, fast_result.value().scheduling_delay_ms);
    table.add_row({sc.name, std::to_string(fast_result.value().deployment.gpu_count),
                   format_double(fast_result.value().scheduling_delay_ms, 3),
                   std::to_string(slow_result.value().deployment.gpu_count),
                   format_double(slow_result.value().scheduling_delay_ms, 3),
                   format_double(slowdown, 1) + "x"});
  }
  bench::emit(table, "ablation_migserving_slow");

  std::cout << "Paper: the slow algorithm takes ~6 h per scheduling run; only the fast\n"
               "       algorithm is practical (and is what Figures 5-11 compare).\n";
  return 0;
}
