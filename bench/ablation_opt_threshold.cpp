// Ablation (DESIGN.md): the Allocation Optimization threshold. The paper
// fixes the "fragmented GPU" threshold at 4 allocated GPCs heuristically;
// this bench sweeps 0 (optimization disabled for every GPU) through 7
// (every GPU eligible) on scenarios plus a segment-mix stress workload
// whose 4-GPC-heavy services leave right-block holes that only
// re-expression into small segments can fill.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "core/allocator.hpp"
#include "core/configurator.hpp"
#include "core/metrics.hpp"
#include "core/parvagpu.hpp"
#include "scenarios/experiment.hpp"

namespace {

/// A stress scenario dominated by 4-GPC segments: SLOs chosen so only
/// instance sizes >= 4 meet the latency bound for the bulk services while
/// small triplets still exist for re-expression at relaxed rates.
parva::scenarios::Scenario stress_mix() {
  using parva::core::ServiceSpec;
  parva::scenarios::Scenario sc;
  sc.name = "stress-4g";
  int id = 0;
  // vgg-19 at rates forcing several multi-GPC segments each.
  for (int i = 0; i < 6; ++i) {
    sc.services.push_back(ServiceSpec{id++, "vgg-19", 397, 2400, {}});
  }
  sc.services.push_back(ServiceSpec{id++, "resnet-50", 205, 1700, {}});
  sc.services.push_back(ServiceSpec{id++, "densenet-121", 183, 760, {}});
  return sc;
}

}  // namespace

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Ablation", "Allocation Optimization threshold sweep (paper fixes 4)");

  const ExperimentContext context = ExperimentContext::create();

  std::vector<Scenario> cases;
  for (const char* name : {"S3", "S4", "S5", "S6"}) cases.push_back(scenario(name));
  cases.push_back(stress_mix());

  std::vector<std::string> header = {"threshold"};
  for (const Scenario& sc : cases) {
    header.push_back(sc.name + ".gpus");
    header.push_back(sc.name + ".frag");
  }
  TextTable table(header);

  for (int threshold = 0; threshold <= 7; ++threshold) {
    std::vector<std::string> row = {std::to_string(threshold)};
    for (const Scenario& sc : cases) {
      core::ParvaGpuOptions options;
      options.optimization_threshold_gpcs = threshold;
      options.optimize_allocation = threshold > 0;
      core::ParvaGpuScheduler scheduler(context.profiles(), options);
      auto result = scheduler.schedule(sc.services);
      if (!result.ok()) {
        row.push_back("fail");
        row.push_back("fail");
        continue;
      }
      const auto metrics = core::compute_metrics(result.value().deployment, sc.services);
      row.push_back(std::to_string(metrics.gpu_count));
      row.push_back(format_double(metrics.external_fragmentation, 3));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, "ablation_opt_threshold");

  std::cout << "threshold=0 disables the optimization stage entirely\n"
               "(ParvaGPU-unoptimized); the paper's choice is 4.\n";
  return 0;
}
