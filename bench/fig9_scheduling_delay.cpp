// Reproduces Figure 9: scheduling delay of each framework per scenario —
// the wall-clock cost of producing a deployment map (profiling excluded,
// as in the paper: it is a one-time registration cost). Each cell is the
// median of repeated runs.
//
// Paper: ParvaGPU is on average 80% / 97.2% faster than gpulet /
// MIG-serving; iGniter is ~35% faster than ParvaGPU (at the price of
// slack); ParvaGPU-single is ~1.1 ms faster than ParvaGPU because it skips
// the process-count exploration.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "scenarios/experiment.hpp"

namespace {

double median_delay(const parva::scenarios::ExperimentContext& context,
                    parva::scenarios::Framework framework,
                    const parva::scenarios::Scenario& scenario, int repetitions) {
  std::vector<double> delays;
  delays.reserve(static_cast<std::size_t>(repetitions));
  for (int i = 0; i < repetitions; ++i) {
    const auto r = parva::scenarios::run_experiment(context, framework, scenario);
    if (!r.feasible) return -1.0;
    delays.push_back(r.scheduling_delay_ms);
  }
  std::sort(delays.begin(), delays.end());
  return delays[delays.size() / 2];
}

}  // namespace

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Figure 9", "Scheduling delay (ms) of each baseline and ParvaGPU");

  const ExperimentContext context = ExperimentContext::create();
  constexpr int kRepetitions = 15;

  std::vector<std::string> header = {"delay_ms"};
  for (const Scenario& sc : all_scenarios()) header.push_back(sc.name);
  TextTable table(header);

  for (Framework framework : all_frameworks()) {
    std::vector<std::string> row = {framework_name(framework)};
    for (const Scenario& sc : all_scenarios()) {
      const double delay = median_delay(context, framework, sc, kRepetitions);
      row.push_back(delay < 0.0 ? "fail" : format_double(delay, 3));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, "fig9_scheduling_delay");

  std::cout << "Paper: ParvaGPU 80% below gpulet and 97.2% below MIG-serving on average;\n"
               "       iGniter ~35% below ParvaGPU; ParvaGPU-single slightly faster than\n"
               "       ParvaGPU (no process-count exploration).\n";
  return 0;
}
