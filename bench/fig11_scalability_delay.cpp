// Reproduces Figure 11: scheduling delay as the S5 service count scales
// from 1x to 10x. MIG-serving's joint sizing+placement search makes its
// delay grow steeply with the service count; ParvaGPU's two-stage pipeline
// stays near-linear.
//
// Paper: ParvaGPU reduces delay by on average 15.8% vs gpulet and 99.9% vs
// MIG-serving; ParvaGPU-single is slightly faster than ParvaGPU.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "scenarios/experiment.hpp"

namespace {

double median_delay(const parva::scenarios::ExperimentContext& context,
                    parva::scenarios::Framework framework,
                    const parva::scenarios::Scenario& scenario, int repetitions) {
  std::vector<double> delays;
  for (int i = 0; i < repetitions; ++i) {
    const auto r = parva::scenarios::run_experiment(context, framework, scenario);
    if (!r.feasible) return -1.0;
    delays.push_back(r.scheduling_delay_ms);
  }
  std::sort(delays.begin(), delays.end());
  return delays[delays.size() / 2];
}

}  // namespace

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Figure 11", "Scheduling delay (ms) with S5 services scaled 1x..10x");

  const ExperimentContext context = ExperimentContext::create();
  const std::vector<Framework> frameworks = {Framework::kGpulet, Framework::kMigServing,
                                             Framework::kParvaGpu,
                                             Framework::kParvaGpuSingle};

  std::vector<std::string> header = {"delay_ms"};
  for (int fold = 1; fold <= 10; ++fold) header.push_back("x" + std::to_string(fold));
  TextTable table(header);

  for (Framework framework : frameworks) {
    std::vector<std::string> row = {framework_name(framework)};
    // Fewer repetitions for the heavyweight baseline at large folds.
    const int repetitions = framework == Framework::kMigServing ? 3 : 9;
    for (int fold = 1; fold <= 10; ++fold) {
      const Scenario scaled = scale_scenario(scenario("S5"), fold);
      const double delay = median_delay(context, framework, scaled, repetitions);
      row.push_back(delay < 0.0 ? "fail" : format_double(delay, 3));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, "fig11_scalability_delay");

  std::cout << "Paper: ParvaGPU reduces delay by 15.8% vs gpulet and 99.9% vs MIG-serving;\n"
               "       ParvaGPU-single slightly faster (no process-count exploration).\n";
  return 0;
}
