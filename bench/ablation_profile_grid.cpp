// Ablation (DESIGN.md / paper Section III-C): the profiling grid. The
// paper suggests eight power-of-two batch sizes and at most three MPS
// processes to keep the one-time profiling cost low. This bench sweeps the
// grid density and shows its effect on (a) profiling cost (grid points)
// and (b) the quality of the resulting ParvaGPU deployments.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "core/metrics.hpp"
#include "core/parvagpu.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Ablation", "Profiling grid density (paper: B=8 pow2 batches, P=3)");

  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  const auto names = perfmodel::ModelCatalog::builtin().names();

  struct GridCase {
    std::string label;
    std::vector<int> batches;
    int procs;
  };
  const std::vector<GridCase> cases = {
      {"pow2-1..128,P=3 (paper)", {1, 2, 4, 8, 16, 32, 64, 128}, 3},
      {"pow2-1..128,P=1", {1, 2, 4, 8, 16, 32, 64, 128}, 1},
      {"pow2-1..128,P=2", {1, 2, 4, 8, 16, 32, 64, 128}, 2},
      {"coarse-4,P=3", {1, 8, 32, 128}, 3},
      {"coarse-2,P=3", {8, 64}, 3},
      {"dense-1..128,P=3", [] {
         std::vector<int> all;
         for (int b = 1; b <= 128; ++b) all.push_back(b);
         return all;
       }(), 3},
  };

  TextTable table({"grid", "points/model", "S2.gpus", "S4.gpus", "S6.gpus", "S6.slack"});
  for (const GridCase& grid : cases) {
    profiler::ProfilerOptions options;
    options.batch_sizes = grid.batches;
    options.max_processes = grid.procs;
    profiler::Profiler profiler(perf, options);
    const profiler::ProfileSet profiles = profiler.profile_all(names);

    std::vector<std::string> row = {grid.label, std::to_string(profiler.grid_points())};
    double s6_slack = 0.0;
    for (const char* name : {"S2", "S4", "S6"}) {
      core::ParvaGpuScheduler scheduler(profiles);
      auto result = scheduler.schedule(scenario(name).services);
      if (!result.ok()) {
        row.push_back("fail");
        continue;
      }
      const auto metrics =
          core::compute_metrics(result.value().deployment, scenario(name).services);
      row.push_back(std::to_string(metrics.gpu_count));
      if (std::string(name) == "S6") s6_slack = metrics.internal_slack;
    }
    row.push_back(format_double(s6_slack, 3));
    table.add_row(std::move(row));
  }
  bench::emit(table, "ablation_profile_grid");

  std::cout << "The paper's 8x3 grid matches the dense grid's deployment quality at a\n"
               "fraction of the one-time profiling cost; coarse grids lose throughput\n"
               "resolution and inflate GPU counts.\n";
  return 0;
}
