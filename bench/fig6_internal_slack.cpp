// Reproduces Figure 6: GPU internal slack rate (Eq. 3) of each framework
// across scenarios. Two measurements are reported:
//   * analytic — Eq. 3 evaluated from the deployment's modelled SM
//     occupancy and load fractions;
//   * measured — Eq. 3 from the discrete-event simulator's DCGM-style
//     SM-activity counters under the offered load.
// Paper: gpulet/iGniter/MIG-serving/ParvaGPU-single carry on average
// 26/32/30/4.7 percentage points more slack than ParvaGPU, whose slack
// stays in the 3-5% band.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "scenarios/experiment.hpp"

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Figure 6", "Internal slack rate of each baseline and ParvaGPU");

  const ExperimentContext context = ExperimentContext::create();
  ExperimentOptions options;
  options.run_simulation = true;
  options.sim.duration_ms = 10'000.0;

  for (const bool measured : {false, true}) {
    std::vector<std::string> header = {measured ? "slack_measured" : "slack_analytic"};
    for (const Scenario& sc : all_scenarios()) header.push_back(sc.name);
    TextTable table(header);
    for (Framework framework : all_frameworks()) {
      std::vector<std::string> row = {framework_name(framework)};
      for (const Scenario& sc : all_scenarios()) {
        const ExperimentResult r = run_experiment(context, framework, sc, options);
        if (!r.feasible) {
          row.push_back("fail");
        } else {
          row.push_back(
              format_double(measured ? r.measured_internal_slack : r.internal_slack, 3));
        }
      }
      table.add_row(std::move(row));
    }
    bench::emit(table, measured ? "fig6_internal_slack_measured" : "fig6_internal_slack");
  }

  std::cout << "Paper: ParvaGPU slack 3-5%; gpulet +26pp, iGniter +32pp, MIG-serving +30pp,\n"
               "       ParvaGPU-single +4.7pp on average.\n";
  return 0;
}
