// Prints Table IV: the six evaluation scenarios (request rate and SLO
// latency per model), plus each scenario's aggregate demand — the input
// data every other bench consumes.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/strings.hpp"
#include "perfmodel/model_catalog.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace parva;
  using namespace parva::scenarios;

  bench::banner("Table IV", "Six scenarios from eleven DNN inference models");

  const auto& catalog = perfmodel::ModelCatalog::builtin();

  std::vector<std::string> header = {"workload", "params(M)"};
  for (const Scenario& sc : all_scenarios()) {
    header.push_back(sc.name + ".rate");
    header.push_back(sc.name + ".slo_ms");
  }
  TextTable table(header);

  for (const auto& traits : catalog.all()) {
    std::vector<std::string> row = {traits.name, format_double(traits.params_millions, 1)};
    for (const Scenario& sc : all_scenarios()) {
      const core::ServiceSpec* found = nullptr;
      for (const core::ServiceSpec& spec : sc.services) {
        if (spec.model == traits.name) {
          found = &spec;
          break;
        }
      }
      if (found == nullptr) {
        row.push_back("N/A");
        row.push_back("N/A");
      } else {
        row.push_back(format_double(found->request_rate, 0));
        row.push_back(format_double(found->slo_latency_ms, 0));
      }
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, "table4_scenarios");

  TextTable totals({"scenario", "services", "total_rate(req/s)"});
  for (const Scenario& sc : all_scenarios()) {
    double total = 0.0;
    for (const core::ServiceSpec& spec : sc.services) total += spec.request_rate;
    totals.add_row({sc.name, std::to_string(sc.services.size()), format_double(total, 0)});
  }
  bench::emit(totals, "table4_totals");
  return 0;
}
