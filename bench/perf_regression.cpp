// Perf-regression harness: times the hot paths this codebase optimises —
// scheduler wall-clock per scenario, Segment Configurator fast path vs the
// reference scan, DES event throughput, and the end-to-end Fig. 8 sweep —
// and emits a machine-readable JSON report (BENCH_perf.json via
// scripts/bench_perf.sh). Medians over repetitions so one noisy run on a
// shared box does not fail the gate.
//
// Usage: perf_regression [--smoke] [--out <path>]
//   --smoke  one repetition, short simulations: a seconds-long sanity pass
//            for scripts/verify.sh, not a measurement.
//   --out    write the JSON report to <path> (default: stdout only).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/configurator.hpp"
#include "core/parvagpu.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/experiment.hpp"
#include "serving/cluster_sim.hpp"

namespace {

using namespace parva;
using namespace parva::scenarios;
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Minimal JSON object writer (flat string/number fields, insertion order).
class JsonReport {
 public:
  void add(const std::string& key, double value) {
    std::ostringstream out;
    out.precision(6);
    out << value;
    fields_.push_back("  \"" + key + "\": " + out.str());
  }
  void add(const std::string& key, const std::string& value) {
    fields_.push_back("  \"" + key + "\": \"" + value + "\"");
  }
  std::string str() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += fields_[i];
      out += i + 1 < fields_.size() ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
  }

 private:
  std::vector<std::string> fields_;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: perf_regression [--smoke] [--out <path>]\n";
      return 2;
    }
  }

  const int reps = smoke ? 1 : 9;
  const ExperimentContext context = ExperimentContext::create();
  JsonReport report;
  report.add("mode", smoke ? "smoke" : "full");

  // 1. Scheduler wall-clock per scenario: the full ParvaGPU pipeline
  //    (configure + allocate + optimise), the paper's scheduling delay.
  for (const Scenario& sc : all_scenarios()) {
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
      auto scheduler = context.make_scheduler(Framework::kParvaGpu);
      const auto start = Clock::now();
      auto outcome = scheduler->schedule(sc.services);
      samples.push_back(elapsed_ms(start));
      if (!outcome.ok()) {
        std::cerr << "scheduling failed on " << sc.name << "\n";
        return 1;
      }
    }
    report.add("scheduler_ms_" + sc.name, median(samples));
  }

  // 2. Segment Configurator on S6: indexed-surface fast path vs the
  //    reference table scan it replaced (both produce identical output).
  {
    const auto& services = scenario("S6").services;
    const core::SegmentConfigurator configurator;
    const int inner = smoke ? 10 : 200;
    std::vector<double> fast;
    std::vector<double> scan;
    for (int r = 0; r < reps; ++r) {
      auto start = Clock::now();
      for (int i = 0; i < inner; ++i) {
        auto result = configurator.configure(services, context.surfaces());
        if (!result.ok()) return 1;
      }
      fast.push_back(elapsed_ms(start) * 1000.0 / inner);
      start = Clock::now();
      for (int i = 0; i < inner; ++i) {
        auto result = configurator.configure(services, context.profiles());
        if (!result.ok()) return 1;
      }
      scan.push_back(elapsed_ms(start) * 1000.0 / inner);
    }
    report.add("configurator_surface_us_S6", median(fast));
    report.add("configurator_scan_us_S6", median(scan));
    report.add("configurator_speedup_S6", median(scan) / median(fast));
  }

  // 3. DES throughput: the S2 deployment simulated for 1 s of virtual
  //    time, reported as events per wall-clock second.
  {
    const Scenario& sc = scenario("S2");
    auto scheduler = context.make_scheduler(Framework::kParvaGpu);
    const auto schedule = scheduler->schedule(sc.services).value();
    serving::SimulationOptions options;
    options.duration_ms = smoke ? 200.0 : 1'000.0;
    options.warmup_ms = smoke ? 20.0 : 100.0;
    std::vector<double> rates;
    for (int r = 0; r < reps; ++r) {
      serving::ClusterSimulation sim(schedule.deployment, sc.services, context.perf());
      const auto start = Clock::now();
      const serving::SimulationResult result = sim.run(options);
      const double ms = elapsed_ms(start);
      rates.push_back(static_cast<double>(result.events_processed) / (ms / 1000.0));
    }
    report.add("des_events_per_sec_S2", median(rates));
  }

  // 3b. Sharded-DES scaling curve: the same S2 workload decomposed into
  //     1/2/4 shards, reported as critical-path throughput — total events
  //     over the busiest shard's execution time. Shards are timed
  //     sequentially (no shard pool), so each shard's span excludes any
  //     scheduler contention: the number equals wall-clock throughput on a
  //     machine granting one core per shard, and stays meaningful on the
  //     single-core CI box. scripts/bench_perf.sh gates the 4/1 ratio.
  {
    const Scenario& sc = scenario("S2");
    auto scheduler = context.make_scheduler(Framework::kParvaGpu);
    const auto schedule = scheduler->schedule(sc.services).value();
    serving::SimulationOptions options;
    options.duration_ms = smoke ? 200.0 : 1'000.0;
    options.warmup_ms = smoke ? 20.0 : 100.0;
    for (const int shards : {1, 2, 4}) {
      options.shards = shards;
      std::vector<double> rates;
      for (int r = 0; r < reps; ++r) {
        serving::ClusterSimulation sim(schedule.deployment, sc.services, context.perf());
        const serving::SimulationResult result = sim.run(options);
        double critical_ms = 0.0;
        for (const double busy : result.shard_busy_ms) {
          critical_ms = std::max(critical_ms, busy);
        }
        rates.push_back(static_cast<double>(result.events_processed) /
                        (critical_ms / 1000.0));
      }
      report.add("des_events_per_sec_shards_" + std::to_string(shards), median(rates));
    }
  }

  // 3c. Large-fleet arrival scheduling: S5 scaled ~90x (~1k services on a
  //     ~1.3k-GPU fleet), the regime where selecting the earliest pending
  //     arrival dominates the event loop. The tournament tree (what kAuto
  //     picks at this size) against the flat-scan oracle on the identical
  //     workload: event counts match bit-for-bit (the schedulers are
  //     output-invisible), so the ratio is pure selection cost.
  //     scripts/bench_perf.sh gates the ratio.
  {
    const Scenario scaled = scale_scenario(scenario("S5"), 90);
    auto scheduler = context.make_scheduler(Framework::kParvaGpu);
    const auto schedule = scheduler->schedule(scaled.services).value();
    serving::SimulationOptions options;
    options.duration_ms = smoke ? 20.0 : 100.0;
    options.warmup_ms = smoke ? 5.0 : 20.0;
    const int wide_reps = smoke ? 1 : 5;  // each rep replays ~1k services
    std::uint64_t tournament_events = 0;
    std::uint64_t flat_events = 0;
    auto throughput = [&](serving::ArrivalSchedulerKind kind, std::uint64_t& events) {
      options.arrival_scheduler = kind;
      std::vector<double> rates;
      for (int r = 0; r < wide_reps; ++r) {
        serving::ClusterSimulation sim(schedule.deployment, scaled.services,
                                       context.perf());
        const auto start = Clock::now();
        const serving::SimulationResult result = sim.run(options);
        const double ms = elapsed_ms(start);
        events = result.events_processed;
        rates.push_back(static_cast<double>(result.events_processed) / (ms / 1000.0));
      }
      return median(rates);
    };
    const double tournament =
        throughput(serving::ArrivalSchedulerKind::kTournament, tournament_events);
    const double flat = throughput(serving::ArrivalSchedulerKind::kFlatScan, flat_events);
    if (tournament_events != flat_events) {
      std::cerr << "arrival schedulers diverged: " << tournament_events << " vs "
                << flat_events << " events\n";
      return 1;
    }
    report.add("des_events_per_sec_1k_services", tournament);
    report.add("des_events_per_sec_1k_services_flat", flat);
    report.add("arrival_tournament_speedup_1k", tournament / flat);
  }

  // 3d. Generative-LLM engine throughput: the S7 streaming scenario under
  //     bursty arrivals and the evict admission policy — the configuration
  //     that exercises every new event kind (Prefill, Decode chains) plus
  //     the KV ledger's reservation/eviction bookkeeping on top of the
  //     fixed-latency hot path. scripts/bench_perf.sh holds this within
  //     the standard 20% band of the committed reference.
  {
    const Scenario& sc = llm_scenario();
    perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::with_llm());
    profiler::Profiler profiler(perf);
    core::ParvaGpuScheduler scheduler(
        profiler.profile_all(perfmodel::ModelCatalog::with_llm().names()));
    const auto schedule = scheduler.schedule(sc.services).value();
    serving::SimulationOptions options;
    options.duration_ms = smoke ? 400.0 : 2'000.0;
    options.warmup_ms = smoke ? 40.0 : 200.0;
    options.arrivals = serving::ArrivalProcess::kBursty;
    options.llm.admission = serving::LlmAdmissionPolicy::kEvict;
    std::vector<double> rates;
    for (int r = 0; r < reps; ++r) {
      serving::ClusterSimulation sim(schedule.deployment, sc.services, perf);
      const auto start = Clock::now();
      const serving::SimulationResult result = sim.run(options);
      const double ms = elapsed_ms(start);
      rates.push_back(static_cast<double>(result.events_processed) / (ms / 1000.0));
    }
    report.add("des_events_per_sec_llm", median(rates));
  }

  // 4. End-to-end Fig. 8 sweep: every framework x scenario, three seeds
  //    each, parallel seed simulations — the full experiment workload.
  {
    const std::uint64_t seeds[] = {11ULL, 23ULL, 47ULL};
    ExperimentOptions options;
    options.run_simulation = true;
    options.sim.duration_ms = smoke ? 500.0 : 15'000.0;
    const auto start = Clock::now();
    for (Framework framework : all_frameworks()) {
      for (const Scenario& sc : all_scenarios()) {
        const auto results = run_experiment_seeds(context, framework, sc, options, seeds);
        if (results.empty()) return 1;
      }
    }
    report.add("fig8_end_to_end_ms", elapsed_ms(start));
  }

  const std::string json = report.str();
  std::cout << json;
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << json;
  }
  return 0;
}
