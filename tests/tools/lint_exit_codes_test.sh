#!/usr/bin/env bash
# Regression test for the lint gate's exit-code handling: a parva_audit
# usage/IO error (exit 2) must fail scripts/lint.sh, never read as a clean
# pass, and findings (exit 1) must fail it too.
#
# Usage: lint_exit_codes_test.sh <parva_audit_binary> <repo_root>
set -u

AUDIT_BIN="$1"
REPO_ROOT="$2"
FAILURES=0

expect_rc() {
  local want="$1" got="$2" what="$3"
  if [[ "${got}" -eq "${want}" ]]; then
    echo "ok: ${what} (exit ${got})"
  else
    echo "FAIL: ${what}: expected exit ${want}, got ${got}"
    FAILURES=$((FAILURES + 1))
  fi
}

expect_nonzero() {
  local got="$1" what="$2"
  if [[ "${got}" -ne 0 ]]; then
    echo "ok: ${what} (exit ${got})"
  else
    echo "FAIL: ${what}: expected nonzero exit, got 0"
    FAILURES=$((FAILURES + 1))
  fi
}

# --- parva_audit's own exit-code contract ---------------------------------

"${AUDIT_BIN}" --no-such-flag >/dev/null 2>&1
expect_rc 2 $? "parva_audit rejects an unknown flag with exit 2"

"${AUDIT_BIN}" >/dev/null 2>&1
expect_rc 2 $? "parva_audit with no paths is a usage error (exit 2)"

"${AUDIT_BIN}" --format bogus src >/dev/null 2>&1
expect_rc 2 $? "parva_audit rejects an unknown --format with exit 2"

"${AUDIT_BIN}" /nonexistent/path/parva >/dev/null 2>&1
expect_rc 2 $? "parva_audit reports an unreadable path with exit 2"

# --- lint.sh must propagate both failure modes ----------------------------

STUB_DIR="$(mktemp -d)"
trap 'rm -rf "${STUB_DIR}"' EXIT

cat > "${STUB_DIR}/audit_exit2" <<'EOF'
#!/usr/bin/env bash
exit 2
EOF
cat > "${STUB_DIR}/audit_exit1" <<'EOF'
#!/usr/bin/env bash
exit 1
EOF
chmod +x "${STUB_DIR}/audit_exit2" "${STUB_DIR}/audit_exit1"

(cd "${REPO_ROOT}" && PARVA_AUDIT_BIN="${STUB_DIR}/audit_exit2" \
    ./scripts/lint.sh --audit-only >/dev/null 2>&1)
expect_nonzero $? "lint.sh fails when parva_audit exits 2 (usage/IO error)"

(cd "${REPO_ROOT}" && PARVA_AUDIT_BIN="${STUB_DIR}/audit_exit1" \
    ./scripts/lint.sh --audit-only >/dev/null 2>&1)
expect_rc 1 $? "lint.sh fails when parva_audit exits 1 (findings)"

(cd "${REPO_ROOT}" && PARVA_AUDIT_BIN="${STUB_DIR}/missing" \
    ./scripts/lint.sh --audit-only >/dev/null 2>&1)
expect_rc 2 $? "lint.sh rejects a non-executable PARVA_AUDIT_BIN"

(cd "${REPO_ROOT}" && ./scripts/lint.sh --bogus-flag >/dev/null 2>&1)
expect_rc 2 $? "lint.sh rejects an unknown flag with exit 2"

# --- baseline round-trip: --update-baseline accepts, new findings fail ----

BASE_DIR="$(mktemp -d)"
trap 'rm -rf "${STUB_DIR}" "${BASE_DIR}"' EXIT
cat > "${BASE_DIR}/legacy.cpp" <<'EOF'
inline int legacy_seed() { return rand(); }
EOF
BASELINE="${BASE_DIR}/baseline.txt"

"${AUDIT_BIN}" "${BASE_DIR}" >/dev/null 2>&1
expect_rc 1 $? "planted violation fails without a baseline"

"${AUDIT_BIN}" --baseline "${BASELINE}" --update-baseline "${BASE_DIR}" >/dev/null 2>&1
expect_rc 0 $? "--update-baseline records current findings and exits 0"

"${AUDIT_BIN}" --baseline "${BASELINE}" "${BASE_DIR}" >/dev/null 2>&1
expect_rc 0 $? "baselined finding is suppressed on re-audit"

cat > "${BASE_DIR}/fresh.cpp" <<'EOF'
inline int fresh_seed() { return rand(); }
EOF
"${AUDIT_BIN}" --baseline "${BASELINE}" "${BASE_DIR}" >/dev/null 2>&1
expect_rc 1 $? "a finding outside the baseline still fails"

# --- and the real binary still passes the gate ----------------------------

(cd "${REPO_ROOT}" && PARVA_AUDIT_BIN="${AUDIT_BIN}" \
    ./scripts/lint.sh --audit-only >/dev/null 2>&1)
expect_rc 0 $? "lint.sh passes with the real parva_audit on a clean tree"

if [[ "${FAILURES}" -ne 0 ]]; then
  echo "lint_exit_codes_test: ${FAILURES} failure(s)"
  exit 1
fi
echo "lint_exit_codes_test: all checks passed"
