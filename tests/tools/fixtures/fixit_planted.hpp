// Fix-it fixture: planted R4 (missing include guard), R6 (status-returning
// declaration without [[nodiscard]]) and R10 (literal RNG stream tag).
// The byte-exact post-fix content lives in fixit_planted.hpp.golden;
// audit_test.cpp round-trips this file through apply_fix_edits and then
// re-audits the result, which must come back clean.

enum class NvmlReturn { kSuccess, kError };

enum class RngStreamTag : unsigned long long { kArrival = 7 };

struct Rng {
  static Rng stream(unsigned long long seed, unsigned long long tag,
                    unsigned long long index);
};

NvmlReturn destroy_instance(int gpu);

inline void reseed() { (void)Rng::stream(1, 7, 0); }
