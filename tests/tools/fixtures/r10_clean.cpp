// Golden fixture: rule R10 satisfied -- a registry with distinct values
// and call sites that only pass registered enumerators. The audit must
// report nothing.
struct Rng {
  static Rng stream(unsigned long long seed, unsigned long long tag,
                    unsigned long long index);
};

enum class RngStreamTag : unsigned long long {
  kFixturePrefill = 60,
  kFixtureDecode = 61,
};

namespace fixture_r10_clean {

inline void draw_streams(unsigned long long seed) {
  (void)Rng::stream(seed, RngStreamTag::kFixturePrefill, 0);
  (void)Rng::stream(seed, RngStreamTag::kFixtureDecode, 1);
}

}  // namespace fixture_r10_clean
