// Golden fixture: rule R10 with every violation carrying a justified
// allow() suppression -- the audit must report nothing for this file.
struct Rng {
  static Rng stream(unsigned long long seed, unsigned long long tag,
                    unsigned long long index);
};

enum class RngStreamTag : unsigned long long {
  kFixtureReplay = 50,
  // parva-audit: allow(R10) frozen golden-trace value; duplication is the point of the replay test
  kFixtureReplayTwin = 50,
};

namespace fixture_r10_allow {

inline void replay(unsigned long long seed) {
  // parva-audit: allow(R10) golden trace pins the raw tag byte-for-byte
  (void)Rng::stream(seed, 57, 0);
}

}  // namespace fixture_r10_allow
