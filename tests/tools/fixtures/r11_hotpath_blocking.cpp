// Golden fixture: rule R11 -- blocking operations transitively reachable
// from the hot-path root Shard::advance. The chain is
// advance -> drain_batch -> flush_metrics; the lock, the iostream write,
// and the pool submit are each pinned in audit_test.cpp.
struct FixtureMutex {};
struct MutexLock {
  explicit MutexLock(FixtureMutex& m);
};
struct FixturePool {
  void submit(int task);
};

struct Shard {
  void advance();
  void drain_batch();
  void flush_metrics();
  FixtureMutex metrics_mutex_;
  FixturePool pool_;
};

inline void Shard::advance() {
  drain_batch();
}

inline void Shard::drain_batch() {
  flush_metrics();
  pool_.submit(7);
}

inline void Shard::flush_metrics() {
  MutexLock guard(metrics_mutex_);
  std::cout << "metrics flushed\n";
}
