// Golden fixture: rule R12 with the reachable unordered iteration carrying
// a justified allow() -- the audit must report nothing for this file even
// when it is scanned together with r12_fingerprint_entry.cpp.
#include <unordered_set>

namespace fixture_r12 {
inline std::unordered_set<unsigned long long>& digest_salts();
}  // namespace fixture_r12

inline unsigned long long digest_allowed() {
  unsigned long long acc = 0;
  // parva-audit: allow(R12) XOR accumulation is order-independent
  for (unsigned long long salt : fixture_r12::digest_salts()) {
    acc ^= salt;
  }
  return acc;
}
