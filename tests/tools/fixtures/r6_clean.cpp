// Golden fixture: status-returning code that satisfies R6 -- every
// function is [[nodiscard]] and every call consumes or propagates the
// result. The audit must report nothing.
namespace fixture {

enum class NvmlReturn { kSuccess, kError };

[[nodiscard]] NvmlReturn create_instance(int gpu);
[[nodiscard]] NvmlReturn destroy_instance(int gpu);

[[nodiscard]] inline NvmlReturn provision(int gpu) {
  const NvmlReturn created = create_instance(gpu);
  if (created != NvmlReturn::kSuccess) return created;
  return destroy_instance(gpu);
}

inline bool try_provision(int gpu) { return provision(gpu) == NvmlReturn::kSuccess; }

}  // namespace fixture
