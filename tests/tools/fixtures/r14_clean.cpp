// Golden fixture: R14-clean export path (audited under an alias path
// containing "export" by audit_test.cpp). The only loop reduction lives
// in a function named sorted_sum -- the canonical-order helper R14 itself
// prescribes -- so the export entry that calls it must not be flagged.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

inline double sorted_sum(std::vector<double> values) {
  std::vector<std::uint64_t> bits;
  bits.reserve(values.size());
  for (const double v : values) bits.push_back(std::bit_cast<std::uint64_t>(v));
  std::sort(bits.begin(), bits.end());
  double sum = 0.0;
  for (const std::uint64_t b : bits) sum += std::bit_cast<double>(b);
  return sum;
}

inline double rollup(std::vector<double> xs) {
  return sorted_sum(std::move(xs));
}
