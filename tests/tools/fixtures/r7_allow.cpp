// Golden fixture: rule R7 with justified allow() suppressions on every
// unguarded member -- the audit must report nothing for this file.
#include <mutex>
#include <vector>

namespace fixture {

class Snapshot {
 public:
  void refresh();

 private:
  std::mutex mutex_;
  // parva-audit: allow(R7) written once in the constructor, read-only after
  std::vector<int> immutable_after_init_;
  int epoch_ = 0;  // parva-audit: allow(R7) owner-thread only; see refresh()
};

}  // namespace fixture
