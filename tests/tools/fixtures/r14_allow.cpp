// Golden fixture: an R14 violation shape justified with allow(R14); the
// audit must stay silent. audit_test.cpp audits this content under an
// alias path containing "export" so the function is a manifest entry.
#include <vector>

inline double rollup(const std::vector<double>& xs) {
  double total = 0.0;
  for (const double x : xs) {
    // parva-audit: allow(R14): xs is pre-sorted by the caller.
    total += x;
  }
  return total;
}
