// Golden fixture: rule R7 -- mutable data members of a mutex-owning class
// must carry PARVA_GUARDED_BY. Violation lines are pinned in
// audit_test.cpp. The annotation macros are stubbed so the fixture stands
// alone without the repo headers.
#include <atomic>
#include <mutex>
#include <vector>

#define PARVA_GUARDED_BY(x)

namespace fixture {

class Queue {
 public:
  void push(int value);

 private:
  std::mutex mutex_;
  std::vector<int> items_;
  int capacity_ = 8;
  std::vector<int> guarded_ PARVA_GUARDED_BY(mutex_);
  std::vector<int> misguarded_ PARVA_GUARDED_BY(other_);
  std::atomic<int> approx_size_{0};
  const int id_ = 0;
};

}  // namespace fixture
