// Golden fixture: the allow() escape hatch. Every violation below carries
// a suppression on the offending line or the line directly above, so the
// audit must report nothing for this file.
#include <cstdlib>
#include <ctime>

namespace fixture {

int g_suppressed_global = 0;  // parva-audit: allow(R3)

// parva-audit: allow(R1)
inline int suppressed_rand() { return static_cast<int>(rand()); }

// parva-audit: allow(all)
inline int suppressed_time() { return static_cast<int>(time(nullptr)); }

}  // namespace fixture
