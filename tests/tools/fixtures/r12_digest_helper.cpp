// Golden fixture: rule R12 helper. Not manifest-matched itself (so R2
// stays silent), but digest_accumulate() is called from the entry file
// r12_fingerprint_entry.cpp and iterates an unordered container; audited
// together with the entry, the iteration line below is pinned in
// audit_test.cpp. Audited alone, this file must be clean.
#include <unordered_map>

namespace fixture_r12 {
inline std::unordered_map<int, unsigned long long>& digest_cells();
}  // namespace fixture_r12

inline unsigned long long digest_accumulate() {
  unsigned long long acc = 0;
  for (const auto& cell : fixture_r12::digest_cells()) {
    acc += cell.second;
  }
  return acc;
}
