// Golden fixture: rule R12 entry point. The file name carries the
// "fingerprint" manifest tag, so every function defined here is an
// export-path entry; the unordered iteration lives in the helper file
// r12_digest_helper.cpp and is only flagged when both files are audited
// together (reachability closes the cross-file hole that R2 leaves open).
unsigned long long digest_accumulate();
unsigned long long digest_allowed();

namespace fixture_r12 {

inline unsigned long long emit_fingerprint() {
  return digest_accumulate() ^ digest_allowed();
}

}  // namespace fixture_r12
