// Golden fixture: rule R6 with every violation carrying a justified
// allow() suppression -- the audit must report nothing for this file.
namespace fixture {

enum class NvmlReturn { kSuccess, kError };

NvmlReturn fire_and_forget(int gpu);  // parva-audit: allow(R6) legacy API kept un-annotated

inline void rollback() {
  // parva-audit: allow(R6) best-effort rollback; the original error is reported
  (void)fire_and_forget(0);
  fire_and_forget(1);  // parva-audit: allow(R6) teardown on a lost device cannot fail usefully
}

}  // namespace fixture
