// Golden fixture: rule R11 satisfied -- the hot-path root
// ArrivalStreams::replay_matches reaches only pure arithmetic helpers.
// The audit must report nothing.
struct ArrivalStreams {
  unsigned long long replay_matches(unsigned long long draws);
  unsigned long long mix(unsigned long long value);
};

inline unsigned long long ArrivalStreams::replay_matches(
    unsigned long long draws) {
  return mix(draws) + 1;
}

inline unsigned long long ArrivalStreams::mix(unsigned long long value) {
  return value * 2654435761ULL;
}
