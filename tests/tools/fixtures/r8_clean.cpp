// Golden fixture: geometry-adjacent code that satisfies R8 -- it consults
// the published API instead of re-hardcoding slot tables, and its own
// tables are not slot geometry. The audit must report nothing.
#include <array>
#include <cstdint>

namespace fixture {

// Geometry-suggesting name but values leave the 0..6 slot range: not a
// slot table.
constexpr std::array<int, 3> kStartDelaysMs = {1, 8, 32};

// Geometry-suggesting name but not ascending: a preference permutation,
// not a slot table.
constexpr std::array<int, 3> kPreferredStartOrder = {4, 0, 2};

// Declaration only (no body): consulting the real API is fine.
bool is_legal_placement(int gpcs, int start);

inline bool fits(int gpcs, int start) { return is_legal_placement(gpcs, start); }

}  // namespace fixture
