// Golden fixture: rule R6 -- status-returning functions must be
// [[nodiscard]] and call sites must consume the result. Violation lines
// are pinned in audit_test.cpp.
namespace fixture {

enum class NvmlReturn { kSuccess, kError };

NvmlReturn create_instance(int gpu);
NvmlReturn destroy_instance(int gpu);
[[nodiscard]] NvmlReturn annotated_destroy(int gpu);

struct Controller {
  NvmlReturn reset();
};

inline void teardown(Controller& controller) {
  destroy_instance(0);
  (void)destroy_instance(1);
  controller.reset();
}

inline NvmlReturn consumed(Controller& controller) {
  const NvmlReturn ret = controller.reset();
  if (ret != NvmlReturn::kSuccess) return ret;
  return annotated_destroy(2);
}

}  // namespace fixture
