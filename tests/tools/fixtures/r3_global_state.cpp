// Golden fixture: rule R3 -- mutable namespace-scope state in library
// code. Violation lines are pinned in audit_test.cpp.
#include <atomic>
#include <string>
#include <vector>

namespace fixture {

int g_call_count = 0;
static std::vector<std::string> g_history;
std::atomic<bool> g_ready{false};
thread_local int t_scratch = 0;

const int kLimit = 8;
constexpr double kScale = 1.5;
inline int add(int a, int b) { return a + b; }
int free_function_declaration(int value);
struct Config {
  int value = 0;
};
struct Tracker {
  int hits = 0;
} g_tracker;

}  // namespace fixture
