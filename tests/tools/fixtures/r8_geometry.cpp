// Golden fixture: rule R8 -- A100 slot geometry must come from the proved
// constexpr tables in src/gpu/mig_geometry.hpp, not be re-hardcoded or
// shadow-defined. Violation lines are pinned in audit_test.cpp.
#include <array>
#include <cstdint>

namespace fixture {

constexpr std::array<int, 3> kTwoGpcStartSlots = {0, 2, 4};

inline const int legal_placement_slots[] = {0, 4};

inline bool is_legal_placement(int gpcs, int start) {
  return gpcs > 0 && start >= 0 && start + gpcs <= 7;
}

inline int find_start_slot(std::uint8_t occupied) { return occupied == 0 ? 0 : -1; }

}  // namespace fixture
