// Golden fixture: rule R9 with the cycle's anchor (the acquisition that
// closes the inversion) carrying a justified allow() -- the audit must
// report nothing for this file.
struct FixtureMutex {};
struct MutexLock {
  explicit MutexLock(FixtureMutex& m);
};
struct R9AllowLocks {
  static FixtureMutex checkpoint;
  static FixtureMutex manifest_lock;
};

namespace fixture_r9_allow {

inline void checkpoint_then_manifest() {
  MutexLock a(R9AllowLocks::checkpoint);
  // parva-audit: allow(R9) snapshot path; never concurrent with restore
  MutexLock b(R9AllowLocks::manifest_lock);
}

inline void manifest_then_checkpoint() {
  MutexLock b(R9AllowLocks::manifest_lock);
  // parva-audit: allow(R9) restore path; never concurrent with snapshot
  MutexLock a(R9AllowLocks::checkpoint);
}

}  // namespace fixture_r9_allow
