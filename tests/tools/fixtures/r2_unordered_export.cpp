// Golden fixture: rule R2 -- unordered-container iteration on an export
// path. This file is tagged by the manifest's "export" path heuristic (its
// name contains "export"), exactly as it would be if dropped into
// src/telemetry/. Violation lines are pinned in audit_test.cpp.
#include <string>
#include <unordered_map>
#include <unordered_set>

inline std::string emit_rows(const std::unordered_map<int, double>& rows) {
  std::string out;
  for (const auto& [id, value] : rows) {
    out += std::to_string(id) + "," + std::to_string(value) + "\n";
  }
  return out;
}

inline double checksum(const std::unordered_set<int>& ids) {
  double sum = 0.0;
  for (auto it = ids.begin(); it != ids.end(); ++it) {
    sum += static_cast<double>(*it) * 1.000001;  // parva-audit: allow(R14): R2 fixture
  }
  return sum;
}

inline std::size_t lookups_are_fine(const std::unordered_map<int, double>& rows) {
  return rows.count(42);
}
