// Golden fixture: rule R10 -- RNG stream-tag discipline. Plants a
// duplicate registry value, a literal tag, and an unregistered constant.
// Violation lines are pinned in audit_test.cpp. Registry values start at
// 40 so merged-scan-set runs never collide with the real registry (1-4).
struct Rng {
  static Rng stream(unsigned long long seed, unsigned long long tag,
                    unsigned long long index);
};

enum class RngStreamTag : unsigned long long {
  kFixtureArrival = 40,
  kFixtureJitter = 41,
  kFixtureDuplicate = 41,
};

namespace fixture_r10 {

constexpr unsigned long long kRogueTag = 49;

inline void draw_streams(unsigned long long seed) {
  (void)Rng::stream(seed, RngStreamTag::kFixtureArrival, 0);
  (void)Rng::stream(seed, 47, 0);
  (void)Rng::stream(seed, kRogueTag, 0);
}

}  // namespace fixture_r10
