// Golden fixture: rule R13 -- unit discipline. Three violation classes:
// mixed-unit arithmetic between suffixed names, a bare numeric literal
// passed for a unit-suffixed parameter, and a suffix-less assignment sink
// laundering a unit away. Violation lines are pinned in audit_test.cpp.

inline double window_pressure(double span_ms, double budget_s) {
  return span_ms + budget_s;
}

inline bool over_quota(double used_bytes, double quota_gib) {
  return used_bytes > quota_gib;
}

void set_deadline(double timeout_ms);

inline void arm_watchdog() {
  set_deadline(250);
}

inline double drift(double skew_ms) {
  double skew = skew_ms;
  return skew;
}
