// Golden fixture: rule R4 -- header hygiene. Intentionally missing the
// pragma-once guard (one finding on line 1) and leaking a namespace into
// every includer. Violation lines are pinned in audit_test.cpp.
#include <vector>

using namespace std;

inline int fixture_sum(const std::vector<int>& values) {
  int total = 0;
  for (int value : values) total += value;
  return total;
}
