// Golden fixture: a mutex-owning class that satisfies R7 -- every mutable
// member is annotated, atomics and condition variables are exempt, and a
// mutex-free class needs no annotations at all. The audit must report
// nothing.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#define PARVA_GUARDED_BY(x)

namespace fixture {

class Queue {
 public:
  void push(int value);

 private:
  std::mutex mutex_;
  std::vector<int> items_ PARVA_GUARDED_BY(mutex_);
  int head_ PARVA_GUARDED_BY(mutex_) = 0;
  std::condition_variable cv_;
  std::atomic<int> approx_size_{0};
  const int capacity_ = 8;
  static constexpr int kShards = 4;
};

class PlainValue {
 public:
  int get() const { return value_; }

 private:
  int value_ = 0;
};

}  // namespace fixture
