// Golden fixture: rule R5 -- memory_order_relaxed without a nearby
// justification comment. Violation lines are pinned in audit_test.cpp;
// the lines around them must stay comment-free or the rule is satisfied.
#include <atomic>

inline int unjustified_load(std::atomic<int>& counter) {

  return counter.load(std::memory_order_relaxed);
}

inline void unjustified_store(std::atomic<int>& counter, int value) {

  counter.store(value, std::memory_order_relaxed);
}

inline int justified_load(std::atomic<int>& counter) {
  // relaxed: monotonic counter; readers tolerate staleness.
  return counter.load(std::memory_order_relaxed);
}
