// Golden fixture: R15 violation shapes justified with allow(R15); the
// audit must stay silent.
#include <vector>

inline int ref_after_reserve_like(std::vector<int>& v) {
  int& first = v.front();
  v.push_back(7);
  // parva-audit: allow(R15): capacity pre-reserved by the caller.
  return first;
}
