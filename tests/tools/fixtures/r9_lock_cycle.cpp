// Golden fixture: rule R9 -- lock-order cycles. Two cycles are planted:
// an intra-function inversion (journal/ledger) and one threaded through a
// call (gate/latch). Violation lines are pinned in audit_test.cpp. The
// lock types are stubbed so the fixture stands alone.
struct FixtureMutex {};
struct MutexLock {
  explicit MutexLock(FixtureMutex& m);
};
struct R9Locks {
  static FixtureMutex journal;
  static FixtureMutex ledger;
  static FixtureMutex gate;
  static FixtureMutex latch;
};

namespace fixture_r9 {

inline void journal_then_ledger() {
  MutexLock a(R9Locks::journal);
  MutexLock b(R9Locks::ledger);
}

inline void ledger_then_journal() {
  MutexLock b(R9Locks::ledger);
  MutexLock a(R9Locks::journal);
}

inline void take_gate() {
  MutexLock g(R9Locks::gate);
}

inline void gate_under_latch() {
  MutexLock l(R9Locks::latch);
  take_gate();  // latch -> gate, one level through the call
}

inline void latch_under_gate() {
  MutexLock g(R9Locks::gate);
  MutexLock l(R9Locks::latch);
}

}  // namespace fixture_r9
