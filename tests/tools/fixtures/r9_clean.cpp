// Golden fixture: rule R9 satisfied -- every function acquires the two
// locks in the same global order (roster before billing), including the
// path that threads the second acquisition through a call. The audit must
// report nothing.
struct FixtureMutex {};
struct MutexLock {
  explicit MutexLock(FixtureMutex& m);
};
struct R9CleanLocks {
  static FixtureMutex roster;
  static FixtureMutex billing;
};

namespace fixture_r9_clean {

inline void take_billing() {
  MutexLock b(R9CleanLocks::billing);
}

inline void roster_then_billing() {
  MutexLock r(R9CleanLocks::roster);
  MutexLock b(R9CleanLocks::billing);
}

inline void roster_then_billing_via_call() {
  MutexLock r(R9CleanLocks::roster);
  take_billing();
}

}  // namespace fixture_r9_clean
