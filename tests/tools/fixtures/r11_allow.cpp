// Golden fixture: rule R11 with the blocking operation under the hot-path
// root EventQueue::push carrying a justified allow() -- the audit must
// report nothing for this file.
struct FixtureMutex {};
struct MutexLock {
  explicit MutexLock(FixtureMutex& m);
};

struct EventQueue {
  void push(int event_id);
  FixtureMutex heap_mutex_;
};

inline void EventQueue::push(int event_id) {
  // parva-audit: allow(R11) single-threaded warm-up path; no contention by construction
  MutexLock guard(heap_mutex_);
  (void)event_id;
}
