// Golden fixture: rule R15 -- use of a reference/iterator/pointer after a
// mutating call on the container it came from. Violation lines are pinned
// in audit_test.cpp.
#include <vector>

inline int ref_after_push(std::vector<int>& v) {
  int& first = v.front();
  v.push_back(7);
  return first;
}

inline int iter_after_erase(std::vector<int>& v) {
  auto it = v.begin();
  v.erase(v.begin());
  return *it;
}

inline int iter_after_clear(std::vector<int>& v) {
  auto end = v.end();
  v.clear();
  return end == v.begin() ? 0 : 1;
}
