// Golden fixture: rule R8 with justified allow() suppressions -- a test
// oracle is permitted to restate the geometry, and the audit must report
// nothing for this file.
#include <array>

namespace fixture {

// parva-audit: allow(R8) independent oracle restating Fig. 1 for the property test
constexpr std::array<int, 2> kOracleThreeGpcStarts = {0, 4};

constexpr std::array<int, 3> kExpectedStartSlots = {0, 2, 4};  // parva-audit: allow(R8)

}  // namespace fixture
