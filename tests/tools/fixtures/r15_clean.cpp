// Golden fixture: invalidation-safe container use R15 must not flag:
// re-acquiring after the mutation, the erase-returns-next idiom, and
// index-based access.
#include <vector>

inline int reacquire_after_push(std::vector<int>& v) {
  v.push_back(7);
  int& first = v.front();
  return first;
}

inline void erase_loop(std::vector<int>& v) {
  for (auto it = v.begin(); it != v.end();) {
    if (*it < 0) {
      it = v.erase(it);
    } else {
      ++it;
    }
  }
}

inline int index_after_push(std::vector<int>& v) {
  v.push_back(7);
  return v[0];
}
