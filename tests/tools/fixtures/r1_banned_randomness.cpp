// Golden fixture: rule R1 -- banned nondeterminism sources. Every
// violation line below is pinned in tests/tools/audit_test.cpp.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

inline int seed_from_wall_clock() {
  return static_cast<int>(time(nullptr));
}

inline int raw_rand() {
  return static_cast<int>(rand());
}

inline void reseed_libc() {
  srand(42);
}

inline unsigned hardware_entropy() {
  std::random_device device;
  return device();
}

inline long long wall_clock_ticks() {
  const auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count();
}
