// Golden fixture: rule R14 -- order-sensitive floating-point accumulation
// on an export path. The file name contains "export", so every function
// here is an export-manifest entry; the loop reductions below make the
// summation order observable in exported bytes. Violation lines are
// pinned in audit_test.cpp.
#include <vector>

inline double rollup(const std::vector<double>& xs) {
  double total = 0.0;
  for (const double x : xs) {
    total += x;
  }
  return total;
}

double shard_weight(int shard);

// Reachability: the reduction lives in a helper that only this
// manifest-entry file calls; R14 must still flag it with a witness chain.
inline double drain(double acc, int shards) {
  for (int i = 0; i < shards; ++i) {
    acc -= shard_weight(i);
  }
  return acc;
}
