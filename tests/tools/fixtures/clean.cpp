// Golden fixture: a file that satisfies every rule; the audit must report
// nothing. Exercises the constructs closest to each rule's trigger:
// sanctioned randomness, ordered iteration, constants, justified relaxed.
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fixture {

constexpr int kMaxGpus = 8;
const char* const kName = "clean";

inline std::string emit_sorted(const std::map<int, double>& rows) {
  std::string out;
  for (const auto& [id, value] : rows) {
    out += std::to_string(id) + "," + std::to_string(value) + "\n";
  }
  return out;
}

inline std::uint64_t seeded_stream(std::uint64_t seed) {
  // SplitMix64 step -- deterministic, explicit-seed randomness.
  seed += 0x9e3779b97f4a7c15ULL;
  seed = (seed ^ (seed >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return seed ^ (seed >> 27);
}

inline int justified_relaxed(std::atomic<int>& counter) {
  // relaxed: monotonic counter; no state is published under it.
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace fixture
