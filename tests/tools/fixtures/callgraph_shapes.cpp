// Golden fixture for the phase-1.5 call-graph builder (no rule findings
// expected). Exercises the resolution shapes pinned as (caller, callee)
// edge lists in audit_test.cpp:
//   - self-recursion (cg_factorial) and mutual recursion (cg_ping/cg_pong)
//   - an overload set collapsing to one node name (cg_scale)
//   - method vs. free function with the same bare name (CgCounter::bump
//     vs. ::bump) resolved through a declared receiver type
//   - an unresolvable receiver that still resolves because the bare name
//     is defined in exactly one class (cg_widget_source().poke())
//   - an unresolvable receiver over an ambiguous bare name
//     (cg_mystery_source().measure() -- defined in two classes): no edge.
struct CgWidget {
  void poke();
};
struct CgAlpha {
  int measure();
};
struct CgBeta {
  int measure();
};
CgWidget& cg_widget_source();
CgAlpha& cg_mystery_source();

inline void CgWidget::poke() {}
inline int CgAlpha::measure() { return 1; }
inline int CgBeta::measure() { return 2; }

inline unsigned long long cg_factorial(unsigned long long n) {
  if (n < 2) return 1;
  return n * cg_factorial(n - 1);
}

inline unsigned long long cg_ping(unsigned long long n);
inline unsigned long long cg_pong(unsigned long long n) {
  return n == 0 ? 0 : cg_ping(n - 1);
}
inline unsigned long long cg_ping(unsigned long long n) {
  return n == 0 ? 1 : cg_pong(n - 1);
}

inline int cg_scale(int v) { return v * 2; }
inline double cg_scale(double v) { return v * 2.0; }

struct CgCounter {
  int total = 0;
  void bump() { ++total; }
};

inline void bump() {}

inline void cg_drive() {
  CgCounter counter;
  counter.bump();
  bump();
  (void)cg_scale(3);
  (void)cg_scale(3.0);
  cg_widget_source().poke();
  (void)cg_mystery_source().measure();
}
