// Golden fixture: the same R13 violation shapes as r13_unit_mixing.cpp,
// each justified with an allow(R13) directive; the audit must stay silent.

inline double window_pressure(double span_ms, double budget_s) {
  // parva-audit: allow(R13): unit-polymorphic pressure metric by design.
  return span_ms + budget_s;
}

void set_deadline(double timeout_ms);

inline void arm_watchdog() {
  set_deadline(250);  // parva-audit: allow(R13): protocol-fixed default
}

inline double drift(double skew_ms) {
  // parva-audit: allow(R13): dimensionless ratio input downstream.
  double skew = skew_ms;
  return skew;
}
