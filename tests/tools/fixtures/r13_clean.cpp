// Golden fixture: unit-disciplined code R13 must not flag. Same-unit
// arithmetic, named constants for unit-suffixed parameters, and
// suffix-preserving assignments.

inline double total_span_ms(double warmup_ms, double run_ms) {
  return warmup_ms + run_ms;
}

inline bool over_budget(double used_bytes, double quota_bytes) {
  return used_bytes > quota_bytes;
}

void set_deadline(double timeout_ms);

constexpr double kDefaultTimeoutMs = 250.0;

inline void arm_watchdog() {
  set_deadline(kDefaultTimeoutMs);
}

inline double drift_ms(double skew_ms) {
  double residual_ms = skew_ms;
  return residual_ms;
}

inline double scaled(double span_ms, double rate_per_s) {
  // Multiplication and division between units are conversions, not mixing.
  return span_ms * rate_per_s / 1000.0;
}
