// Golden-fixture suite for parva_audit (tools/parva_audit). One fixture per
// rule R1-R15 with seeded violations at pinned lines, allow() suppression
// fixtures, clean fixtures, pinned (caller, callee) edge lists for the
// phase-1.5 call-graph builder, output-format goldens (JSON / SARIF),
// baseline round-trips, the fix-it engine round-trip (plant -> fix ->
// byte-exact golden -> re-audit clean), the incremental cache (warm run
// reuses everything; touched files re-analyze alone; config changes go
// cold), plus the meta-contracts: the repository's own src/ tree audits
// clean at HEAD, and the audit's output is deterministic regardless of
// traversal order or job count.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "audit.hpp"
#include "callgraph.hpp"
#include "fixits.hpp"

namespace {

namespace fs = std::filesystem;
using parva::audit::AuditConfig;
using parva::audit::Finding;

std::string fixture_path(const std::string& name) {
  return std::string(PARVA_AUDIT_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

AuditConfig default_config() {
  AuditConfig config;
  config.export_manifest = parva::audit::default_export_manifest();
  return config;
}

/// Builds a Finding without touching the fix-it fields (which would
/// otherwise trip -Wmissing-field-initializers under aggregate init).
Finding make_finding(std::string file, int line, std::string rule, std::string message) {
  Finding f;
  f.file = std::move(file);
  f.line = line;
  f.rule = std::move(rule);
  f.message = std::move(message);
  return f;
}

/// (rule, line) pairs, sorted, for comparison against pinned expectations.
std::vector<std::pair<std::string, int>> rule_lines(const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> audit_fixture(const std::string& name) {
  const std::string path = fixture_path(name);
  return parva::audit::audit_file(path, read_file(path), default_config());
}

TEST(AuditFixtures, R1BansNondeterminismSources) {
  const auto got = rule_lines(audit_fixture("r1_banned_randomness.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {
      {"R1", 9}, {"R1", 13}, {"R1", 17}, {"R1", 21}, {"R1", 26}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R2FlagsUnorderedIterationOnExportPaths) {
  const auto got = rule_lines(audit_fixture("r2_unordered_export.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {{"R2", 11}, {"R2", 19}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R2IgnoresFilesOutsideManifest) {
  // The same translation unit under a name no manifest entry matches is
  // exempt: R2 is scoped to exporter/CSV/fingerprint paths only.
  const std::string content = read_file(fixture_path("r2_unordered_export.cpp"));
  const auto findings =
      parva::audit::audit_file("src/core/allocator.cpp", content, default_config());
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R3FlagsMutableNamespaceScopeState) {
  const auto got = rule_lines(audit_fixture("r3_global_state.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {
      {"R3", 9}, {"R3", 10}, {"R3", 11}, {"R3", 12}, {"R3", 23}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R4FlagsHeaderHygiene) {
  const auto got = rule_lines(audit_fixture("r4_header_hygiene.hpp"));
  const std::vector<std::pair<std::string, int>> expected = {{"R4", 1}, {"R4", 6}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R4DoesNotApplyToTranslationUnits) {
  const std::string content = read_file(fixture_path("r4_header_hygiene.hpp"));
  const auto findings =
      parva::audit::audit_file("fixture.cpp", content, default_config());
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R5RequiresJustificationComments) {
  const auto got = rule_lines(audit_fixture("r5_relaxed_unjustified.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {{"R5", 8}, {"R5", 13}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R6FlagsUnannotatedDeclarationsAndDiscardedCalls) {
  const auto got = rule_lines(audit_fixture("r6_discarded_status.cpp"));
  // 8/9/13/22: declarations and definitions without [[nodiscard]];
  // 17/18/19: expression statements dropping a status result.
  const std::vector<std::pair<std::string, int>> expected = {
      {"R6", 8},  {"R6", 9},  {"R6", 13}, {"R6", 17},
      {"R6", 18}, {"R6", 19}, {"R6", 22}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R6AllowDirectiveSuppresses) {
  const auto findings = audit_fixture("r6_allow.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R6CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("r6_clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R6HeaderDeclarationExcusesDefinition) {
  // Two-phase contract: a .cpp definition without the attribute is excused
  // when the scan set contains an annotated declaration of the same name.
  const std::string header =
      "namespace fixture {\n"
      "enum class NvmlReturn { kSuccess };\n"
      "struct Sim { [[nodiscard]] NvmlReturn destroy(int gpu); };\n"
      "}\n";
  const std::string source =
      "namespace fixture {\n"
      "enum class NvmlReturn { kSuccess };\n"
      "struct Sim { [[nodiscard]] NvmlReturn destroy(int gpu); };\n"
      "NvmlReturn Sim::destroy(int gpu) { return NvmlReturn::kSuccess; }\n"
      "}\n";
  const auto index = parva::audit::build_index({{"sim.hpp", header}, {"sim.cpp", source}});
  const auto findings =
      parva::audit::audit_file("sim.cpp", source, default_config(), index);
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);

  // Without the index, the bare definition is a finding.
  const auto solo = parva::audit::audit_file(
      "sim.cpp",
      "namespace fixture {\n"
      "enum class NvmlReturn { kSuccess };\n"
      "struct Sim { NvmlReturn destroy(int gpu); };\n"
      "}\n",
      default_config());
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_EQ(solo[0].rule, "R6");
}

TEST(AuditFixtures, R7FlagsUnguardedMembersOfMutexOwningClass) {
  const auto got = rule_lines(audit_fixture("r7_unguarded_members.cpp"));
  // 19/20: unguarded mutable members; 22: guard names no lock member.
  const std::vector<std::pair<std::string, int>> expected = {
      {"R7", 19}, {"R7", 20}, {"R7", 22}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R7AllowDirectiveSuppresses) {
  const auto findings = audit_fixture("r7_allow.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R7CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("r7_clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R8FlagsHardcodedTablesAndShadowApis) {
  const auto got = rule_lines(audit_fixture("r8_geometry.cpp"));
  // 9/11: hardcoded slot tables; 13/17: shadow geometry API definitions.
  const std::vector<std::pair<std::string, int>> expected = {
      {"R8", 9}, {"R8", 11}, {"R8", 13}, {"R8", 17}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R8AllowDirectiveSuppresses) {
  const auto findings = audit_fixture("r8_allow.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R8CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("r8_clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R8GeometryHeaderMustKeepProvedTables) {
  // A gutted geometry header (tables or proofs removed) is a finding at
  // line 1 under the canonical path...
  const auto gutted = parva::audit::audit_file(
      "src/gpu/mig_geometry.hpp", "#pragma once\nstruct Empty {};\n",
      default_config());
  ASSERT_EQ(gutted.size(), 1u);
  EXPECT_EQ(gutted[0].rule, "R8");
  EXPECT_EQ(gutted[0].line, 1);

  // ...while a header carrying the tables and proofs is clean.
  const auto kept = parva::audit::audit_file(
      "src/gpu/mig_geometry.hpp",
      "#pragma once\n"
      "inline constexpr int kProfileTable = 0;\n"
      "inline constexpr int kPlacementTable = 0;\n"
      "static_assert(kProfileTable == 0);\n",
      default_config());
  EXPECT_TRUE(kept.empty()) << parva::audit::format_findings(kept);
}

TEST(AuditFixtures, R9FlagsLockOrderCycles) {
  const auto got = rule_lines(audit_fixture("r9_lock_cycle.cpp"));
  // 20: journal/ledger inversion, both edges intra-function; 39: gate/latch
  // cycle whose closing edge threads through the take_gate() call.
  const std::vector<std::pair<std::string, int>> expected = {{"R9", 20}, {"R9", 39}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R9WitnessNamesBothEdgesAndTheViaCall) {
  const auto findings = audit_fixture("r9_lock_cycle.cpp");
  ASSERT_EQ(findings.size(), 2u);
  // Each cycle is reported once, from its lexicographically smallest lock,
  // with every edge's acquisition site in the message.
  EXPECT_NE(findings[0].message.find(
                "'R9Locks::journal' -> 'R9Locks::ledger' -> 'R9Locks::journal'"),
            std::string::npos)
      << findings[0].message;
  // The edge discovered through one level of call names the callee that
  // takes the lock.
  EXPECT_NE(findings[1].message.find("via take_gate acquires 'R9Locks::gate'"),
            std::string::npos)
      << findings[1].message;
}

TEST(AuditFixtures, R9AllowDirectiveSuppresses) {
  const auto findings = audit_fixture("r9_allow.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R9CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("r9_clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R10FlagsDuplicateLiteralAndUnregisteredTags) {
  const auto got = rule_lines(audit_fixture("r10_rng_tags.cpp"));
  // 13: enumerator value collision; 22: literal tag argument; 23: named
  // constant that is not an RngStreamTag enumerator.
  const std::vector<std::pair<std::string, int>> expected = {
      {"R10", 13}, {"R10", 22}, {"R10", 23}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R10AllowDirectiveSuppresses) {
  const auto findings = audit_fixture("r10_allow.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R10CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("r10_clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R11FlagsBlockingOpsReachableFromHotPathRoots) {
  const auto got = rule_lines(audit_fixture("r11_hotpath_blocking.cpp"));
  // 27: pool submit one call below the root; 31/32: lock acquisition and
  // iostream write two calls below (advance -> drain_batch -> flush_metrics).
  const std::vector<std::pair<std::string, int>> expected = {
      {"R11", 27}, {"R11", 31}, {"R11", 32}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R11CustomRootsNarrowTheSearch) {
  // Rooting the walk at flush_metrics instead of the built-in defaults
  // keeps its own blocking ops but drops the submit in drain_batch, which
  // is no longer reachable.
  AuditConfig config = default_config();
  config.hotpath_roots = {"Shard::flush_metrics"};
  const std::string path = fixture_path("r11_hotpath_blocking.cpp");
  const auto got =
      rule_lines(parva::audit::audit_file(path, read_file(path), config));
  const std::vector<std::pair<std::string, int>> expected = {
      {"R11", 31}, {"R11", 32}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R11AllowDirectiveSuppresses) {
  const auto findings = audit_fixture("r11_allow.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R11CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("r11_clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R12FlagsReachableIterationAcrossFiles) {
  // The hole R2 leaves open: the iteration lives in a file no manifest
  // entry matches, but it is called from a fingerprint TU. Audited
  // together, the helper's line 14 is a finding attributed to the entry.
  const std::string entry = fixture_path("r12_fingerprint_entry.cpp");
  const std::string helper = fixture_path("r12_digest_helper.cpp");
  const auto findings = parva::audit::audit_files(
      {{entry, read_file(entry)}, {helper, read_file(helper)}}, default_config());
  const auto got = rule_lines(findings);
  const std::vector<std::pair<std::string, int>> expected = {{"R12", 14}};
  EXPECT_EQ(got, expected);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, helper);
  EXPECT_NE(findings[0].message.find("emit_fingerprint -> digest_accumulate"),
            std::string::npos)
      << findings[0].message;
}

TEST(AuditFixtures, R12HelperAloneIsClean) {
  // Without the manifest-matched entry in the scan set there is no
  // export-path root, so the helper's iteration is not reachable.
  const auto findings = audit_fixture("r12_digest_helper.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R12AllowDirectiveSuppresses) {
  const std::string entry = fixture_path("r12_fingerprint_entry.cpp");
  const std::string allowed = fixture_path("r12_digest_allow.cpp");
  const auto findings = parva::audit::audit_files(
      {{entry, read_file(entry)}, {allowed, read_file(allowed)}}, default_config());
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditCallGraph, EdgeListIsPinnedForResolutionShapes) {
  const std::string path = fixture_path("callgraph_shapes.cpp");
  const std::string content = read_file(path);
  const parva::audit::LexedFile lexed = parva::audit::lex(content);
  const auto graph = parva::audit::build_call_graph({{path, &lexed}});
  const auto edges = parva::audit::call_graph_edges(graph);
  const std::vector<std::pair<std::string, std::string>> expected = {
      // Declared receiver type beats the free function of the same name;
      // the bare call inside a free function stays free.
      {"cg_drive", "CgCounter::bump"},
      // Unambiguous unresolvable receiver: poke() is defined in exactly
      // one class, so cg_widget_source().poke() still resolves. The
      // ambiguous cg_mystery_source().measure() (CgAlpha/CgBeta) must NOT
      // appear here -- no edge is the documented conservative answer.
      {"cg_drive", "CgWidget::poke"},
      {"cg_drive", "bump"},
      // Both cg_scale overloads collapse onto one qualified-name edge.
      {"cg_drive", "cg_scale"},
      // Self-recursion and mutual recursion are ordinary edges.
      {"cg_factorial", "cg_factorial"},
      {"cg_ping", "cg_pong"},
      {"cg_pong", "cg_ping"},
  };
  EXPECT_EQ(edges, expected);
}

TEST(AuditOutput, JsonFormatIsGoldenForR9) {
  // An end-to-end golden for one of the graph rules: the R9 fixture's two
  // cycles rendered through the JSON formatter, witness text included.
  const auto findings = parva::audit::audit_file(
      "r9_lock_cycle.cpp", read_file(fixture_path("r9_lock_cycle.cpp")),
      default_config());
  EXPECT_EQ(
      parva::audit::format_findings_json(findings),
      "[\n"
      "  {\"file\": \"r9_lock_cycle.cpp\", \"line\": 20, \"rule\": \"R9\", "
      "\"message\": \"lock-order cycle (potential deadlock): "
      "'R9Locks::journal' -> 'R9Locks::ledger' -> 'R9Locks::journal'; edges: "
      "'R9Locks::journal' -> 'R9Locks::ledger' at r9_lock_cycle.cpp:20, "
      "'R9Locks::ledger' -> 'R9Locks::journal' at r9_lock_cycle.cpp:25; "
      "acquire these locks in one global order\"},\n"
      "  {\"file\": \"r9_lock_cycle.cpp\", \"line\": 39, \"rule\": \"R9\", "
      "\"message\": \"lock-order cycle (potential deadlock): "
      "'R9Locks::gate' -> 'R9Locks::latch' -> 'R9Locks::gate'; edges: "
      "'R9Locks::gate' -> 'R9Locks::latch' at r9_lock_cycle.cpp:39, "
      "'R9Locks::latch' -> 'R9Locks::gate' at r9_lock_cycle.cpp:34 "
      "(via take_gate acquires 'R9Locks::gate' at r9_lock_cycle.cpp:29); "
      "acquire these locks in one global order\"}\n"
      "]\n");
}

TEST(AuditOutput, JsonFormatIsGolden) {
  std::vector<Finding> findings;
  findings.push_back(make_finding("src/gpu/x.cpp", 42, "R6", "status result \"dropped\""));
  EXPECT_EQ(parva::audit::format_findings_json(findings),
            "[\n"
            "  {\"file\": \"src/gpu/x.cpp\", \"line\": 42, \"rule\": \"R6\", "
            "\"message\": \"status result \\\"dropped\\\"\"}\n"
            "]\n");
  EXPECT_EQ(parva::audit::format_findings_json({}), "[]\n");
}

TEST(AuditOutput, SarifFormatIsGolden) {
  std::vector<Finding> findings;
  findings.push_back(make_finding("src/gpu/x.cpp", 42, "R6", "status result dropped"));
  const std::string expected =
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"parva_audit\",\n"
      "          \"informationUri\": \"DESIGN.md\",\n"
      "          \"rules\": [\n"
      "            {\"id\": \"R1\", \"shortDescription\": {\"text\": \"banned "
      "nondeterminism sources (rand, srand, std::random_device, time(nullptr), "
      "std::chrono::system_clock) outside src/common/rng.hpp\"}},\n"
      "            {\"id\": \"R2\", \"shortDescription\": {\"text\": \"no "
      "unordered_{map,set} iteration in exporter/CSV/fingerprint TUs (path "
      "manifest; see --manifest)\"}},\n"
      "            {\"id\": \"R3\", \"shortDescription\": {\"text\": \"no mutable "
      "namespace-scope state in library code\"}},\n"
      "            {\"id\": \"R4\", \"shortDescription\": {\"text\": \"header "
      "hygiene: #pragma once, no `using namespace` in headers\"}},\n"
      "            {\"id\": \"R5\", \"shortDescription\": {\"text\": \"every "
      "memory_order_relaxed carries a nearby justification comment\"}},\n"
      "            {\"id\": \"R6\", \"shortDescription\": {\"text\": "
      "\"status-returning functions (NvmlReturn/ErrorCode/Status/Result) are "
      "[[nodiscard]] and no call site discards the result\"}},\n"
      "            {\"id\": \"R7\", \"shortDescription\": {\"text\": \"every "
      "mutable data member of a mutex-owning class carries "
      "PARVA_GUARDED_BY(lock) (src/common/thread_annotations.hpp)\"}},\n"
      "            {\"id\": \"R8\", \"shortDescription\": {\"text\": \"MIG "
      "geometry is table-driven: constexpr kProfileTable/kPlacementTable with "
      "static_assert proofs; no hardcoded slot tables or shadow APIs\"}},\n"
      "            {\"id\": \"R9\", \"shortDescription\": {\"text\": \"the "
      "lock-acquisition order graph (lock-guard scopes, including one level "
      "through a call) is acyclic; cycles are potential deadlocks\"}},\n"
      "            {\"id\": \"R10\", \"shortDescription\": {\"text\": \"every "
      "Rng::stream tag is a named enumerator of the RngStreamTag registry "
      "(src/common/rng.hpp) with pairwise-distinct values\"}},\n"
      "            {\"id\": \"R11\", \"shortDescription\": {\"text\": \"no "
      "blocking operation (locks, pool submit/wait, iostream/file I/O) is "
      "transitively reachable from a hot-path root (--hotpath-roots)\"}},\n"
      "            {\"id\": \"R12\", \"shortDescription\": {\"text\": \"no "
      "unordered-container iteration transitively reachable from functions "
      "defined in export/fingerprint manifest files\"}},\n"
      "            {\"id\": \"R13\", \"shortDescription\": {\"text\": \"unit "
      "discipline: no mixed-unit arithmetic between quantity-suffixed names "
      "(_ms/_s/_bytes/...), no bare literals for unit-suffixed parameters, no "
      "suffix-less laundering sinks\"}},\n"
      "            {\"id\": \"R14\", \"shortDescription\": {\"text\": "
      "\"floating-point determinism: loop +=/-= reductions on double/float "
      "reachable from export-manifest entries must use parva::sorted_sum or "
      "carry allow(R14)\"}},\n"
      "            {\"id\": \"R15\", \"shortDescription\": {\"text\": "
      "\"iterator/reference invalidation: no use of a vector/deque "
      "reference/pointer/iterator after push_back/insert/erase/clear on the "
      "same container in the same scope\"}}\n"
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n"
      "        {\"ruleId\": \"R6\", \"level\": \"error\", \"message\": {\"text\": "
      "\"status result dropped\"}, \"locations\": [{\"physicalLocation\": "
      "{\"artifactLocation\": {\"uri\": \"src/gpu/x.cpp\"}, \"region\": "
      "{\"startLine\": 42}}}]}\n"
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(parva::audit::format_findings_sarif(findings), expected);
}

TEST(AuditBaseline, RoundTripSuppressesAcceptedFindings) {
  std::vector<Finding> findings;
  findings.push_back(make_finding("a.cpp", 10, "R6", "dropped"));
  findings.push_back(make_finding("b.cpp", 20, "R7", "unguarded"));
  const auto baseline = parva::audit::parse_baseline(
      parva::audit::format_baseline(findings));
  // Line numbers are excluded from keys: a shifted finding still matches.
  findings[0].line = 99;
  const auto result = parva::audit::apply_baseline(findings, baseline);
  EXPECT_TRUE(result.fresh.empty());
  EXPECT_EQ(result.suppressed, 2);
  EXPECT_EQ(result.stale, 0u);
}

TEST(AuditBaseline, MultisetSemanticsAndStaleEntries) {
  // Two identical findings need two baseline entries; a third entry with no
  // matching finding is stale; an unlisted finding stays fresh.
  std::vector<Finding> findings;
  findings.push_back(make_finding("a.cpp", 1, "R6", "dropped"));
  findings.push_back(make_finding("a.cpp", 2, "R6", "dropped"));
  findings.push_back(make_finding("c.cpp", 3, "R8", "hardcoded"));
  const auto baseline = parva::audit::parse_baseline(
      "# comment\n"
      "a.cpp|R6|dropped\n"
      "a.cpp|R6|dropped\n"
      "gone.cpp|R1|removed long ago\n");
  const auto result = parva::audit::apply_baseline(findings, baseline);
  ASSERT_EQ(result.fresh.size(), 1u);
  EXPECT_EQ(result.fresh[0].file, "c.cpp");
  EXPECT_EQ(result.suppressed, 2);
  EXPECT_EQ(result.stale, 1u);

  // One entry suppresses only one of the two identical findings.
  const auto partial = parva::audit::apply_baseline(
      findings, parva::audit::parse_baseline("a.cpp|R6|dropped\n"));
  EXPECT_EQ(partial.suppressed, 1);
  EXPECT_EQ(partial.fresh.size(), 2u);
}

TEST(AuditFixtures, AllowDirectiveSuppressesFindings) {
  const auto findings = audit_fixture("allow_suppression.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R13FlagsUnitMixingLiteralArgsAndLaundering) {
  const auto got = rule_lines(audit_fixture("r13_unit_mixing.cpp"));
  // 7/11: mixed-unit arithmetic; 17: bare literal for a unit-suffixed
  // parameter; 21: suffix-less assignment sink laundering the unit away.
  const std::vector<std::pair<std::string, int>> expected = {
      {"R13", 7}, {"R13", 11}, {"R13", 17}, {"R13", 21}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R13AllowDirectiveSuppresses) {
  const auto findings = audit_fixture("r13_allow.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R13CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("r13_clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R13ZeroLiteralIsUnitNeutralInAnySpelling) {
  const std::string content =
      "void set_deadline(double timeout_ms);\n"
      "inline void disarm() { set_deadline(0.0); set_deadline(0); }\n";
  const auto findings =
      parva::audit::audit_file("watchdog.cpp", content, default_config());
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R13UnitBindingsCrossFilesOnlyThroughHeaders) {
  // A .cpp-local declaration binds call sites in its own file only: a
  // DES shard's `advance(double bound_ms)` must not turn every other
  // TU's unrelated `advance(1)` (a lexer cursor, say) into a finding.
  // The same declaration in a header is an exported API and does bind.
  const std::string decl = "void advance(double bound_ms);\n";
  const std::string call = "void advance(int n);\ninline void step() { advance(1); }\n";
  const auto cpp_scoped = parva::audit::audit_files(
      {{"sim.cpp", decl}, {"lexer.cpp", call}}, default_config());
  EXPECT_TRUE(cpp_scoped.empty()) << parva::audit::format_findings(cpp_scoped);

  const auto header_bound = parva::audit::audit_files(
      {{"sim.hpp", "#pragma once\n" + decl},
       {"other.cpp", "inline void step() { advance(1); }\n"}},
      default_config());
  const auto got = rule_lines(header_bound);
  const std::vector<std::pair<std::string, int>> expected = {{"R13", 1}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R14FlagsLoopReductionsOnExportPaths) {
  const auto got = rule_lines(audit_fixture("r14_export_rollup.cpp"));
  // 11: += reduction in a manifest entry; 22: -= reduction in a helper
  // reachable from one.
  const std::vector<std::pair<std::string, int>> expected = {{"R14", 11}, {"R14", 22}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R14IgnoresFilesOutsideManifest) {
  const std::string content = read_file(fixture_path("r14_export_rollup.cpp"));
  const auto findings =
      parva::audit::audit_file("src/core/allocator.cpp", content, default_config());
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R14AllowDirectiveSuppresses) {
  // The alias path contains "export" so the function is a manifest entry.
  const std::string content = read_file(fixture_path("r14_allow.cpp"));
  const auto findings =
      parva::audit::audit_file("r14_allow_export.cpp", content, default_config());
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R14SortedSumHelperIsExempt) {
  const std::string content = read_file(fixture_path("r14_clean.cpp"));
  const auto findings =
      parva::audit::audit_file("r14_clean_export.cpp", content, default_config());
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R15FlagsUseAfterInvalidatingMutation) {
  const auto got = rule_lines(audit_fixture("r15_invalidation.cpp"));
  // 9: reference used after push_back; 15: iterator after erase;
  // 21: iterator after clear.
  const std::vector<std::pair<std::string, int>> expected = {
      {"R15", 9}, {"R15", 15}, {"R15", 21}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R15AllowDirectiveSuppresses) {
  const auto findings = audit_fixture("r15_allow.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R15CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("r15_clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

// ------------------------------------------------------------ fix-its ----

TEST(AuditFixits, RoundTripMatchesGoldenAndReauditsClean) {
  const std::string path = fixture_path("fixit_planted.hpp");
  const std::string content = read_file(path);
  const auto findings = parva::audit::audit_file(path, content, default_config());
  ASSERT_EQ(findings.size(), 3u) << parva::audit::format_findings(findings);
  for (const Finding& f : findings) {
    EXPECT_FALSE(f.fix_edits.empty()) << f.rule << " carries no fix";
    EXPECT_FALSE(f.fix_description.empty()) << f.rule;
  }
  std::string fixed = content;
  const std::size_t applied = parva::audit::apply_fix_edits(path, findings, fixed);
  EXPECT_EQ(applied, 3u);
  // Byte-exact against the committed golden, and the fixed bytes re-audit
  // clean -- the fix engine must converge in one pass.
  EXPECT_EQ(fixed, read_file(fixture_path("fixit_planted.hpp.golden")));
  const auto refindings = parva::audit::audit_file(path, fixed, default_config());
  EXPECT_TRUE(refindings.empty()) << parva::audit::format_findings(refindings);
}

TEST(AuditFixits, SarifOutputCarriesFixes) {
  const std::string path = fixture_path("fixit_planted.hpp");
  const auto findings =
      parva::audit::audit_file(path, read_file(path), default_config());
  const std::string sarif = parva::audit::format_findings_sarif(findings);
  EXPECT_NE(sarif.find("\"fixes\""), std::string::npos);
  EXPECT_NE(sarif.find("\"insertedContent\""), std::string::npos);
  EXPECT_NE(sarif.find("RngStreamTag::kArrival"), std::string::npos);
}

TEST(AuditFixits, StaleEditsAreSkippedNotClamped) {
  const std::string path = fixture_path("fixit_planted.hpp");
  const std::string content = read_file(path);
  const auto findings = parva::audit::audit_file(path, content, default_config());
  // Apply against content the findings were NOT computed from: a file
  // truncated to one line. Every edit is out of bounds and skipped.
  std::string truncated = "// nothing here\n";
  const std::size_t applied = parva::audit::apply_fix_edits(path, findings, truncated);
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(truncated, "// nothing here\n");
}

// -------------------------------------------------- incremental cache ----

namespace cache_helpers {

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

}  // namespace cache_helpers

TEST(AuditCache, WarmRunReusesEverythingAndMatchesCold) {
  const fs::path root = fs::temp_directory_path() / "parva_audit_cache_warm";
  fs::remove_all(root);
  fs::create_directories(root / "tree");
  cache_helpers::write_file(root / "tree" / "a.cpp",
                            "inline int stir() { return rand(); }\n");
  cache_helpers::write_file(root / "tree" / "b.cpp",
                            "inline int calm() { return 4; }\n");
  AuditConfig config = default_config();
  config.cache_dir = (root / "cache").string();
  std::vector<std::string> errors;
  parva::audit::CacheStats stats;

  const auto cold = parva::audit::audit_paths({(root / "tree").string()}, config,
                                              errors, &stats);
  EXPECT_TRUE(stats.enabled);
  EXPECT_TRUE(stats.cold);
  EXPECT_EQ(stats.analyzed, 2u);
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_EQ(cold[0].rule, "R1");

  const auto warm = parva::audit::audit_paths({(root / "tree").string()}, config,
                                              errors, &stats);
  EXPECT_FALSE(stats.cold);
  EXPECT_EQ(stats.analyzed, 0u);
  EXPECT_EQ(stats.reused, 2u);
  // Byte-identical findings, fix-its included.
  EXPECT_EQ(parva::audit::format_findings_sarif(cold),
            parva::audit::format_findings_sarif(warm));
  EXPECT_TRUE(errors.empty());
  fs::remove_all(root);
}

TEST(AuditCache, TouchingOneFileReanalyzesOnlyThatFile) {
  const fs::path root = fs::temp_directory_path() / "parva_audit_cache_touch";
  fs::remove_all(root);
  fs::create_directories(root / "tree");
  cache_helpers::write_file(root / "tree" / "a.cpp",
                            "inline int stir() { return rand(); }\n");
  cache_helpers::write_file(root / "tree" / "b.cpp",
                            "inline int calm() { return 4; }\n");
  AuditConfig config = default_config();
  config.cache_dir = (root / "cache").string();
  std::vector<std::string> errors;
  parva::audit::CacheStats stats;
  const auto cold = parva::audit::audit_paths({(root / "tree").string()}, config,
                                              errors, &stats);

  // A comment-only edit changes the content hash but no cross-file
  // contribution, so the warm run re-analyzes exactly the touched file.
  cache_helpers::write_file(root / "tree" / "b.cpp",
                            "// still calm\ninline int calm() { return 4; }\n");
  const auto warm = parva::audit::audit_paths({(root / "tree").string()}, config,
                                              errors, &stats);
  EXPECT_FALSE(stats.cold);
  EXPECT_EQ(stats.analyzed, 1u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(parva::audit::format_findings(cold), parva::audit::format_findings(warm));
  EXPECT_TRUE(errors.empty());
  fs::remove_all(root);
}

TEST(AuditCache, ConfigChangeForcesAColdRun) {
  const fs::path root = fs::temp_directory_path() / "parva_audit_cache_config";
  fs::remove_all(root);
  fs::create_directories(root / "tree");
  cache_helpers::write_file(root / "tree" / "a.cpp",
                            "inline int stir() { return rand(); }\n");
  AuditConfig config = default_config();
  config.cache_dir = (root / "cache").string();
  std::vector<std::string> errors;
  parva::audit::CacheStats stats;
  (void)parva::audit::audit_paths({(root / "tree").string()}, config, errors, &stats);
  EXPECT_TRUE(stats.cold);

  // A different rule set keys a different manifest: cold again.
  config.rules = {"R1"};
  (void)parva::audit::audit_paths({(root / "tree").string()}, config, errors, &stats);
  EXPECT_TRUE(stats.cold);
  EXPECT_EQ(stats.analyzed, 1u);
  fs::remove_all(root);
}

// ------------------------------------------------------------ parallel ----

TEST(AuditJobs, ParallelAuditMatchesSerial) {
  const std::string fixtures_dir(PARVA_AUDIT_FIXTURE_DIR);
  std::vector<std::string> errors;
  AuditConfig serial = default_config();
  serial.jobs = 1;
  AuditConfig parallel = default_config();
  parallel.jobs = 4;
  const auto one = parva::audit::audit_paths({fixtures_dir}, serial, errors);
  const auto four = parva::audit::audit_paths({fixtures_dir}, parallel, errors);
  EXPECT_EQ(parva::audit::format_findings(one), parva::audit::format_findings(four));
  EXPECT_TRUE(errors.empty());
}

// The acceptance gate: the repository's own library code audits clean.
// A regression here means a change reintroduced a nondeterminism source,
// racy global, or unjustified relaxed atomic -- fix the code (or justify
// with an allow() annotation), do not delete this test.
TEST(AuditRepo, RepositorySrcTreeIsClean) {
  std::vector<std::string> errors;
  const auto findings = parva::audit::audit_paths({std::string(PARVA_REPO_SRC_DIR)},
                                                  default_config(), errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

// A violation fixture planted under a src-shaped tree is caught: this is
// the documented "golden fixture placed under src/" scenario.
TEST(AuditRepo, PlantedFixturesTriggerUnderSrcTree) {
  const fs::path root = fs::temp_directory_path() / "parva_audit_planted";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "telemetry");
  const std::vector<std::string> fixtures = {
      "r1_banned_randomness.cpp", "r2_unordered_export.cpp", "r3_global_state.cpp",
      "r4_header_hygiene.hpp", "r5_relaxed_unjustified.cpp", "r6_discarded_status.cpp",
      "r7_unguarded_members.cpp", "r8_geometry.cpp", "r9_lock_cycle.cpp",
      "r10_rng_tags.cpp", "r11_hotpath_blocking.cpp", "r12_fingerprint_entry.cpp",
      "r12_digest_helper.cpp", "r13_unit_mixing.cpp", "r14_export_rollup.cpp",
      "r15_invalidation.cpp"};
  for (const std::string& name : fixtures) {
    fs::copy_file(fixture_path(name), root / "src" / "telemetry" / name);
  }
  std::vector<std::string> errors;
  const auto findings =
      parva::audit::audit_paths({(root / "src").string()}, default_config(), errors);
  EXPECT_TRUE(errors.empty());
  for (const char* rule : {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
                           "R10", "R11", "R12", "R13", "R14", "R15"}) {
    EXPECT_TRUE(std::any_of(findings.begin(), findings.end(),
                            [&](const Finding& f) { return f.rule == rule; }))
        << "planted fixture for " << rule << " was not detected";
  }
  fs::remove_all(root);
}

// The audit obeys the determinism contract it enforces: identical findings
// regardless of argument order, and stable across repeated runs.
TEST(AuditRepo, OutputIsDeterministic) {
  const std::string fixtures_dir(PARVA_AUDIT_FIXTURE_DIR);
  std::vector<std::string> errors;
  const AuditConfig config = default_config();
  const auto once = parva::audit::audit_paths({fixtures_dir}, config, errors);
  const auto twice = parva::audit::audit_paths({fixtures_dir}, config, errors);
  EXPECT_EQ(parva::audit::format_findings(once), parva::audit::format_findings(twice));
  // Individual files in reverse order must produce the same sorted output.
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(fixtures_dir)) {
    // Match the tool's own extension filter: the fixture dir also holds
    // .golden files that directory scans skip.
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.rbegin(), files.rend());
  const auto reversed = parva::audit::audit_paths(files, config, errors);
  EXPECT_EQ(parva::audit::format_findings(once), parva::audit::format_findings(reversed));
  EXPECT_TRUE(errors.empty());
}

}  // namespace
