// Golden-fixture suite for parva_audit (tools/parva_audit). One fixture per
// rule R1-R8 with seeded violations at pinned lines, allow() suppression
// fixtures, clean fixtures, output-format goldens (JSON / SARIF), baseline
// round-trips, plus the two meta-contracts: the repository's own src/ tree
// audits clean at HEAD, and the audit's output is deterministic regardless
// of traversal order.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "audit.hpp"

namespace {

namespace fs = std::filesystem;
using parva::audit::AuditConfig;
using parva::audit::Finding;

std::string fixture_path(const std::string& name) {
  return std::string(PARVA_AUDIT_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

AuditConfig default_config() {
  AuditConfig config;
  config.export_manifest = parva::audit::default_export_manifest();
  return config;
}

/// (rule, line) pairs, sorted, for comparison against pinned expectations.
std::vector<std::pair<std::string, int>> rule_lines(const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> audit_fixture(const std::string& name) {
  const std::string path = fixture_path(name);
  return parva::audit::audit_file(path, read_file(path), default_config());
}

TEST(AuditFixtures, R1BansNondeterminismSources) {
  const auto got = rule_lines(audit_fixture("r1_banned_randomness.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {
      {"R1", 9}, {"R1", 13}, {"R1", 17}, {"R1", 21}, {"R1", 26}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R2FlagsUnorderedIterationOnExportPaths) {
  const auto got = rule_lines(audit_fixture("r2_unordered_export.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {{"R2", 11}, {"R2", 19}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R2IgnoresFilesOutsideManifest) {
  // The same translation unit under a name no manifest entry matches is
  // exempt: R2 is scoped to exporter/CSV/fingerprint paths only.
  const std::string content = read_file(fixture_path("r2_unordered_export.cpp"));
  const auto findings =
      parva::audit::audit_file("src/core/allocator.cpp", content, default_config());
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R3FlagsMutableNamespaceScopeState) {
  const auto got = rule_lines(audit_fixture("r3_global_state.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {
      {"R3", 9}, {"R3", 10}, {"R3", 11}, {"R3", 12}, {"R3", 23}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R4FlagsHeaderHygiene) {
  const auto got = rule_lines(audit_fixture("r4_header_hygiene.hpp"));
  const std::vector<std::pair<std::string, int>> expected = {{"R4", 1}, {"R4", 6}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R4DoesNotApplyToTranslationUnits) {
  const std::string content = read_file(fixture_path("r4_header_hygiene.hpp"));
  const auto findings =
      parva::audit::audit_file("fixture.cpp", content, default_config());
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R5RequiresJustificationComments) {
  const auto got = rule_lines(audit_fixture("r5_relaxed_unjustified.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {{"R5", 8}, {"R5", 13}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R6FlagsUnannotatedDeclarationsAndDiscardedCalls) {
  const auto got = rule_lines(audit_fixture("r6_discarded_status.cpp"));
  // 8/9/13/22: declarations and definitions without [[nodiscard]];
  // 17/18/19: expression statements dropping a status result.
  const std::vector<std::pair<std::string, int>> expected = {
      {"R6", 8},  {"R6", 9},  {"R6", 13}, {"R6", 17},
      {"R6", 18}, {"R6", 19}, {"R6", 22}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R6AllowDirectiveSuppresses) {
  const auto findings = audit_fixture("r6_allow.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R6CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("r6_clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R6HeaderDeclarationExcusesDefinition) {
  // Two-phase contract: a .cpp definition without the attribute is excused
  // when the scan set contains an annotated declaration of the same name.
  const std::string header =
      "namespace fixture {\n"
      "enum class NvmlReturn { kSuccess };\n"
      "struct Sim { [[nodiscard]] NvmlReturn destroy(int gpu); };\n"
      "}\n";
  const std::string source =
      "namespace fixture {\n"
      "enum class NvmlReturn { kSuccess };\n"
      "struct Sim { [[nodiscard]] NvmlReturn destroy(int gpu); };\n"
      "NvmlReturn Sim::destroy(int gpu) { return NvmlReturn::kSuccess; }\n"
      "}\n";
  const auto index = parva::audit::build_index({{"sim.hpp", header}, {"sim.cpp", source}});
  const auto findings =
      parva::audit::audit_file("sim.cpp", source, default_config(), index);
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);

  // Without the index, the bare definition is a finding.
  const auto solo = parva::audit::audit_file(
      "sim.cpp",
      "namespace fixture {\n"
      "enum class NvmlReturn { kSuccess };\n"
      "struct Sim { NvmlReturn destroy(int gpu); };\n"
      "}\n",
      default_config());
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_EQ(solo[0].rule, "R6");
}

TEST(AuditFixtures, R7FlagsUnguardedMembersOfMutexOwningClass) {
  const auto got = rule_lines(audit_fixture("r7_unguarded_members.cpp"));
  // 19/20: unguarded mutable members; 22: guard names no lock member.
  const std::vector<std::pair<std::string, int>> expected = {
      {"R7", 19}, {"R7", 20}, {"R7", 22}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R7AllowDirectiveSuppresses) {
  const auto findings = audit_fixture("r7_allow.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R7CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("r7_clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R8FlagsHardcodedTablesAndShadowApis) {
  const auto got = rule_lines(audit_fixture("r8_geometry.cpp"));
  // 9/11: hardcoded slot tables; 13/17: shadow geometry API definitions.
  const std::vector<std::pair<std::string, int>> expected = {
      {"R8", 9}, {"R8", 11}, {"R8", 13}, {"R8", 17}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R8AllowDirectiveSuppresses) {
  const auto findings = audit_fixture("r8_allow.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R8CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("r8_clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R8GeometryHeaderMustKeepProvedTables) {
  // A gutted geometry header (tables or proofs removed) is a finding at
  // line 1 under the canonical path...
  const auto gutted = parva::audit::audit_file(
      "src/gpu/mig_geometry.hpp", "#pragma once\nstruct Empty {};\n",
      default_config());
  ASSERT_EQ(gutted.size(), 1u);
  EXPECT_EQ(gutted[0].rule, "R8");
  EXPECT_EQ(gutted[0].line, 1);

  // ...while a header carrying the tables and proofs is clean.
  const auto kept = parva::audit::audit_file(
      "src/gpu/mig_geometry.hpp",
      "#pragma once\n"
      "inline constexpr int kProfileTable = 0;\n"
      "inline constexpr int kPlacementTable = 0;\n"
      "static_assert(kProfileTable == 0);\n",
      default_config());
  EXPECT_TRUE(kept.empty()) << parva::audit::format_findings(kept);
}

TEST(AuditOutput, JsonFormatIsGolden) {
  std::vector<Finding> findings;
  findings.push_back({"src/gpu/x.cpp", 42, "R6", "status result \"dropped\""});
  EXPECT_EQ(parva::audit::format_findings_json(findings),
            "[\n"
            "  {\"file\": \"src/gpu/x.cpp\", \"line\": 42, \"rule\": \"R6\", "
            "\"message\": \"status result \\\"dropped\\\"\"}\n"
            "]\n");
  EXPECT_EQ(parva::audit::format_findings_json({}), "[]\n");
}

TEST(AuditOutput, SarifFormatIsGolden) {
  std::vector<Finding> findings;
  findings.push_back({"src/gpu/x.cpp", 42, "R6", "status result dropped"});
  const std::string expected =
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"parva_audit\",\n"
      "          \"informationUri\": \"DESIGN.md\",\n"
      "          \"rules\": [\n"
      "            {\"id\": \"R1\", \"shortDescription\": {\"text\": \"banned "
      "nondeterminism sources (rand, srand, std::random_device, time(nullptr), "
      "std::chrono::system_clock) outside src/common/rng.hpp\"}},\n"
      "            {\"id\": \"R2\", \"shortDescription\": {\"text\": \"no "
      "unordered_{map,set} iteration in exporter/CSV/fingerprint TUs (path "
      "manifest; see --manifest)\"}},\n"
      "            {\"id\": \"R3\", \"shortDescription\": {\"text\": \"no mutable "
      "namespace-scope state in library code\"}},\n"
      "            {\"id\": \"R4\", \"shortDescription\": {\"text\": \"header "
      "hygiene: #pragma once, no `using namespace` in headers\"}},\n"
      "            {\"id\": \"R5\", \"shortDescription\": {\"text\": \"every "
      "memory_order_relaxed carries a nearby justification comment\"}},\n"
      "            {\"id\": \"R6\", \"shortDescription\": {\"text\": "
      "\"status-returning functions (NvmlReturn/ErrorCode/Status/Result) are "
      "[[nodiscard]] and no call site discards the result\"}},\n"
      "            {\"id\": \"R7\", \"shortDescription\": {\"text\": \"every "
      "mutable data member of a mutex-owning class carries "
      "PARVA_GUARDED_BY(lock) (src/common/thread_annotations.hpp)\"}},\n"
      "            {\"id\": \"R8\", \"shortDescription\": {\"text\": \"MIG "
      "geometry is table-driven: constexpr kProfileTable/kPlacementTable with "
      "static_assert proofs; no hardcoded slot tables or shadow APIs\"}}\n"
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n"
      "        {\"ruleId\": \"R6\", \"level\": \"error\", \"message\": {\"text\": "
      "\"status result dropped\"}, \"locations\": [{\"physicalLocation\": "
      "{\"artifactLocation\": {\"uri\": \"src/gpu/x.cpp\"}, \"region\": "
      "{\"startLine\": 42}}}]}\n"
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(parva::audit::format_findings_sarif(findings), expected);
}

TEST(AuditBaseline, RoundTripSuppressesAcceptedFindings) {
  std::vector<Finding> findings;
  findings.push_back({"a.cpp", 10, "R6", "dropped"});
  findings.push_back({"b.cpp", 20, "R7", "unguarded"});
  const auto baseline = parva::audit::parse_baseline(
      parva::audit::format_baseline(findings));
  // Line numbers are excluded from keys: a shifted finding still matches.
  findings[0].line = 99;
  const auto result = parva::audit::apply_baseline(findings, baseline);
  EXPECT_TRUE(result.fresh.empty());
  EXPECT_EQ(result.suppressed, 2);
  EXPECT_EQ(result.stale, 0u);
}

TEST(AuditBaseline, MultisetSemanticsAndStaleEntries) {
  // Two identical findings need two baseline entries; a third entry with no
  // matching finding is stale; an unlisted finding stays fresh.
  std::vector<Finding> findings;
  findings.push_back({"a.cpp", 1, "R6", "dropped"});
  findings.push_back({"a.cpp", 2, "R6", "dropped"});
  findings.push_back({"c.cpp", 3, "R8", "hardcoded"});
  const auto baseline = parva::audit::parse_baseline(
      "# comment\n"
      "a.cpp|R6|dropped\n"
      "a.cpp|R6|dropped\n"
      "gone.cpp|R1|removed long ago\n");
  const auto result = parva::audit::apply_baseline(findings, baseline);
  ASSERT_EQ(result.fresh.size(), 1u);
  EXPECT_EQ(result.fresh[0].file, "c.cpp");
  EXPECT_EQ(result.suppressed, 2);
  EXPECT_EQ(result.stale, 1u);

  // One entry suppresses only one of the two identical findings.
  const auto partial = parva::audit::apply_baseline(
      findings, parva::audit::parse_baseline("a.cpp|R6|dropped\n"));
  EXPECT_EQ(partial.suppressed, 1);
  EXPECT_EQ(partial.fresh.size(), 2u);
}

TEST(AuditFixtures, AllowDirectiveSuppressesFindings) {
  const auto findings = audit_fixture("allow_suppression.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

// The acceptance gate: the repository's own library code audits clean.
// A regression here means a change reintroduced a nondeterminism source,
// racy global, or unjustified relaxed atomic -- fix the code (or justify
// with an allow() annotation), do not delete this test.
TEST(AuditRepo, RepositorySrcTreeIsClean) {
  std::vector<std::string> errors;
  const auto findings = parva::audit::audit_paths({std::string(PARVA_REPO_SRC_DIR)},
                                                  default_config(), errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

// A violation fixture planted under a src-shaped tree is caught: this is
// the documented "golden fixture placed under src/" scenario.
TEST(AuditRepo, PlantedFixturesTriggerUnderSrcTree) {
  const fs::path root = fs::temp_directory_path() / "parva_audit_planted";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "telemetry");
  const std::vector<std::string> fixtures = {
      "r1_banned_randomness.cpp", "r2_unordered_export.cpp", "r3_global_state.cpp",
      "r4_header_hygiene.hpp", "r5_relaxed_unjustified.cpp", "r6_discarded_status.cpp",
      "r7_unguarded_members.cpp", "r8_geometry.cpp"};
  for (const std::string& name : fixtures) {
    fs::copy_file(fixture_path(name), root / "src" / "telemetry" / name);
  }
  std::vector<std::string> errors;
  const auto findings =
      parva::audit::audit_paths({(root / "src").string()}, default_config(), errors);
  EXPECT_TRUE(errors.empty());
  for (const char* rule : {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"}) {
    EXPECT_TRUE(std::any_of(findings.begin(), findings.end(),
                            [&](const Finding& f) { return f.rule == rule; }))
        << "planted fixture for " << rule << " was not detected";
  }
  fs::remove_all(root);
}

// The audit obeys the determinism contract it enforces: identical findings
// regardless of argument order, and stable across repeated runs.
TEST(AuditRepo, OutputIsDeterministic) {
  const std::string fixtures_dir(PARVA_AUDIT_FIXTURE_DIR);
  std::vector<std::string> errors;
  const AuditConfig config = default_config();
  const auto once = parva::audit::audit_paths({fixtures_dir}, config, errors);
  const auto twice = parva::audit::audit_paths({fixtures_dir}, config, errors);
  EXPECT_EQ(parva::audit::format_findings(once), parva::audit::format_findings(twice));
  // Individual files in reverse order must produce the same sorted output.
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(fixtures_dir)) {
    files.push_back(entry.path().string());
  }
  std::sort(files.rbegin(), files.rend());
  const auto reversed = parva::audit::audit_paths(files, config, errors);
  EXPECT_EQ(parva::audit::format_findings(once), parva::audit::format_findings(reversed));
  EXPECT_TRUE(errors.empty());
}

}  // namespace
