// Golden-fixture suite for parva_audit (tools/parva_audit). One fixture per
// rule R1-R5 with seeded violations at pinned lines, an allow() suppression
// fixture, a clean fixture, plus the two meta-contracts: the repository's
// own src/ tree audits clean at HEAD, and the audit's output is
// deterministic regardless of traversal order.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "audit.hpp"

namespace {

namespace fs = std::filesystem;
using parva::audit::AuditConfig;
using parva::audit::Finding;

std::string fixture_path(const std::string& name) {
  return std::string(PARVA_AUDIT_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

AuditConfig default_config() {
  AuditConfig config;
  config.export_manifest = parva::audit::default_export_manifest();
  return config;
}

/// (rule, line) pairs, sorted, for comparison against pinned expectations.
std::vector<std::pair<std::string, int>> rule_lines(const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> audit_fixture(const std::string& name) {
  const std::string path = fixture_path(name);
  return parva::audit::audit_file(path, read_file(path), default_config());
}

TEST(AuditFixtures, R1BansNondeterminismSources) {
  const auto got = rule_lines(audit_fixture("r1_banned_randomness.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {
      {"R1", 9}, {"R1", 13}, {"R1", 17}, {"R1", 21}, {"R1", 26}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R2FlagsUnorderedIterationOnExportPaths) {
  const auto got = rule_lines(audit_fixture("r2_unordered_export.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {{"R2", 11}, {"R2", 19}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R2IgnoresFilesOutsideManifest) {
  // The same translation unit under a name no manifest entry matches is
  // exempt: R2 is scoped to exporter/CSV/fingerprint paths only.
  const std::string content = read_file(fixture_path("r2_unordered_export.cpp"));
  const auto findings =
      parva::audit::audit_file("src/core/allocator.cpp", content, default_config());
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R3FlagsMutableNamespaceScopeState) {
  const auto got = rule_lines(audit_fixture("r3_global_state.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {
      {"R3", 9}, {"R3", 10}, {"R3", 11}, {"R3", 12}, {"R3", 23}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R4FlagsHeaderHygiene) {
  const auto got = rule_lines(audit_fixture("r4_header_hygiene.hpp"));
  const std::vector<std::pair<std::string, int>> expected = {{"R4", 1}, {"R4", 6}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, R4DoesNotApplyToTranslationUnits) {
  const std::string content = read_file(fixture_path("r4_header_hygiene.hpp"));
  const auto findings =
      parva::audit::audit_file("fixture.cpp", content, default_config());
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, R5RequiresJustificationComments) {
  const auto got = rule_lines(audit_fixture("r5_relaxed_unjustified.cpp"));
  const std::vector<std::pair<std::string, int>> expected = {{"R5", 8}, {"R5", 13}};
  EXPECT_EQ(got, expected);
}

TEST(AuditFixtures, AllowDirectiveSuppressesFindings) {
  const auto findings = audit_fixture("allow_suppression.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

TEST(AuditFixtures, CleanFileProducesNoFindings) {
  const auto findings = audit_fixture("clean.cpp");
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

// The acceptance gate: the repository's own library code audits clean.
// A regression here means a change reintroduced a nondeterminism source,
// racy global, or unjustified relaxed atomic -- fix the code (or justify
// with an allow() annotation), do not delete this test.
TEST(AuditRepo, RepositorySrcTreeIsClean) {
  std::vector<std::string> errors;
  const auto findings = parva::audit::audit_paths({std::string(PARVA_REPO_SRC_DIR)},
                                                  default_config(), errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_TRUE(findings.empty()) << parva::audit::format_findings(findings);
}

// A violation fixture planted under a src-shaped tree is caught: this is
// the documented "golden fixture placed under src/" scenario.
TEST(AuditRepo, PlantedFixturesTriggerUnderSrcTree) {
  const fs::path root = fs::temp_directory_path() / "parva_audit_planted";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "telemetry");
  const std::vector<std::string> fixtures = {
      "r1_banned_randomness.cpp", "r2_unordered_export.cpp", "r3_global_state.cpp",
      "r4_header_hygiene.hpp", "r5_relaxed_unjustified.cpp"};
  for (const std::string& name : fixtures) {
    fs::copy_file(fixture_path(name), root / "src" / "telemetry" / name);
  }
  std::vector<std::string> errors;
  const auto findings =
      parva::audit::audit_paths({(root / "src").string()}, default_config(), errors);
  EXPECT_TRUE(errors.empty());
  for (const char* rule : {"R1", "R2", "R3", "R4", "R5"}) {
    EXPECT_TRUE(std::any_of(findings.begin(), findings.end(),
                            [&](const Finding& f) { return f.rule == rule; }))
        << "planted fixture for " << rule << " was not detected";
  }
  fs::remove_all(root);
}

// The audit obeys the determinism contract it enforces: identical findings
// regardless of argument order, and stable across repeated runs.
TEST(AuditRepo, OutputIsDeterministic) {
  const std::string fixtures_dir(PARVA_AUDIT_FIXTURE_DIR);
  std::vector<std::string> errors;
  const AuditConfig config = default_config();
  const auto once = parva::audit::audit_paths({fixtures_dir}, config, errors);
  const auto twice = parva::audit::audit_paths({fixtures_dir}, config, errors);
  EXPECT_EQ(parva::audit::format_findings(once), parva::audit::format_findings(twice));
  // Individual files in reverse order must produce the same sorted output.
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(fixtures_dir)) {
    files.push_back(entry.path().string());
  }
  std::sort(files.rbegin(), files.rend());
  const auto reversed = parva::audit::audit_paths(files, config, errors);
  EXPECT_EQ(parva::audit::format_findings(once), parva::audit::format_findings(reversed));
  EXPECT_TRUE(errors.empty());
}

}  // namespace
