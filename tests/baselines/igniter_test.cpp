#include "baselines/igniter.hpp"

#include <gtest/gtest.h>

#include <map>

#include "scenarios/scenarios.hpp"

namespace parva::baselines {
namespace {

class IgniterTest : public ::testing::Test {
 protected:
  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
  IgniterScheduler scheduler_{perf_};
};

TEST_F(IgniterTest, LowRateScenariosFeasible) {
  for (const char* name : {"S1", "S2", "S3", "S4"}) {
    const auto result = scheduler_.schedule(scenarios::scenario(name).services);
    EXPECT_TRUE(result.ok()) << name;
  }
}

TEST_F(IgniterTest, HighRateScenariosFail) {
  // The paper: iGniter cannot handle S5/S6 (no mechanism for rates beyond
  // one GPU partition).
  for (const char* name : {"S5", "S6"}) {
    const auto result = scheduler_.schedule(scenarios::scenario(name).services);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.error().code(), ErrorCode::kCapacityExceeded);
  }
}

TEST_F(IgniterTest, OnePartitionPerService) {
  const auto& services = scenarios::scenario("S2").services;
  const auto result = scheduler_.schedule(services).value();
  EXPECT_EQ(result.deployment.units.size(), services.size());
  for (const auto& spec : services) {
    EXPECT_EQ(result.deployment.units_for_service(spec.id).size(), 1u) << spec.model;
  }
}

TEST_F(IgniterTest, PaddingCreatesHeadroom) {
  // Every unit's ground-truth capacity must exceed its service's rate —
  // iGniter pads allocations, so no violations (paper Fig. 8) but slack.
  const auto& services = scenarios::scenario("S2").services;
  const auto result = scheduler_.schedule(services).value();
  for (const auto& spec : services) {
    EXPECT_GT(result.deployment.service_capacity(spec.id), spec.request_rate) << spec.model;
  }
}

TEST_F(IgniterTest, GpuFractionBudgetRespected) {
  const auto result = scheduler_.schedule(scenarios::scenario("S3").services).value();
  std::map<int, double> granted;
  for (const auto& unit : result.deployment.units) {
    granted[unit.gpu_index] += unit.gpc_grant;
  }
  for (const auto& [gpu, gpcs] : granted) {
    EXPECT_LE(gpcs, 7.0 + 1e-9) << "GPU " << gpu;
  }
}

TEST_F(IgniterTest, LeftoverFractionsAreFragmentation) {
  // iGniter has no fragmentation handling: some GPU must be left with
  // ungranted capacity in S2 (the paper measures ~27% on average).
  const auto result = scheduler_.schedule(scenarios::scenario("S2").services).value();
  double granted = 0.0;
  for (const auto& unit : result.deployment.units) granted += unit.gpc_grant;
  EXPECT_LT(granted, result.deployment.gpu_count * 7.0 - 1e-6);
}

TEST_F(IgniterTest, FractionsQuantizedToGrid) {
  const auto result = scheduler_.schedule(scenarios::scenario("S1").services).value();
  for (const auto& unit : result.deployment.units) {
    const double fraction = unit.gpc_grant / 7.0;
    const double steps = fraction / 0.05;
    EXPECT_NEAR(steps, std::round(steps), 1e-6) << "fraction " << fraction;
  }
}

}  // namespace
}  // namespace parva::baselines
