#include "baselines/gslice.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "scenarios/scenarios.hpp"

namespace parva::baselines {
namespace {

class GsliceTest : public ::testing::Test {
 protected:
  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
  GsliceScheduler scheduler_{perf_};

  /// A workload mix that comfortably fits one GPU.
  std::vector<core::ServiceSpec> single_gpu_mix() {
    return {
        {0, "resnet-50", 205, 300},
        {1, "mobilenetv2", 167, 250},
        {2, "densenet-121", 183, 120},
    };
  }
};

TEST_F(GsliceTest, SingleGpuMixFeasible) {
  const auto result = scheduler_.schedule(single_gpu_mix());
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().deployment.gpu_count, 1);
  EXPECT_EQ(result.value().deployment.units.size(), 3u);
}

TEST_F(GsliceTest, EveryServiceCovered) {
  const auto services = single_gpu_mix();
  const auto result = scheduler_.schedule(services).value();
  for (const auto& spec : services) {
    EXPECT_GE(result.deployment.service_capacity(spec.id), spec.request_rate) << spec.model;
  }
}

TEST_F(GsliceTest, SelfTuningPreventsInternalSlack) {
  // GSLICE's shrink phase must leave the deployment tighter than a naive
  // even split: internal slack clearly below the even-split's.
  const auto services = single_gpu_mix();
  const auto result = scheduler_.schedule(services).value();
  const auto metrics = core::compute_metrics(result.deployment, services);
  EXPECT_LT(metrics.internal_slack, 0.60);
  // Partitions sum to at most the GPU.
  double granted = 0.0;
  for (const auto& unit : result.deployment.units) granted += unit.gpc_grant;
  EXPECT_LE(granted, 7.0 + 1e-9);
}

TEST_F(GsliceTest, MeasurementBasedSoPlannedEqualsActual) {
  const auto result = scheduler_.schedule(single_gpu_mix()).value();
  for (const auto& unit : result.deployment.units) {
    EXPECT_DOUBLE_EQ(unit.planned_throughput, unit.actual_throughput);
    EXPECT_DOUBLE_EQ(unit.planned_latency_ms, unit.actual_latency_ms);
  }
}

TEST_F(GsliceTest, HighRequestRatesInfeasible) {
  // Table I: GSLICE has no multi-GPU story. S2's full demand exceeds one
  // GPU and must be rejected.
  const auto result = scheduler_.schedule(scenarios::scenario("S2").services);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCapacityExceeded);
}

TEST_F(GsliceTest, TooManyWorkloadsInfeasible) {
  std::vector<core::ServiceSpec> crowd;
  for (int i = 0; i < 60; ++i) crowd.push_back({i, "mobilenetv2", 167, 1});
  const auto result = scheduler_.schedule(crowd);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCapacityExceeded);
}

TEST_F(GsliceTest, EmptySetIsTrivial) {
  const auto result = scheduler_.schedule({});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().deployment.units.empty());
}

TEST_F(GsliceTest, UnknownModelRejected) {
  const std::vector<core::ServiceSpec> bad = {{0, "mystery", 100, 10}};
  const auto result = scheduler_.schedule(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace parva::baselines
