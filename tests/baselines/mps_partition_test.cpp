#include "baselines/mps_partition.hpp"

#include <gtest/gtest.h>

namespace parva::baselines {
namespace {

class MpsPartitionTest : public ::testing::Test {
 protected:
  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
  const perfmodel::WorkloadTraits& resnet_ = perfmodel::ModelCatalog::builtin().at("resnet-50");
};

TEST_F(MpsPartitionTest, BestPointRespectsLatencyCap) {
  const auto point = best_partition_point(perf_, resnet_, 0.5, 50.0, 0.0);
  ASSERT_TRUE(point.has_value());
  EXPECT_LE(point->latency_ms, 50.0);
  EXPECT_GT(point->throughput, 0.0);
  EXPECT_DOUBLE_EQ(point->gpu_fraction, 0.5);
}

TEST_F(MpsPartitionTest, TighterCapNeverImprovesThroughput) {
  const auto loose = best_partition_point(perf_, resnet_, 0.5, 200.0, 0.0);
  const auto tight = best_partition_point(perf_, resnet_, 0.5, 20.0, 0.0);
  ASSERT_TRUE(loose.has_value());
  if (tight.has_value()) {
    EXPECT_LE(tight->throughput, loose->throughput + 1e-9);
  }
}

TEST_F(MpsPartitionTest, ImpossibleCapYieldsNothing) {
  EXPECT_FALSE(best_partition_point(perf_, resnet_, 0.1, 0.01, 0.0).has_value());
}

TEST_F(MpsPartitionTest, InterferenceShrinksThroughput) {
  const auto clean = best_partition_point(perf_, resnet_, 0.5, 100.0, 0.0);
  const auto noisy = best_partition_point(perf_, resnet_, 0.5, 100.0, 0.3);
  ASSERT_TRUE(clean.has_value());
  ASSERT_TRUE(noisy.has_value());
  EXPECT_LT(noisy->throughput, clean->throughput);
}

TEST_F(MpsPartitionTest, SmallestFractionIsMinimal) {
  const auto minimal = smallest_fraction_for_rate(perf_, resnet_, 500.0, 100.0, 0.1, 0.0);
  ASSERT_TRUE(minimal.has_value());
  EXPECT_GE(minimal->throughput, 500.0);
  if (minimal->gpu_fraction > 0.1 + 1e-9) {
    // One quantum less must not satisfy the rate.
    const auto smaller = best_partition_point(perf_, resnet_, minimal->gpu_fraction - 0.1,
                                              100.0, 0.0);
    if (smaller.has_value()) {
      EXPECT_LT(smaller->throughput, 500.0);
    }
  }
}

TEST_F(MpsPartitionTest, UnreachableRateYieldsNothing) {
  EXPECT_FALSE(smallest_fraction_for_rate(perf_, resnet_, 1e9, 100.0, 0.1, 0.0).has_value());
}

TEST_F(MpsPartitionTest, MemoryScalesWithFraction) {
  // A tiny partition's memory grant excludes huge batches: its best batch
  // must be no larger than a full partition's.
  const auto tiny = best_partition_point(perf_, resnet_, 0.05, 1000.0, 0.0);
  const auto full = best_partition_point(perf_, resnet_, 1.0, 1000.0, 0.0);
  ASSERT_TRUE(full.has_value());
  if (tiny.has_value()) {
    EXPECT_LE(tiny->batch, full->batch);
  }
}

}  // namespace
}  // namespace parva::baselines
