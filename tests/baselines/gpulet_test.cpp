#include "baselines/gpulet.hpp"

#include <gtest/gtest.h>

#include <map>

#include "scenarios/scenarios.hpp"

namespace parva::baselines {
namespace {

class GpuletTest : public ::testing::Test {
 protected:
  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
  GpuletScheduler scheduler_{perf_};
};

TEST_F(GpuletTest, AtMostTwoPartitionsPerGpu) {
  const auto result = scheduler_.schedule(scenarios::scenario("S2").services).value();
  std::map<int, int> partitions_per_gpu;
  for (const auto& unit : result.deployment.units) {
    ++partitions_per_gpu[unit.gpu_index];
  }
  for (const auto& [gpu, count] : partitions_per_gpu) {
    EXPECT_LE(count, 2) << "GPU " << gpu;
  }
}

TEST_F(GpuletTest, PairedGpusAreFullyGranted) {
  // gpulet grants the second partition all remaining resources, and a lone
  // partition the whole GPU: granted compute per GPU is always 7 GPCs.
  const auto result = scheduler_.schedule(scenarios::scenario("S2").services).value();
  std::map<int, double> granted;
  for (const auto& unit : result.deployment.units) {
    granted[unit.gpu_index] += unit.gpc_grant;
  }
  for (const auto& [gpu, gpcs] : granted) {
    EXPECT_NEAR(gpcs, 7.0, 1e-9) << "GPU " << gpu;
  }
}

TEST_F(GpuletTest, CapacityCoversEveryService) {
  const auto& services = scenarios::scenario("S3").services;
  const auto result = scheduler_.schedule(services).value();
  for (const auto& spec : services) {
    // gpulet's optimistic predictor may under-provision slightly (the
    // paper's violation episode); allow a small relative shortfall.
    EXPECT_GE(result.deployment.service_capacity(spec.id), 0.93 * spec.request_rate)
        << spec.model;
  }
}

TEST_F(GpuletTest, HighRatesSplitIntoManyChunks) {
  const auto s2 = scheduler_.schedule(scenarios::scenario("S2").services).value();
  const auto s5 = scheduler_.schedule(scenarios::scenario("S5").services).value();
  EXPECT_GT(s5.deployment.gpu_count, 3 * s2.deployment.gpu_count)
      << "gpulet's GPU usage must escalate at high request rates (paper Fig. 5)";
}

TEST_F(GpuletTest, HeterogeneousPairsCarryInterference) {
  const auto result = scheduler_.schedule(scenarios::scenario("S2").services).value();
  std::map<int, std::vector<const core::DeployedUnit*>> by_gpu;
  for (const auto& unit : result.deployment.units) {
    by_gpu[unit.gpu_index].push_back(&unit);
  }
  bool saw_pair = false;
  for (const auto& [gpu, units] : by_gpu) {
    if (units.size() != 2) continue;
    saw_pair = true;
    for (const auto* unit : units) {
      // Ground truth must be strictly worse than the interference-free
      // evaluation at the SAME grant and batch (the planned numbers use a
      // different grant for second partitions, so compare like-for-like).
      const auto& traits = perfmodel::ModelCatalog::builtin().at(unit->model);
      const auto clean =
          perf_.evaluate_mps_share(traits, unit->gpc_grant / 7.0, unit->batch, 1, 0.0);
      ASSERT_TRUE(clean.ok());
      EXPECT_GT(unit->actual_latency_ms, clean.value().latency_ms) << unit->model;
      EXPECT_LT(unit->actual_throughput, clean.value().throughput) << unit->model;
    }
  }
  EXPECT_TRUE(saw_pair) << "S2 should produce at least one paired GPU";
}

TEST_F(GpuletTest, MpsUnitsNotMigBacked) {
  const auto result = scheduler_.schedule(scenarios::scenario("S1").services).value();
  EXPECT_FALSE(result.deployment.uses_mig);
  for (const auto& unit : result.deployment.units) {
    EXPECT_FALSE(unit.placement.has_value());
    EXPECT_EQ(unit.procs, 1);
  }
}

TEST_F(GpuletTest, ImpossibleSloRejected) {
  const std::vector<core::ServiceSpec> impossible = {{0, "vgg-19", 0.5, 100}};
  const auto result = scheduler_.schedule(impossible);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCapacityExceeded);
}

TEST_F(GpuletTest, UnknownModelRejected) {
  const std::vector<core::ServiceSpec> bad = {{0, "mystery", 100, 100}};
  const auto result = scheduler_.schedule(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace parva::baselines
