#include "baselines/mig_serving.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/parvagpu.hpp"
#include "scenarios/scenarios.hpp"
#include "tests/core/test_support.hpp"

namespace parva::baselines {
namespace {

using core::testing::builtin_profiles;

class MigServingTest : public ::testing::Test {
 protected:
  MigServingScheduler scheduler_{builtin_profiles()};
};

TEST_F(MigServingTest, AllScenariosFeasible) {
  for (const auto& sc : scenarios::all_scenarios()) {
    EXPECT_TRUE(scheduler_.schedule(sc.services).ok()) << sc.name;
  }
}

TEST_F(MigServingTest, NoMpsSingleProcessPerInstance) {
  const auto result = scheduler_.schedule(scenarios::scenario("S2").services).value();
  EXPECT_TRUE(result.deployment.uses_mig);
  for (const auto& unit : result.deployment.units) {
    EXPECT_EQ(unit.procs, 1);
    ASSERT_TRUE(unit.placement.has_value());
    EXPECT_TRUE(gpu::is_legal_placement(*unit.placement));
  }
}

TEST_F(MigServingTest, PlacementsNeverOverlap) {
  const auto result = scheduler_.schedule(scenarios::scenario("S4").services).value();
  std::map<int, std::uint8_t> masks;
  for (const auto& unit : result.deployment.units) {
    const std::uint8_t mask = unit.placement->slot_mask();
    EXPECT_EQ(masks[unit.gpu_index] & mask, 0) << "GPU " << unit.gpu_index;
    masks[unit.gpu_index] |= mask;
  }
}

TEST_F(MigServingTest, OverAllocatesDemand) {
  // The safety-factored ceil must provision visibly more capacity than the
  // rate — the paper's internal-slack source.
  const auto& services = scenarios::scenario("S2").services;
  const auto result = scheduler_.schedule(services).value();
  double total_capacity = 0.0;
  double total_rate = 0.0;
  for (const auto& spec : services) {
    const double capacity = result.deployment.service_capacity(spec.id);
    EXPECT_GE(capacity, spec.request_rate) << spec.model;
    total_capacity += capacity;
    total_rate += spec.request_rate;
  }
  EXPECT_GT(total_capacity, 1.3 * total_rate);
}

TEST_F(MigServingTest, AbsorbsFreeSlotsIntoReplicas) {
  // With absorption on, every used GPU ends with no legal room for even a
  // 1-GPC instance (fragmentation converted to slack, as the paper's
  // scoring does).
  const auto result = scheduler_.schedule(scenarios::scenario("S2").services).value();
  std::map<int, std::uint8_t> masks;
  for (const auto& unit : result.deployment.units) {
    masks[unit.gpu_index] |= unit.placement->slot_mask();
  }
  for (const auto& [gpu, mask] : masks) {
    EXPECT_FALSE(gpu::find_start_slot(mask, 1).has_value()) << "GPU " << gpu;
  }
}

TEST_F(MigServingTest, WithoutAbsorptionFragmentsRemain) {
  MigServingOptions options;
  options.absorb_free_slots = false;
  MigServingScheduler bare(builtin_profiles(), options);
  const auto absorbed = scheduler_.schedule(scenarios::scenario("S2").services).value();
  const auto unabsorbed = bare.schedule(scenarios::scenario("S2").services).value();
  EXPECT_LE(unabsorbed.deployment.total_granted_gpcs(),
            absorbed.deployment.total_granted_gpcs());
  EXPECT_EQ(unabsorbed.deployment.gpu_count, absorbed.deployment.gpu_count);
}

TEST_F(MigServingTest, UsesMoreGpusThanParvaGpu) {
  core::ParvaGpuScheduler parva(builtin_profiles());
  for (const char* name : {"S2", "S5"}) {
    const auto& services = scenarios::scenario(name).services;
    const auto mig = scheduler_.schedule(services).value();
    const auto ours = parva.schedule(services).value();
    EXPECT_GT(mig.deployment.gpu_count, ours.deployment.gpu_count) << name;
  }
}

TEST_F(MigServingTest, RefinementReducesOrKeepsGpuCount) {
  MigServingOptions no_refine;
  no_refine.max_refinement_rounds = 0;
  MigServingScheduler greedy_only(builtin_profiles(), no_refine);
  const auto& services = scenarios::scenario("S5").services;
  const auto refined = scheduler_.schedule(services).value();
  const auto greedy = greedy_only.schedule(services).value();
  EXPECT_LE(refined.deployment.gpu_count, greedy.deployment.gpu_count);
}

TEST_F(MigServingTest, SlowModeNeverWorseThanFast) {
  MigServingOptions slow_options;
  slow_options.mode = MigServingMode::kSlow;
  slow_options.annealing_iterations = 1500;
  MigServingScheduler slow(builtin_profiles(), slow_options);
  EXPECT_EQ(slow.name(), "MIG-serving-slow");
  for (const char* name : {"S2", "S5"}) {
    const auto& services = scenarios::scenario(name).services;
    const auto fast_result = scheduler_.schedule(services).value();
    const auto slow_result = slow.schedule(services).value();
    EXPECT_LE(slow_result.deployment.gpu_count, fast_result.deployment.gpu_count) << name;
    // The slow search costs far more scheduling time.
    EXPECT_GT(slow_result.scheduling_delay_ms, 3.0 * fast_result.scheduling_delay_ms) << name;
    // And its deployment still covers every service.
    for (const auto& spec : services) {
      EXPECT_GE(slow_result.deployment.service_capacity(spec.id), spec.request_rate)
          << name << " " << spec.model;
    }
  }
}

TEST_F(MigServingTest, SlowModeIsDeterministicPerSeed) {
  MigServingOptions options;
  options.mode = MigServingMode::kSlow;
  options.annealing_iterations = 500;
  MigServingScheduler a(builtin_profiles(), options);
  MigServingScheduler b(builtin_profiles(), options);
  const auto& services = scenarios::scenario("S3").services;
  EXPECT_EQ(a.schedule(services).value().deployment.gpu_count,
            b.schedule(services).value().deployment.gpu_count);
}

TEST_F(MigServingTest, InfeasibleSloRejected) {
  const std::vector<core::ServiceSpec> impossible = {{0, "bert-large", 1.0, 10}};
  const auto result = scheduler_.schedule(impossible);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCapacityExceeded);
}

}  // namespace
}  // namespace parva::baselines
