#include "core/allocator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/configurator.hpp"
#include "tests/core/test_support.hpp"

namespace parva::core {
namespace {

using testing::builtin_profiles;
using testing::service;
using testing::triplet;

/// Builds a hand-crafted configured service (no profiles needed).
ConfiguredService configured(int id, int opt_gpcs, double opt_tp, int num_opt,
                             std::optional<Triplet> last = std::nullopt,
                             std::optional<Triplet> small1 = std::nullopt,
                             std::optional<Triplet> small2 = std::nullopt) {
  ConfiguredService c;
  c.spec = service(id, "synthetic", 100, opt_tp * num_opt);
  c.opt_seg = triplet(opt_gpcs, opt_tp);
  c.num_opt_seg = num_opt;
  c.last_seg = last;
  c.opt_tri_array[0] = small1;
  c.opt_tri_array[1] = small2;
  const int idx = instance_size_index(opt_gpcs);
  if (idx >= 0) c.opt_tri_array[static_cast<std::size_t>(idx)] = c.opt_seg;
  return c;
}

/// Invariant checker: every GPU layout must be geometrically valid.
void expect_valid(const DeploymentPlan& plan) {
  for (const auto& gpu : plan.gpus()) {
    std::uint8_t mask = 0;
    for (const auto& segment : gpu.segments()) {
      ASSERT_TRUE(gpu::is_legal_placement(segment.placement)) << gpu.to_string();
      ASSERT_EQ(mask & segment.placement.slot_mask(), 0) << gpu.to_string();
      mask |= segment.placement.slot_mask();
    }
    ASSERT_EQ(mask, gpu.occupied_mask());
  }
}

TEST(AllocatorTest, RelocationPlacesEverySegment) {
  SegmentAllocator allocator;
  const std::vector<ConfiguredService> services = {
      configured(0, 4, 1000, 2, triplet(1, 100)),
      configured(1, 3, 800, 1),
      configured(2, 2, 500, 3),
  };
  const auto plan = allocator.segment_relocation(services);
  ASSERT_TRUE(plan.ok());
  expect_valid(plan.value());
  // 2x4g + 1x1g + 1x3g + 3x2g = 7 segments.
  EXPECT_EQ(plan.value().all_segments().size(), 7u);
  EXPECT_EQ(plan.value().total_allocated_gpcs(), 2 * 4 + 1 + 3 + 3 * 2);
}

TEST(AllocatorTest, LargestSegmentsPlacedFirst) {
  SegmentAllocator allocator;
  const std::vector<ConfiguredService> services = {
      configured(0, 1, 100, 3),  // enqueued first but smallest
      configured(1, 7, 1000, 1),
      configured(2, 4, 500, 1),
      configured(3, 3, 400, 1),
  };
  const auto plan = allocator.segment_relocation(services).value();
  expect_valid(plan);
  // 7g fills GPU0; 4g starts GPU1; 3g joins it at slot 4; 1g segments fill
  // GPU2 (left block first).
  ASSERT_GE(plan.gpu_count(), 2u);
  EXPECT_EQ(plan.gpu(0).segments().front().triplet.gpcs, 7);
  EXPECT_EQ(plan.gpu(1).allocated_gpcs(), 7);  // 4 + 3
}

TEST(AllocatorTest, OptimizationConsolidatesLoneThreeGpcGpus) {
  // Two services whose demand produces 3-GPC segments: relocation leaves
  // one GPU per 3g segment (3@0 is declined), optimization re-expresses
  // them into 1/2-GPC segments and consolidates.
  const Triplet small1 = triplet(1, 260);
  const Triplet small2 = triplet(2, 540);
  std::vector<ConfiguredService> services;
  for (int id = 0; id < 4; ++id) {
    services.push_back(configured(id, 3, 750, 1, std::nullopt, small1, small2));
  }
  AllocatorOptions options;
  options.optimize = false;
  const auto unoptimized = SegmentAllocator(options).allocate(services).value();
  EXPECT_EQ(unoptimized.gpu_count(), 4u);  // one lone 3@4 per GPU

  const auto optimized = SegmentAllocator().allocate(services).value();
  expect_valid(optimized);
  EXPECT_LT(optimized.gpu_count(), unoptimized.gpu_count());
  // Throughput coverage preserved for every service.
  std::map<int, double> capacity;
  for (const auto& [gpu, segment] : optimized.all_segments()) {
    capacity[segment->service_id] += segment->triplet.throughput;
  }
  for (const auto& s : services) {
    EXPECT_GE(capacity[s.spec.id] + 1e-9, 750.0) << "service " << s.spec.id;
  }
}

TEST(AllocatorTest, OptimizationSkipsServicesWithoutSmallTriplets) {
  // A service whose only triplet is 3-GPC cannot be re-expressed; its
  // segments must stay in place.
  std::vector<ConfiguredService> services = {configured(0, 3, 750, 1)};
  const auto plan = SegmentAllocator().allocate(services).value();
  ASSERT_EQ(plan.all_segments().size(), 1u);
  EXPECT_EQ(plan.all_segments()[0].second->triplet.gpcs, 3);
}

TEST(AllocatorTest, OptimizationNeverUsesMoreGpus) {
  for (int mix = 0; mix < 8; ++mix) {
    std::vector<ConfiguredService> services;
    const Triplet small1 = triplet(1, 100);
    const Triplet small2 = triplet(2, 210);
    services.push_back(configured(0, (mix % 2 != 0) ? 4 : 3, 900, 1 + mix % 3,
                                  std::nullopt, small1, small2));
    services.push_back(
        configured(1, (mix % 3 == 0) ? 7 : 2, 800, 1 + mix % 2, triplet(1, 90), small1));
    AllocatorOptions unopt;
    unopt.optimize = false;
    const auto before = SegmentAllocator(unopt).allocate(services).value();
    const auto after = SegmentAllocator().allocate(services).value();
    EXPECT_LE(after.gpu_count(), before.gpu_count()) << "mix " << mix;
    expect_valid(after);
  }
}

TEST(AllocatorTest, SurplusCarriesAcrossGpus) {
  // Hand-built map: an anchor GPU {4g(B), 1g(C)} (5 GPCs: not dissolvable)
  // offers exactly two single-slot gaps; service A holds lone-3g GPUs 1
  // and 2. A's 1-GPC triplet delivers 700 req/s vs the 3-GPC segment's
  // 750, so the first dissolution (GPU2) produces 2 smalls (surplus 650)
  // which land in the anchor's gaps; the carried surplus then lets GPU1's
  // dissolution cover its 750 with a single small segment: 3 total, where
  // an unledgered re-expression would need 2 + 2 = 4.
  const Triplet small1 = triplet(1, 700);
  const std::vector<ConfiguredService> services = {
      configured(0, 3, 750, 2, std::nullopt, small1),
      configured(1, 4, 900, 1),
      configured(2, 1, 100, 1),
  };
  DeploymentPlan plan;
  plan.gpus().emplace_back(0);
  plan.gpus().emplace_back(1);
  plan.gpus().emplace_back(2);
  ASSERT_TRUE(plan.gpu(0).try_place_at(1, triplet(4, 900), 0));
  ASSERT_TRUE(plan.gpu(0).try_place_at(2, triplet(1, 100), 4));
  ASSERT_TRUE(plan.gpu(1).try_place_at(0, triplet(3, 750), 4));
  ASSERT_TRUE(plan.gpu(2).try_place_at(0, triplet(3, 750), 4));

  const DeploymentPlan optimized =
      SegmentAllocator().allocation_optimization(std::move(plan), services);
  expect_valid(optimized);
  double capacity_a = 0.0;
  int small_count_a = 0;
  for (const auto& [gpu, segment] : optimized.all_segments()) {
    if (segment->service_id != 0) continue;
    capacity_a += segment->triplet.throughput;
    if (segment->triplet.gpcs == 1) ++small_count_a;
  }
  EXPECT_GE(capacity_a + 1e-9, 1500.0);
  EXPECT_EQ(small_count_a, 3);
  EXPECT_EQ(optimized.gpu_count(), 2u);  // one lone-3g GPU dissolved away
}

TEST(AllocatorTest, ThresholdZeroDisablesDissolution) {
  std::vector<ConfiguredService> services = {
      configured(0, 3, 750, 1, std::nullopt, triplet(1, 260), triplet(2, 540))};
  AllocatorOptions options;
  options.optimization_threshold_gpcs = 0;
  const auto plan = SegmentAllocator(options).allocate(services).value();
  ASSERT_EQ(plan.all_segments().size(), 1u);
  EXPECT_EQ(plan.all_segments()[0].second->triplet.gpcs, 3);
}

TEST(AllocatorTest, PlaceServiceIsIncremental) {
  SegmentAllocator allocator;
  std::vector<ConfiguredService> services = {configured(0, 4, 1000, 1)};
  DeploymentPlan plan = allocator.allocate(services).value();
  const auto before = plan.all_segments().size();
  const auto added = configured(1, 3, 500, 1);
  ASSERT_TRUE(allocator.place_service(plan, added).ok());
  EXPECT_EQ(plan.all_segments().size(), before + 1);
  // The 3g lands beside the 4g on GPU0.
  EXPECT_EQ(plan.gpu_count(), 1u);
  expect_valid(plan);
}

TEST(AllocatorTest, EndToEndWithRealProfiles) {
  SegmentConfigurator configurator;
  const std::vector<ServiceSpec> specs = {
      service(0, "resnet-50", 205, 4196),    service(1, "vgg-19", 397, 2296),
      service(2, "mobilenetv2", 167, 7513),  service(3, "bert-large", 6434, 1264),
      service(4, "inceptionv3", 419, 5722),
  };
  const auto configured_set = configurator.configure(specs, builtin_profiles()).value();
  const auto plan = SegmentAllocator().allocate(configured_set).value();
  expect_valid(plan);
  // Every configured segment is placed.
  std::size_t expected = 0;
  for (const auto& c : configured_set) {
    expected += static_cast<std::size_t>(c.num_opt_seg) + (c.last_seg.has_value() ? 1 : 0);
  }
  // Optimization may change the segment count (re-expression) but coverage
  // must hold per service.
  std::map<int, double> capacity;
  for (const auto& [gpu, segment] : plan.all_segments()) {
    capacity[segment->service_id] += segment->triplet.throughput;
  }
  for (const auto& spec : specs) {
    EXPECT_GE(capacity[spec.id] + 1e-6, spec.request_rate) << spec.model;
  }
}

}  // namespace
}  // namespace parva::core
