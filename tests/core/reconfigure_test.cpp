#include "core/reconfigure.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/parvagpu.hpp"
#include "tests/core/test_support.hpp"

namespace parva::core {
namespace {

using testing::builtin_profiles;
using testing::service;

class ReconfigureTest : public ::testing::Test {
 protected:
  ReconfigureTest() : reconfigurer_(SegmentConfigurator(), SegmentAllocator()) {}

  void schedule(const std::vector<ServiceSpec>& services) {
    ParvaGpuScheduler scheduler(builtin_profiles());
    auto result = scheduler.schedule(services);
    ASSERT_TRUE(result.ok());
    plan_ = scheduler.last_plan();
    configured_ = scheduler.last_configured();
  }

  double capacity_of(int service_id) const {
    double total = 0.0;
    for (const auto& [gpu, segment] : plan_.all_segments()) {
      if (segment->service_id == service_id) total += segment->triplet.throughput;
    }
    return total;
  }

  Reconfigurer reconfigurer_;
  DeploymentPlan plan_;
  std::vector<ConfiguredService> configured_;
};

TEST_F(ReconfigureTest, RateIncreaseAddsCapacity) {
  schedule({service(0, "resnet-50", 205, 829), service(1, "vgg-19", 397, 354)});
  const ServiceSpec updated = service(0, "resnet-50", 205, 3000);
  const auto stats =
      reconfigurer_.update_service(plan_, configured_, updated, builtin_profiles());
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(capacity_of(0) + 1e-6, 3000.0);
  EXPECT_GE(capacity_of(1) + 1e-6, 354.0);  // the other service is untouched
  EXPECT_GT(stats.value().segments_removed, 0);
  EXPECT_GT(stats.value().segments_added, 0);
}

TEST_F(ReconfigureTest, SloTighteningReconfigures) {
  schedule({service(0, "inceptionv3", 419, 460), service(1, "mobilenetv2", 167, 677)});
  // Tighten inception's SLO to S5 levels; segments must be rebuilt with
  // latency below the new internal bound.
  const ServiceSpec updated = service(0, "inceptionv3", 146, 460);
  ASSERT_TRUE(
      reconfigurer_.update_service(plan_, configured_, updated, builtin_profiles()).ok());
  for (const auto& [gpu, segment] : plan_.all_segments()) {
    if (segment->service_id == 0) {
      EXPECT_LT(segment->triplet.latency_ms, 73.0);
    }
  }
  EXPECT_GE(capacity_of(0) + 1e-6, 460.0);
}

TEST_F(ReconfigureTest, OtherServicesKeepTheirOperatingPoints) {
  schedule({service(0, "resnet-50", 205, 829), service(1, "vgg-19", 397, 354),
            service(2, "bert-large", 6434, 19)});
  std::map<int, std::vector<int>> before;
  for (const auto& [gpu, segment] : plan_.all_segments()) {
    if (segment->service_id != 0) before[segment->service_id].push_back(segment->triplet.batch);
  }
  const ServiceSpec updated = service(0, "resnet-50", 205, 1500);
  ASSERT_TRUE(
      reconfigurer_.update_service(plan_, configured_, updated, builtin_profiles()).ok());
  std::map<int, std::vector<int>> after;
  for (const auto& [gpu, segment] : plan_.all_segments()) {
    if (segment->service_id != 0) after[segment->service_id].push_back(segment->triplet.batch);
  }
  EXPECT_EQ(before, after);
}

TEST_F(ReconfigureTest, AddBrandNewService) {
  schedule({service(0, "resnet-50", 205, 829)});
  const ServiceSpec fresh = service(7, "densenet-121", 183, 353);
  const auto stats =
      reconfigurer_.update_service(plan_, configured_, fresh, builtin_profiles());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().segments_removed, 0);
  EXPECT_GT(stats.value().segments_added, 0);
  EXPECT_GE(capacity_of(7) + 1e-6, 353.0);
  EXPECT_EQ(configured_.size(), 2u);
}

TEST_F(ReconfigureTest, InfeasibleUpdateLeavesPlanUsable) {
  schedule({service(0, "resnet-50", 205, 829)});
  const ServiceSpec impossible = service(0, "resnet-50", 0.5, 829);
  const auto stats =
      reconfigurer_.update_service(plan_, configured_, impossible, builtin_profiles());
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.error().code(), ErrorCode::kCapacityExceeded);
  // The failure happened before any mutation: the old placement survives.
  EXPECT_GE(capacity_of(0) + 1e-6, 829.0);
}

TEST_F(ReconfigureTest, RateDecreaseShrinksFootprint) {
  schedule({service(0, "mobilenetv2", 167, 7513), service(1, "vgg-19", 397, 354)});
  const int before = plan_.total_allocated_gpcs();
  const ServiceSpec updated = service(0, "mobilenetv2", 167, 500);
  ASSERT_TRUE(
      reconfigurer_.update_service(plan_, configured_, updated, builtin_profiles()).ok());
  EXPECT_LT(plan_.total_allocated_gpcs(), before);
  EXPECT_GE(capacity_of(0) + 1e-6, 500.0);
}

}  // namespace
}  // namespace parva::core
