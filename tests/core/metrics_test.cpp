#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_support.hpp"

namespace parva::core {
namespace {

using testing::service;

DeployedUnit unit(int service_id, int gpu, double gpcs, double throughput, double occupancy) {
  DeployedUnit u;
  u.service_id = service_id;
  u.gpu_index = gpu;
  u.gpc_grant = gpcs;
  u.actual_throughput = throughput;
  u.planned_throughput = throughput;
  u.sm_occupancy = occupancy;
  return u;
}

TEST(MetricsTest, FullyLoadedPerfectDeployment) {
  Deployment deployment;
  deployment.gpu_count = 1;
  deployment.units.push_back(unit(0, 0, 7.0, 1000.0, 1.0));
  const std::vector<ServiceSpec> services = {service(0, "m", 100, 1000.0)};
  const auto metrics = compute_metrics(deployment, services);
  EXPECT_EQ(metrics.gpu_count, 1);
  EXPECT_NEAR(metrics.internal_slack, 0.0, 1e-12);
  EXPECT_NEAR(metrics.external_fragmentation, 0.0, 1e-12);
}

TEST(MetricsTest, HalfLoadedUnitHasHalfSlack) {
  Deployment deployment;
  deployment.gpu_count = 1;
  deployment.units.push_back(unit(0, 0, 7.0, 1000.0, 1.0));
  const std::vector<ServiceSpec> services = {service(0, "m", 100, 500.0)};
  const auto metrics = compute_metrics(deployment, services);
  EXPECT_NEAR(metrics.internal_slack, 0.5, 1e-12);
}

TEST(MetricsTest, OccupancyLimitsActivity) {
  Deployment deployment;
  deployment.gpu_count = 1;
  deployment.units.push_back(unit(0, 0, 7.0, 1000.0, 0.8));
  const std::vector<ServiceSpec> services = {service(0, "m", 100, 1000.0)};
  const auto metrics = compute_metrics(deployment, services);
  EXPECT_NEAR(metrics.internal_slack, 0.2, 1e-12);
}

TEST(MetricsTest, FragmentationCountsUngrantedCapacity) {
  Deployment deployment;
  deployment.gpu_count = 2;  // 14 GPCs capacity
  deployment.units.push_back(unit(0, 0, 7.0, 1000.0, 1.0));
  deployment.units.push_back(unit(1, 1, 3.5, 500.0, 1.0));
  const std::vector<ServiceSpec> services = {service(0, "a", 100, 1000.0),
                                             service(1, "b", 100, 500.0)};
  const auto metrics = compute_metrics(deployment, services);
  EXPECT_NEAR(metrics.external_fragmentation, 1.0 - 10.5 / 14.0, 1e-12);
  EXPECT_NEAR(metrics.total_granted_gpcs, 10.5, 1e-12);
}

TEST(MetricsTest, LoadSplitsAcrossUnitsOfOneService) {
  Deployment deployment;
  deployment.gpu_count = 2;
  deployment.units.push_back(unit(0, 0, 7.0, 600.0, 1.0));
  deployment.units.push_back(unit(0, 1, 7.0, 600.0, 1.0));
  const std::vector<ServiceSpec> services = {service(0, "m", 100, 600.0)};
  const auto metrics = compute_metrics(deployment, services);
  // Each unit runs at half its capacity.
  EXPECT_NEAR(metrics.internal_slack, 0.5, 1e-12);
}

TEST(MetricsTest, OverloadClampsToFullActivity) {
  Deployment deployment;
  deployment.gpu_count = 1;
  deployment.units.push_back(unit(0, 0, 7.0, 100.0, 1.0));
  const std::vector<ServiceSpec> services = {service(0, "m", 100, 500.0)};  // 5x overload
  const auto metrics = compute_metrics(deployment, services);
  EXPECT_NEAR(metrics.internal_slack, 0.0, 1e-12);
}

TEST(MetricsTest, UnknownServiceCountsAsIdle) {
  Deployment deployment;
  deployment.gpu_count = 1;
  deployment.units.push_back(unit(42, 0, 7.0, 100.0, 1.0));
  const std::vector<ServiceSpec> services = {};  // nobody offers load
  const auto metrics = compute_metrics(deployment, services);
  EXPECT_NEAR(metrics.internal_slack, 1.0, 1e-12);
  EXPECT_EQ(metrics.units_without_spec, 1);
}

TEST(MetricsTest, ShedServiceSkewsSlackButIsCounted) {
  // A unit whose spec was shed (e.g. by a fault) contributes granted SMs
  // but no busy SMs. The slack figure then mixes real over-provisioning
  // with the mismatch; units_without_spec exposes the skew.
  Deployment deployment;
  deployment.gpu_count = 1;
  deployment.units.push_back(unit(0, 0, 4.0, 1000.0, 1.0));  // fully loaded
  deployment.units.push_back(unit(9, 0, 3.0, 500.0, 1.0));   // spec missing
  const std::vector<ServiceSpec> services = {service(0, "m", 100, 1000.0)};
  const auto metrics = compute_metrics(deployment, services);
  EXPECT_EQ(metrics.units_without_spec, 1);
  // Only the matched unit's 4 GPCs are busy out of 7 granted.
  EXPECT_NEAR(metrics.internal_slack, 3.0 / 7.0, 1e-12);
}

TEST(MetricsTest, AllSpecsMatchedReportsZeroUnmatched) {
  Deployment deployment;
  deployment.gpu_count = 1;
  deployment.units.push_back(unit(0, 0, 7.0, 1000.0, 1.0));
  const std::vector<ServiceSpec> services = {service(0, "m", 100, 1000.0)};
  EXPECT_EQ(compute_metrics(deployment, services).units_without_spec, 0);
}

TEST(MetricsTest, EmptyDeployment) {
  const Deployment deployment;
  const auto metrics = compute_metrics(deployment, {});
  EXPECT_EQ(metrics.gpu_count, 0);
  EXPECT_DOUBLE_EQ(metrics.internal_slack, 0.0);
  EXPECT_DOUBLE_EQ(metrics.external_fragmentation, 0.0);
}

TEST(MetricsTest, SlackFromMeasuredActivities) {
  Deployment deployment;
  deployment.gpu_count = 1;
  deployment.units.push_back(unit(0, 0, 4.0, 100.0, 1.0));
  deployment.units.push_back(unit(1, 0, 3.0, 100.0, 1.0));
  const std::vector<double> activities = {1.0, 0.5};
  // busy = 4*1 + 3*0.5 = 5.5 of 7 granted.
  EXPECT_NEAR(internal_slack_from_activity(deployment, activities), 1.0 - 5.5 / 7.0, 1e-12);
}

TEST(MetricsTest, ActivityArityMismatchThrows) {
  Deployment deployment;
  deployment.gpu_count = 1;
  deployment.units.push_back(unit(0, 0, 4.0, 100.0, 1.0));
  const std::vector<double> wrong = {1.0, 0.5};
  EXPECT_THROW((void)internal_slack_from_activity(deployment, wrong), std::logic_error);
}

TEST(MetricsTest, DeploymentHelpers) {
  Deployment deployment;
  deployment.gpu_count = 1;
  deployment.units.push_back(unit(0, 0, 4.0, 100.0, 1.0));
  deployment.units.push_back(unit(0, 0, 2.0, 50.0, 1.0));
  deployment.units.push_back(unit(1, 0, 1.0, 25.0, 1.0));
  EXPECT_DOUBLE_EQ(deployment.total_granted_gpcs(), 7.0);
  EXPECT_EQ(deployment.units_for_service(0).size(), 2u);
  EXPECT_DOUBLE_EQ(deployment.service_capacity(0), 150.0);
  EXPECT_DOUBLE_EQ(deployment.service_capacity(9), 0.0);
  EXPECT_EQ(deployment.units[0].granted_sms(), 56);
}

}  // namespace
}  // namespace parva::core
