#include "core/parvagpu.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/metrics.hpp"
#include "tests/core/test_support.hpp"

namespace parva::core {
namespace {

using testing::builtin_profiles;
using testing::service;

std::vector<ServiceSpec> sample_services() {
  return {
      service(0, "resnet-50", 205, 829),  service(1, "inceptionv3", 419, 460),
      service(2, "mobilenetv2", 167, 677), service(3, "bert-large", 6434, 19),
      service(4, "vgg-19", 397, 354),
  };
}

TEST(ParvaGpuSchedulerTest, NamesReflectVariant) {
  ParvaGpuOptions single;
  single.use_mps = false;
  ParvaGpuOptions unopt;
  unopt.optimize_allocation = false;
  EXPECT_EQ(ParvaGpuScheduler(builtin_profiles()).name(), "ParvaGPU");
  EXPECT_EQ(ParvaGpuScheduler(builtin_profiles(), single).name(), "ParvaGPU-single");
  EXPECT_EQ(ParvaGpuScheduler(builtin_profiles(), unopt).name(), "ParvaGPU-unoptimized");
}

TEST(ParvaGpuSchedulerTest, ScheduleProducesCoveringDeployment) {
  ParvaGpuScheduler scheduler(builtin_profiles());
  const auto result = scheduler.schedule(sample_services());
  ASSERT_TRUE(result.ok());
  const Deployment& deployment = result.value().deployment;
  EXPECT_TRUE(deployment.uses_mig);
  EXPECT_GT(deployment.gpu_count, 0);
  for (const auto& spec : sample_services()) {
    EXPECT_GE(deployment.service_capacity(spec.id) + 1e-6, spec.request_rate) << spec.model;
  }
  EXPECT_GE(result.value().scheduling_delay_ms, 0.0);
}

TEST(ParvaGpuSchedulerTest, MigUnitsHaveNoInterference) {
  ParvaGpuScheduler scheduler(builtin_profiles());
  const auto result = scheduler.schedule(sample_services()).value();
  for (const DeployedUnit& unit : result.deployment.units) {
    EXPECT_DOUBLE_EQ(unit.actual_throughput, unit.planned_throughput);
    EXPECT_DOUBLE_EQ(unit.actual_latency_ms, unit.planned_latency_ms);
    ASSERT_TRUE(unit.placement.has_value());
    EXPECT_TRUE(gpu::is_legal_placement(*unit.placement));
    EXPECT_FALSE(unit.model.empty());
  }
}

TEST(ParvaGpuSchedulerTest, UnitsRespectSloLatencyBound) {
  ParvaGpuScheduler scheduler(builtin_profiles());
  const auto services = sample_services();
  const auto result = scheduler.schedule(services).value();
  std::map<int, double> slo;
  for (const auto& spec : services) slo[spec.id] = spec.slo_latency_ms;
  for (const DeployedUnit& unit : result.deployment.units) {
    EXPECT_LT(unit.actual_latency_ms, slo[unit.service_id] * 0.5);
  }
}

TEST(ParvaGpuSchedulerTest, SingleVariantUsesOneProcessEverywhere) {
  ParvaGpuOptions options;
  options.use_mps = false;
  ParvaGpuScheduler scheduler(builtin_profiles(), options);
  const auto result = scheduler.schedule(sample_services()).value();
  for (const DeployedUnit& unit : result.deployment.units) {
    EXPECT_EQ(unit.procs, 1);
  }
}

TEST(ParvaGpuSchedulerTest, MpsVariantNeverWorseThanSingle) {
  ParvaGpuScheduler mps(builtin_profiles());
  ParvaGpuOptions so;
  so.use_mps = false;
  ParvaGpuScheduler single(builtin_profiles(), so);
  for (const char* scenario_slo : {"tight", "loose"}) {
    const double factor = std::string(scenario_slo) == "tight" ? 0.35 : 1.0;
    std::vector<ServiceSpec> services;
    for (const auto& base : sample_services()) {
      ServiceSpec spec = base;
      spec.slo_latency_ms *= factor;
      spec.request_rate *= 4.0;
      services.push_back(spec);
    }
    const auto mps_result = mps.schedule(services);
    const auto single_result = single.schedule(services);
    if (!mps_result.ok() || !single_result.ok()) continue;
    EXPECT_LE(mps_result.value().deployment.gpu_count,
              single_result.value().deployment.gpu_count)
        << scenario_slo;
  }
}

TEST(ParvaGpuSchedulerTest, OptimizedNeverWorseThanUnoptimized) {
  ParvaGpuScheduler optimized(builtin_profiles());
  ParvaGpuOptions uo;
  uo.optimize_allocation = false;
  ParvaGpuScheduler unoptimized(builtin_profiles(), uo);
  const auto services = sample_services();
  EXPECT_LE(optimized.schedule(services).value().deployment.gpu_count,
            unoptimized.schedule(services).value().deployment.gpu_count);
}

TEST(ParvaGpuSchedulerTest, InfeasibleSloSurfacesError) {
  ParvaGpuScheduler scheduler(builtin_profiles());
  const std::vector<ServiceSpec> impossible = {service(0, "vgg-19", 0.5, 10)};
  const auto result = scheduler.schedule(impossible);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCapacityExceeded);
}

TEST(ParvaGpuSchedulerTest, DeterministicAcrossRuns) {
  ParvaGpuScheduler scheduler(builtin_profiles());
  const auto a = scheduler.schedule(sample_services()).value();
  const auto b = scheduler.schedule(sample_services()).value();
  ASSERT_EQ(a.deployment.units.size(), b.deployment.units.size());
  EXPECT_EQ(a.deployment.gpu_count, b.deployment.gpu_count);
  for (std::size_t i = 0; i < a.deployment.units.size(); ++i) {
    EXPECT_EQ(a.deployment.units[i].gpu_index, b.deployment.units[i].gpu_index);
    EXPECT_EQ(a.deployment.units[i].batch, b.deployment.units[i].batch);
  }
}

TEST(ParvaGpuSchedulerTest, EmptyServiceSet) {
  ParvaGpuScheduler scheduler(builtin_profiles());
  const auto result = scheduler.schedule({});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().deployment.gpu_count, 0);
  EXPECT_TRUE(result.value().deployment.units.empty());
}

TEST(ParvaGpuSchedulerTest, LastPlanMatchesDeployment) {
  ParvaGpuScheduler scheduler(builtin_profiles());
  const auto result = scheduler.schedule(sample_services()).value();
  EXPECT_EQ(scheduler.last_plan().gpus_in_use(),
            static_cast<std::size_t>(result.deployment.gpu_count));
  EXPECT_EQ(scheduler.last_plan().all_segments().size(), result.deployment.units.size());
  EXPECT_EQ(scheduler.last_configured().size(), sample_services().size());
}

}  // namespace
}  // namespace parva::core
