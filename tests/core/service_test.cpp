#include "core/service.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_support.hpp"

namespace parva::core {
namespace {

TEST(ServiceTest, SizeIndexRoundTrip) {
  for (int gpcs : {1, 2, 3, 4, 7}) {
    const int index = instance_size_index(gpcs);
    ASSERT_GE(index, 0);
    EXPECT_EQ(instance_size_from_index(index), gpcs);
  }
  EXPECT_EQ(instance_size_index(5), -1);
  EXPECT_EQ(instance_size_index(0), -1);
  EXPECT_EQ(instance_size_from_index(5), -1);
  EXPECT_EQ(instance_size_from_index(-1), -1);
}

TEST(ServiceTest, IndicesAreOrderedBySize) {
  // LASTSEG iterates the array front-to-back expecting ascending sizes.
  int previous = 0;
  for (int index = 0; index < kInstanceSizeCount; ++index) {
    const int gpcs = instance_size_from_index(index);
    EXPECT_GT(gpcs, previous);
    previous = gpcs;
  }
}

TEST(ServiceTest, TripletFromProfilePoint) {
  profiler::ProfilePoint point;
  point.model = "resnet-50";
  point.gpcs = 2;
  point.batch = 16;
  point.procs = 3;
  point.throughput = 1234.5;
  point.latency_ms = 38.9;
  point.sm_occupancy = 0.91;
  point.memory_gib = 5.5;
  const Triplet triplet = to_triplet(point);
  EXPECT_EQ(triplet.gpcs, 2);
  EXPECT_EQ(triplet.batch, 16);
  EXPECT_EQ(triplet.procs, 3);
  EXPECT_DOUBLE_EQ(triplet.throughput, 1234.5);
  EXPECT_DOUBLE_EQ(triplet.throughput_per_gpc(), 1234.5 / 2.0);
  EXPECT_TRUE(triplet.valid());
}

TEST(ServiceTest, OomPointCannotBecomeTriplet) {
  profiler::ProfilePoint point;
  point.oom = true;
  EXPECT_THROW((void)to_triplet(point), std::logic_error);
}

TEST(ServiceTest, DefaultTripletInvalid) {
  const Triplet triplet;
  EXPECT_FALSE(triplet.valid());
  EXPECT_DOUBLE_EQ(triplet.throughput_per_gpc(), 0.0);
}

TEST(ServiceTest, ConfiguredServiceTotals) {
  ConfiguredService service;
  service.spec = testing::service(0, "m", 100, 1000);
  service.opt_seg = testing::triplet(3, 400);
  service.num_opt_seg = 2;
  service.last_seg = testing::triplet(1, 150);
  EXPECT_EQ(service.total_gpcs(), 7);
  EXPECT_DOUBLE_EQ(service.total_throughput(), 950.0);
  service.last_seg.reset();
  EXPECT_EQ(service.total_gpcs(), 6);
  EXPECT_DOUBLE_EQ(service.total_throughput(), 800.0);
}

}  // namespace
}  // namespace parva::core
