#include "core/live_update.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>

#include "core/parvagpu.hpp"
#include "core/reconfigure.hpp"
#include "tests/core/test_support.hpp"

namespace parva::core {
namespace {

using testing::builtin_profiles;
using testing::service;

class LiveUpdateTest : public ::testing::Test {
 protected:
  LiveUpdateTest() : nvml_(cluster_), deployer_(nvml_, perf_), updater_(deployer_) {}

  Deployment schedule(const std::vector<ServiceSpec>& services) {
    ParvaGpuScheduler scheduler(builtin_profiles());
    return scheduler.schedule(services).value().deployment;
  }

  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
  gpu::GpuCluster cluster_{8};
  gpu::NvmlSim nvml_{cluster_};
  Deployer deployer_;
  LiveUpdater updater_;
};

TEST_F(LiveUpdateTest, InPlaceUpdateIncursDowntime) {
  const auto current = schedule({service(0, "resnet-50", 205, 829),
                                 service(1, "vgg-19", 397, 354)});
  auto state = deployer_.deploy(current).value();
  // Triple resnet's rate.
  const auto target = schedule({service(0, "resnet-50", 205, 2500),
                                service(1, "vgg-19", 397, 354)});
  const auto report = updater_.apply(current, state, target, UpdateStrategy::kInPlace);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_GT(report.value().worst_downtime_ms(), 0.0);
  EXPECT_GT(report.value().added_units, 0);
  // Final cluster matches the target.
  EXPECT_EQ(state.unit_instances.size(), target.units.size());
  EXPECT_EQ(cluster_.total_allocated_gpcs(),
            static_cast<int>(target.total_granted_gpcs()));
}

TEST_F(LiveUpdateTest, ShadowedUpdateEliminatesDowntime) {
  const auto current = schedule({service(0, "resnet-50", 205, 829),
                                 service(1, "vgg-19", 397, 354)});
  auto state = deployer_.deploy(current).value();
  const auto target = schedule({service(0, "resnet-50", 205, 2500),
                                service(1, "vgg-19", 397, 354)});
  const auto report = updater_.apply(current, state, target, UpdateStrategy::kShadowed);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_DOUBLE_EQ(report.value().worst_downtime_ms(), 0.0);
  EXPECT_GT(report.value().shadow_units, 0);
  // Shadows are gone afterwards: allocation equals the target exactly.
  EXPECT_EQ(cluster_.total_allocated_gpcs(),
            static_cast<int>(target.total_granted_gpcs()));
}

TEST_F(LiveUpdateTest, UntouchedServicesKeepInstances) {
  // Build the target through the Reconfigurer (Section III-F), which keeps
  // other services' placements stable — exactly the situation live update
  // exploits. vgg-16 at 5000 req/s owns several fully-allocated GPUs that
  // the Allocation Optimization never dissolves (> threshold GPCs), so its
  // instances must survive the update verbatim.
  const std::vector<ServiceSpec> services = {service(0, "resnet-50", 205, 829),
                                             service(1, "vgg-16", 400, 5000)};
  ParvaGpuScheduler scheduler(builtin_profiles());
  const auto current = scheduler.schedule(services).value().deployment;
  auto plan = scheduler.last_plan();
  auto configured = scheduler.last_configured();
  auto state = deployer_.deploy(current).value();

  // Identify vgg's instance ids before the update.
  std::set<int> vgg_handles_before;
  for (std::size_t i = 0; i < current.units.size(); ++i) {
    if (current.units[i].service_id == 1) {
      vgg_handles_before.insert(state.unit_instances[i].handle);
    }
  }

  Reconfigurer reconfigurer{SegmentConfigurator(), SegmentAllocator()};
  ASSERT_TRUE(reconfigurer
                  .update_service(plan, configured, service(0, "resnet-50", 205, 2500),
                                  builtin_profiles())
                  .ok());
  Deployment target = ParvaGpuScheduler::to_deployment(plan, "ParvaGPU");
  for (auto& unit : target.units) {
    unit.model = unit.service_id == 0 ? "resnet-50" : "vgg-16";
  }

  const auto report = updater_.apply(current, state, target, UpdateStrategy::kInPlace);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_GT(report.value().untouched_units, 0);
  // The bulk of vgg's segments survive with their original instance
  // handles (a minority segment co-resident with the updated service may
  // legitimately move during the optimization pass).
  std::set<int> vgg_handles_after;
  for (std::size_t i = 0; i < target.units.size(); ++i) {
    if (target.units[i].service_id == 1) {
      vgg_handles_after.insert(state.unit_instances[i].handle);
    }
  }
  std::set<int> surviving;
  std::set_intersection(vgg_handles_before.begin(), vgg_handles_before.end(),
                        vgg_handles_after.begin(), vgg_handles_after.end(),
                        std::inserter(surviving, surviving.begin()));
  EXPECT_GE(surviving.size(), vgg_handles_before.size() / 2);
}

TEST_F(LiveUpdateTest, IdenticalTargetIsNoop) {
  const auto current = schedule({service(0, "resnet-50", 205, 829)});
  auto state = deployer_.deploy(current).value();
  const auto report = updater_.apply(current, state, current, UpdateStrategy::kInPlace);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().removed_units, 0);
  EXPECT_EQ(report.value().added_units, 0);
  EXPECT_DOUBLE_EQ(report.value().worst_downtime_ms(), 0.0);
  EXPECT_DOUBLE_EQ(report.value().makespan_ms, 0.0);
}

TEST_F(LiveUpdateTest, BrandNewServiceCannotBeShadowed) {
  const auto current = schedule({service(0, "resnet-50", 205, 829)});
  auto state = deployer_.deploy(current).value();
  const auto target = schedule({service(0, "resnet-50", 205, 829),
                                service(1, "densenet-121", 183, 353)});
  const auto report = updater_.apply(current, state, target, UpdateStrategy::kShadowed);
  ASSERT_TRUE(report.ok());
  // The new service has no running segment to clone; it simply comes up
  // (its "downtime" is its startup window).
  EXPECT_GT(report.value().downtime_ms.at(1), 0.0);
}

TEST_F(LiveUpdateTest, MismatchedStateRejected) {
  const auto current = schedule({service(0, "resnet-50", 205, 829)});
  DeployedState bogus;  // wrong arity
  const auto report = updater_.apply(current, bogus, current, UpdateStrategy::kInPlace);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace parva::core
