#include "core/configurator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "scenarios/scenarios.hpp"
#include "tests/core/test_support.hpp"

namespace parva::core {
namespace {

using testing::builtin_profiles;
using testing::service;

class ConfiguratorTest : public ::testing::Test {
 protected:
  SegmentConfigurator configurator_;
};

TEST_F(ConfiguratorTest, TripletDecisionPicksMaxThroughputPerSize) {
  const auto spec = service(0, "resnet-50", 205, 829);
  const auto table = builtin_profiles().find("resnet-50");
  const auto configured = configurator_.triplet_decision(spec, *table);
  ASSERT_TRUE(configured.ok());
  const double bound = 205.0 * 0.5;
  for (int idx = 0; idx < kInstanceSizeCount; ++idx) {
    const auto& slot = configured.value().opt_tri_array[static_cast<std::size_t>(idx)];
    if (!slot.has_value()) continue;
    const int gpcs = instance_size_from_index(idx);
    EXPECT_EQ(slot->gpcs, gpcs);
    EXPECT_LT(slot->latency_ms, bound);
    // No profiled point of this size beats it under the bound.
    for (const auto& point : table->points()) {
      if (point.oom || point.gpcs != gpcs || point.latency_ms >= bound) continue;
      EXPECT_LE(point.throughput, slot->throughput + 1e-9);
    }
  }
}

TEST_F(ConfiguratorTest, InternalLatencyIsHalfTheSlo) {
  // A point at 0.6x SLO must be excluded (bound is 0.5x).
  const auto spec = service(0, "resnet-50", 205, 100);
  const auto table = builtin_profiles().find("resnet-50");
  const auto configured = configurator_.triplet_decision(spec, *table).value();
  for (const auto& slot : configured.opt_tri_array) {
    if (slot.has_value()) {
      EXPECT_LT(slot->latency_ms, 102.5);
    }
  }
}

TEST_F(ConfiguratorTest, InfeasibleSloRejected) {
  const auto spec = service(0, "vgg-19", 1.0, 10);  // 0.5 ms internal bound
  const auto table = builtin_profiles().find("vgg-19");
  const auto configured = configurator_.triplet_decision(spec, *table);
  ASSERT_FALSE(configured.ok());
  EXPECT_EQ(configured.error().code(), ErrorCode::kCapacityExceeded);
}

TEST_F(ConfiguratorTest, DemandMatchingPicksGpcEfficiencyOptimum) {
  const auto spec = service(0, "inceptionv3", 419, 5722);
  const auto table = builtin_profiles().find("inceptionv3");
  auto configured = configurator_.triplet_decision(spec, *table).value();
  ASSERT_TRUE(configurator_.demand_matching(configured).ok());
  for (const auto& slot : configured.opt_tri_array) {
    if (!slot.has_value()) continue;
    EXPECT_LE(slot->throughput_per_gpc(), configured.opt_seg.throughput_per_gpc() + 1e-9);
  }
}

TEST_F(ConfiguratorTest, FloorRuleAndLastSegment) {
  const auto spec = service(0, "inceptionv3", 419, 5722);
  const auto table = builtin_profiles().find("inceptionv3");
  auto configured = configurator_.triplet_decision(spec, *table).value();
  ASSERT_TRUE(configurator_.demand_matching(configured).ok());
  EXPECT_EQ(configured.num_opt_seg,
            static_cast<int>(std::floor(5722.0 / configured.opt_seg.throughput)));
  // Configured capacity covers the rate.
  EXPECT_GE(configured.total_throughput(), 5722.0);
  // The last segment is the smallest instance size covering the remainder.
  const double left = 5722.0 - configured.num_opt_seg * configured.opt_seg.throughput;
  if (left > 0) {
    ASSERT_TRUE(configured.last_seg.has_value());
    EXPECT_GE(configured.last_seg->throughput, left);
    for (const auto& slot : configured.opt_tri_array) {
      if (!slot.has_value() || slot->gpcs >= configured.last_seg->gpcs) continue;
      EXPECT_LT(slot->throughput, left)
          << "a smaller size could have covered the remainder";
    }
  }
}

TEST_F(ConfiguratorTest, SmallRateUsesSingleSegment) {
  // Section III-D2: small request rates yield num_opt_seg = 0 and a single
  // right-sized last segment.
  const auto spec = service(0, "mobilenetv2", 167, 50);
  const auto table = builtin_profiles().find("mobilenetv2");
  auto configured = configurator_.triplet_decision(spec, *table).value();
  ASSERT_TRUE(configurator_.demand_matching(configured).ok());
  EXPECT_EQ(configured.num_opt_seg, 0);
  ASSERT_TRUE(configured.last_seg.has_value());
  EXPECT_EQ(configured.last_seg->gpcs, 1);  // smallest size suffices
}

TEST_F(ConfiguratorTest, ZeroRateNeedsNothing) {
  const auto spec = service(0, "resnet-50", 205, 0);
  const auto table = builtin_profiles().find("resnet-50");
  auto configured = configurator_.triplet_decision(spec, *table).value();
  ASSERT_TRUE(configurator_.demand_matching(configured).ok());
  EXPECT_EQ(configured.num_opt_seg, 0);
  EXPECT_FALSE(configured.last_seg.has_value());
  EXPECT_EQ(configured.total_gpcs(), 0);
}

TEST_F(ConfiguratorTest, SingleProcessVariantRestrictsTriplets) {
  ConfiguratorOptions options;
  options.max_processes = 1;
  SegmentConfigurator single(options);
  const auto spec = service(0, "densenet-121", 69, 2228);  // S5's tight SLO
  const auto table = builtin_profiles().find("densenet-121");
  const auto configured = single.triplet_decision(spec, *table).value();
  for (const auto& slot : configured.opt_tri_array) {
    if (slot.has_value()) {
      EXPECT_EQ(slot->procs, 1);
    }
  }
  // With MPS allowed, some size uses more processes and beats it.
  const auto mps = configurator_.triplet_decision(spec, *table).value();
  bool used_mps = false;
  double mps_best = 0.0;
  double single_best = 0.0;
  for (int idx = 0; idx < kInstanceSizeCount; ++idx) {
    const auto& m = mps.opt_tri_array[static_cast<std::size_t>(idx)];
    const auto& s = configured.opt_tri_array[static_cast<std::size_t>(idx)];
    if (m.has_value()) {
      used_mps |= m->procs > 1;
      mps_best = std::max(mps_best, m->throughput_per_gpc());
    }
    if (s.has_value()) single_best = std::max(single_best, s->throughput_per_gpc());
  }
  EXPECT_TRUE(used_mps);
  EXPECT_GT(mps_best, single_best);
}

TEST_F(ConfiguratorTest, ConfigureWholeServiceSet) {
  const std::vector<ServiceSpec> services = {
      service(0, "resnet-50", 205, 829),
      service(1, "vgg-16", 400, 410),
      service(2, "bert-large", 6434, 19),
  };
  const auto configured = configurator_.configure(services, builtin_profiles());
  ASSERT_TRUE(configured.ok());
  ASSERT_EQ(configured.value().size(), 3u);
  for (const auto& c : configured.value()) {
    EXPECT_GE(c.total_throughput(), c.spec.request_rate);
  }
}

TEST_F(ConfiguratorTest, UnknownModelFailsCleanly) {
  const std::vector<ServiceSpec> services = {service(0, "not-a-model", 100, 10)};
  const auto configured = configurator_.configure(services, builtin_profiles());
  ASSERT_FALSE(configured.ok());
  EXPECT_EQ(configured.error().code(), ErrorCode::kNotFound);
}

TEST_F(ConfiguratorTest, PreconditionsThrow) {
  const auto table = builtin_profiles().find("resnet-50");
  EXPECT_THROW((void)configurator_.triplet_decision(service(0, "resnet-50", 0, 10), *table),
               std::logic_error);
  EXPECT_THROW((void)configurator_.triplet_decision(service(0, "resnet-50", 100, -1), *table),
               std::logic_error);
}

TEST_F(ConfiguratorTest, DemandMatchingBeforeDecisionIsInternalError) {
  ConfiguredService empty;
  empty.spec = service(0, "resnet-50", 205, 100);
  const auto status = configurator_.demand_matching(empty);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kInternal);
}

// Property: across every scenario-like (model, slo, rate) combination, the
// configured capacity covers the rate and the latency bound holds — the
// no-SLO-violation invariant of Fig. 8 begins here.
class ConfiguratorProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(ConfiguratorProperty, CapacityCoversEveryRate) {
  SegmentConfigurator configurator;
  const auto table = builtin_profiles().find(GetParam());
  ASSERT_NE(table, nullptr);
  for (double slo : {100.0, 200.0, 400.0, 1000.0}) {
    for (double rate : {1.0, 50.0, 500.0, 5000.0, 20000.0}) {
      const auto spec = service(0, GetParam(), slo, rate);
      auto configured = configurator.triplet_decision(spec, *table);
      if (!configured.ok()) continue;  // SLO infeasible for this model: fine
      ASSERT_TRUE(configurator.demand_matching(configured.value()).ok());
      const auto& c = configured.value();
      EXPECT_GE(c.total_throughput() + 1e-6, rate)
          << GetParam() << " slo=" << slo << " rate=" << rate;
      EXPECT_LT(c.opt_seg.latency_ms, slo * 0.5);
      if (c.last_seg.has_value()) {
        EXPECT_LT(c.last_seg->latency_ms, slo * 0.5);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ConfiguratorProperty,
                         ::testing::Values("bert-large", "densenet-121", "densenet-169",
                                           "densenet-201", "inceptionv3", "mobilenetv2",
                                           "resnet-101", "resnet-152", "resnet-50", "vgg-16",
                                           "vgg-19"));

// ---------------------------------------------------------------------------
// Differential coverage of the fast paths: the indexed-surface overloads and
// the parallel configure must be bit-identical to the reference table scan.
// ---------------------------------------------------------------------------

const profiler::ProfileSurfaceSet& builtin_surfaces() {
  static const profiler::ProfileSurfaceSet surfaces{builtin_profiles()};
  return surfaces;
}

void expect_same_triplet(const Triplet& got, const Triplet& want) {
  EXPECT_EQ(got.gpcs, want.gpcs);
  EXPECT_EQ(got.batch, want.batch);
  EXPECT_EQ(got.procs, want.procs);
  // Exact double equality: the surface returns copies of the same profiled
  // points the scan finds, never re-derived values.
  EXPECT_EQ(got.throughput, want.throughput);
  EXPECT_EQ(got.latency_ms, want.latency_ms);
  EXPECT_EQ(got.sm_occupancy, want.sm_occupancy);
  EXPECT_EQ(got.memory_gib, want.memory_gib);
}

void expect_same_triplet(const std::optional<Triplet>& got,
                         const std::optional<Triplet>& want) {
  ASSERT_EQ(got.has_value(), want.has_value());
  if (got.has_value()) expect_same_triplet(*got, *want);
}

void expect_same_configured(const ConfiguredService& got, const ConfiguredService& want) {
  EXPECT_EQ(got.spec.id, want.spec.id);
  for (std::size_t i = 0; i < got.opt_tri_array.size(); ++i) {
    expect_same_triplet(got.opt_tri_array[i], want.opt_tri_array[i]);
  }
  expect_same_triplet(got.opt_seg, want.opt_seg);
  EXPECT_EQ(got.num_opt_seg, want.num_opt_seg);
  expect_same_triplet(got.last_seg, want.last_seg);
}

TEST_F(ConfiguratorTest, SurfaceTripletDecisionMatchesTableScan) {
  for (const auto& table : builtin_profiles().tables()) {
    const profiler::ProfileSurface* surface = builtin_surfaces().find(table.model());
    ASSERT_NE(surface, nullptr);
    for (double slo : {20.0, 69.0, 100.0, 205.0, 419.0, 1000.0}) {
      for (double rate : {1.0, 50.0, 829.0, 5722.0, 20000.0}) {
        const auto spec = service(0, table.model(), slo, rate);
        const auto scan = configurator_.triplet_decision(spec, table);
        const auto fast = configurator_.triplet_decision(spec, *surface);
        ASSERT_EQ(scan.ok(), fast.ok()) << table.model() << " slo=" << slo;
        if (!scan.ok()) {
          EXPECT_EQ(scan.error().code(), fast.error().code());
          continue;
        }
        expect_same_configured(fast.value(), scan.value());
      }
    }
  }
}

TEST_F(ConfiguratorTest, SurfaceConfigureMatchesScanOnEveryScenario) {
  ThreadPool pool(4);
  for (const auto& sc : scenarios::all_scenarios()) {
    const auto scan = configurator_.configure(sc.services, builtin_profiles());
    const auto fast = configurator_.configure(sc.services, builtin_surfaces());
    const auto parallel = configurator_.configure(sc.services, builtin_surfaces(), pool);
    ASSERT_TRUE(scan.ok()) << sc.name;
    ASSERT_TRUE(fast.ok()) << sc.name;
    ASSERT_TRUE(parallel.ok()) << sc.name;
    ASSERT_EQ(fast.value().size(), scan.value().size());
    ASSERT_EQ(parallel.value().size(), scan.value().size());
    for (std::size_t i = 0; i < scan.value().size(); ++i) {
      expect_same_configured(fast.value()[i], scan.value()[i]);
      expect_same_configured(parallel.value()[i], scan.value()[i]);
    }
  }
}

TEST_F(ConfiguratorTest, ParallelReportsFirstInOrderError) {
  // Two failing services: the infeasible SLO at index 1 must win over the
  // unknown model at index 3, exactly as the serial loop's early return
  // picks it — regardless of which task finishes first.
  const std::vector<ServiceSpec> services = {
      service(0, "resnet-50", 205, 829),
      service(1, "vgg-19", 1.0, 10),       // SLO infeasible
      service(2, "mobilenetv2", 167, 50),
      service(3, "not-a-model", 100, 10),  // unknown model
  };
  ThreadPool pool(4);
  const auto serial = configurator_.configure(services, builtin_surfaces());
  const auto parallel = configurator_.configure(services, builtin_surfaces(), pool);
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(serial.error().code(), ErrorCode::kCapacityExceeded);
  EXPECT_EQ(parallel.error().code(), serial.error().code());
  EXPECT_EQ(parallel.error().to_string(), serial.error().to_string());
}

}  // namespace
}  // namespace parva::core
