#include "core/plan.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_support.hpp"

namespace parva::core {
namespace {

using testing::triplet;

TEST(GpuPlanTest, PlaceUsesPreferredSlots) {
  GpuPlan gpu(0);
  ASSERT_TRUE(gpu.try_place(0, triplet(3, 100)));
  EXPECT_EQ(gpu.segments().front().placement.start_slot, 4);  // 3g -> slot 4
  ASSERT_TRUE(gpu.try_place(1, triplet(2, 100)));
  EXPECT_EQ(gpu.segments().back().placement.start_slot, 0);
}

TEST(GpuPlanTest, DeclinesSecondThreeGpcSegment) {
  GpuPlan gpu(0);
  ASSERT_TRUE(gpu.try_place(0, triplet(3, 100)));
  // Slot 4 taken; 3@0 is declined by policy (Section III-E1).
  EXPECT_FALSE(gpu.try_place(1, triplet(3, 100)));
}

TEST(GpuPlanTest, ExplicitPlacement) {
  GpuPlan gpu(0);
  ASSERT_TRUE(gpu.try_place_at(0, triplet(3, 100), 0));  // legal on hardware
  EXPECT_EQ(gpu.allocated_gpcs(), 3);
  EXPECT_EQ(gpu.occupied_slots(), 4);  // 3@0 blocks four slots
  EXPECT_FALSE(gpu.try_place_at(1, triplet(2, 100), 2));  // overlap
  EXPECT_FALSE(gpu.try_place_at(1, triplet(2, 100), 1));  // illegal start
}

TEST(GpuPlanTest, RemoveSegmentFreesSlots) {
  GpuPlan gpu(0);
  ASSERT_TRUE(gpu.try_place(0, triplet(4, 100)));
  ASSERT_TRUE(gpu.try_place(1, triplet(3, 100)));
  EXPECT_FALSE(gpu.can_fit(1));
  const PlacedSegment removed = gpu.remove_segment(0);
  EXPECT_EQ(removed.triplet.gpcs, 4);
  EXPECT_TRUE(gpu.can_fit(4));
  EXPECT_EQ(gpu.allocated_gpcs(), 3);
}

TEST(GpuPlanTest, RemoveOutOfRangeThrows) {
  GpuPlan gpu(0);
  EXPECT_THROW(gpu.remove_segment(0), std::logic_error);
}

TEST(DeploymentPlanTest, FirstFitAppendsWhenFull) {
  DeploymentPlan plan;
  EXPECT_EQ(plan.place_first_fit(0, triplet(7, 100)), 0u);
  EXPECT_EQ(plan.place_first_fit(1, triplet(7, 100)), 1u);
  EXPECT_EQ(plan.place_first_fit(2, triplet(1, 100)), 2u);
  EXPECT_EQ(plan.gpu_count(), 3u);
}

TEST(DeploymentPlanTest, FirstFitFillsEarlierGaps) {
  DeploymentPlan plan;
  plan.place_first_fit(0, triplet(4, 100));  // GPU0 slots 0-3
  plan.place_first_fit(1, triplet(7, 100));  // GPU1 (doesn't fit GPU0)
  plan.place_first_fit(2, triplet(3, 100));  // back into GPU0 slot 4
  EXPECT_EQ(plan.gpu_count(), 2u);
  EXPECT_EQ(plan.gpu(0).allocated_gpcs(), 7);
}

TEST(DeploymentPlanTest, CompactDropsEmptyAndRenumbers) {
  DeploymentPlan plan;
  plan.place_first_fit(0, triplet(7, 100));
  plan.place_first_fit(1, triplet(7, 100));
  plan.place_first_fit(2, triplet(7, 100));
  plan.gpu(1).remove_segment(0);
  plan.compact();
  ASSERT_EQ(plan.gpu_count(), 2u);
  EXPECT_EQ(plan.gpu(0).id(), 0);
  EXPECT_EQ(plan.gpu(1).id(), 1);
  EXPECT_EQ(plan.gpus_in_use(), 2u);
}

TEST(DeploymentPlanTest, Accounting) {
  DeploymentPlan plan;
  plan.place_first_fit(0, triplet(4, 100));
  plan.place_first_fit(1, triplet(2, 50));
  EXPECT_EQ(plan.total_allocated_gpcs(), 6);
  EXPECT_EQ(plan.all_segments().size(), 2u);
  EXPECT_EQ(plan.gpus_in_use(), 1u);
}

TEST(DeploymentPlanTest, ToStringListsLayout) {
  DeploymentPlan plan;
  plan.place_first_fit(3, triplet(4, 100));
  const std::string text = plan.to_string();
  EXPECT_NE(text.find("s3:4@0"), std::string::npos);
}

TEST(DeploymentPlanTest, EmptyPlanToString) {
  const DeploymentPlan plan;
  EXPECT_EQ(plan.to_string(), "empty-plan");
}

}  // namespace
}  // namespace parva::core
