#include "core/deployer.hpp"

#include <gtest/gtest.h>

#include "core/parvagpu.hpp"
#include "tests/core/test_support.hpp"

namespace parva::core {
namespace {

using testing::builtin_profiles;
using testing::service;

class DeployerTest : public ::testing::Test {
 protected:
  DeployerTest() : nvml_(cluster_), deployer_(nvml_, perf_) {}

  Deployment schedule(const std::vector<ServiceSpec>& services) {
    ParvaGpuScheduler scheduler(builtin_profiles());
    return scheduler.schedule(services).value().deployment;
  }

  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
  gpu::GpuCluster cluster_{2};
  gpu::NvmlSim nvml_{cluster_};
  Deployer deployer_;
};

TEST_F(DeployerTest, MaterialisesEveryUnit) {
  const Deployment deployment = schedule({service(0, "resnet-50", 205, 829),
                                          service(1, "vgg-19", 397, 354)});
  const auto state = deployer_.deploy(deployment);
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state.value().unit_instances.size(), deployment.units.size());
  for (std::size_t i = 0; i < deployment.units.size(); ++i) {
    const gpu::MigInstance* instance = cluster_.find_instance(state.value().unit_instances[i]);
    ASSERT_NE(instance, nullptr);
    EXPECT_EQ(instance->gpcs(), static_cast<int>(deployment.units[i].gpc_grant));
    EXPECT_EQ(static_cast<int>(instance->processes.size()), deployment.units[i].procs);
    EXPECT_EQ(instance->placement.start_slot, deployment.units[i].placement->start_slot);
    if (deployment.units[i].procs > 1) {
      EXPECT_TRUE(instance->mps_enabled);
    }
  }
}

TEST_F(DeployerTest, GrowsElasticClusterOnDemand) {
  // Enough load for more than the 2 initial GPUs.
  const Deployment deployment = schedule({service(0, "vgg-16", 400, 12000)});
  ASSERT_GT(deployment.gpu_count, 2);
  const auto state = deployer_.deploy(deployment);
  ASSERT_TRUE(state.ok());
  EXPECT_GE(cluster_.size(), static_cast<std::size_t>(deployment.gpu_count));
  EXPECT_EQ(cluster_.gpus_in_use(), static_cast<std::size_t>(deployment.gpu_count));
}

TEST_F(DeployerTest, TeardownRestoresCluster) {
  const Deployment deployment = schedule({service(0, "resnet-50", 205, 829)});
  const auto state = deployer_.deploy(deployment).value();
  ASSERT_TRUE(deployer_.teardown(state).ok());
  EXPECT_EQ(cluster_.gpus_in_use(), 0u);
  EXPECT_EQ(cluster_.total_allocated_gpcs(), 0);
}

TEST_F(DeployerTest, RejectsMpsShareDeployments) {
  Deployment deployment;
  deployment.uses_mig = false;
  deployment.gpu_count = 1;
  const auto state = deployer_.deploy(deployment);
  ASSERT_FALSE(state.ok());
  EXPECT_EQ(state.error().code(), ErrorCode::kUnsupported);
}

TEST_F(DeployerTest, UnknownModelFails) {
  Deployment deployment;
  deployment.uses_mig = true;
  deployment.gpu_count = 1;
  DeployedUnit unit;
  unit.service_id = 0;
  unit.model = "not-a-model";
  unit.gpu_index = 0;
  unit.gpc_grant = 1.0;
  unit.placement = gpu::Placement{1, 0};
  unit.batch = 1;
  unit.procs = 1;
  deployment.units.push_back(unit);
  const auto state = deployer_.deploy(deployment);
  ASSERT_FALSE(state.ok());
  EXPECT_EQ(state.error().code(), ErrorCode::kNotFound);
}

TEST_F(DeployerTest, OperationLogShowsControlPlaneTraffic) {
  const Deployment deployment = schedule({service(0, "resnet-50", 205, 829)});
  nvml_.clear_operation_log();
  ASSERT_TRUE(deployer_.deploy(deployment).ok());
  bool saw_create = false;
  for (const std::string& op : nvml_.operation_log()) {
    if (op.find("create_gi_placed") != std::string::npos) saw_create = true;
  }
  EXPECT_TRUE(saw_create);
}

}  // namespace
}  // namespace parva::core
