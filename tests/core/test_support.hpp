// Shared fixtures for the core tests: the built-in profile set (computed
// once per process) and helpers to build services/triplets.
#pragma once

#include "core/service.hpp"
#include "profiler/profiler.hpp"

namespace parva::core::testing {

inline const profiler::ProfileSet& builtin_profiles() {
  static const profiler::ProfileSet profiles = [] {
    perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
    profiler::Profiler profiler(perf);
    return profiler.profile_all(perfmodel::ModelCatalog::builtin().names());
  }();
  return profiles;
}

inline ServiceSpec service(int id, const std::string& model, double slo_ms, double rate) {
  return ServiceSpec{id, model, slo_ms, rate, {}};
}

/// A synthetic triplet for plan/allocator tests that do not need profiles.
inline Triplet triplet(int gpcs, double throughput, int batch = 8, int procs = 1) {
  Triplet t;
  t.gpcs = gpcs;
  t.batch = batch;
  t.procs = procs;
  t.throughput = throughput;
  t.latency_ms = 10.0;
  t.sm_occupancy = 0.9;
  t.memory_gib = 1.0;
  return t;
}

}  // namespace parva::core::testing
