#include "core/repair.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/parvagpu.hpp"
#include "gpu/dcgm_sim.hpp"
#include "tests/core/test_support.hpp"

namespace parva::core {
namespace {

using testing::builtin_profiles;
using testing::service;

class RepairTest : public ::testing::Test {
 protected:
  /// Schedules a multi-GPU workload and materialises it on the cluster.
  Deployment schedule() {
    const std::vector<ServiceSpec> services = {service(0, "resnet-50", 205, 2000),
                                               service(1, "inceptionv3", 419, 1500),
                                               service(2, "vgg-19", 397, 900)};
    ParvaGpuScheduler scheduler(builtin_profiles());
    Deployment deployment = scheduler.schedule(services).value().deployment;
    for (auto& unit : deployment.units) {
      for (const auto& spec : services) {
        if (spec.id == unit.service_id) unit.model = spec.model;
      }
    }
    return deployment;
  }

  /// Sorted (gpcs, batch, procs) triplets of the units, for capacity
  /// preservation checks.
  static std::vector<std::array<int, 3>> triplets(const std::vector<DeployedUnit>& units) {
    std::vector<std::array<int, 3>> result;
    for (const auto& unit : units) {
      result.push_back({unit.placement->gpcs, unit.batch, unit.procs});
    }
    std::sort(result.begin(), result.end());
    return result;
  }

  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
};

TEST_F(RepairTest, GpuLossReplacesDisplacedUnitsOffTheLostDevice) {
  Deployment deployment = schedule();
  ASSERT_GT(deployment.gpu_count, 1);
  gpu::GpuCluster cluster(static_cast<std::size_t>(deployment.gpu_count));
  gpu::NvmlSim nvml(cluster);
  Deployer deployer(nvml, perf_);
  DeployedState state = deployer.deploy(deployment).value();
  const auto lost_triplets_before = triplets(deployment.units);

  // Kill the GPU with the most units; detection sees exactly its units.
  std::map<int, int> per_gpu;
  for (const auto& unit : deployment.units) ++per_gpu[unit.gpu_index];
  const int victim =
      std::max_element(per_gpu.begin(), per_gpu.end(),
                       [](const auto& a, const auto& b) { return a.second < b.second; })
          ->first;
  ASSERT_EQ(nvml.fail_device(static_cast<unsigned>(victim)), gpu::NvmlReturn::kSuccess);

  LiveUpdater updater(deployer);
  RepairCoordinator repairer(deployer, updater);
  const auto detected = repairer.detect_lost_units(deployment);
  EXPECT_EQ(detected.size(), static_cast<std::size_t>(per_gpu[victim]));
  for (std::size_t index : detected) {
    EXPECT_EQ(deployment.units[index].gpu_index, victim);
  }

  const auto repaired = repairer.handle_gpu_loss(deployment, state, victim);
  ASSERT_TRUE(repaired.ok()) << repaired.error().to_string();
  const RepairReport& report = repaired.value();

  EXPECT_EQ(report.lost_gpu, victim);
  EXPECT_EQ(report.lost_units, per_gpu[victim]);
  EXPECT_EQ(report.replaced_units, report.lost_units);
  EXPECT_FALSE(report.affected_services.empty());
  EXPECT_GT(report.displaced_rate, 0.0);
  EXPECT_GT(report.recovery_ms, 0.0);
  EXPECT_GT(report.update.added_units, 0);

  // The repaired deployment: same triplet multiset (capacity preserved
  // exactly), nothing on the dead device, and state tracks it 1:1.
  EXPECT_EQ(triplets(deployment.units), lost_triplets_before);
  for (const auto& unit : deployment.units) {
    EXPECT_NE(unit.gpu_index, victim);
  }
  for (const auto& unit : report.replacements) {
    EXPECT_NE(unit.gpu_index, victim);
  }
  ASSERT_EQ(state.unit_instances.size(), deployment.units.size());

  // Geometry legality: per-GPU slot masks never overlap.
  std::map<int, std::uint8_t> occupied;
  for (const auto& unit : deployment.units) {
    const std::uint8_t mask = unit.placement->slot_mask();
    EXPECT_EQ(occupied[unit.gpu_index] & mask, 0) << "gpu " << unit.gpu_index;
    occupied[unit.gpu_index] |= mask;
  }

  // The control plane agrees: every live instance is on a healthy device.
  for (const auto& id : state.unit_instances) {
    EXPECT_FALSE(nvml.device_lost(static_cast<unsigned>(id.gpu)));
  }
}

TEST_F(RepairTest, LossOfEmptyGpuNeedsNoRecovery) {
  Deployment deployment = schedule();
  const int spare = deployment.gpu_count;  // one GPU beyond the fleet
  gpu::GpuCluster cluster(static_cast<std::size_t>(deployment.gpu_count + 1));
  gpu::NvmlSim nvml(cluster);
  Deployer deployer(nvml, perf_);
  DeployedState state = deployer.deploy(deployment).value();
  ASSERT_EQ(nvml.fail_device(static_cast<unsigned>(spare)), gpu::NvmlReturn::kSuccess);

  LiveUpdater updater(deployer);
  RepairCoordinator repairer(deployer, updater);
  EXPECT_TRUE(repairer.detect_lost_units(deployment).empty());
  const auto repaired = repairer.handle_gpu_loss(deployment, state, spare);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value().lost_units, 0);
  EXPECT_EQ(repaired.value().replaced_units, 0);
  EXPECT_DOUBLE_EQ(repaired.value().recovery_ms, 0.0);
}

TEST_F(RepairTest, TransientCreateFaultsAreInvisibleInTheFinalDeployment) {
  // Deploy the same map twice: once on a healthy control plane, once with
  // p=0.3 transient create failures. The deployments must be IDENTICAL —
  // the faults may only show in the retry metrics.
  const Deployment deployment = schedule();

  gpu::GpuCluster healthy_cluster(static_cast<std::size_t>(deployment.gpu_count));
  gpu::NvmlSim healthy_nvml(healthy_cluster);
  Deployer healthy_deployer(healthy_nvml, perf_);
  const DeployedState healthy_state = healthy_deployer.deploy(deployment).value();
  EXPECT_EQ(healthy_deployer.total_stats().transient_retries, 0);

  gpu::FaultPlan plan;
  plan.seed = 4242;
  plan.transient_create_failure_prob = 0.3;
  gpu::FaultInjector injector(plan);
  gpu::GpuCluster faulty_cluster(static_cast<std::size_t>(deployment.gpu_count));
  gpu::NvmlSim faulty_nvml(faulty_cluster);
  faulty_nvml.set_fault_injector(&injector);
  Deployer faulty_deployer(faulty_nvml, perf_);
  const DeployedState faulty_state = faulty_deployer.deploy(deployment).value();

  // Retries happened...
  EXPECT_GT(faulty_deployer.total_stats().transient_retries, 0);
  EXPECT_GT(faulty_deployer.total_stats().backoff_ms, 0.0);
  // ...but converged on the planned slots: no fallback placements, and the
  // physical clusters are slot-for-slot identical.
  EXPECT_EQ(faulty_deployer.total_stats().fallback_placements, 0);
  ASSERT_EQ(faulty_state.unit_instances.size(), healthy_state.unit_instances.size());
  for (std::size_t g = 0; g < healthy_cluster.size(); ++g) {
    EXPECT_EQ(faulty_cluster.gpu(g).occupied_mask(), healthy_cluster.gpu(g).occupied_mask())
        << "gpu " << g;
  }
  for (std::size_t i = 0; i < healthy_state.unit_instances.size(); ++i) {
    EXPECT_EQ(faulty_state.unit_instances[i].gpu, healthy_state.unit_instances[i].gpu);
    const auto* healthy_instance =
        healthy_cluster.find_instance(healthy_state.unit_instances[i]);
    const auto* faulty_instance = faulty_cluster.find_instance(faulty_state.unit_instances[i]);
    ASSERT_NE(healthy_instance, nullptr);
    ASSERT_NE(faulty_instance, nullptr);
    EXPECT_EQ(faulty_instance->placement, healthy_instance->placement);
  }
}

TEST_F(RepairTest, RepairSucceedsUnderTransientFaults) {
  // The repair path itself runs against a faulty control plane: the
  // replacement creates retry through NVML_ERROR_IN_USE and still land.
  Deployment deployment = schedule();
  gpu::FaultPlan plan;
  plan.seed = 77;
  plan.transient_create_failure_prob = 0.3;
  gpu::FaultInjector injector(plan);
  gpu::GpuCluster cluster(static_cast<std::size_t>(deployment.gpu_count));
  gpu::NvmlSim nvml(cluster);
  nvml.set_fault_injector(&injector);
  Deployer deployer(nvml, perf_);
  DeployedState state = deployer.deploy(deployment).value();

  ASSERT_EQ(nvml.fail_device(0), gpu::NvmlReturn::kSuccess);
  LiveUpdater updater(deployer);
  RepairCoordinator repairer(deployer, updater);
  const auto repaired = repairer.handle_gpu_loss(deployment, state, 0);
  ASSERT_TRUE(repaired.ok()) << repaired.error().to_string();
  // The report's recovery time includes any backoff the retries spent.
  EXPECT_GE(repaired.value().recovery_ms,
            repaired.value().update.makespan_ms +
                repairer.options().detection_latency_ms);
}

TEST_F(RepairTest, MismatchedStateRejected) {
  Deployment deployment = schedule();
  gpu::GpuCluster cluster(static_cast<std::size_t>(deployment.gpu_count));
  gpu::NvmlSim nvml(cluster);
  Deployer deployer(nvml, perf_);
  LiveUpdater updater(deployer);
  RepairCoordinator repairer(deployer, updater);
  DeployedState bogus;  // wrong size
  EXPECT_FALSE(repairer.handle_gpu_loss(deployment, bogus, 0).ok());
}

}  // namespace
}  // namespace parva::core
