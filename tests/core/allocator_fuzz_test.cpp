// Randomised property tests for the Configurator+Allocator pipeline:
// seeded fuzzing over service mixes drawn from the real profile grid.
// Invariants checked on every draw:
//   * every GPU layout is geometrically legal (no slot overlap),
//   * every service's placed capacity covers its request rate,
//   * every placed segment respects the internal latency bound,
//   * Allocation Optimization never uses more GPUs than relocation alone.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "core/allocator.hpp"
#include "core/configurator.hpp"
#include "tests/core/test_support.hpp"

namespace parva::core {
namespace {

using testing::builtin_profiles;

struct FuzzDraw {
  std::vector<ServiceSpec> services;
};

FuzzDraw draw_services(Rng& rng) {
  static const std::vector<std::string> models =
      perfmodel::ModelCatalog::builtin().names();
  FuzzDraw draw;
  const auto count = rng.uniform_int(1, 14);
  for (std::uint64_t i = 0; i < count; ++i) {
    ServiceSpec spec;
    spec.id = static_cast<int>(i);
    spec.model = models[rng.uniform_int(0, models.size() - 1)];
    // SLOs from generous to tight; rates across four orders of magnitude.
    spec.slo_latency_ms = rng.uniform(40.0, 8000.0);
    spec.request_rate = std::exp(rng.uniform(std::log(2.0), std::log(20000.0)));
    draw.services.push_back(std::move(spec));
  }
  return draw;
}

void check_plan(const DeploymentPlan& plan, const std::vector<ConfiguredService>& configured,
                std::uint64_t seed) {
  // Geometric validity.
  for (const auto& gpu : plan.gpus()) {
    std::uint8_t mask = 0;
    for (const auto& segment : gpu.segments()) {
      ASSERT_TRUE(gpu::is_legal_placement(segment.placement))
          << "seed " << seed << " " << gpu.to_string();
      ASSERT_EQ(mask & segment.placement.slot_mask(), 0)
          << "seed " << seed << " " << gpu.to_string();
      mask |= segment.placement.slot_mask();
    }
  }
  // Coverage and latency bounds.
  std::map<int, double> capacity;
  for (const auto& [gpu_index, segment] : plan.all_segments()) {
    capacity[segment->service_id] += segment->triplet.throughput;
  }
  for (const ConfiguredService& service : configured) {
    EXPECT_GE(capacity[service.spec.id] + 1e-6, service.spec.request_rate)
        << "seed " << seed << " service " << service.spec.model;
  }
  for (const auto& [gpu_index, segment] : plan.all_segments()) {
    const auto it =
        std::find_if(configured.begin(), configured.end(), [&](const ConfiguredService& c) {
          return c.spec.id == segment->service_id;
        });
    ASSERT_NE(it, configured.end());
    EXPECT_LT(segment->triplet.latency_ms, it->spec.slo_latency_ms * 0.5)
        << "seed " << seed;
  }
}

class AllocatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorFuzz, InvariantsHoldOnRandomMixes) {
  Rng rng(GetParam());
  SegmentConfigurator configurator;
  SegmentAllocator optimizing;
  AllocatorOptions unopt_options;
  unopt_options.optimize = false;
  SegmentAllocator relocation_only(unopt_options);

  for (int round = 0; round < 12; ++round) {
    const FuzzDraw draw = draw_services(rng);
    auto configured = configurator.configure(draw.services, builtin_profiles());
    if (!configured.ok()) continue;  // infeasible SLO drawn: fine

    const auto optimized = optimizing.allocate(configured.value());
    const auto relocated = relocation_only.allocate(configured.value());
    ASSERT_TRUE(optimized.ok());
    ASSERT_TRUE(relocated.ok());
    check_plan(optimized.value(), configured.value(), GetParam());
    check_plan(relocated.value(), configured.value(), GetParam());
    EXPECT_LE(optimized.value().gpus_in_use(), relocated.value().gpus_in_use())
        << "seed " << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace parva::core
