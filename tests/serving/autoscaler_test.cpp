#include "serving/autoscaler.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_support.hpp"

namespace parva::serving {
namespace {

using core::testing::builtin_profiles;
using core::testing::service;

class AutoscalerTest : public ::testing::Test {
 protected:
  std::vector<core::ServiceSpec> base_services() {
    return {service(0, "resnet-50", 205, 2000), service(1, "inceptionv3", 419, 1500),
            service(2, "vgg-19", 397, 900)};
  }

  AutoscalerOptions fast_options() {
    AutoscalerOptions options;
    options.epoch_minutes = 60.0;
    options.verify_duration_ms = 1'000.0;
    return options;
  }

  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
};

TEST_F(AutoscalerTest, DiurnalDaySavesGpuHoursVsStaticPeak) {
  Autoscaler autoscaler(builtin_profiles(), perf_, fast_options());
  const auto report = autoscaler.run_day(base_services(), RateTrace::diurnal());
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().epochs.size(), 24u);
  EXPECT_GT(report.value().saving_vs_static(), 0.15);
  EXPECT_LE(report.value().gpu_hours, report.value().static_gpu_hours);
  EXPECT_GT(report.value().total_reconfigurations, 0);
}

TEST_F(AutoscalerTest, EveryEpochStaysCompliant) {
  Autoscaler autoscaler(builtin_profiles(), perf_, fast_options());
  const auto report = autoscaler.run_day(base_services(), RateTrace::diurnal());
  ASSERT_TRUE(report.ok());
  for (const EpochRecord& epoch : report.value().epochs) {
    EXPECT_DOUBLE_EQ(epoch.slo_compliance, 1.0) << "t=" << epoch.t_hours;
    EXPECT_GT(epoch.gpus, 0) << "t=" << epoch.t_hours;
  }
}

TEST_F(AutoscalerTest, FlatTraceNeverReconfiguresAfterStart) {
  Autoscaler autoscaler(builtin_profiles(), perf_, fast_options());
  const auto report = autoscaler.run_day(base_services(), RateTrace::flat(1.0));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().total_reconfigurations, 0);
  // Fleet size is constant.
  for (const EpochRecord& epoch : report.value().epochs) {
    EXPECT_EQ(epoch.gpus, report.value().epochs.front().gpus);
  }
  EXPECT_NEAR(report.value().saving_vs_static(), 0.0, 1e-9);
}

TEST_F(AutoscalerTest, SurgeGrowsAndShrinksTheFleet) {
  Autoscaler autoscaler(builtin_profiles(), perf_, fast_options());
  const auto report =
      autoscaler.run_day(base_services(), RateTrace::surge(10.0, 13.0, 2.5));
  ASSERT_TRUE(report.ok());
  int before = 0;
  int during = 0;
  int after = 0;
  for (const EpochRecord& epoch : report.value().epochs) {
    if (epoch.t_hours < 9.0) before = std::max(before, epoch.gpus);
    if (epoch.t_hours >= 10.5 && epoch.t_hours <= 12.5) during = std::max(during, epoch.gpus);
    if (epoch.t_hours > 15.0) after = std::max(after, epoch.gpus);
  }
  EXPECT_GT(during, before);
  EXPECT_LE(after, before + 1);  // the fleet contracts again after the surge
}

TEST_F(AutoscalerTest, VerificationCanBeDisabled) {
  AutoscalerOptions options = fast_options();
  options.verify_with_simulation = false;
  Autoscaler autoscaler(builtin_profiles(), perf_, options);
  const auto report = autoscaler.run_day(base_services(), RateTrace::diurnal());
  ASSERT_TRUE(report.ok());
  for (const EpochRecord& epoch : report.value().epochs) {
    EXPECT_DOUBLE_EQ(epoch.slo_compliance, 1.0);
    EXPECT_DOUBLE_EQ(epoch.internal_slack, 0.0);
  }
}

TEST_F(AutoscalerTest, InvalidOptionsThrow) {
  AutoscalerOptions bad = fast_options();
  bad.epoch_minutes = 0.0;
  Autoscaler autoscaler(builtin_profiles(), perf_, bad);
  EXPECT_THROW((void)autoscaler.run_day(base_services(), RateTrace::diurnal()),
               std::logic_error);
}

}  // namespace
}  // namespace parva::serving
