// Differential battery for the sharded DES engine: for every scenario,
// fault schedule, window policy, and execution mode, a run with N shards
// must be byte-identical to the single-shard run — same counters, same
// latency sample bit patterns, same telemetry exports. `ctest -R
// parallel_engine` is the determinism gate the engine's parallelism rides
// on (DESIGN.md §4.5).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/parvagpu.hpp"
#include "gpu/fault_plan.hpp"
#include "scenarios/scenarios.hpp"
#include "serving/cluster_sim.hpp"
#include "serving/shard_engine.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/telemetry.hpp"
#include "tests/core/test_support.hpp"

namespace parva::serving {
namespace {

using core::testing::builtin_profiles;
using core::testing::service;

const std::vector<int> kShardCounts = {1, 2, 4, 7};

/// Every bit the simulation produced, including the failure-phase split and
/// the compliance timeline. Execution metadata (shard_events/shard_busy_ms)
/// is deliberately excluded: it describes how the run executed, not what it
/// computed.
std::vector<std::uint64_t> fingerprint(const SimulationResult& result) {
  std::vector<std::uint64_t> print = {result.events_processed, result.requests_shed,
                                      std::bit_cast<std::uint64_t>(result.internal_slack),
                                      std::bit_cast<std::uint64_t>(result.failure_at_ms),
                                      std::bit_cast<std::uint64_t>(result.recovered_at_ms)};
  for (double activity : result.unit_activity) {
    print.push_back(std::bit_cast<std::uint64_t>(activity));
  }
  print.push_back(result.requests_rejected);
  print.push_back(result.requests_evicted);
  print.push_back(result.generated_tokens);
  for (double kv_peak : result.unit_kv_peak) {
    print.push_back(std::bit_cast<std::uint64_t>(kv_peak));
  }
  for (const ServiceOutcome& outcome : result.services) {
    print.push_back(static_cast<std::uint64_t>(outcome.service_id));
    print.push_back(outcome.requests);
    print.push_back(outcome.batches);
    print.push_back(outcome.violated_batches);
    print.push_back(outcome.shed_requests);
    print.push_back(outcome.rejected_requests);
    print.push_back(outcome.evicted_requests);
    print.push_back(outcome.generated_tokens);
    print.push_back(std::bit_cast<std::uint64_t>(outcome.measured_rate));
    for (double sample : outcome.request_latency_ms.values()) {
      print.push_back(std::bit_cast<std::uint64_t>(sample));
    }
    for (double sample : outcome.prefill_latency_ms.values()) {
      print.push_back(std::bit_cast<std::uint64_t>(sample));
    }
    for (double sample : outcome.decode_latency_ms.values()) {
      print.push_back(std::bit_cast<std::uint64_t>(sample));
    }
  }
  for (const PhaseStats* phase :
       {&result.pre_failure, &result.degraded, &result.post_recovery}) {
    print.push_back(phase->batches);
    print.push_back(phase->violated_batches);
    print.push_back(phase->requests);
    print.push_back(phase->violated_requests);
    print.push_back(phase->shed_requests);
  }
  for (const TimelineBucket& bucket : result.timeline) {
    print.push_back(std::bit_cast<std::uint64_t>(bucket.t_ms));
    print.push_back(bucket.batches);
    print.push_back(bucket.violated_batches);
    print.push_back(bucket.shed_requests);
  }
  return print;
}

core::Deployment schedule(const std::vector<core::ServiceSpec>& services) {
  core::ParvaGpuScheduler scheduler(builtin_profiles());
  return scheduler.schedule(services).value().deployment;
}

SimulationOptions base_options() {
  SimulationOptions opts;
  opts.duration_ms = 800.0;
  opts.warmup_ms = 200.0;
  opts.seed = 42;
  opts.timeline_bucket_ms = 100.0;
  return opts;
}

TEST(ParallelEngineTest, ShardCountsAreByteIdenticalAcrossScenarios) {
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  for (const scenarios::Scenario& scenario : scenarios::all_scenarios()) {
    const core::Deployment deployment = schedule(scenario.services);
    ClusterSimulation sim(deployment, scenario.services, perf);
    SimulationOptions opts = base_options();
    const std::vector<std::uint64_t> serial = fingerprint(sim.run(opts));
    for (const int shards : kShardCounts) {
      opts.shards = shards;
      EXPECT_EQ(serial, fingerprint(sim.run(opts)))
          << scenario.name << " diverged at shards=" << shards;
    }
  }
}

TEST(ParallelEngineTest, LlmScenarioIsByteIdenticalAcrossShardsAndPolicies) {
  // The S7 generative scenario exercises every new event kind (Prefill,
  // Decode chains), the KV ledger, bursty arrivals, and both admission
  // policies — all of which must hold the §4.5 contract: shards {1, 2, 4}
  // produce bit-equal fingerprints, including the new LLM fields
  // (rejected/evicted counts, generated tokens, per-phase samples,
  // per-unit KV peaks).
  const scenarios::Scenario& scenario = scenarios::llm_scenario();
  core::ParvaGpuScheduler scheduler([] {
    perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::with_llm());
    profiler::Profiler profiler(perf);
    return profiler.profile_all(perfmodel::ModelCatalog::with_llm().names());
  }());
  const core::Deployment deployment = scheduler.schedule(scenario.services).value().deployment;
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::with_llm());
  ClusterSimulation sim(deployment, scenario.services, perf);

  for (const auto admission : {LlmAdmissionPolicy::kReject, LlmAdmissionPolicy::kEvict}) {
    SimulationOptions opts = base_options();
    opts.duration_ms = 6'000.0;
    opts.warmup_ms = 500.0;
    opts.arrivals = ArrivalProcess::kBursty;
    opts.llm.admission = admission;
    const std::vector<std::uint64_t> serial = fingerprint(sim.run(opts));
    for (const int shards : {2, 4}) {
      opts.shards = shards;
      EXPECT_EQ(serial, fingerprint(sim.run(opts)))
          << "admission=" << to_string(admission) << " shards=" << shards;
    }
  }
}

TEST(ParallelEngineTest, PoissonArrivalsAreByteIdentical) {
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  const scenarios::Scenario& scenario = scenarios::scenario("S3");
  const core::Deployment deployment = schedule(scenario.services);
  ClusterSimulation sim(deployment, scenario.services, perf);
  SimulationOptions opts = base_options();
  opts.arrivals = ArrivalProcess::kPoisson;
  opts.seed = 1234;
  const std::vector<std::uint64_t> serial = fingerprint(sim.run(opts));
  for (const int shards : kShardCounts) {
    opts.shards = shards;
    EXPECT_EQ(serial, fingerprint(sim.run(opts))) << "shards=" << shards;
  }
}

class ParallelEngineFaultTest : public ::testing::Test {
 protected:
  ParallelEngineFaultTest() : deployment_(schedule(services_)), perf_(perfmodel::ModelCatalog::builtin()) {}

  /// Fault schedule spanning the run: one early loss, then an equal-time
  /// double loss (the canonical-key tie-break must commute across shards),
  /// with two dormant replacements activating later.
  SimulationOptions fault_options() {
    SimulationOptions opts;
    opts.duration_ms = 2'000.0;
    opts.warmup_ms = 500.0;
    opts.seed = 77;
    opts.timeline_bucket_ms = 250.0;
    opts.fault_plan = &plan_;
    opts.activations = {{0, 1'800.0}, {1, 1'800.0}};
    return opts;
  }

  std::vector<core::ServiceSpec> services_ = {service(0, "resnet-50", 205, 4000),
                                              service(1, "vgg-19", 397, 1500),
                                              service(2, "mobilenetv2", 167, 8000),
                                              service(3, "bert-large", 400, 600)};
  core::Deployment deployment_;
  perfmodel::AnalyticalPerfModel perf_;
  gpu::FaultPlan plan_ = [] {
    gpu::FaultPlan plan;
    plan.gpu_failures = {{900.0, 0, 79}, {1'400.0, 1, 79}, {1'400.0, 2, 79}};
    return plan;
  }();
};

TEST_F(ParallelEngineFaultTest, FaultSchedulesAreByteIdentical) {
  ASSERT_GE(deployment_.gpu_count, 2);
  ClusterSimulation sim(deployment_, services_, perf_);
  SimulationOptions opts = fault_options();
  const SimulationResult serial_result = sim.run(opts);
  EXPECT_GT(serial_result.requests_shed, 0u);  // the faults actually bite
  const std::vector<std::uint64_t> serial = fingerprint(serial_result);
  for (const int shards : kShardCounts) {
    opts.shards = shards;
    EXPECT_EQ(serial, fingerprint(sim.run(opts))) << "shards=" << shards;
  }
}

TEST_F(ParallelEngineFaultTest, ForcedWindowBarriersDoNotChangeOutputs) {
  // The conservative auto-bound (barriers only at fault deliveries) and
  // forced lockstep windows of any width must produce the same stream.
  ClusterSimulation sim(deployment_, services_, perf_);
  SimulationOptions opts = fault_options();
  const std::vector<std::uint64_t> serial = fingerprint(sim.run(opts));
  for (const int shards : {1, 2, 4}) {
    for (const double window_ms : {50.0, 333.3, 10'000.0}) {
      opts.shards = shards;
      opts.shard_window_ms = window_ms;
      EXPECT_EQ(serial, fingerprint(sim.run(opts)))
          << "shards=" << shards << " window=" << window_ms;
    }
  }
}

TEST_F(ParallelEngineFaultTest, ThreadPoolExecutionMatchesSequential) {
  // The actual parallel path: shards advancing on pool workers must equal
  // the same decomposition run sequentially (and therefore the single-shard
  // run). Runs under the tsan preset as well, which checks that the only
  // synchronisation — the window-barrier joins — is sufficient.
  ClusterSimulation sim(deployment_, services_, perf_);
  SimulationOptions opts = fault_options();
  const std::vector<std::uint64_t> serial = fingerprint(sim.run(opts));
  ThreadPool pool(3);
  opts.shard_pool = &pool;
  for (const int shards : {2, 4, 7}) {
    opts.shards = shards;
    opts.shard_window_ms = 0.0;
    EXPECT_EQ(serial, fingerprint(sim.run(opts))) << "pooled shards=" << shards;
    opts.shard_window_ms = 200.0;  // pooled + forced lockstep windows
    EXPECT_EQ(serial, fingerprint(sim.run(opts)))
        << "pooled windowed shards=" << shards;
  }
}

TEST_F(ParallelEngineFaultTest, TelemetryExportsAreByteIdentical) {
  // All three exporters — Prometheus text, JSON-lines event log, CSV
  // summary — must emit identical bytes for every shard count, with
  // per-batch events enabled (the highest-volume record stream).
  ClusterSimulation sim(deployment_, services_, perf_);
  auto exports_for = [&](int shards, ThreadPool* pool) {
    telemetry::Telemetry telemetry({.max_events = 1 << 16, .request_events = true});
    SimulationOptions opts = fault_options();
    opts.telemetry = &telemetry;
    opts.shards = shards;
    opts.shard_pool = pool;
    const SimulationResult result = sim.run(opts);
    return std::vector<std::string>{telemetry::to_prometheus(telemetry.metrics()),
                                    telemetry::to_json_lines(telemetry.events()),
                                    telemetry::to_csv_summary(telemetry.metrics())};
  };
  const std::vector<std::string> serial = exports_for(1, nullptr);
  EXPECT_NE(serial[1].find("gpu_failure"), std::string::npos);
  ThreadPool pool(3);
  for (const int shards : {2, 4, 7}) {
    EXPECT_EQ(serial, exports_for(shards, nullptr)) << "shards=" << shards;
    EXPECT_EQ(serial, exports_for(shards, &pool)) << "pooled shards=" << shards;
  }
}

TEST_F(ParallelEngineFaultTest, TelemetryDoesNotPerturbResults) {
  // Attaching a sink must not change a sharded run's outputs (the sharded
  // record-buffering path is new code; the contract from telemetry.hpp
  // still holds).
  ClusterSimulation sim(deployment_, services_, perf_);
  SimulationOptions opts = fault_options();
  opts.shards = 4;
  const std::vector<std::uint64_t> bare = fingerprint(sim.run(opts));
  telemetry::Telemetry telemetry({.request_events = true});
  opts.telemetry = &telemetry;
  EXPECT_EQ(bare, fingerprint(sim.run(opts)));
}

TEST(ParallelEnginePartitionTest, PartitionIsDeterministicAndBalanced) {
  const std::vector<double> rates = {19, 353, 308, 276, 460, 677, 393, 281, 829, 410, 354};
  const std::vector<int> assignment = partition_services(rates, 4);
  EXPECT_EQ(assignment, partition_services(rates, 4));  // pure function
  std::vector<double> load(4, 0.0);
  double total = 0.0;
  for (std::size_t s = 0; s < rates.size(); ++s) {
    ASSERT_GE(assignment[s], 0);
    ASSERT_LT(assignment[s], 4);
    load[static_cast<std::size_t>(assignment[s])] += rates[s];
    total += rates[s];
  }
  // LPT keeps the heaviest shard within a modest factor of the mean.
  for (const double l : load) EXPECT_LE(l, 1.5 * total / 4.0);
  // One shard degenerates to the identity partition.
  EXPECT_EQ(partition_services(rates, 1), std::vector<int>(rates.size(), 0));
  // More shards than services: every service still lands somewhere valid.
  for (const int k : partition_services({5.0, 3.0}, 7)) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 7);
  }
}

TEST(ParallelEnginePartitionTest, ShardEventCountsPartitionTheRun) {
  // shard_events is execution metadata but still deterministic: the counts
  // sum to events_processed minus the coordinator-delivered failures, and
  // repeat run-to-run.
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  const scenarios::Scenario& scenario = scenarios::scenario("S2");
  const core::Deployment deployment = schedule(scenario.services);
  ClusterSimulation sim(deployment, scenario.services, perf);
  SimulationOptions opts = base_options();
  opts.shards = 4;
  const SimulationResult a = sim.run(opts);
  const SimulationResult b = sim.run(opts);
  ASSERT_EQ(a.shard_events.size(), 4u);
  EXPECT_EQ(a.shard_events, b.shard_events);
  std::size_t sum = 0;
  for (const std::size_t n : a.shard_events) {
    EXPECT_GT(n, 0u);  // LPT gave every shard real work on S2
    sum += n;
  }
  EXPECT_EQ(sum, a.events_processed);  // no faults in this run
  ASSERT_EQ(a.shard_busy_ms.size(), 4u);
}

}  // namespace
}  // namespace parva::serving
