// Behavioural tests for the generative-LLM workload class (DESIGN.md
// §4.7): the KV-cache ledger, admission/eviction/dispatch policies, the
// bursty arrival process, and the degenerate contract that a zero-token
// LLM descriptor is byte-identical to the fixed-latency path.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/parvagpu.hpp"
#include "perfmodel/model_catalog.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/scenarios.hpp"
#include "serving/cluster_sim.hpp"
#include "serving/llm_engine.hpp"
#include "tests/core/test_support.hpp"

namespace parva::serving {
namespace {

/// Profile set over the union catalog (CNN rows + LLM rows) so schedules
/// can place llama services.
const profiler::ProfileSet& llm_profiles() {
  static const profiler::ProfileSet profiles = [] {
    perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::with_llm());
    profiler::Profiler profiler(perf);
    return profiler.profile_all(perfmodel::ModelCatalog::with_llm().names());
  }();
  return profiles;
}

core::ServiceSpec llm_service(int id, const std::string& model, double slo_ms, double rate,
                              const core::LlmWorkload& llm) {
  core::ServiceSpec spec{id, model, slo_ms, rate, {}};
  spec.llm = llm;
  return spec;
}

/// Everything the simulation computed, bit-exact. Mirrors the parallel
/// engine battery's fingerprint but lives here so this suite stays
/// standalone.
std::vector<std::uint64_t> fingerprint(const SimulationResult& result) {
  std::vector<std::uint64_t> print = {result.events_processed, result.requests_shed,
                                      result.requests_rejected, result.requests_evicted,
                                      result.generated_tokens};
  print.push_back(std::bit_cast<std::uint64_t>(result.internal_slack));
  for (double kv_peak : result.unit_kv_peak) {
    print.push_back(std::bit_cast<std::uint64_t>(kv_peak));
  }
  for (const ServiceOutcome& outcome : result.services) {
    print.push_back(outcome.requests);
    print.push_back(outcome.batches);
    print.push_back(outcome.violated_batches);
    print.push_back(outcome.shed_requests);
    print.push_back(outcome.rejected_requests);
    print.push_back(outcome.evicted_requests);
    print.push_back(outcome.generated_tokens);
    print.push_back(std::bit_cast<std::uint64_t>(outcome.measured_rate));
    for (double sample : outcome.request_latency_ms.values()) {
      print.push_back(std::bit_cast<std::uint64_t>(sample));
    }
    for (double sample : outcome.prefill_latency_ms.values()) {
      print.push_back(std::bit_cast<std::uint64_t>(sample));
    }
    for (double sample : outcome.decode_latency_ms.values()) {
      print.push_back(std::bit_cast<std::uint64_t>(sample));
    }
  }
  return print;
}

class LlmSimTest : public ::testing::Test {
 protected:
  core::Deployment schedule(const std::vector<core::ServiceSpec>& services) {
    core::ParvaGpuScheduler scheduler(llm_profiles());
    return scheduler.schedule(services).value().deployment;
  }

  SimulationOptions fast_options(std::uint64_t seed = 42) {
    SimulationOptions options;
    options.duration_ms = 6'000.0;
    options.warmup_ms = 500.0;
    options.seed = seed;
    return options;
  }

  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::with_llm()};
};

// Satellite bugfix-sweep test: an engaged-but-empty LlmWorkload (zero
// prompt tokens, zero generation, kv_bytes_per_token = 0) must degenerate
// to the fixed-latency path bit-for-bit. prefill_share and prompt_scale
// both collapse to exactly 1.0 (no floating-point drift), no token RNG is
// drawn, and the Prefill event completes the batch through the same
// accounting as kBatchComplete.
TEST_F(LlmSimTest, ZeroTokenLlmWorkloadDegeneratesToFixedLatencyPath) {
  const std::vector<core::ServiceSpec> plain = {
      core::testing::service(0, "resnet-50", 205, 829),
      core::testing::service(1, "vgg-19", 397, 354)};
  std::vector<core::ServiceSpec> degenerate = plain;
  degenerate[0].llm = core::LlmWorkload{0.0, 0.0, 8192, 0.0, 0.0, 2048, 0.0};

  const core::Deployment deployment = schedule(plain);
  ClusterSimulation fixed(deployment, plain, perf_);
  ClusterSimulation llm(deployment, degenerate, perf_);

  for (const auto arrivals :
       {ArrivalProcess::kDeterministic, ArrivalProcess::kPoisson, ArrivalProcess::kBursty}) {
    SimulationOptions opts = fast_options(7);
    opts.arrivals = arrivals;
    const SimulationResult a = fixed.run(opts);
    const SimulationResult b = llm.run(opts);
    EXPECT_EQ(fingerprint(a), fingerprint(b))
        << "arrivals=" << static_cast<int>(arrivals);
    // And the degenerate run reports no generative activity at all.
    EXPECT_EQ(b.requests_rejected, 0u);
    EXPECT_EQ(b.requests_evicted, 0u);
    EXPECT_EQ(b.generated_tokens, 0u);
    for (const double kv_peak : b.unit_kv_peak) {
      EXPECT_EQ(kv_peak, 0.0);
    }
  }
}

// A genuinely generative run produces tokens, per-phase samples, and a
// KV-peak trace bounded by capacity — and is exactly repeatable.
TEST_F(LlmSimTest, GenerativeRunProducesTokensAndBoundedKvPeaks) {
  const scenarios::Scenario& scenario = scenarios::llm_scenario();
  const core::Deployment deployment = schedule(scenario.services);
  ClusterSimulation sim(deployment, scenario.services, perf_);
  SimulationOptions opts = fast_options();
  opts.arrivals = ArrivalProcess::kBursty;
  const SimulationResult result = sim.run(opts);

  EXPECT_GT(result.generated_tokens, 0u);
  bool saw_pressure = false;
  for (const double kv_peak : result.unit_kv_peak) {
    EXPECT_GE(kv_peak, 0.0);
    EXPECT_LE(kv_peak, 1.0);  // the ledger never overcommits capacity
    saw_pressure = saw_pressure || kv_peak > 0.5;
  }
  EXPECT_TRUE(saw_pressure) << "S7 should stress at least one instance's KV capacity";
  for (const ServiceOutcome& outcome : result.services) {
    if (outcome.generated_tokens == 0) continue;
    EXPECT_FALSE(outcome.prefill_latency_ms.empty());
    EXPECT_FALSE(outcome.decode_latency_ms.empty());
    // Decode-phase latency includes queueing for decode slots plus the
    // whole token chain; it dominates end-to-end latency for chat shapes.
    EXPECT_GT(outcome.decode_latency_ms.mean(), 0.0);
  }
  EXPECT_EQ(fingerprint(result), fingerprint(sim.run(opts))) << "same seed must replay";
}

// Reject and evict are different policies with different deterministic
// outcomes: reject refuses admission (never evicts), evict admits
// optimistically and pays with mid-decode victims. S7's pressure builds
// over tens of seconds and needs its native bursty arrivals, so this test
// runs the parvactl S7 defaults (28 s horizon, bursty).
TEST_F(LlmSimTest, RejectAndEvictProduceDifferentDeterministicOutcomes) {
  const scenarios::Scenario& scenario = scenarios::llm_scenario();
  EXPECT_TRUE(scenario.streaming) << "S7 is a streaming scenario";
  const core::Deployment deployment = schedule(scenario.services);
  ClusterSimulation sim(deployment, scenario.services, perf_);

  SimulationOptions opts;
  opts.duration_ms = 28'000.0;  // parvactl's simulate defaults
  opts.seed = 1234;
  opts.arrivals = ArrivalProcess::kBursty;
  opts.llm.admission = LlmAdmissionPolicy::kReject;
  const SimulationResult reject = sim.run(opts);
  opts.llm.admission = LlmAdmissionPolicy::kEvict;
  const SimulationResult evict = sim.run(opts);

  EXPECT_GT(reject.requests_rejected, 0u);
  EXPECT_EQ(reject.requests_evicted, 0u) << "reject never evicts";
  EXPECT_GT(evict.requests_evicted, 0u);
  EXPECT_NE(fingerprint(reject), fingerprint(evict));
}

// FIFO and LRU pick different victims when the oldest-admitted batch is
// not the least-recently-touched one — possible only with several batches
// concurrently resident (procs > 1) whose decode cadences differ (live
// counts differ, so touch times stagger). A hand-built single 7g unit
// running three MPS processes under heavy-tailed generation lengths keeps
// that window open for most of the run.
TEST_F(LlmSimTest, FifoAndLruEvictionChooseDifferentVictims) {
  core::DeployedUnit unit;
  unit.service_id = 0;
  unit.model = "llama-7b";
  unit.gpu_index = 0;
  unit.gpc_grant = 7.0;
  unit.batch = 8;
  unit.procs = 3;
  unit.planned_throughput = unit.actual_throughput = 6.0;
  unit.planned_latency_ms = unit.actual_latency_ms = 6'000.0;
  core::Deployment deployment;
  deployment.framework = "test";
  deployment.uses_mig = true;
  deployment.gpu_count = 1;
  deployment.units = {unit};

  // KV sized so ~2.5 full batches fit: evictions always have at least one
  // non-self candidate. Gen sigma 1.0 gives the heavy tail that staggers
  // the decode chains.
  const std::vector<core::ServiceSpec> services = {llm_service(
      0, "llama-7b", 30'000, 5.0,
      core::LlmWorkload{400.0, 0.6, 2048, 300.0, 1.0, 2048, 3.0e6})};
  ClusterSimulation sim(deployment, services, perf_);

  SimulationOptions opts;  // default 20 s horizon
  opts.arrivals = ArrivalProcess::kBursty;
  opts.llm.admission = LlmAdmissionPolicy::kEvict;
  opts.llm.eviction = LlmEvictionPolicy::kFifo;
  const SimulationResult fifo = sim.run(opts);
  opts.llm.eviction = LlmEvictionPolicy::kLru;
  const SimulationResult lru = sim.run(opts);

  EXPECT_GT(fifo.requests_evicted, 0u);
  EXPECT_GT(lru.requests_evicted, 0u);
  EXPECT_NE(fingerprint(fifo), fingerprint(lru));
}

// Every dispatch policy runs deterministically; the placement orderings
// differ, so the outcomes differ too (least-loaded balances queues,
// round-robin ignores load, p2c samples two and keeps the lighter).
TEST_F(LlmSimTest, DispatchPoliciesAreDistinctAndDeterministic) {
  const scenarios::Scenario& scenario = scenarios::llm_scenario();
  const core::Deployment deployment = schedule(scenario.services);
  ClusterSimulation sim(deployment, scenario.services, perf_);

  SimulationOptions opts = fast_options();
  opts.arrivals = ArrivalProcess::kBursty;
  std::vector<std::vector<std::uint64_t>> prints;
  for (const auto dispatch : {LlmDispatchPolicy::kLeastLoaded, LlmDispatchPolicy::kRoundRobin,
                              LlmDispatchPolicy::kPowerOfTwo}) {
    opts.llm.dispatch = dispatch;
    const std::vector<std::uint64_t> first = fingerprint(sim.run(opts));
    EXPECT_EQ(first, fingerprint(sim.run(opts))) << to_string(dispatch) << " must replay";
    prints.push_back(first);
  }
  EXPECT_NE(prints[0], prints[1]) << "least-loaded vs round-robin";
  EXPECT_NE(prints[0], prints[2]) << "least-loaded vs p2c";
  EXPECT_NE(prints[1], prints[2]) << "round-robin vs p2c";
}

// The decode chunk size trades event count for ledger granularity but the
// options must be validated: a zero chunk is a caller error.
TEST_F(LlmSimTest, InvalidDecodeChunkIsRejected) {
  const std::vector<core::ServiceSpec> services = {
      llm_service(0, "llama-3b", 4'000, 30,
                  core::LlmWorkload{160.0, 0.4, 2048, 48.0, 0.4, 512, 100.0e3})};
  const core::Deployment deployment = schedule(services);
  ClusterSimulation sim(deployment, services, perf_);
  SimulationOptions opts = fast_options();
  opts.llm.decode_chunk_tokens = 0;
  EXPECT_THROW(sim.run(opts), std::exception);
}

// Bursty arrivals preserve the offered rate (the slow inter-burst rate is
// chosen to compensate the bursts) while producing burstier latency than
// the deterministic pacing.
TEST_F(LlmSimTest, BurstyArrivalsPreserveMeanRate) {
  const std::vector<core::ServiceSpec> services = {
      core::testing::service(0, "resnet-50", 205, 800)};
  core::ParvaGpuScheduler scheduler(core::testing::builtin_profiles());
  const core::Deployment deployment = scheduler.schedule(services).value().deployment;
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  ClusterSimulation sim(deployment, services, perf);

  SimulationOptions opts = fast_options();
  opts.duration_ms = 20'000.0;
  opts.arrivals = ArrivalProcess::kBursty;
  const SimulationResult bursty = sim.run(opts);
  EXPECT_NEAR(bursty.services[0].measured_rate, 800.0, 0.15 * 800.0);

  opts.arrivals = ArrivalProcess::kDeterministic;
  const SimulationResult paced = sim.run(opts);
  EXPECT_GT(bursty.services[0].request_latency_ms.p99(),
            paced.services[0].request_latency_ms.p99());

  // Degenerate shaping parameters are caller errors, not silent clamps.
  opts.arrivals = ArrivalProcess::kBursty;
  opts.burst_factor = 1.0;
  EXPECT_THROW(sim.run(opts), std::exception);
  opts.burst_factor = 6.0;
  opts.burst_prob = 1.0;
  EXPECT_THROW(sim.run(opts), std::exception);
}

}  // namespace
}  // namespace parva::serving
