// Regression pin for the engine's former latent serial assumption: event
// sequence numbers used to come from a single enqueue-order counter
// (EventQueue::issue_seq), so the seq a given arrival received depended on
// every other source's interleaving — correct serially, impossible to
// reproduce per-shard. Canonical stream keys (shard_engine.hpp) make the
// seq of the k-th event of a source a pure function of (source, k). These
// tests pin that contract directly at the stream level and end-to-end.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/parvagpu.hpp"
#include "serving/cluster_sim.hpp"
#include "serving/shard_engine.hpp"
#include "tests/core/test_support.hpp"

namespace parva::serving {
namespace {

using core::testing::builtin_profiles;
using core::testing::service;

TEST(SeqStabilityTest, CanonicalKeysArePureFunctionsOfTheSource) {
  // Layout: faults < activations < arrivals < completions, and within a
  // stream strictly by occurrence.
  EXPECT_LT(canonical_seq(kFaultStreamId, 5), canonical_seq(kActivationStreamId, 0));
  EXPECT_LT(canonical_seq(kActivationStreamId, 99), canonical_seq(arrival_stream_id(0), 0));
  EXPECT_LT(canonical_seq(arrival_stream_id(3), 1'000'000),
            canonical_seq(completion_stream_id(4, 0), 0));
  EXPECT_LT(canonical_seq(arrival_stream_id(2), 7), canonical_seq(arrival_stream_id(2), 8));
  // The same (stream, counter) always yields the same key.
  SeqStream a(arrival_stream_id(1));
  SeqStream b(arrival_stream_id(1));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.issued(), 100u);
}

TEST(SeqStabilityTest, ArrivalStreamsAssignIdenticalSeqsUnderAnyPartition) {
  // A monolithic set of per-service arrival streams and the same streams
  // split across two shards must hand out identical seqs per service —
  // regardless of the order the two shards interleave their arming calls.
  ArrivalStreams mono({0, 1, 2, 3, 4});
  ArrivalStreams shard_a({0, 2, 4});
  ArrivalStreams shard_b({1, 3});
  Rng rng(7);
  std::vector<int> armed(5, 0);
  for (int step = 0; step < 500; ++step) {
    const auto s = static_cast<std::size_t>(rng.uniform_int(0, 4));
    const double t = static_cast<double>(step);
    mono.arm(s, t);
    const std::uint64_t expected = mono.seq(s);
    if (s % 2 == 0) {
      shard_a.arm(s / 2, t);
      EXPECT_EQ(shard_a.seq(s / 2), expected);
      EXPECT_EQ(shard_a.time(s / 2), t);
    } else {
      shard_b.arm(s / 2, t);
      EXPECT_EQ(shard_b.seq(s / 2), expected);
    }
    ++armed[s];
    // The key is the pure function (arrival stream of s, occurrences so far).
    EXPECT_EQ(expected, canonical_seq(arrival_stream_id(s),
                                      static_cast<std::uint64_t>(armed[s]) - 1));
  }
}

TEST(SeqStabilityTest, EarliestBreaksTimeTiesBySeq) {
  ArrivalStreams streams({0, 1, 2});
  streams.arm(2, 10.0);  // armed first: lowest counter at the tied time? No —
  streams.arm(0, 10.0);  // seq is per-stream, so the *stream id* decides:
  streams.arm(1, 10.0);  // all counters are 0, stream 0 < 1 < 2.
  EXPECT_EQ(streams.earliest(), 0u);
  streams.retire(0);
  EXPECT_EQ(streams.earliest(), 1u);
  streams.arm(0, 5.0);  // strictly earlier time wins over any seq
  EXPECT_EQ(streams.earliest(), 0u);
}

TEST(SeqStabilityTest, PerShardArrivalGenerationPreservesEngineSeqs) {
  // End-to-end pin: per-service arrival counts (the observable face of seq
  // assignment — a shifted seq reorders a tie and changes who gets batched
  // with whom) are bit-stable across shard counts, including a service
  // whose rate ties another's (the partition must not conflate them).
  const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 900),
                                                   service(1, "vgg-19", 397, 900),
                                                   service(2, "mobilenetv2", 167, 1800),
                                                   service(3, "bert-large", 400, 450)};
  core::ParvaGpuScheduler scheduler(builtin_profiles());
  const core::Deployment deployment = scheduler.schedule(services).value().deployment;
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  ClusterSimulation sim(deployment, services, perf);
  SimulationOptions opts;
  opts.duration_ms = 1'000.0;
  opts.warmup_ms = 200.0;
  opts.seed = 5;
  const SimulationResult serial = sim.run(opts);
  for (const int shards : {2, 3, 4, 7}) {
    opts.shards = shards;
    const SimulationResult sharded = sim.run(opts);
    ASSERT_EQ(serial.services.size(), sharded.services.size());
    for (std::size_t s = 0; s < serial.services.size(); ++s) {
      EXPECT_EQ(serial.services[s].requests, sharded.services[s].requests)
          << "service " << s << " shards " << shards;
      EXPECT_EQ(serial.services[s].request_latency_ms.values(),
                sharded.services[s].request_latency_ms.values())
          << "service " << s << " shards " << shards;
    }
    EXPECT_EQ(serial.events_processed, sharded.events_processed);
  }
}

}  // namespace
}  // namespace parva::serving
