// Property test for the window-barrier merge: the canonically keyed record
// stream that merge_records() produces must be invariant under how the
// records were distributed across shard buffers — including adversarial
// bursts of equal-timestamp records spread over every buffer. This is the
// algebraic half of the engine's parallel == serial argument (the
// differential half lives in parallel_engine_test.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "serving/shard_engine.hpp"
#include "telemetry/event_log.hpp"

namespace parva::serving {
namespace {

bool same_record(const BufferedRecord& a, const BufferedRecord& b) {
  return a.t_ms == b.t_ms && a.seq == b.seq && a.sub == b.sub && a.kind == b.kind &&
         a.gpu == b.gpu && a.service_id == b.service_id && a.value == b.value;
}

bool same_stream(const std::vector<BufferedRecord>& a, const std::vector<BufferedRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_record(a[i], b[i])) return false;
  }
  return true;
}

/// Builds a random canonical stream: `streams` event sources, each issuing
/// consecutive counters, with timestamps drawn from a *small* set of values
/// so equal-time collisions across streams are the common case, plus
/// sub-key fan-out bursts under a single key (the GPU-failure pattern).
std::vector<BufferedRecord> random_stream(Rng& rng, std::size_t streams,
                                          std::size_t records) {
  std::vector<SeqStream> sources;
  sources.reserve(streams);
  for (std::size_t i = 0; i < streams; ++i) sources.emplace_back(i);
  std::vector<BufferedRecord> out;
  out.reserve(records);
  while (out.size() < records) {
    const auto source = static_cast<std::size_t>(rng.uniform_int(0, streams - 1));
    // 8 distinct times over the whole stream: ties everywhere.
    const double t = static_cast<double>(rng.uniform_int(0, 7)) * 100.0;
    const std::uint64_t seq = sources[source].next();
    const std::uint64_t burst = rng.uniform_int(1, 3);
    for (std::uint64_t sub = 0; sub < burst && out.size() < records; ++sub) {
      out.push_back({t, seq, sub, telemetry::EventKind::kRequestShed,
                     static_cast<int>(source), static_cast<int>(sub),
                     static_cast<double>(out.size())});
    }
  }
  std::sort(out.begin(), out.end(), record_before);
  return out;
}

/// Distributes the canonical stream across `shards` buffers at random,
/// preserving each buffer's relative (canonical) order — exactly what a
/// shard execution does, since every shard emits in key order.
std::vector<std::vector<BufferedRecord>> random_partition(Rng& rng,
                                                          const std::vector<BufferedRecord>& stream,
                                                          std::size_t shards) {
  std::vector<std::vector<BufferedRecord>> buffers(shards);
  for (const BufferedRecord& record : stream) {
    buffers[static_cast<std::size_t>(rng.uniform_int(0, shards - 1))].push_back(record);
  }
  return buffers;
}

TEST(ShardMergePropertyTest, MergeIsInvariantUnderRandomPartitions) {
  Rng rng(20240807);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t streams = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const std::size_t records = static_cast<std::size_t>(rng.uniform_int(0, 120));
    const std::vector<BufferedRecord> canonical = random_stream(rng, streams, records);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                     std::size_t{5}, std::size_t{8}}) {
      const auto merged = merge_records(random_partition(rng, canonical, shards));
      EXPECT_TRUE(same_stream(canonical, merged))
          << "trial " << trial << " shards " << shards << " records "
          << canonical.size();
    }
  }
}

TEST(ShardMergePropertyTest, EqualTimestampBurstsCommute) {
  // Two shards swap which one carries the even/odd halves of an equal-time
  // burst; both distributions must merge to the same serial order.
  Rng rng(99);
  const std::vector<BufferedRecord> canonical = random_stream(rng, 4, 64);
  std::vector<std::vector<BufferedRecord>> even_odd(2);
  std::vector<std::vector<BufferedRecord>> odd_even(2);
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    even_odd[i % 2].push_back(canonical[i]);
    odd_even[1 - i % 2].push_back(canonical[i]);
  }
  const auto a = merge_records(std::move(even_odd));
  const auto b = merge_records(std::move(odd_even));
  EXPECT_TRUE(same_stream(canonical, a));
  EXPECT_TRUE(same_stream(a, b));
}

// Pinned regression fixture: the shrunk counterexample shape for a merge
// that compares (time, seq) but forgets the sub-key — three records under
// ONE canonical key (a GPU failure shedding across two shards) plus an
// equal-time record of a later stream. A sub-blind merge can emit
// (t=100, seq(1,0)) between the sub=0 and sub=1 halves of the failure
// fan-out, or reorder the fan-out itself; the full key forbids both.
TEST(ShardMergePropertyTest, PinnedSubKeyFanOutFixture) {
  const std::uint64_t failure_key = canonical_seq(kFaultStreamId, 0);
  const std::uint64_t arrival_key = canonical_seq(arrival_stream_id(0), 0);
  const BufferedRecord coordinator{100.0, failure_key, 0,
                                   telemetry::EventKind::kGpuFailure, 2, -1, 0.0};
  const BufferedRecord shed_unit0{100.0, failure_key, (std::uint64_t{1} << 20) | 0,
                                  telemetry::EventKind::kRequestShed, -1, 0, 0.0};
  const BufferedRecord shed_unit3{100.0, failure_key, (std::uint64_t{4} << 20) | 0,
                                  telemetry::EventKind::kRequestShed, -1, 1, 0.0};
  const BufferedRecord arrival_shed{100.0, arrival_key, 0,
                                    telemetry::EventKind::kRequestShed, -1, 0, 0.0};
  // Shard A held unit 3, shard B held unit 0 and the arrival; the
  // coordinator buffer carries the failure record itself.
  const auto merged = merge_records({{shed_unit3},
                                     {shed_unit0, arrival_shed},
                                     {coordinator}});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_TRUE(same_record(merged[0], coordinator));   // sub 0 first
  EXPECT_TRUE(same_record(merged[1], shed_unit0));    // then units ascending
  EXPECT_TRUE(same_record(merged[2], shed_unit3));
  EXPECT_TRUE(same_record(merged[3], arrival_shed));  // later stream last
}

TEST(ShardMergePropertyTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(merge_records({}).empty());
  EXPECT_TRUE(merge_records({{}, {}, {}}).empty());
  const BufferedRecord only{1.0, canonical_seq(kActivationStreamId, 0), 0,
                            telemetry::EventKind::kUnitActivated, 0, 0, 0.0};
  const auto merged = merge_records({{}, {only}, {}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_TRUE(same_record(merged[0], only));
}

}  // namespace
}  // namespace parva::serving
