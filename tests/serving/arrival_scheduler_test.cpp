// Differential battery for the tournament-tree arrival scheduler
// (DESIGN.md §4.6): the tree must select byte-identical winners to the
// flat argmin scan it replaced, for any arm/retire sequence — equal-time
// seq tie-breaks included — and forcing either implementation through a
// full simulation must not move a single output bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/parvagpu.hpp"
#include "gpu/fault_plan.hpp"
#include "serving/cluster_sim.hpp"
#include "serving/shard_engine.hpp"
#include "tests/core/test_support.hpp"

namespace parva::serving {
namespace {

using core::testing::builtin_profiles;
using core::testing::service;

std::vector<std::size_t> iota_indices(std::size_t n) {
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  return indices;
}

TEST(ArrivalSchedulerTest, AutoSelectsByServiceCount) {
  EXPECT_EQ(ArrivalStreams(iota_indices(kArrivalTournamentThreshold)).kind(),
            ArrivalSchedulerKind::kFlatScan);
  EXPECT_EQ(ArrivalStreams(iota_indices(kArrivalTournamentThreshold + 1)).kind(),
            ArrivalSchedulerKind::kTournament);
  // Forcing overrides the count on both sides of the threshold.
  EXPECT_EQ(ArrivalStreams(iota_indices(2), ArrivalSchedulerKind::kTournament).kind(),
            ArrivalSchedulerKind::kTournament);
  EXPECT_EQ(ArrivalStreams(iota_indices(100), ArrivalSchedulerKind::kFlatScan).kind(),
            ArrivalSchedulerKind::kFlatScan);
}

TEST(ArrivalSchedulerTest, AutoBoundaryIsExactlyThreshold) {
  // The §4.6 contract, pinned one-past on each side: the tournament engages
  // STRICTLY above the threshold. Exactly 16 local services (a power of
  // two, so an off-by-one here would still build a well-formed tree and
  // hide) must take the flat scan, and the boundary must track the
  // constant, not a hard-coded 16.
  static_assert(kArrivalTournamentThreshold == 16,
                "DESIGN.md §4.6 documents threshold 16; update it with this constant");
  EXPECT_EQ(ArrivalStreams(iota_indices(kArrivalTournamentThreshold - 1)).kind(),
            ArrivalSchedulerKind::kFlatScan);
  EXPECT_EQ(ArrivalStreams(iota_indices(kArrivalTournamentThreshold)).kind(),
            ArrivalSchedulerKind::kFlatScan);
  EXPECT_EQ(ArrivalStreams(iota_indices(kArrivalTournamentThreshold + 1)).kind(),
            ArrivalSchedulerKind::kTournament);
}

TEST(ArrivalSchedulerTest, ZeroServicesBuildValidSentinelOnlyStructures) {
  // A shard of a (shards > services) run binds an EMPTY service list. Both
  // schedulers must come up as valid empty structures — the tournament as
  // a sentinel-only tree — where earliest() == size() == 0, and the
  // default-constructed (pre-bind) object must behave the same.
  for (const auto kind : {ArrivalSchedulerKind::kAuto, ArrivalSchedulerKind::kFlatScan,
                          ArrivalSchedulerKind::kTournament}) {
    ArrivalStreams streams(iota_indices(0), kind);
    EXPECT_EQ(streams.size(), 0u);
    EXPECT_EQ(streams.earliest(), 0u);
  }
  ArrivalStreams unbound;
  EXPECT_EQ(unbound.size(), 0u);
  EXPECT_EQ(unbound.earliest(), 0u);
}

TEST(ArrivalSchedulerTest, MoreShardsThanServicesRunsUnderEitherScheduler) {
  // End-to-end: 2 services over 4 shards leaves two shards service-less;
  // their empty (possibly sentinel-only) arrival structures must be inert
  // and the outputs byte-identical to the 1-shard run under BOTH forced
  // schedulers.
  const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 600),
                                                   service(1, "vgg-19", 397, 300)};
  const auto profiles = builtin_profiles();
  core::ParvaGpuScheduler scheduler(profiles);
  const auto scheduled = scheduler.schedule(services);
  ASSERT_TRUE(scheduled.ok());

  perfmodel::AnalyticalPerfModel perf{perfmodel::ModelCatalog::builtin()};
  ClusterSimulation sim(scheduled.value().deployment, services, perf);
  SimulationOptions options;
  options.duration_ms = 3'000.0;
  options.arrivals = ArrivalProcess::kPoisson;
  options.shards = 1;
  const SimulationResult base = sim.run(options);
  for (const auto kind :
       {ArrivalSchedulerKind::kFlatScan, ArrivalSchedulerKind::kTournament}) {
    options.shards = 4;
    options.arrival_scheduler = kind;
    const SimulationResult sharded = sim.run(options);
    ASSERT_EQ(sharded.services.size(), base.services.size());
    for (std::size_t s = 0; s < base.services.size(); ++s) {
      EXPECT_EQ(sharded.services[s].requests, base.services[s].requests);
      EXPECT_EQ(sharded.services[s].violated_batches, base.services[s].violated_batches);
      EXPECT_EQ(sharded.services[s].request_latency_ms.values(),
                base.services[s].request_latency_ms.values());
    }
    EXPECT_EQ(sharded.events_processed, base.events_processed);
  }
}

TEST(ArrivalSchedulerTest, TournamentBreaksTimeTiesBySeq) {
  // The mirror of SeqStabilityTest.EarliestBreaksTimeTiesBySeq on the
  // tree path: stream ids decide equal-time matches.
  ArrivalStreams streams(iota_indices(3), ArrivalSchedulerKind::kTournament);
  streams.arm(2, 10.0);
  streams.arm(0, 10.0);
  streams.arm(1, 10.0);
  EXPECT_EQ(streams.earliest(), 0u);
  streams.retire(0);
  EXPECT_EQ(streams.earliest(), 1u);
  streams.arm(0, 5.0);  // strictly earlier time wins over any seq
  EXPECT_EQ(streams.earliest(), 0u);
  streams.retire(0);
  streams.retire(1);
  streams.retire(2);
  EXPECT_EQ(streams.earliest(), 3u);  // nothing pending
}

TEST(ArrivalSchedulerTest, NonPowerOfTwoSlotCountsFillWithSentinels) {
  // Spare tournament leaves (5 slots over an 8-leaf tree) must never win.
  ArrivalStreams streams(iota_indices(5), ArrivalSchedulerKind::kTournament);
  EXPECT_EQ(streams.earliest(), 5u);
  streams.arm(4, 1.0);  // the last real slot, adjacent to the sentinels
  EXPECT_EQ(streams.earliest(), 4u);
  streams.retire(4);
  EXPECT_EQ(streams.earliest(), 5u);
}

TEST(ArrivalSchedulerTest, RandomOpsMatchFlatOracleIncludingTies) {
  // The property the engine's determinism rides on: after every operation
  // of a random arm/retire schedule, tournament earliest() == flat
  // earliest(). Times are drawn from a SMALL integer set so equal-time
  // collisions (the seq tie-break path) occur constantly, and both
  // structures see the identical op sequence so their canonical streams
  // stay in lockstep.
  for (const std::size_t slots : {1u, 2u, 3u, 7u, 16u, 17u, 64u, 197u}) {
    ArrivalStreams oracle(iota_indices(slots), ArrivalSchedulerKind::kFlatScan);
    ArrivalStreams tree(iota_indices(slots), ArrivalSchedulerKind::kTournament);
    Rng rng(0xA771 + slots);
    std::vector<bool> pending(slots, false);
    for (int step = 0; step < 4'000; ++step) {
      const auto s = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(slots) - 1));
      if (pending[s] && rng.next_double() < 0.5) {
        oracle.retire(s);
        tree.retire(s);
        pending[s] = false;
      } else {
        const double t = static_cast<double>(rng.uniform_int(0, 31));
        oracle.arm(s, t);
        tree.arm(s, t);
        pending[s] = true;
      }
      const std::size_t expected = oracle.earliest();
      ASSERT_EQ(tree.earliest(), expected)
          << "slots=" << slots << " step=" << step;
      if (expected < slots) {
        ASSERT_EQ(tree.time(expected), oracle.time(expected));
        ASSERT_EQ(tree.seq(expected), oracle.seq(expected));
      }
    }
    for (std::size_t s = 0; s < slots; ++s) {
      EXPECT_EQ(tree.issued(s), oracle.issued(s)) << "slots=" << slots;
    }
  }
}

TEST(ArrivalSchedulerTest, DrainOrderMatchesFlatOracle) {
  // Pop-everything equivalence: repeatedly retiring the earliest slot must
  // walk both structures through the same total order.
  const std::size_t slots = 41;
  ArrivalStreams oracle(iota_indices(slots), ArrivalSchedulerKind::kFlatScan);
  ArrivalStreams tree(iota_indices(slots), ArrivalSchedulerKind::kTournament);
  Rng rng(99);
  for (std::size_t s = 0; s < slots; ++s) {
    const double t = static_cast<double>(rng.uniform_int(0, 7));  // dense ties
    oracle.arm(s, t);
    tree.arm(s, t);
  }
  for (std::size_t popped = 0; popped < slots; ++popped) {
    const std::size_t expected = oracle.earliest();
    ASSERT_LT(expected, slots);
    ASSERT_EQ(tree.earliest(), expected) << "pop " << popped;
    oracle.retire(expected);
    tree.retire(expected);
  }
  EXPECT_EQ(oracle.earliest(), slots);
  EXPECT_EQ(tree.earliest(), slots);
}

TEST(ArrivalSchedulerTest, ForcedSchedulersAreByteIdenticalEndToEnd) {
  // Engine-level differential: a faulted, sharded simulation forced
  // through the flat scan and through the tournament tree must agree on
  // every latency bit. (kAuto resolves per shard from the local service
  // count, so this also pins kAuto between the two forced runs.)
  const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 2000),
                                                   service(1, "vgg-19", 397, 1200),
                                                   service(2, "mobilenetv2", 167, 4000),
                                                   service(3, "bert-large", 400, 500)};
  core::ParvaGpuScheduler scheduler(builtin_profiles());
  const core::Deployment deployment = scheduler.schedule(services).value().deployment;
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  ClusterSimulation sim(deployment, services, perf);
  gpu::FaultPlan plan;
  plan.gpu_failures = {{600.0, 0, 79}};
  SimulationOptions opts;
  opts.duration_ms = 1'200.0;
  opts.warmup_ms = 300.0;
  opts.seed = 17;
  opts.fault_plan = &plan;
  opts.arrivals = ArrivalProcess::kPoisson;

  auto run_with = [&](ArrivalSchedulerKind kind, int shards) {
    SimulationOptions o = opts;
    o.arrival_scheduler = kind;
    o.shards = shards;
    return sim.run(o);
  };
  for (const int shards : {1, 3}) {
    const SimulationResult flat = run_with(ArrivalSchedulerKind::kFlatScan, shards);
    const SimulationResult tree = run_with(ArrivalSchedulerKind::kTournament, shards);
    const SimulationResult autop = run_with(ArrivalSchedulerKind::kAuto, shards);
    EXPECT_EQ(flat.events_processed, tree.events_processed) << "shards " << shards;
    EXPECT_EQ(flat.events_processed, autop.events_processed) << "shards " << shards;
    ASSERT_EQ(flat.services.size(), tree.services.size());
    for (std::size_t s = 0; s < flat.services.size(); ++s) {
      EXPECT_EQ(flat.services[s].requests, tree.services[s].requests);
      EXPECT_EQ(flat.services[s].shed_requests, tree.services[s].shed_requests);
      EXPECT_EQ(flat.services[s].request_latency_ms.values(),
                tree.services[s].request_latency_ms.values())
          << "service " << s << " shards " << shards;
      EXPECT_EQ(autop.services[s].request_latency_ms.values(),
                tree.services[s].request_latency_ms.values());
    }
  }
}

}  // namespace
}  // namespace parva::serving
