// Event-ordering determinism: the engine orders its heap by (time,
// sequence), so (a) identical runs are byte-identical down to each latency
// sample's bit pattern, and (b) equal-timestamp events that commute
// (failures of different devices, activations of different units) produce
// identical output no matter which order they were enqueued in.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/parvagpu.hpp"
#include "gpu/fault_plan.hpp"
#include "serving/cluster_sim.hpp"
#include "tests/core/test_support.hpp"

namespace parva::serving {
namespace {

using core::testing::builtin_profiles;
using core::testing::service;

/// Flattens a run into the exact bits it produced: every counter and every
/// latency sample in arrival order. Two runs are behaviorally identical
/// iff their fingerprints are equal.
std::vector<std::uint64_t> fingerprint(const SimulationResult& result) {
  std::vector<std::uint64_t> print = {result.events_processed, result.requests_shed,
                                      std::bit_cast<std::uint64_t>(result.internal_slack)};
  for (double activity : result.unit_activity) {
    print.push_back(std::bit_cast<std::uint64_t>(activity));
  }
  for (const ServiceOutcome& outcome : result.services) {
    print.push_back(outcome.requests);
    print.push_back(outcome.batches);
    print.push_back(outcome.violated_batches);
    print.push_back(outcome.shed_requests);
    for (double sample : outcome.request_latency_ms.values()) {
      print.push_back(std::bit_cast<std::uint64_t>(sample));
    }
  }
  return print;
}

class EventDeterminismTest : public ::testing::Test {
 protected:
  core::Deployment schedule(const std::vector<core::ServiceSpec>& services) {
    core::ParvaGpuScheduler scheduler(builtin_profiles());
    return scheduler.schedule(services).value().deployment;
  }

  SimulationOptions options(std::uint64_t seed = 42) {
    SimulationOptions opts;
    opts.duration_ms = 3'000.0;
    opts.warmup_ms = 300.0;
    opts.seed = seed;
    return opts;
  }

  std::vector<core::ServiceSpec> services_ = {service(0, "resnet-50", 205, 829),
                                              service(1, "vgg-19", 397, 354),
                                              service(2, "mobilenetv2", 167, 2000)};
  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
};

TEST_F(EventDeterminismTest, IdenticalRunsAreByteIdentical) {
  const core::Deployment deployment = schedule(services_);
  ClusterSimulation sim(deployment, services_, perf_);
  for (const ArrivalProcess arrivals : {ArrivalProcess::kDeterministic,
                                        ArrivalProcess::kPoisson}) {
    SimulationOptions opts = options(7);
    opts.arrivals = arrivals;
    EXPECT_EQ(fingerprint(sim.run(opts)), fingerprint(sim.run(opts)));
  }
}

TEST_F(EventDeterminismTest, EqualTimestampFailuresCommute) {
  // Rates high enough that the deployment spans several GPUs.
  const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 4000),
                                                   service(1, "vgg-19", 397, 1500),
                                                   service(2, "mobilenetv2", 167, 8000)};
  const core::Deployment deployment = schedule(services);
  ASSERT_GE(deployment.gpu_count, 2);
  // Two devices die at the same instant; the fault plan lists them in
  // opposite orders. Shedding different devices' units commutes, so the
  // runs must be byte-identical despite the different enqueue order.
  gpu::FaultPlan forward;
  forward.gpu_failures = {{1'000.0, 0, 79}, {1'000.0, 1, 79}};
  gpu::FaultPlan reversed;
  reversed.gpu_failures = {{1'000.0, 1, 79}, {1'000.0, 0, 79}};

  ClusterSimulation sim(deployment, services, perf_);
  SimulationOptions opts_forward = options(11);
  opts_forward.fault_plan = &forward;
  SimulationOptions opts_reversed = options(11);
  opts_reversed.fault_plan = &reversed;
  EXPECT_EQ(fingerprint(sim.run(opts_forward)), fingerprint(sim.run(opts_reversed)));
}

TEST_F(EventDeterminismTest, EqualTimestampActivationsCommute) {
  const core::Deployment deployment = schedule(services_);
  ASSERT_GE(deployment.units.size(), 2u);
  // Two dormant units wake at the same instant, listed in opposite orders.
  const UnitActivation a{0, 1'500.0};
  const UnitActivation b{1, 1'500.0};
  ClusterSimulation sim(deployment, services_, perf_);
  SimulationOptions opts_forward = options(13);
  opts_forward.activations = {a, b};
  SimulationOptions opts_reversed = options(13);
  opts_reversed.activations = {b, a};
  EXPECT_EQ(fingerprint(sim.run(opts_forward)), fingerprint(sim.run(opts_reversed)));
}

}  // namespace
}  // namespace parva::serving
