// The concurrent simulation driver must be invisible in the results: a
// parallel seed sweep returns exactly what a serial loop over the same
// seeds returns, in the same order.
#include "serving/sim_runner.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/parvagpu.hpp"
#include "tests/core/test_support.hpp"

namespace parva::serving {
namespace {

using core::testing::builtin_profiles;
using core::testing::service;

std::vector<std::uint64_t> fingerprint(const SimulationResult& result) {
  std::vector<std::uint64_t> print = {result.events_processed, result.requests_shed,
                                      std::bit_cast<std::uint64_t>(result.internal_slack)};
  for (const ServiceOutcome& outcome : result.services) {
    print.push_back(outcome.requests);
    print.push_back(outcome.batches);
    print.push_back(outcome.violated_batches);
    for (double sample : outcome.request_latency_ms.values()) {
      print.push_back(std::bit_cast<std::uint64_t>(sample));
    }
  }
  return print;
}

class SimRunnerTest : public ::testing::Test {
 protected:
  SimRunnerTest() {
    const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 829),
                                                     service(1, "inceptionv3", 419, 460)};
    services_ = services;
    core::ParvaGpuScheduler scheduler(builtin_profiles());
    deployment_ = scheduler.schedule(services).value().deployment;
    base_.duration_ms = 2'000.0;
    base_.warmup_ms = 200.0;
  }

  std::vector<core::ServiceSpec> services_;
  core::Deployment deployment_;
  SimulationOptions base_;
  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
  ThreadPool pool_{4};
};

TEST_F(SimRunnerTest, SeedSweepMatchesSerialLoop) {
  const std::vector<std::uint64_t> seeds = {11, 23, 47, 7, 99};
  const auto parallel = run_seeds(deployment_, services_, perf_, base_, seeds, pool_);
  ASSERT_EQ(parallel.size(), seeds.size());

  ClusterSimulation sim(deployment_, services_, perf_);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SimulationOptions options = base_;
    options.seed = seeds[i];
    EXPECT_EQ(fingerprint(parallel[i]), fingerprint(sim.run(options)))
        << "seed " << seeds[i];
  }
}

TEST_F(SimRunnerTest, JobListMatchesSerialLoop) {
  SimulationOptions poisson = base_;
  poisson.arrivals = ArrivalProcess::kPoisson;
  std::vector<SimulationJob> jobs;
  for (const SimulationOptions& options : {base_, poisson}) {
    SimulationJob job;
    job.deployment = &deployment_;
    job.services = services_;
    job.perf = &perf_;
    job.options = options;
    jobs.push_back(job);
  }
  const auto parallel = run_simulations(jobs, pool_);
  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ClusterSimulation sim(deployment_, services_, perf_);
    EXPECT_EQ(fingerprint(parallel[i]), fingerprint(sim.run(jobs[i].options)));
  }
}

TEST_F(SimRunnerTest, EmptySweepIsEmpty) {
  EXPECT_TRUE(run_seeds(deployment_, services_, perf_, base_, {}, pool_).empty());
  EXPECT_TRUE(run_simulations({}, pool_).empty());
}

}  // namespace
}  // namespace parva::serving
