#include "serving/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace parva::serving {
namespace {

TEST(RateTraceTest, FlatTraceIsConstant) {
  const RateTrace trace = RateTrace::flat(0.7);
  for (double t : {0.0, 6.0, 12.5, 23.99, 30.0, -5.0}) {
    EXPECT_DOUBLE_EQ(trace.multiplier_at(t), 0.7) << t;
  }
}

TEST(RateTraceTest, KnotsAreExact) {
  const RateTrace trace({{2.0, 0.5}, {10.0, 1.5}});
  EXPECT_DOUBLE_EQ(trace.multiplier_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(trace.multiplier_at(10.0), 1.5);
}

TEST(RateTraceTest, LinearInterpolationBetweenKnots) {
  const RateTrace trace({{0.0, 0.0}, {10.0, 1.0}});
  EXPECT_NEAR(trace.multiplier_at(5.0), 0.5, 1e-12);
  EXPECT_NEAR(trace.multiplier_at(2.5), 0.25, 1e-12);
}

TEST(RateTraceTest, WrapsAcrossMidnight) {
  const RateTrace trace({{6.0, 1.0}, {18.0, 0.0}});
  // Between 18:00 and 06:00 (+24) the value climbs back from 0 to 1.
  EXPECT_NEAR(trace.multiplier_at(0.0), 0.5, 1e-12);  // halfway 18->30
  EXPECT_NEAR(trace.multiplier_at(21.0), 0.25, 1e-12);
  EXPECT_NEAR(trace.multiplier_at(3.0), 0.75, 1e-12);
}

TEST(RateTraceTest, PeriodicBeyondOneDay) {
  const RateTrace trace = RateTrace::diurnal();
  EXPECT_DOUBLE_EQ(trace.multiplier_at(3.0), trace.multiplier_at(27.0));
  EXPECT_DOUBLE_EQ(trace.multiplier_at(21.0), trace.multiplier_at(45.0));
}

TEST(RateTraceTest, DiurnalShape) {
  const RateTrace trace = RateTrace::diurnal();
  // Night is quiet, evening peaks.
  EXPECT_LT(trace.multiplier_at(4.0), 0.5);
  EXPECT_GT(trace.multiplier_at(21.0), 1.2);
  EXPECT_DOUBLE_EQ(trace.peak(), 1.25);
  // Never negative, never absurd.
  for (double t = 0.0; t < 24.0; t += 0.25) {
    EXPECT_GE(trace.multiplier_at(t), 0.0);
    EXPECT_LE(trace.multiplier_at(t), 1.5);
  }
}

TEST(RateTraceTest, InterpolatesAcrossMidnightWrap) {
  const RateTrace trace = RateTrace::diurnal();
  // Between the last knot (23 h, 0.70) and the first of the next day
  // (24 h, 0.40): halfway through the wrap segment.
  EXPECT_NEAR(trace.multiplier_at(23.5), 0.55, 1e-12);
  // Endpoints of the wrap segment stay exact.
  EXPECT_NEAR(trace.multiplier_at(23.0), 0.70, 1e-12);
  EXPECT_NEAR(trace.multiplier_at(0.0), 0.40, 1e-12);
  // And an explicitly two-knot trace wraps on both sides of midnight: the
  // 18 h -> 6 h(+24) segment interpolates 3.0 down to 1.0 over 12 hours.
  const RateTrace pair({{6.0, 1.0}, {18.0, 3.0}});
  EXPECT_NEAR(pair.multiplier_at(0.0), 2.0, 1e-12);  // halfway through
  EXPECT_NEAR(pair.multiplier_at(23.0), 3.0 - 5.0 / 12.0 * 2.0, 1e-12);
  EXPECT_NEAR(pair.multiplier_at(1.0), 3.0 - 7.0 / 12.0 * 2.0, 1e-12);
}

TEST(RateTraceTest, SurgeWindow) {
  const RateTrace trace = RateTrace::surge(10.0, 12.0, 3.0);
  EXPECT_NEAR(trace.multiplier_at(11.0), 3.0, 1e-12);
  EXPECT_NEAR(trace.multiplier_at(5.0), 1.0, 1e-12);
  EXPECT_NEAR(trace.multiplier_at(20.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(trace.peak(), 3.0);
}

TEST(RateTraceTest, DuplicateKnotsCoalesceToLastSpecified) {
  const RateTrace trace({{5.0, 1.0}, {0.0, 0.5}, {5.0, 2.0}});
  ASSERT_EQ(trace.knots().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.multiplier_at(5.0), 2.0);
  EXPECT_DOUBLE_EQ(trace.multiplier_at(0.0), 0.5);
}

TEST(RateTraceTest, SurgeAtHourZeroKeepsTheSurgeKnot) {
  // surge(0, ...) emits the base knot and the surge knot both at t=0; the
  // surge factor (specified later) must win, and it must win regardless of
  // how the sort breaks the tie — this was order-dependent with a
  // non-stable sort and no deduplication.
  const RateTrace trace = RateTrace::surge(0.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(trace.multiplier_at(0.0), 3.0);
  EXPECT_DOUBLE_EQ(trace.multiplier_at(1.0), 3.0);
  // Back at base level right after the ramp-down knot (the tail of the day
  // then climbs toward the wrapped t=0 surge, which is correct wrapping).
  EXPECT_NEAR(trace.multiplier_at(2.25), 1.0, 1e-12);
  for (const auto& knot : trace.knots()) {
    // No duplicate times survive construction.
    EXPECT_EQ(std::count_if(trace.knots().begin(), trace.knots().end(),
                            [&](const TraceKnot& k) { return k.t_hours == knot.t_hours; }),
              1);
  }
}

TEST(RateTraceTest, FunctionIndependentOfKnotOrder) {
  const std::vector<TraceKnot> forward = {{2.0, 0.5}, {8.0, 1.5}, {20.0, 0.8}};
  std::vector<TraceKnot> reversed(forward.rbegin(), forward.rend());
  const RateTrace a(forward);
  const RateTrace b(std::move(reversed));
  for (double t = 0.0; t < 24.0; t += 0.5) {
    EXPECT_DOUBLE_EQ(a.multiplier_at(t), b.multiplier_at(t)) << t;
  }
}

TEST(RateTraceTest, InvalidKnotsRejected) {
  EXPECT_THROW(RateTrace({}), std::logic_error);
  EXPECT_THROW(RateTrace({{25.0, 1.0}}), std::logic_error);
  EXPECT_THROW(RateTrace({{1.0, -0.5}}), std::logic_error);
}

}  // namespace
}  // namespace parva::serving
