// Acceptance tests for the failure harness: a deterministic kill-1-of-N
// scenario must show the full degrade -> self-heal -> recover arc, and the
// whole pipeline (schedule, deploy, fault schedule, repair, simulation)
// must replay byte-for-byte from the same seeds.
#include <gtest/gtest.h>

#include <vector>

#include "core/parvagpu.hpp"
#include "core/repair.hpp"
#include "gpu/dcgm_sim.hpp"
#include "profiler/profiler.hpp"
#include "scenarios/scenarios.hpp"
#include "serving/cluster_sim.hpp"

namespace parva::serving {
namespace {

/// Everything one end-to-end run produces, flattened for equality checks.
struct RunOutcome {
  int victim = -1;
  double recovery_ms = 0.0;
  double recovered_at_ms = 0.0;
  int transient_retries = 0;
  SimulationResult result;

  /// The counters that must be bit-identical across replays.
  std::vector<std::uint64_t> fingerprint() const {
    std::vector<std::uint64_t> print = {static_cast<std::uint64_t>(victim),
                                        static_cast<std::uint64_t>(transient_retries),
                                        result.requests_shed,
                                        result.pre_failure.requests,
                                        result.pre_failure.violated_requests,
                                        result.degraded.requests,
                                        result.degraded.violated_requests,
                                        result.degraded.shed_requests,
                                        result.post_recovery.requests,
                                        result.post_recovery.violated_requests};
    for (const ServiceOutcome& service : result.services) {
      print.push_back(service.requests);
      print.push_back(service.batches);
      print.push_back(service.violated_batches);
      print.push_back(service.shed_requests);
    }
    for (const TimelineBucket& bucket : result.timeline) {
      print.push_back(static_cast<std::uint64_t>(bucket.batches));
      print.push_back(static_cast<std::uint64_t>(bucket.violated_batches));
      print.push_back(bucket.shed_requests);
    }
    return print;
  }
};

/// The bench flow as a function of seeds: schedule S2, deploy on a faulty
/// control plane, kill the busiest GPU at t=10 s, repair, simulate through
/// the failure with the replacements activating at recovery.
RunOutcome run_kill_one(std::uint64_t fault_seed, std::uint64_t sim_seed) {
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(perf);
  const auto profiles = profiler.profile_all(perfmodel::ModelCatalog::builtin().names());
  const auto& scenario = scenarios::scenario("S2");

  core::ParvaGpuScheduler scheduler(profiles);
  core::Deployment deployment = scheduler.schedule(scenario.services).value().deployment;
  for (auto& unit : deployment.units) {
    for (const auto& spec : scenario.services) {
      if (spec.id == unit.service_id) unit.model = spec.model;
    }
  }
  const core::Deployment healthy = deployment;

  constexpr double kFailAtMs = 10'000.0;
  std::vector<int> units_per_gpu(static_cast<std::size_t>(deployment.gpu_count), 0);
  for (const auto& unit : deployment.units) {
    ++units_per_gpu[static_cast<std::size_t>(unit.gpu_index)];
  }
  int victim = 0;
  for (std::size_t g = 0; g < units_per_gpu.size(); ++g) {
    if (units_per_gpu[g] > units_per_gpu[static_cast<std::size_t>(victim)]) {
      victim = static_cast<int>(g);
    }
  }

  gpu::FaultPlan fault_plan;
  fault_plan.seed = fault_seed;
  fault_plan.gpu_failures = {{kFailAtMs, victim, 79}};
  fault_plan.transient_create_failure_prob = 0.15;

  gpu::GpuCluster cluster(static_cast<std::size_t>(deployment.gpu_count));
  gpu::NvmlSim nvml(cluster);
  gpu::DcgmSim dcgm;
  gpu::FaultInjector injector(fault_plan);
  nvml.set_fault_injector(&injector);
  nvml.attach_health_monitor(&dcgm);
  core::Deployer deployer(nvml, perf);
  core::LiveUpdater updater(deployer);
  auto state = deployer.deploy(deployment).value();

  nvml.set_time_ms(kFailAtMs);
  EXPECT_EQ(nvml.fail_device(static_cast<unsigned>(victim)), gpu::NvmlReturn::kSuccess);

  core::RepairCoordinator repairer(deployer, updater);
  const auto repair = repairer.handle_gpu_loss(deployment, state, victim).value();

  RunOutcome outcome;
  outcome.victim = victim;
  outcome.recovery_ms = repair.recovery_ms;
  outcome.recovered_at_ms = kFailAtMs + repair.recovery_ms;
  outcome.transient_retries = deployer.total_stats().transient_retries;

  core::Deployment sim_deployment = healthy;
  SimulationOptions options;
  options.duration_ms = 28'000.0;
  options.warmup_ms = 2'000.0;
  options.seed = sim_seed;
  options.fault_plan = &fault_plan;
  options.recovered_at_ms = outcome.recovered_at_ms;
  options.timeline_bucket_ms = 2'000.0;
  for (const auto& unit : repair.replacements) {
    options.activations.push_back({sim_deployment.units.size(), outcome.recovered_at_ms});
    sim_deployment.units.push_back(unit);
  }
  sim_deployment.gpu_count = repair.deployment.gpu_count;

  ClusterSimulation sim(sim_deployment, scenario.services, perf);
  outcome.result = sim.run(options);
  return outcome;
}

TEST(FaultSimTest, KillOneGpuDegradesThenRecovers) {
  const RunOutcome outcome = run_kill_one(99, 7);
  const SimulationResult& result = outcome.result;

  // The failure and the recovery both land inside the measured window.
  EXPECT_DOUBLE_EQ(result.failure_at_ms, 10'000.0);
  EXPECT_GT(outcome.recovery_ms, 0.0);
  EXPECT_GT(result.recovered_at_ms, result.failure_at_ms);
  EXPECT_LT(result.recovered_at_ms, 28'000.0);

  // Shed traffic is the fingerprint of the outage: zero before, massive
  // during, zero after.
  EXPECT_GT(result.requests_shed, 0u);
  EXPECT_EQ(result.pre_failure.shed_requests, 0u);
  EXPECT_GT(result.degraded.shed_requests, 0u);

  // Every phase actually observed traffic.
  EXPECT_GT(result.pre_failure.requests, 0u);
  EXPECT_GT(result.post_recovery.requests, 0u);

  // Compliance: healthy before, degraded during, healed after (>= 0.99x of
  // the pre-failure level — the acceptance bar).
  const double pre = result.pre_failure.compliance();
  EXPECT_GT(pre, 0.95);
  EXPECT_LT(result.degraded.compliance(), pre);
  EXPECT_GE(result.post_recovery.compliance(), 0.99 * pre);

  // The bucketed series tells the same story: some bucket sheds, and the
  // final bucket is clean again.
  ASSERT_FALSE(result.timeline.empty());
  std::uint64_t timeline_shed = 0;
  for (const TimelineBucket& bucket : result.timeline) timeline_shed += bucket.shed_requests;
  EXPECT_EQ(timeline_shed, result.requests_shed);
  EXPECT_EQ(result.timeline.back().shed_requests, 0u);
  EXPECT_GT(result.timeline.back().compliance(), 0.95);

  // Transient create faults were live (p=0.15) and show in the metrics.
  EXPECT_GT(outcome.transient_retries, 0);
}

TEST(FaultSimTest, SameSeedsReplayByteForByte) {
  const RunOutcome first = run_kill_one(99, 7);
  const RunOutcome second = run_kill_one(99, 7);
  EXPECT_EQ(first.fingerprint(), second.fingerprint());
  EXPECT_DOUBLE_EQ(first.recovery_ms, second.recovery_ms);
  EXPECT_DOUBLE_EQ(first.result.recovered_at_ms, second.result.recovered_at_ms);
  ASSERT_EQ(first.result.services.size(), second.result.services.size());
  for (std::size_t i = 0; i < first.result.services.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.result.services[i].measured_rate,
                     second.result.services[i].measured_rate);
    EXPECT_DOUBLE_EQ(first.result.services[i].compliance(),
                     second.result.services[i].compliance());
  }

  // A different sim seed perturbs the arrivals: the run must not be
  // accidentally seed-independent.
  const RunOutcome other = run_kill_one(99, 8);
  EXPECT_NE(first.fingerprint(), other.fingerprint());
}

TEST(FaultSimTest, FaultSeedOnlyMovesRetryMetricsNotThePreFailureStory) {
  // Changing the FaultPlan seed re-rolls the transient-failure stream, so
  // retry counts and backoff (and with them the exact recovery instant) may
  // move — but the failure schedule, the victim, and everything the data
  // plane serves before the XID are untouched, and the arc still heals.
  const RunOutcome a = run_kill_one(99, 7);
  const RunOutcome b = run_kill_one(1234, 7);
  EXPECT_EQ(a.victim, b.victim);
  EXPECT_DOUBLE_EQ(a.result.failure_at_ms, b.result.failure_at_ms);
  EXPECT_EQ(a.result.pre_failure.requests, b.result.pre_failure.requests);
  EXPECT_EQ(a.result.pre_failure.violated_requests, b.result.pre_failure.violated_requests);
  EXPECT_GE(b.result.post_recovery.compliance(), 0.99 * b.result.pre_failure.compliance());
  EXPECT_GT(b.result.degraded.shed_requests, 0u);
}

}  // namespace
}  // namespace parva::serving
