#include "serving/cluster_sim.hpp"

#include <gtest/gtest.h>

#include "core/parvagpu.hpp"
#include "tests/core/test_support.hpp"

namespace parva::serving {
namespace {

using core::testing::builtin_profiles;
using core::testing::service;

class ClusterSimTest : public ::testing::Test {
 protected:
  core::Deployment schedule(const std::vector<core::ServiceSpec>& services) {
    core::ParvaGpuScheduler scheduler(builtin_profiles());
    return scheduler.schedule(services).value().deployment;
  }

  SimulationOptions fast_options(std::uint64_t seed = 42) {
    SimulationOptions options;
    options.duration_ms = 4'000.0;
    options.warmup_ms = 500.0;
    options.seed = seed;
    return options;
  }

  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
};

TEST_F(ClusterSimTest, WellProvisionedDeploymentIsCompliant) {
  const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 829),
                                                   service(1, "vgg-19", 397, 354)};
  const core::Deployment deployment = schedule(services);
  ClusterSimulation sim(deployment, services, perf_);
  const SimulationResult result = sim.run(fast_options());
  EXPECT_DOUBLE_EQ(result.overall_compliance(), 1.0);
  EXPECT_DOUBLE_EQ(result.worst_compliance(), 1.0);
}

TEST_F(ClusterSimTest, ThroughputMatchesOfferedRate) {
  const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 829)};
  const core::Deployment deployment = schedule(services);
  ClusterSimulation sim(deployment, services, perf_);
  const SimulationResult result = sim.run(fast_options());
  ASSERT_EQ(result.services.size(), 1u);
  EXPECT_NEAR(result.services[0].measured_rate, 829.0, 0.1 * 829.0);
}

TEST_F(ClusterSimTest, OverloadedDeploymentViolates) {
  // Offer twice the deployment's capacity: queues diverge, SLOs break.
  const std::vector<core::ServiceSpec> sized_for = {service(0, "resnet-50", 205, 800)};
  const core::Deployment deployment = schedule(sized_for);
  const std::vector<core::ServiceSpec> offered = {service(0, "resnet-50", 205, 2400)};
  ClusterSimulation sim(deployment, offered, perf_);
  const SimulationResult result = sim.run(fast_options());
  EXPECT_LT(result.overall_compliance(), 0.9);
}

TEST_F(ClusterSimTest, DeterministicForFixedSeed) {
  const std::vector<core::ServiceSpec> services = {service(0, "inceptionv3", 419, 460)};
  const core::Deployment deployment = schedule(services);
  ClusterSimulation sim(deployment, services, perf_);
  const SimulationResult a = sim.run(fast_options(7));
  const SimulationResult b = sim.run(fast_options(7));
  ASSERT_EQ(a.services[0].requests, b.services[0].requests);
  EXPECT_DOUBLE_EQ(a.services[0].request_latency_ms.mean(),
                   b.services[0].request_latency_ms.mean());
  EXPECT_DOUBLE_EQ(a.internal_slack, b.internal_slack);
}

TEST_F(ClusterSimTest, PoissonArrivalsAreBurstier) {
  const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 829)};
  const core::Deployment deployment = schedule(services);
  ClusterSimulation sim(deployment, services, perf_);
  SimulationOptions deterministic = fast_options();
  SimulationOptions poisson = fast_options();
  poisson.arrivals = ArrivalProcess::kPoisson;
  const auto paced = sim.run(deterministic);
  const auto bursty = sim.run(poisson);
  EXPECT_GT(bursty.services[0].request_latency_ms.p99(),
            paced.services[0].request_latency_ms.p99());
}

TEST_F(ClusterSimTest, LoadLevelShapesBatchingAndLatency) {
  // Adaptive batching: at low load batches stay small (fast, inefficient —
  // the per-request w0 cost is not amortised), under full load the queue
  // keeps batches full (efficient, but each request waits for a longer
  // kernel). Mean latency therefore RISES with load while the quiet
  // cluster still burns SM-time per request at a higher rate.
  const std::vector<core::ServiceSpec> sized_for = {service(0, "resnet-50", 205, 800)};
  const core::Deployment deployment = schedule(sized_for);
  const std::vector<core::ServiceSpec> tenth_load = {service(0, "resnet-50", 205, 80)};
  const std::vector<core::ServiceSpec> full_load = {service(0, "resnet-50", 205, 800)};
  ClusterSimulation quiet(deployment, tenth_load, perf_);
  ClusterSimulation busy(deployment, full_load, perf_);
  const auto quiet_result = quiet.run(fast_options());
  const auto busy_result = busy.run(fast_options());
  EXPECT_LT(quiet_result.services[0].request_latency_ms.mean(),
            busy_result.services[0].request_latency_ms.mean());
  // Ten times the load does NOT cost ten times the SM-time: batching
  // amortisation makes the busy cluster clearly more work-efficient per
  // request (>= ~1.5x for ResNet-50's w0/w1 ratio).
  const double quiet_activity = 1.0 - quiet_result.internal_slack;
  const double busy_activity = 1.0 - busy_result.internal_slack;
  EXPECT_LT(busy_activity, 10.0 * quiet_activity * 0.65);
  // Both remain compliant.
  EXPECT_DOUBLE_EQ(quiet_result.worst_compliance(), 1.0);
  EXPECT_DOUBLE_EQ(busy_result.worst_compliance(), 1.0);
}

TEST_F(ClusterSimTest, LatencyAboveServiceTimeBelowSlo) {
  const std::vector<core::ServiceSpec> services = {service(0, "vgg-16", 400, 410)};
  const core::Deployment deployment = schedule(services);
  ClusterSimulation sim(deployment, services, perf_);
  const SimulationResult result = sim.run(fast_options());
  const auto& latency = result.services[0].request_latency_ms;
  ASSERT_GT(latency.count(), 0u);
  EXPECT_GT(latency.mean(), 0.0);
  EXPECT_LE(latency.p99(), 400.0);
}

TEST_F(ClusterSimTest, MultiUnitServiceBalancesLoad) {
  const std::vector<core::ServiceSpec> services = {service(0, "mobilenetv2", 167, 7513)};
  const core::Deployment deployment = schedule(services);
  ASSERT_GT(deployment.units.size(), 1u);
  ClusterSimulation sim(deployment, services, perf_);
  const SimulationResult result = sim.run(fast_options());
  EXPECT_DOUBLE_EQ(result.overall_compliance(), 1.0);
  // Every unit carries some activity: the dispatcher spreads the load.
  for (double activity : result.unit_activity) {
    EXPECT_GT(activity, 0.0);
  }
}

TEST_F(ClusterSimTest, ZeroRateServiceProducesNoBatches) {
  const std::vector<core::ServiceSpec> sized_for = {service(0, "resnet-50", 205, 800)};
  const core::Deployment deployment = schedule(sized_for);
  const std::vector<core::ServiceSpec> idle = {service(0, "resnet-50", 205, 0)};
  ClusterSimulation sim(deployment, idle, perf_);
  const SimulationResult result = sim.run(fast_options());
  EXPECT_EQ(result.services[0].requests, 0u);
  EXPECT_DOUBLE_EQ(result.services[0].compliance(), 1.0);
  EXPECT_NEAR(result.internal_slack, 1.0, 1e-9);
}

TEST_F(ClusterSimTest, InvalidOptionsThrow) {
  const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 100)};
  const core::Deployment deployment = schedule(services);
  ClusterSimulation sim(deployment, services, perf_);
  SimulationOptions bad;
  bad.duration_ms = 0.0;
  EXPECT_THROW((void)sim.run(bad), std::logic_error);
}

}  // namespace
}  // namespace parva::serving
