// Nested-pool stress battery (runs under the tsan preset): sharded
// simulation jobs now execute their shard windows on the SAME pool that
// runs the sweep — run_simulations auto-assigns shard_pool = &pool when a
// job names none — so the fork-join nests. ThreadPool::parallel_for is
// cooperative (the caller claims indices from the shared cursor), which is
// what makes this safe: a sweep task blocked at a window barrier drives
// its own shards, so even a 1-worker pool saturated with sharded jobs
// makes progress. These tests pin both halves of the contract — no
// deadlock under oversubscription, and byte-identical outputs vs. the
// serial loop.
#include "serving/sim_runner.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/parvagpu.hpp"
#include "gpu/fault_plan.hpp"
#include "tests/core/test_support.hpp"

namespace parva::serving {
namespace {

using core::testing::builtin_profiles;
using core::testing::service;

std::vector<std::uint64_t> fingerprint(const SimulationResult& result) {
  std::vector<std::uint64_t> print = {result.events_processed, result.requests_shed,
                                      std::bit_cast<std::uint64_t>(result.internal_slack)};
  for (const ServiceOutcome& outcome : result.services) {
    print.push_back(outcome.requests);
    print.push_back(outcome.batches);
    print.push_back(outcome.violated_batches);
    print.push_back(outcome.shed_requests);
    for (double sample : outcome.request_latency_ms.values()) {
      print.push_back(std::bit_cast<std::uint64_t>(sample));
    }
  }
  return print;
}

class NestedPoolTest : public ::testing::Test {
 protected:
  NestedPoolTest() {
    services_ = {service(0, "resnet-50", 205, 2000), service(1, "vgg-19", 397, 1200),
                 service(2, "mobilenetv2", 167, 4000), service(3, "bert-large", 400, 500),
                 service(4, "inceptionv3", 419, 700)};
    core::ParvaGpuScheduler scheduler(builtin_profiles());
    deployment_ = scheduler.schedule(services_).value().deployment;
    base_.duration_ms = 1'000.0;
    base_.warmup_ms = 200.0;
    base_.arrivals = ArrivalProcess::kPoisson;
  }

  /// Serial ground truth for `options`: one engine, no pools anywhere.
  std::vector<std::uint64_t> serial_fingerprint(SimulationOptions options) {
    options.shards = 1;
    options.shard_pool = nullptr;
    ClusterSimulation sim(deployment_, services_, perf_);
    return fingerprint(sim.run(options));
  }

  std::vector<core::ServiceSpec> services_;
  core::Deployment deployment_;
  SimulationOptions base_;
  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
};

TEST_F(NestedPoolTest, ShardedSweepOnSharedPoolMatchesSerial) {
  // More sharded jobs than workers: every worker ends up inside a sweep
  // task when the shard-level parallel_for fans out, so all shard work is
  // claimed cooperatively or stolen — the exact regime the old
  // distinct-pool rule forbade.
  ThreadPool pool(2);
  const std::vector<std::uint64_t> seeds = {3, 14, 15, 92, 65, 35};
  SimulationOptions base = base_;
  base.shards = 4;  // no shard_pool: run_simulations shares `pool`
  const auto swept = run_seeds(deployment_, services_, perf_, base, seeds, pool);
  ASSERT_EQ(swept.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SimulationOptions options = base_;
    options.seed = seeds[i];
    EXPECT_EQ(fingerprint(swept[i]), serial_fingerprint(options)) << "seed " << seeds[i];
  }
}

TEST_F(NestedPoolTest, SingleWorkerPoolStillCompletes) {
  // The degenerate oversubscription: one worker, several sharded jobs. A
  // non-cooperative join would deadlock instantly (the lone worker would
  // block waiting for shard tasks nothing can run).
  ThreadPool pool(1);
  const std::vector<std::uint64_t> seeds = {1, 2, 3};
  SimulationOptions base = base_;
  base.shards = 3;
  const auto swept = run_seeds(deployment_, services_, perf_, base, seeds, pool);
  ASSERT_EQ(swept.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SimulationOptions options = base_;
    options.seed = seeds[i];
    EXPECT_EQ(fingerprint(swept[i]), serial_fingerprint(options)) << "seed " << seeds[i];
  }
}

TEST_F(NestedPoolTest, FaultedShardedJobsShareTheSweepPool) {
  // Faults force window barriers mid-run — the join point where a sweep
  // task parks inside a nested parallel_for. Mixed shard counts make the
  // nesting depth vary across concurrently running jobs.
  gpu::FaultPlan plan;
  plan.gpu_failures = {{400.0, 0, 79}};
  ThreadPool pool(3);
  std::vector<SimulationJob> jobs;
  for (const int shards : {1, 2, 4, 7}) {
    SimulationJob job;
    job.deployment = &deployment_;
    job.services = services_;
    job.perf = &perf_;
    job.options = base_;
    job.options.fault_plan = &plan;
    job.options.seed = 21;
    job.options.shards = shards;
    jobs.push_back(job);
  }
  const auto results = run_simulations(jobs, pool);
  ASSERT_EQ(results.size(), jobs.size());
  SimulationOptions serial_opts = base_;
  serial_opts.fault_plan = &plan;
  serial_opts.seed = 21;
  const std::vector<std::uint64_t> serial = serial_fingerprint(serial_opts);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(fingerprint(results[i]), serial)
        << "shards " << jobs[i].options.shards;
  }
  EXPECT_GT(results[0].requests_shed, 0u);  // the fault actually bites
}

TEST_F(NestedPoolTest, ExplicitShardPoolIsStillHonoured) {
  // A job that names its own shard pool keeps it — auto-sharing only fills
  // the nullptr default — and may even name the sweep pool explicitly.
  ThreadPool sweep_pool(2);
  ThreadPool dedicated(2);
  std::vector<SimulationJob> jobs(2);
  for (SimulationJob& job : jobs) {
    job.deployment = &deployment_;
    job.services = services_;
    job.perf = &perf_;
    job.options = base_;
    job.options.seed = 8;
    job.options.shards = 4;
  }
  jobs[0].options.shard_pool = &dedicated;
  jobs[1].options.shard_pool = &sweep_pool;  // explicit self-nesting
  const auto results = run_simulations(jobs, sweep_pool);
  SimulationOptions serial_opts = base_;
  serial_opts.seed = 8;
  const std::vector<std::uint64_t> serial = serial_fingerprint(serial_opts);
  EXPECT_EQ(fingerprint(results[0]), serial);
  EXPECT_EQ(fingerprint(results[1]), serial);
}

TEST_F(NestedPoolTest, RepeatedSweepsAreStable) {
  // Back-to-back sweeps on one pool (workers re-used, deques drained and
  // refilled) return identical bytes every time.
  ThreadPool pool(2);
  SimulationOptions base = base_;
  base.shards = 4;
  const std::vector<std::uint64_t> seeds = {5, 6};
  const auto first = run_seeds(deployment_, services_, perf_, base, seeds, pool);
  for (int round = 0; round < 3; ++round) {
    const auto again = run_seeds(deployment_, services_, perf_, base, seeds, pool);
    ASSERT_EQ(again.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(fingerprint(again[i]), fingerprint(first[i])) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace parva::serving
