#include "profiler/measured_profiler.hpp"

#include <gtest/gtest.h>

#include "core/parvagpu.hpp"
#include "scenarios/scenarios.hpp"

namespace parva::profiler {
namespace {

class MeasuredProfilerTest : public ::testing::Test {
 protected:
  MeasuredProfilerTest() : nvml_(cluster_), measured_(nvml_, perf_) {}

  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
  gpu::GpuCluster cluster_{1};
  gpu::NvmlSim nvml_{cluster_};
  MeasuredProfiler measured_;
};

TEST_F(MeasuredProfilerTest, CoversTheFullGrid) {
  const auto table = measured_.profile("resnet-50");
  ASSERT_TRUE(table.ok()) << table.error().to_string();
  EXPECT_EQ(table.value().size(), 5u * 8u * 3u);
}

TEST_F(MeasuredProfilerTest, CrossValidatesAgainstAnalyticalModel) {
  // The hardware-path measurement must agree with the analytical grid to
  // within the simulator's noise (sigma 3%, averaged over 32 batches:
  // standard error ~0.5%; we allow 3%).
  const auto measured = measured_.profile("inceptionv3").value();
  Profiler analytical(perf_);
  const auto expected = analytical.profile("inceptionv3");
  for (const ProfilePoint& point : measured.points()) {
    const ProfilePoint* reference = expected.find(point.gpcs, point.batch, point.procs);
    ASSERT_NE(reference, nullptr);
    ASSERT_EQ(point.oom, reference->oom)
        << "g=" << point.gpcs << " b=" << point.batch << " p=" << point.procs;
    if (point.oom) continue;
    EXPECT_NEAR(point.latency_ms, reference->latency_ms, 0.03 * reference->latency_ms);
    EXPECT_NEAR(point.throughput, reference->throughput, 0.03 * reference->throughput);
  }
}

TEST_F(MeasuredProfilerTest, OomSurfacesThroughTheControlPlane) {
  const auto table = measured_.profile("bert-large").value();
  // bert-large at batch 128 with 3 processes cannot fit a 1g.10gb instance.
  const ProfilePoint* point = table.find(1, 128, 3);
  ASSERT_NE(point, nullptr);
  EXPECT_TRUE(point->oom);
  // The control-plane log shows the failed launch.
  bool saw_oom = false;
  for (const auto& op : nvml_.operation_log()) {
    if (op.find("FAILED(out_of_memory") != std::string::npos) saw_oom = true;
  }
  EXPECT_TRUE(saw_oom);
}

TEST_F(MeasuredProfilerTest, LeavesTheDeviceIdle) {
  ASSERT_TRUE(measured_.profile("mobilenetv2").ok());
  EXPECT_TRUE(cluster_.gpu(0).empty());
  EXPECT_EQ(cluster_.total_allocated_gpcs(), 0);
}

TEST_F(MeasuredProfilerTest, BusyDeviceRejected) {
  ASSERT_TRUE(cluster_.gpu(0).create_instance(1).ok());
  const auto table = measured_.profile("resnet-50");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.error().code(), ErrorCode::kInvalidArgument);
  cluster_.gpu(0).reset();
}

TEST_F(MeasuredProfilerTest, UnknownModelRejected) {
  const auto table = measured_.profile("mystery");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.error().code(), ErrorCode::kNotFound);
}

TEST_F(MeasuredProfilerTest, DeterministicPerSeed) {
  const auto a = measured_.profile("resnet-50").value();
  MeasuredProfiler again(nvml_, perf_);
  const auto b = again.profile("resnet-50").value();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].throughput, b.points()[i].throughput);
  }
}

TEST_F(MeasuredProfilerTest, SchedulerOnMeasuredProfilesMatchesAnalytical) {
  // End-to-end: ParvaGPU built on hardware-measured profiles must produce
  // essentially the same fleets as on analytical profiles.
  const std::vector<std::string> models = {"resnet-50", "inceptionv3", "mobilenetv2",
                                           "vgg-19", "bert-large", "densenet-121"};
  const auto measured_set = measured_.profile_all(models).value();
  Profiler analytical(perf_);
  const auto analytical_set = analytical.profile_all(models);

  const auto& s1 = scenarios::scenario("S1");
  core::ParvaGpuScheduler on_measured(measured_set);
  core::ParvaGpuScheduler on_analytical(analytical_set);
  const auto a = on_measured.schedule(s1.services);
  const auto b = on_analytical.schedule(s1.services);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a.value().deployment.gpu_count, b.value().deployment.gpu_count, 1.0);
}

}  // namespace
}  // namespace parva::profiler
