#include "profiler/profile_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "profiler/profiler.hpp"

namespace parva::profiler {
namespace {

ProfileSet sample_set() {
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  Profiler profiler(perf);
  return profiler.profile_all({"resnet-50", "inceptionv3"});
}

TEST(ProfileStoreTest, RoundTripThroughCsv) {
  const ProfileSet original = sample_set();
  const std::string csv = to_csv(original);
  const auto restored = from_csv(csv);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored.value().size(), original.size());
  for (const auto& table : original.tables()) {
    const ProfileTable* loaded = restored.value().find(table.model());
    ASSERT_NE(loaded, nullptr);
    ASSERT_EQ(loaded->size(), table.size());
    for (std::size_t i = 0; i < table.size(); ++i) {
      const ProfilePoint& a = table.points()[i];
      const ProfilePoint& b = loaded->points()[i];
      EXPECT_EQ(a.gpcs, b.gpcs);
      EXPECT_EQ(a.batch, b.batch);
      EXPECT_EQ(a.procs, b.procs);
      EXPECT_EQ(a.oom, b.oom);
      EXPECT_NEAR(a.throughput, b.throughput, 1e-3);
      EXPECT_NEAR(a.latency_ms, b.latency_ms, 1e-3);
    }
  }
}

TEST(ProfileStoreTest, BadHeaderRejected) {
  const auto result = from_csv("wrong,header\n1,2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kInvalidArgument);
}

TEST(ProfileStoreTest, MalformedRowRejected) {
  std::string csv =
      "model,gpcs,batch,procs,oom,throughput,latency_ms,sm_occupancy,memory_gib\n"
      "resnet-50,1,2\n";
  EXPECT_FALSE(from_csv(csv).ok());
  csv =
      "model,gpcs,batch,procs,oom,throughput,latency_ms,sm_occupancy,memory_gib\n"
      "resnet-50,x,2,1,0,1.0,1.0,0.5,1.0\n";
  EXPECT_FALSE(from_csv(csv).ok());
}

TEST(ProfileStoreTest, EmptyBodyIsEmptySet) {
  const auto result = from_csv(
      "model,gpcs,batch,procs,oom,throughput,latency_ms,sm_occupancy,memory_gib\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 0u);
}

TEST(ProfileStoreTest, FileRoundTrip) {
  const ProfileSet original = sample_set();
  const std::string path =
      (std::filesystem::temp_directory_path() / "parva_profile_test.csv").string();
  ASSERT_TRUE(save_csv_file(original, path).ok());
  const auto restored = load_csv_file(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().size(), original.size());
  std::remove(path.c_str());
}

TEST(ProfileStoreTest, MissingFile) {
  const auto result = load_csv_file("/nonexistent/path/profiles.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace parva::profiler
