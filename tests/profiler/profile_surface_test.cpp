// Differential suite for the indexed profile surfaces: every query must be
// value-identical (bit-for-bit on the doubles) to the reference scan over
// the backing ProfileTable — the proof obligation of the planning fast
// path.
#include "profiler/profile_surface.hpp"

#include <gtest/gtest.h>

#include "profiler/profiler.hpp"

namespace parva::profiler {
namespace {

const ProfileSet& builtin_profiles() {
  static const ProfileSet profiles = [] {
    perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
    Profiler profiler(perf);
    return profiler.profile_all(perfmodel::ModelCatalog::builtin().names());
  }();
  return profiles;
}

const ProfileSurfaceSet& builtin_surfaces() {
  static const ProfileSurfaceSet surfaces{builtin_profiles()};
  return surfaces;
}

/// Exact (bit-level) equality of two profile points. EXPECT_EQ on doubles
/// is exact comparison, which is the point: the surface stores copies of
/// the table's points, not re-derived values.
void expect_same_point(const ProfilePoint* got, const ProfilePoint* want) {
  ASSERT_EQ(got == nullptr, want == nullptr);
  if (got == nullptr) return;
  EXPECT_EQ(got->model, want->model);
  EXPECT_EQ(got->gpcs, want->gpcs);
  EXPECT_EQ(got->batch, want->batch);
  EXPECT_EQ(got->procs, want->procs);
  EXPECT_EQ(got->oom, want->oom);
  EXPECT_EQ(got->throughput, want->throughput);
  EXPECT_EQ(got->latency_ms, want->latency_ms);
  EXPECT_EQ(got->sm_occupancy, want->sm_occupancy);
  EXPECT_EQ(got->memory_gib, want->memory_gib);
}

/// Reference scan: first-wins max-throughput over feasible points of one
/// instance size, with a process cap and a strict or inclusive latency
/// bound. This is the loop the surface's prefix-argmax replaces.
const ProfilePoint* reference_best(const ProfileTable& table, int gpcs, int procs_cap,
                                   double bound_ms, bool strict) {
  const ProfilePoint* best = nullptr;
  for (const ProfilePoint& point : table.points()) {
    if (point.oom || point.gpcs != gpcs || point.procs > procs_cap) continue;
    if (strict ? point.latency_ms >= bound_ms : point.latency_ms > bound_ms) continue;
    if (best == nullptr || point.throughput > best->throughput) best = &point;
  }
  return best;
}

TEST(ProfileSurfaceTest, IndexesEveryBuiltinModel) {
  const ProfileSet& profiles = builtin_profiles();
  const ProfileSurfaceSet& surfaces = builtin_surfaces();
  ASSERT_EQ(surfaces.size(), profiles.size());
  for (const ProfileTable& table : profiles.tables()) {
    const ProfileSurface* surface = surfaces.find(table.model());
    ASSERT_NE(surface, nullptr) << table.model();
    EXPECT_EQ(surface->size(), table.size());
    EXPECT_EQ(surface->model(), table.model());
  }
  EXPECT_EQ(surfaces.find("not-a-model"), nullptr);
}

TEST(ProfileSurfaceTest, FindMatchesTableOverFullGrid) {
  for (const ProfileTable& table : builtin_profiles().tables()) {
    const ProfileSurface* surface = builtin_surfaces().find(table.model());
    ASSERT_NE(surface, nullptr);
    // Every on-grid coordinate, including OOM points ...
    for (const ProfilePoint& point : table.points()) {
      expect_same_point(surface->find(point.gpcs, point.batch, point.procs),
                        table.find(point.gpcs, point.batch, point.procs));
    }
    // ... and off-grid coordinates miss on both.
    EXPECT_EQ(surface->find(5, 16, 1), table.find(5, 16, 1));
    EXPECT_EQ(surface->find(1, 3, 1), table.find(1, 3, 1));
    EXPECT_EQ(surface->find(1, 16, 4), table.find(1, 16, 4));
    EXPECT_EQ(surface->find(0, 0, 0), table.find(0, 0, 0));
  }
}

TEST(ProfileSurfaceTest, PointsMatchModelEvaluation) {
  // The surface doubles as the memoized form of evaluate_mig over the
  // profiling grid: every stored feasible point must be bit-identical to a
  // fresh model evaluation at that coordinate.
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  for (const ProfileSurface& surface : builtin_surfaces().surfaces()) {
    for (const ProfilePoint& point : surface.points()) {
      const auto result = perf.evaluate_mig(surface.model(), point.gpcs, point.batch,
                                            point.procs);
      if (point.oom) {
        EXPECT_FALSE(result.ok());
        continue;
      }
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(point.throughput, result.value().throughput);
      EXPECT_EQ(point.latency_ms, result.value().latency_ms);
      EXPECT_EQ(point.sm_occupancy, result.value().sm_occupancy);
      EXPECT_EQ(point.memory_gib, result.value().memory_gib);
    }
  }
}

TEST(ProfileSurfaceTest, BestBelowMatchesReferenceScan) {
  for (const ProfileTable& table : builtin_profiles().tables()) {
    const ProfileSurface* surface = builtin_surfaces().find(table.model());
    ASSERT_NE(surface, nullptr);
    for (int gpcs : surface->instance_sizes()) {
      for (int cap = 1; cap <= 3; ++cap) {
        // Bounds that straddle every decision boundary: each point's exact
        // latency (strictness matters there), just above it, and the
        // extremes.
        std::vector<double> bounds = {0.0, 1e9};
        for (const ProfilePoint& point : table.points()) {
          bounds.push_back(point.latency_ms);
          bounds.push_back(point.latency_ms * 1.0000001);
        }
        for (double bound : bounds) {
          expect_same_point(surface->best_below(gpcs, cap, bound),
                            reference_best(table, gpcs, cap, bound, /*strict=*/true));
        }
      }
    }
  }
}

TEST(ProfileSurfaceTest, BestAtMostMatchesTableBestForSize) {
  for (const ProfileTable& table : builtin_profiles().tables()) {
    const ProfileSurface* surface = builtin_surfaces().find(table.model());
    ASSERT_NE(surface, nullptr);
    for (int gpcs : surface->instance_sizes()) {
      std::vector<double> caps = {0.0, 1e9};
      for (const ProfilePoint& point : table.points()) caps.push_back(point.latency_ms);
      for (double cap : caps) {
        // best_for_size has no process cap, so compare at the full cap.
        const auto want = table.best_for_size(gpcs, cap);
        const ProfilePoint* got = surface->best_at_most(gpcs, 3, cap);
        ASSERT_EQ(got == nullptr, !want.has_value());
        if (got == nullptr) continue;
        expect_same_point(got, &*want);
      }
    }
  }
}

TEST(ProfileSurfaceTest, ThroughputTiesResolveToEarliestTableEntry) {
  // Synthetic table with deliberate throughput ties: a first-wins linear
  // scan keeps the earliest entry, and the surface must do the same.
  ProfileTable table("tie-model");
  auto point = [](int gpcs, int batch, int procs, double tput, double lat) {
    ProfilePoint p;
    p.model = "tie-model";
    p.gpcs = gpcs;
    p.batch = batch;
    p.procs = procs;
    p.throughput = tput;
    p.latency_ms = lat;
    return p;
  };
  table.add(point(2, 1, 1, 100.0, 5.0));
  table.add(point(2, 2, 1, 100.0, 4.0));  // same throughput, lower latency
  table.add(point(2, 4, 1, 100.0, 5.0));  // exact tie with the first entry
  table.add(point(2, 8, 1, 90.0, 1.0));
  const ProfileSurface surface(table);

  for (double bound : {2.0, 4.5, 5.5, 10.0}) {
    expect_same_point(surface.best_below(2, 1, bound),
                      reference_best(table, 2, 1, bound, /*strict=*/true));
  }
  // The tie at bound 10 must pick batch=1 (earliest), not batch=2 or 4.
  const ProfilePoint* best = surface.best_below(2, 1, 10.0);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->batch, 1);
}

}  // namespace
}  // namespace parva::profiler
