#include "profiler/profiler.hpp"

#include <gtest/gtest.h>

namespace parva::profiler {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
  Profiler profiler_{perf_};
};

TEST_F(ProfilerTest, GridDimensionsMatchPaper) {
  // Section III-C: |I|=5, |B|=8, P=3.
  EXPECT_EQ(profiler_.grid_points(), 5u * 8u * 3u);
  const ProfileTable table = profiler_.profile("inceptionv3");
  EXPECT_EQ(table.size(), 120u);
}

TEST_F(ProfilerTest, OomPointsRecordedNotSkipped) {
  const ProfileTable table = profiler_.profile("inceptionv3");
  const ProfilePoint* point = table.find(1, 128, 3);
  ASSERT_NE(point, nullptr);
  EXPECT_TRUE(point->oom);
  EXPECT_DOUBLE_EQ(point->throughput, 0.0);
}

TEST_F(ProfilerTest, FeasiblePointsMatchModel) {
  const ProfileTable table = profiler_.profile("resnet-50");
  const ProfilePoint* point = table.find(2, 16, 2);
  ASSERT_NE(point, nullptr);
  ASSERT_FALSE(point->oom);
  const auto expected = perf_.evaluate_mig("resnet-50", 2, 16, 2).value();
  EXPECT_DOUBLE_EQ(point->throughput, expected.throughput);
  EXPECT_DOUBLE_EQ(point->latency_ms, expected.latency_ms);
}

TEST_F(ProfilerTest, BestForSizeRespectsLatencyCap) {
  const ProfileTable table = profiler_.profile("vgg-19");
  const auto strict = table.best_for_size(1, 50.0);
  const auto loose = table.best_for_size(1, 500.0);
  ASSERT_TRUE(loose.has_value());
  if (strict.has_value()) {
    EXPECT_LE(strict->latency_ms, 50.0);
    EXPECT_LE(strict->throughput, loose->throughput);
  }
  const auto impossible = table.best_for_size(1, 0.001);
  EXPECT_FALSE(impossible.has_value());
}

TEST_F(ProfilerTest, BestOverallDominatesPerSize) {
  const ProfileTable table = profiler_.profile("mobilenetv2");
  const auto overall = table.best_overall(100.0);
  ASSERT_TRUE(overall.has_value());
  for (int g : {1, 2, 3, 4, 7}) {
    const auto per_size = table.best_for_size(g, 100.0);
    if (per_size.has_value()) {
      EXPECT_LE(per_size->throughput, overall->throughput + 1e-9);
    }
  }
}

TEST_F(ProfilerTest, ProfileAllCoversCatalog) {
  const auto names = perfmodel::ModelCatalog::builtin().names();
  const ProfileSet set = profiler_.profile_all(names);
  EXPECT_EQ(set.size(), names.size());
  for (const auto& name : names) {
    ASSERT_NE(set.find(name), nullptr) << name;
  }
  EXPECT_EQ(set.find("nope"), nullptr);
}

TEST_F(ProfilerTest, ParallelProfileMatchesSerial) {
  const auto names = perfmodel::ModelCatalog::builtin().names();
  ThreadPool pool(4);
  const ProfileSet parallel = profiler_.profile_all(names, pool);
  const ProfileSet serial = profiler_.profile_all(names);
  ASSERT_EQ(parallel.size(), serial.size());
  for (const auto& name : names) {
    const ProfileTable* a = parallel.find(name);
    const ProfileTable* b = serial.find(name);
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
      EXPECT_DOUBLE_EQ(a->points()[i].throughput, b->points()[i].throughput);
    }
  }
}

TEST_F(ProfilerTest, CustomGridOptions) {
  ProfilerOptions options;
  options.batch_sizes = {4, 16};
  options.max_processes = 2;
  options.instance_sizes = {1, 7};
  Profiler custom(perf_, options);
  EXPECT_EQ(custom.grid_points(), 2u * 2u * 2u);
  const ProfileTable table = custom.profile("resnet-50");
  EXPECT_EQ(table.size(), 8u);
  EXPECT_EQ(table.find(2, 4, 1), nullptr);  // size 2 not profiled
}

}  // namespace
}  // namespace parva::profiler
