// Pins the constexpr geometry tables to the runtime tables they replaced.
//
// kProfileTable / kPlacementTable used to live as switch statements and
// start-slot arrays inside mig_geometry.cpp; this test restates those
// original tables verbatim and asserts the constexpr replacements are
// element-for-element identical, so a table edit can never silently change
// the geometry. It then sweeps the full (profile x start_slot) domain —
// including out-of-range sizes and slots — and checks is_legal_placement
// agrees everywhere with the same invariants the header's static_asserts
// prove about the tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gpu/arch.hpp"
#include "gpu/mig_geometry.hpp"

namespace parva::gpu {
namespace {

/// The pre-constexpr runtime tables, restated verbatim from the old
/// mig_geometry.cpp. parva-audit: allow(R8) reference copy for the pin test.
struct LegacyTables {
  std::vector<int> starts1{0, 1, 2, 3, 4, 5, 6};  // parva-audit: allow(R8)
  std::vector<int> starts2{0, 2, 4};              // parva-audit: allow(R8)
  std::vector<int> starts3{0, 4};                 // parva-audit: allow(R8)
  std::vector<int> starts4{0};                    // parva-audit: allow(R8)
  std::vector<int> starts7{0};                    // parva-audit: allow(R8)
  std::vector<int> pref1{0, 1, 2, 3, 4, 5, 6};    // parva-audit: allow(R8)
  std::vector<int> pref2{0, 2, 4};                // parva-audit: allow(R8)
  std::vector<int> pref3{4};                      // parva-audit: allow(R8)

  const std::vector<int>& legal(int gpcs) const {
    static const std::vector<int> kEmpty;
    switch (gpcs) {
      case 1: return starts1;
      case 2: return starts2;
      case 3: return starts3;
      case 4: return starts4;
      case 7: return starts7;
      default: return kEmpty;
    }
  }
  const std::vector<int>& preferred(int gpcs) const {
    static const std::vector<int> kEmpty;
    switch (gpcs) {
      case 1: return pref1;
      case 2: return pref2;
      case 3: return pref3;
      case 4: return starts4;
      case 7: return starts7;
      default: return kEmpty;
    }
  }
};

TEST(MigGeometryTables, ProfileTableMatchesPaperFigure1Legend) {
  ASSERT_EQ(kProfileTable.size(), 5u);
  // (gpcs, memory slices, memory GiB, placements): 1g.10gb .. 7g.80gb.
  const std::vector<std::tuple<int, int, double, int>> expected = {
      {1, 1, 10.0, 7}, {2, 2, 20.0, 3}, {3, 4, 40.0, 2}, {4, 4, 40.0, 1}, {7, 8, 80.0, 1}};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(kProfileTable[i].gpcs, std::get<0>(expected[i])) << "row " << i;
    EXPECT_EQ(kProfileTable[i].memory_slices, std::get<1>(expected[i])) << "row " << i;
    EXPECT_EQ(kProfileTable[i].memory_gib, std::get<2>(expected[i])) << "row " << i;
    EXPECT_EQ(kProfileTable[i].placement_count, std::get<3>(expected[i])) << "row " << i;
    EXPECT_EQ(kProfileTable[i].memory_gib, instance_memory_gib(kProfileTable[i].gpcs));
  }
}

TEST(MigGeometryTables, PlacementTableMatchesLegacyStartSlots) {
  const LegacyTables legacy;
  ASSERT_EQ(kPlacementTable.size(), 14u);
  // Element-for-element: the table lists each profile's legacy start slots
  // in the legacy order, with the legacy span rule.
  std::size_t row = 0;
  for (int gpcs : kInstanceSizes) {
    for (int start : legacy.legal(gpcs)) {
      ASSERT_LT(row, kPlacementTable.size());
      const PlacementSpec& spec = kPlacementTable[row++];
      EXPECT_EQ(spec.gpcs, gpcs);
      EXPECT_EQ(spec.start_slot, start);
      const int span = (gpcs == 3 && start == 0) ? 4 : gpcs;
      EXPECT_EQ(spec.span, span);
      EXPECT_EQ(spec.slot_mask, static_cast<std::uint8_t>(((1u << span) - 1u) << start));
    }
  }
  EXPECT_EQ(row, kPlacementTable.size());
}

TEST(MigGeometryTables, StartSlotSpansMatchLegacyTables) {
  const LegacyTables legacy;
  for (int gpcs = -2; gpcs <= 9; ++gpcs) {
    const auto legal = legal_start_slots(gpcs);
    const auto& expect_legal = legacy.legal(gpcs);
    ASSERT_EQ(legal.size(), expect_legal.size()) << "gpcs=" << gpcs;
    EXPECT_TRUE(std::equal(legal.begin(), legal.end(), expect_legal.begin()))
        << "gpcs=" << gpcs;

    const auto preferred = preferred_start_slots(gpcs);
    const auto& expect_pref = legacy.preferred(gpcs);
    ASSERT_EQ(preferred.size(), expect_pref.size()) << "gpcs=" << gpcs;
    EXPECT_TRUE(std::equal(preferred.begin(), preferred.end(), expect_pref.begin()))
        << "gpcs=" << gpcs;
  }
}

TEST(MigGeometryTables, IsLegalPlacementAgreesWithInvariantsOverFullDomain) {
  for (int gpcs = -2; gpcs <= 9; ++gpcs) {
    for (int start = -2; start <= 9; ++start) {
      const Placement placement{gpcs, start};
      const bool legal = is_legal_placement(placement);

      // Reference decision from the start-slot views.
      const auto starts = legal_start_slots(gpcs);
      const bool expected =
          std::find(starts.begin(), starts.end(), start) != starts.end();
      EXPECT_EQ(legal, expected) << "gpcs=" << gpcs << " start=" << start;

      if (!legal) continue;
      // Every accepted placement satisfies the static_asserted invariants.
      EXPECT_TRUE(is_valid_instance_size(gpcs));
      EXPECT_GE(start, 0);
      EXPECT_LE(start + placement.span(), kGpcSlots);
      EXPECT_EQ(placement.span(), (gpcs == 3 && start == 0) ? 4 : gpcs);
      // ... and appears exactly once in kPlacementTable.
      int rows = 0;
      for (const PlacementSpec& spec : kPlacementTable) {
        if (spec.gpcs == gpcs && spec.start_slot == start) {
          ++rows;
          EXPECT_EQ(spec.slot_mask, placement.slot_mask());
        }
      }
      EXPECT_EQ(rows, 1);
    }
  }
}

TEST(MigGeometryTables, FindStartSlotIsConstexprAndTableDriven) {
  // Spot-check the constexpr path at compile time.
  static_assert(find_start_slot(0, 7) == 0);
  static_assert(find_start_slot(0x01, 7) == std::nullopt);
  static_assert(find_start_slot(0x0f, 3) == 4);
  static_assert(find_start_slot(0, 2) == 0);
  static_assert(find_start_slot(0x03, 2) == 2);
  static_assert(find_profile(3)->memory_slices == 4);
  static_assert(find_profile(5) == nullptr);

  // Runtime agreement with the preference tables over every mask.
  for (int mask = 0; mask <= 0x7f; ++mask) {
    for (int gpcs : kInstanceSizes) {
      const auto found = find_start_slot(static_cast<std::uint8_t>(mask), gpcs);
      std::optional<int> expected;
      for (int start : preferred_start_slots(gpcs)) {
        const Placement candidate{gpcs, start};
        if (candidate.start_slot + candidate.span() > kGpcSlots) continue;
        if ((mask & candidate.slot_mask()) == 0) {
          expected = start;
          break;
        }
      }
      EXPECT_EQ(found, expected) << "mask=" << mask << " gpcs=" << gpcs;
    }
  }
}

}  // namespace
}  // namespace parva::gpu
