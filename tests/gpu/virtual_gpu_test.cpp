#include "gpu/virtual_gpu.hpp"

#include <gtest/gtest.h>

namespace parva::gpu {
namespace {

TEST(VirtualGpuTest, CreateAndDestroy) {
  VirtualGpu gpu(0);
  auto handle = gpu.create_instance(4);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(gpu.allocated_gpcs(), 4);
  EXPECT_EQ(gpu.instance_count(), 1u);
  ASSERT_TRUE(gpu.destroy_instance(handle.value()).ok());
  EXPECT_TRUE(gpu.empty());
  EXPECT_EQ(gpu.occupied_mask(), 0);
}

TEST(VirtualGpuTest, InvalidSizeRejected) {
  VirtualGpu gpu(0);
  const auto result = gpu.create_instance(5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kInvalidArgument);
}

TEST(VirtualGpuTest, OverlapRejected) {
  VirtualGpu gpu(0);
  ASSERT_TRUE(gpu.create_instance_at(4, 0).ok());
  const auto overlap = gpu.create_instance_at(2, 2);
  ASSERT_FALSE(overlap.ok());
  EXPECT_EQ(overlap.error().code(), ErrorCode::kUnsupported);
}

TEST(VirtualGpuTest, SevenGpcInstanceFillsGpu) {
  VirtualGpu gpu(0);
  ASSERT_TRUE(gpu.create_instance(7).ok());
  EXPECT_FALSE(gpu.can_fit(1));
  EXPECT_EQ(gpu.free_slots(), 0);
}

TEST(VirtualGpuTest, MaximalPackingFourThree) {
  VirtualGpu gpu(0);
  ASSERT_TRUE(gpu.create_instance(4).ok());
  ASSERT_TRUE(gpu.create_instance(3).ok());  // lands at slot 4
  EXPECT_EQ(gpu.allocated_gpcs(), 7);
  EXPECT_FALSE(gpu.can_fit(1));
}

TEST(VirtualGpuTest, DestroyUnknownHandle) {
  VirtualGpu gpu(0);
  const auto status = gpu.destroy_instance(99);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kNotFound);
}

TEST(VirtualGpuTest, MemoryGrantPerProfile) {
  VirtualGpu gpu(0);
  const auto h1 = gpu.create_instance(1);
  const auto h3 = gpu.create_instance(3);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h3.ok());
  EXPECT_DOUBLE_EQ(gpu.find_instance(h1.value())->memory_gib, 10.0);
  EXPECT_DOUBLE_EQ(gpu.find_instance(h3.value())->memory_gib, 40.0);
}

TEST(VirtualGpuTest, AttachProcessWithinMemory) {
  VirtualGpu gpu(0);
  const auto handle = gpu.create_instance(1).value();  // 10 GiB grant
  MpsProcess process{"resnet-50", 32, 4.0};
  ASSERT_TRUE(gpu.attach_process(handle, process).ok());
  EXPECT_DOUBLE_EQ(gpu.find_instance(handle)->memory_used_gib, 4.0);
}

TEST(VirtualGpuTest, SecondProcessRequiresMps) {
  VirtualGpu gpu(0);
  const auto handle = gpu.create_instance(2).value();
  MpsProcess process{"resnet-50", 8, 2.0};
  ASSERT_TRUE(gpu.attach_process(handle, process).ok());
  const auto second = gpu.attach_process(handle, process);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code(), ErrorCode::kUnsupported);
  ASSERT_TRUE(gpu.enable_mps(handle).ok());
  EXPECT_TRUE(gpu.attach_process(handle, process).ok());
}

TEST(VirtualGpuTest, OutOfMemoryRejected) {
  VirtualGpu gpu(0);
  const auto handle = gpu.create_instance(1).value();  // 10 GiB
  ASSERT_TRUE(gpu.enable_mps(handle).ok());
  ASSERT_TRUE(gpu.attach_process(handle, {"m", 64, 6.0}).ok());
  const auto status = gpu.attach_process(handle, {"m", 64, 6.0});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kOutOfMemory);
}

TEST(VirtualGpuTest, HeterogeneousModelsRejected) {
  VirtualGpu gpu(0);
  const auto handle = gpu.create_instance(2).value();
  ASSERT_TRUE(gpu.enable_mps(handle).ok());
  ASSERT_TRUE(gpu.attach_process(handle, {"resnet-50", 8, 2.0}).ok());
  const auto status = gpu.attach_process(handle, {"vgg-16", 8, 2.0});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kInvalidArgument);
}

TEST(VirtualGpuTest, DetachAllFreesMemory) {
  VirtualGpu gpu(0);
  const auto handle = gpu.create_instance(1).value();
  ASSERT_TRUE(gpu.attach_process(handle, {"m", 1, 3.0}).ok());
  ASSERT_TRUE(gpu.detach_all_processes(handle).ok());
  EXPECT_DOUBLE_EQ(gpu.find_instance(handle)->memory_used_gib, 0.0);
  EXPECT_TRUE(gpu.find_instance(handle)->processes.empty());
}

TEST(VirtualGpuTest, ResetClearsEverything) {
  VirtualGpu gpu(3);
  ASSERT_TRUE(gpu.create_instance(4).ok());
  ASSERT_TRUE(gpu.create_instance(2).ok());
  gpu.reset();
  EXPECT_TRUE(gpu.empty());
  EXPECT_TRUE(gpu.can_fit(7));
}

TEST(VirtualGpuTest, SevenSingleGpcInstances) {
  VirtualGpu gpu(0);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(gpu.create_instance(1).ok()) << "instance " << i;
  }
  EXPECT_EQ(gpu.allocated_gpcs(), 7);
  EXPECT_FALSE(gpu.can_fit(1));
  const auto failed = gpu.create_instance(1);
  EXPECT_FALSE(failed.ok());
}

TEST(VirtualGpuTest, ToStringMentionsLayout) {
  VirtualGpu gpu(0);
  const auto handle = gpu.create_instance(2).value();
  ASSERT_TRUE(gpu.attach_process(handle, {"resnet-50", 8, 2.0}).ok());
  const std::string text = gpu.to_string();
  EXPECT_NE(text.find("GPU0"), std::string::npos);
  EXPECT_NE(text.find("resnet-50"), std::string::npos);
}

}  // namespace
}  // namespace parva::gpu
