#include "gpu/mig_geometry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace parva::gpu {
namespace {

TEST(MigGeometryTest, LegalStartSlotsPerSize) {
  EXPECT_EQ(std::vector<int>(legal_start_slots(7).begin(), legal_start_slots(7).end()),
            (std::vector<int>{0}));
  EXPECT_EQ(std::vector<int>(legal_start_slots(4).begin(), legal_start_slots(4).end()),
            (std::vector<int>{0}));
  EXPECT_EQ(std::vector<int>(legal_start_slots(3).begin(), legal_start_slots(3).end()),
            (std::vector<int>{0, 4}));
  EXPECT_EQ(std::vector<int>(legal_start_slots(2).begin(), legal_start_slots(2).end()),
            (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(legal_start_slots(1).size(), 7u);
  EXPECT_TRUE(legal_start_slots(5).empty());  // 5-GPC instances do not exist
  EXPECT_TRUE(legal_start_slots(6).empty());
}

TEST(MigGeometryTest, ThreeGpcAtSlotZeroBlocksFourSlots) {
  const Placement at0{3, 0};
  EXPECT_EQ(at0.span(), 4);
  EXPECT_EQ(at0.slot_mask(), 0b0001111);
  const Placement at4{3, 4};
  EXPECT_EQ(at4.span(), 3);
  EXPECT_EQ(at4.slot_mask(), 0b1110000);
}

TEST(MigGeometryTest, IllegalPlacementsRejected) {
  EXPECT_FALSE(is_legal_placement({4, 1}));   // 4g only at slot 0
  EXPECT_FALSE(is_legal_placement({2, 1}));   // 2g only at even slots 0/2/4
  EXPECT_FALSE(is_legal_placement({2, 6}));   // would exceed slot 6
  EXPECT_FALSE(is_legal_placement({5, 0}));   // size does not exist
  EXPECT_TRUE(is_legal_placement({1, 6}));
  EXPECT_TRUE(is_legal_placement({3, 4}));
}

// === The Figure 1 property: exactly 19 maximal configurations. ===
TEST(MigGeometryTest, ExactlyNineteenMaximalConfigs) {
  const auto configs = enumerate_maximal_configs();
  EXPECT_EQ(configs.size(), 19u);
  for (const GpuConfig& config : configs) {
    EXPECT_TRUE(config.valid()) << config.to_string();
    EXPECT_TRUE(config.maximal()) << config.to_string();
  }
}

TEST(MigGeometryTest, MaximalConfigsIncludeTheCanonicalOnes) {
  const auto configs = enumerate_maximal_configs();
  auto contains = [&](std::multiset<int> sizes) {
    return std::any_of(configs.begin(), configs.end(), [&](const GpuConfig& config) {
      std::multiset<int> have;
      for (const auto& p : config.placements) have.insert(p.gpcs);
      return have == sizes;
    });
  };
  EXPECT_TRUE(contains({7}));
  EXPECT_TRUE(contains({4, 3}));
  EXPECT_TRUE(contains({4, 2, 1}));
  EXPECT_TRUE(contains({4, 1, 1, 1}));
  EXPECT_TRUE(contains({3, 3}));
  EXPECT_TRUE(contains({2, 2, 3}));
  EXPECT_TRUE(contains({1, 1, 1, 1, 1, 1, 1}));
  EXPECT_FALSE(contains({5}));     // nonexistent profile
  EXPECT_FALSE(contains({4, 4}));  // two 4g instances cannot coexist
}

TEST(MigGeometryTest, MaximalConfigsAllocateSixOrSevenGpcs) {
  // Only configurations containing a 3g instance in the left block lose a
  // GPC (configs 5-7 of Figure 1); all others allocate all 7.
  for (const GpuConfig& config : enumerate_maximal_configs()) {
    const int gpcs = config.total_gpcs();
    EXPECT_GE(gpcs, 6) << config.to_string();
    EXPECT_LE(gpcs, 7) << config.to_string();
    const bool has_3_at_0 = std::any_of(
        config.placements.begin(), config.placements.end(),
        [](const Placement& p) { return p.gpcs == 3 && p.start_slot == 0; });
    EXPECT_EQ(gpcs == 6, has_3_at_0) << config.to_string();
  }
}

TEST(MigGeometryTest, AllConfigsAreValidAndDistinct) {
  const auto configs = enumerate_all_configs();
  EXPECT_GT(configs.size(), 19u);
  std::set<std::string> seen;
  for (const GpuConfig& config : configs) {
    EXPECT_TRUE(config.valid()) << config.to_string();
    EXPECT_TRUE(seen.insert(config.to_string()).second) << "duplicate " << config.to_string();
  }
}

TEST(MigGeometryTest, FindStartSlotHonoursPreferences) {
  // Empty GPU: size 3 must go to slot 4 (slot 0 would block slot 3).
  EXPECT_EQ(find_start_slot(0, 3), 4);
  // Size 2 prefers the left block.
  EXPECT_EQ(find_start_slot(0, 2), 0);
  // With slots 0-1 taken, size 2 goes to 2.
  EXPECT_EQ(find_start_slot(0b0000011, 2), 2);
  // Size 1 fills the left block first.
  EXPECT_EQ(find_start_slot(0b0000001, 1), 1);
  // Full GPU: nothing fits.
  EXPECT_FALSE(find_start_slot(0b1111111, 1).has_value());
}

TEST(MigGeometryTest, AllocatorDeclinesThreeAtSlotZero) {
  // Slot 4 occupied: the preference rules refuse 3@0 (Section III-E1),
  // leaving the GPU to Allocation Optimization instead.
  EXPECT_FALSE(find_start_slot(0b1110000, 3).has_value());
}

// Property sweep: every (size, legal start) pair produces a placement whose
// mask stays inside the 7 slots and covers span() bits.
class PlacementProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlacementProperty, MaskMatchesSpan) {
  const int gpcs = GetParam();
  for (int start : legal_start_slots(gpcs)) {
    const Placement p{gpcs, start};
    ASSERT_TRUE(is_legal_placement(p));
    EXPECT_LT(p.slot_mask(), 1u << kGpcSlots);
    int bits = 0;
    for (int slot = 0; slot < kGpcSlots; ++slot) bits += (p.slot_mask() >> slot) & 1;
    EXPECT_EQ(bits, p.span());
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, PlacementProperty, ::testing::Values(1, 2, 3, 4, 7));

}  // namespace
}  // namespace parva::gpu
