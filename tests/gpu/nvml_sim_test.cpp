#include "gpu/nvml_sim.hpp"

#include <gtest/gtest.h>

namespace parva::gpu {
namespace {

class NvmlSimTest : public ::testing::Test {
 protected:
  GpuCluster cluster_{2};
  NvmlSim nvml_{cluster_};
};

TEST_F(NvmlSimTest, SupportedProfilesMatchA100) {
  const auto profiles = NvmlSim::supported_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].name, "1g.10gb");
  EXPECT_EQ(profiles[1].name, "2g.20gb");
  EXPECT_EQ(profiles[2].name, "3g.40gb");
  EXPECT_EQ(profiles[3].name, "4g.40gb");
  EXPECT_EQ(profiles[4].name, "7g.80gb");
}

TEST_F(NvmlSimTest, ProfilePlacements) {
  const auto placements = NvmlSim::profile_placements(3);
  ASSERT_EQ(placements.size(), 2u);
  EXPECT_EQ(placements[0].start, 0);
  EXPECT_EQ(placements[0].size, 4);  // 3g at 0 spans 4 slots
  EXPECT_EQ(placements[1].start, 4);
  EXPECT_EQ(placements[1].size, 3);
}

TEST_F(NvmlSimTest, CreateDestroyRoundTrip) {
  GlobalInstanceId id;
  ASSERT_EQ(nvml_.create_gpu_instance(0, 4, &id), NvmlReturn::kSuccess);
  EXPECT_EQ(id.gpu, 0);
  ASSERT_EQ(nvml_.destroy_gpu_instance(id), NvmlReturn::kSuccess);
  EXPECT_EQ(nvml_.destroy_gpu_instance(id), NvmlReturn::kErrorNotFound);
}

TEST_F(NvmlSimTest, ExplicitPlacement) {
  GlobalInstanceId id;
  ASSERT_EQ(nvml_.create_gpu_instance_with_placement(1, 3, 4, &id), NvmlReturn::kSuccess);
  const MigInstance* instance = cluster_.find_instance(id);
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(instance->placement.start_slot, 4);
  // Overlapping placement fails.
  EXPECT_EQ(nvml_.create_gpu_instance_with_placement(1, 3, 4, nullptr),
            NvmlReturn::kErrorInsufficientResources);
}

TEST_F(NvmlSimTest, MpsAndProcessLifecycle) {
  GlobalInstanceId id;
  ASSERT_EQ(nvml_.create_gpu_instance(0, 2, &id), NvmlReturn::kSuccess);
  ASSERT_EQ(nvml_.start_mps_daemon(id), NvmlReturn::kSuccess);
  const MpsProcess process{"resnet-50", 16, 2.0};
  ASSERT_EQ(nvml_.launch_process(id, process), NvmlReturn::kSuccess);
  ASSERT_EQ(nvml_.launch_process(id, process), NvmlReturn::kSuccess);
  EXPECT_EQ(cluster_.find_instance(id)->processes.size(), 2u);
  ASSERT_EQ(nvml_.kill_processes(id), NvmlReturn::kSuccess);
  EXPECT_TRUE(cluster_.find_instance(id)->processes.empty());
}

TEST_F(NvmlSimTest, OutOfMemoryMapsToInsufficientMemory) {
  GlobalInstanceId id;
  ASSERT_EQ(nvml_.create_gpu_instance(0, 1, &id), NvmlReturn::kSuccess);  // 10 GiB
  EXPECT_EQ(nvml_.launch_process(id, {"m", 1, 11.0}), NvmlReturn::kErrorInsufficientMemory);
}

TEST_F(NvmlSimTest, MigModeToggleResetsDevice) {
  GlobalInstanceId id;
  ASSERT_EQ(nvml_.create_gpu_instance(0, 7, &id), NvmlReturn::kSuccess);
  ASSERT_EQ(nvml_.set_mig_mode(0, true), NvmlReturn::kSuccess);
  EXPECT_EQ(cluster_.find_instance(id), nullptr);
  EXPECT_TRUE(nvml_.mig_mode(0));
}

TEST_F(NvmlSimTest, OperationLogRecordsControlPlaneCalls) {
  GlobalInstanceId id;
  (void)nvml_.create_gpu_instance(0, 2, &id);
  (void)nvml_.start_mps_daemon(id);
  (void)nvml_.launch_process(id, {"m", 4, 1.0});
  ASSERT_GE(nvml_.operation_count(), 3u);
  EXPECT_NE(nvml_.operation_log()[0].find("create_gi"), std::string::npos);
  nvml_.clear_operation_log();
  EXPECT_EQ(nvml_.operation_count(), 0u);
}

TEST_F(NvmlSimTest, UnknownDevice) {
  GlobalInstanceId id;
  EXPECT_EQ(nvml_.create_gpu_instance_with_placement(9, 1, 0, &id),
            NvmlReturn::kErrorNotFound);
  EXPECT_EQ(nvml_.start_mps_daemon({9, 0}), NvmlReturn::kErrorNotFound);
}

}  // namespace
}  // namespace parva::gpu
