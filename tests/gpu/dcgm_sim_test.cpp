#include "gpu/dcgm_sim.hpp"

#include <gtest/gtest.h>

namespace parva::gpu {
namespace {

TEST(DcgmSimTest, ActivityIsBusyOverGrantedSmTime) {
  DcgmSim dcgm;
  const GlobalInstanceId id{0, 1};
  dcgm.watch(id, 14);  // 1 GPC
  dcgm.add_busy(id, 14.0 * 500.0);  // 14 SMs busy for 500 of 1000 ms
  dcgm.close_window(1000.0);
  EXPECT_NEAR(dcgm.activity(id).sm_activity(), 0.5, 1e-12);
}

TEST(DcgmSimTest, FullActivityIsOne) {
  DcgmSim dcgm;
  const GlobalInstanceId id{0, 0};
  dcgm.watch(id, 28);
  dcgm.add_busy(id, 28.0 * 1000.0);
  dcgm.close_window(1000.0);
  EXPECT_NEAR(dcgm.activity(id).sm_activity(), 1.0, 1e-12);
}

TEST(DcgmSimTest, UnwatchedEntitiesIgnored) {
  DcgmSim dcgm;
  dcgm.add_busy({3, 3}, 100.0);  // never watched: silently dropped, as DCGM does
  dcgm.close_window(10.0);
  EXPECT_DOUBLE_EQ(dcgm.activity({3, 3}).sm_activity(), 0.0);
  EXPECT_TRUE(dcgm.watched().empty());
}

TEST(DcgmSimTest, ZeroWindowYieldsZeroActivity) {
  DcgmSim dcgm;
  const GlobalInstanceId id{0, 0};
  dcgm.watch(id, 14);
  dcgm.add_busy(id, 100.0);
  EXPECT_DOUBLE_EQ(dcgm.activity(id).sm_activity(), 0.0);  // window not closed
}

TEST(DcgmSimTest, MultipleInstancesIndependent) {
  DcgmSim dcgm;
  const GlobalInstanceId a{0, 0};
  const GlobalInstanceId b{1, 0};
  dcgm.watch(a, 14);
  dcgm.watch(b, 14);
  dcgm.add_busy(a, 14.0 * 100.0);
  dcgm.close_window(1000.0);
  EXPECT_NEAR(dcgm.activity(a).sm_activity(), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(dcgm.activity(b).sm_activity(), 0.0);
  EXPECT_EQ(dcgm.watched().size(), 2u);
}

TEST(DcgmSimTest, ClearResets) {
  DcgmSim dcgm;
  dcgm.watch({0, 0}, 14);
  dcgm.clear();
  EXPECT_TRUE(dcgm.watched().empty());
}

}  // namespace
}  // namespace parva::gpu
