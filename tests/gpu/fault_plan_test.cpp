#include "gpu/fault_plan.hpp"

#include <gtest/gtest.h>

#include "core/deployer.hpp"
#include "gpu/dcgm_sim.hpp"
#include "gpu/nvml_sim.hpp"

namespace parva::gpu {
namespace {

TEST(FaultPlanTest, SortsFailuresAndReportsFirst) {
  FaultPlan plan;
  plan.gpu_failures = {{9'000.0, 2, 79}, {3'000.0, 0, 48}, {3'000.0, 5, 79}};
  const auto sorted = plan.sorted_gpu_failures();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].gpu_index, 0);  // time, then gpu index
  EXPECT_EQ(sorted[1].gpu_index, 5);
  EXPECT_EQ(sorted[2].gpu_index, 2);
  EXPECT_DOUBLE_EQ(plan.first_failure_ms(), 3'000.0);
  EXPECT_TRUE(plan.has_faults());
  EXPECT_FALSE(FaultPlan{}.has_faults());
  EXPECT_LT(FaultPlan{}.first_failure_ms(), 0.0);
}

TEST(FaultPlanTest, InvalidPlansRejected) {
  FaultPlan bad;
  bad.transient_create_failure_prob = 1.5;
  EXPECT_THROW(FaultInjector{bad}, std::logic_error);
  bad = FaultPlan{};
  bad.max_consecutive_transient_failures = 0;
  EXPECT_THROW(FaultInjector{bad}, std::logic_error);
  bad = FaultPlan{};
  bad.slow_reconfig_factor = 0.5;
  EXPECT_THROW(FaultInjector{bad}, std::logic_error);
}

TEST(FaultInjectorTest, SamePlanInjectsIdenticalSequence) {
  FaultPlan plan;
  plan.seed = 20'240'817;
  plan.transient_create_failure_prob = 0.35;
  FaultInjector a(plan);
  FaultInjector b(plan);
  std::vector<bool> sequence_a;
  std::vector<bool> sequence_b;
  for (int i = 0; i < 500; ++i) {
    sequence_a.push_back(a.next_create_fails());
    sequence_b.push_back(b.next_create_fails());
  }
  EXPECT_EQ(sequence_a, sequence_b);
  EXPECT_EQ(a.transient_failures_injected(), b.transient_failures_injected());
  EXPECT_GT(a.transient_failures_injected(), 0);

  // reset() replays the stream from the start.
  a.reset();
  EXPECT_EQ(a.transient_failures_injected(), 0);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.next_create_fails(), sequence_b[static_cast<std::size_t>(i)]);
  }
}

TEST(FaultInjectorTest, ConsecutiveFailuresAreBounded) {
  FaultPlan plan;
  plan.transient_create_failure_prob = 1.0;  // worst case: every draw fails
  plan.max_consecutive_transient_failures = 3;
  FaultInjector injector(plan);
  int run = 0;
  int longest_run = 0;
  for (int i = 0; i < 200; ++i) {
    if (injector.next_create_fails()) {
      ++run;
    } else {
      run = 0;
    }
    longest_run = std::max(longest_run, run);
  }
  EXPECT_EQ(longest_run, 3);  // the forced success caps every run
}

TEST(FaultInjectorTest, DefaultBoundStaysBelowDeployerRetryBudget) {
  // The convergence guarantee that makes transient faults invisible in the
  // final deployment: the injector gives up failing strictly before the
  // Deployer gives up retrying.
  EXPECT_LT(FaultPlan{}.max_consecutive_transient_failures,
            core::RetryPolicy{}.max_attempts);
}

TEST(FaultInjectorTest, SlowReconfigLatencyInjection) {
  FaultPlan plan;
  plan.slow_reconfig_factor = 3.0;
  plan.extra_create_latency_ms = 40.0;
  FaultInjector injector(plan);
  EXPECT_DOUBLE_EQ(injector.create_latency_ms(250.0), 250.0 * 2.0 + 40.0);
  EXPECT_DOUBLE_EQ(FaultInjector(FaultPlan{}).create_latency_ms(250.0), 0.0);
}

class NvmlFaultTest : public ::testing::Test {
 protected:
  GpuCluster cluster_{2};
  NvmlSim nvml_{cluster_};
  DcgmSim dcgm_;
};

TEST_F(NvmlFaultTest, FailDeviceDropsInstancesAndBlocksOperations) {
  nvml_.attach_health_monitor(&dcgm_);
  GlobalInstanceId id;
  ASSERT_EQ(nvml_.create_gpu_instance_with_placement(0, 3, 0, &id), NvmlReturn::kSuccess);

  nvml_.set_time_ms(1'234.0);
  ASSERT_EQ(nvml_.fail_device(0, 79), NvmlReturn::kSuccess);
  EXPECT_TRUE(nvml_.device_lost(0));
  EXPECT_EQ(nvml_.lost_devices(), std::vector<int>{0});
  EXPECT_EQ(cluster_.gpu(0).occupied_mask(), 0);  // XID reset wiped the device

  // Every operation on the lost device reports NVML_ERROR_GPU_IS_LOST.
  EXPECT_EQ(nvml_.create_gpu_instance(0, 1, nullptr), NvmlReturn::kErrorGpuIsLost);
  EXPECT_EQ(nvml_.destroy_gpu_instance(id), NvmlReturn::kErrorGpuIsLost);
  EXPECT_EQ(nvml_.start_mps_daemon(id), NvmlReturn::kErrorGpuIsLost);
  EXPECT_EQ(nvml_.kill_processes(id), NvmlReturn::kErrorGpuIsLost);
  EXPECT_FALSE(nvml_is_transient(NvmlReturn::kErrorGpuIsLost));
  // The healthy neighbour keeps working.
  EXPECT_EQ(nvml_.create_gpu_instance(1, 1, nullptr), NvmlReturn::kSuccess);

  // Double-failing is idempotent: the device simply stays lost.
  EXPECT_EQ(nvml_.fail_device(0), NvmlReturn::kSuccess);
  EXPECT_TRUE(nvml_.device_lost(0));

  // The health watch saw a fatal event with the XID stamped at sim time.
  ASSERT_FALSE(dcgm_.health_events().empty());
  const HealthEvent& event = dcgm_.health_events().front();
  EXPECT_EQ(event.kind, HealthEventKind::kDeviceLost);
  EXPECT_EQ(event.gpu, 0);
  EXPECT_EQ(event.xid, 79);
  EXPECT_DOUBLE_EQ(event.time_ms, 1'234.0);
  EXPECT_TRUE(dcgm_.device_unhealthy(0));
  EXPECT_FALSE(dcgm_.device_unhealthy(1));

  // Replacement hardware: the device returns clean and usable.
  ASSERT_EQ(nvml_.restore_device(0), NvmlReturn::kSuccess);
  EXPECT_FALSE(nvml_.device_lost(0));
  EXPECT_EQ(nvml_.create_gpu_instance(0, 7, nullptr), NvmlReturn::kSuccess);
}

TEST_F(NvmlFaultTest, InjectorMakesCreatesFailTransiently) {
  nvml_.attach_health_monitor(&dcgm_);
  FaultPlan plan;
  plan.transient_create_failure_prob = 1.0;
  plan.max_consecutive_transient_failures = 2;
  FaultInjector injector(plan);
  nvml_.set_fault_injector(&injector);

  // Two injected NVML_ERROR_IN_USE, then the forced success.
  EXPECT_EQ(nvml_.create_gpu_instance_with_placement(0, 2, 0, nullptr),
            NvmlReturn::kErrorInUse);
  EXPECT_EQ(nvml_.create_gpu_instance_with_placement(0, 2, 0, nullptr),
            NvmlReturn::kErrorInUse);
  EXPECT_TRUE(nvml_is_transient(NvmlReturn::kErrorInUse));
  EXPECT_EQ(nvml_.create_gpu_instance_with_placement(0, 2, 0, nullptr),
            NvmlReturn::kSuccess);
  EXPECT_EQ(injector.transient_failures_injected(), 2);

  // Each injected failure surfaced as a health event.
  int transient_events = 0;
  for (const HealthEvent& event : dcgm_.health_events()) {
    if (event.kind == HealthEventKind::kTransientCreateFailure) ++transient_events;
  }
  EXPECT_EQ(transient_events, 2);

  // Detaching stops the injection.
  nvml_.set_fault_injector(nullptr);
  EXPECT_EQ(nvml_.create_gpu_instance_with_placement(0, 2, 2, nullptr),
            NvmlReturn::kSuccess);
}

}  // namespace
}  // namespace parva::gpu
