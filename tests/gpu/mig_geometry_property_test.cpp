// Property/fuzz tests for the MIG geometry against an independent oracle.
//
// The oracle models the A100's slot rules from first principles (Fig. 1):
// an instance of size g may start only at its hardware-legal slots, blocks
// `span` consecutive slots (4 for a 3-GPC instance at slot 0), and two
// instances may not overlap. Random placement sequences driven through
// VirtualGpu must agree with the oracle decision-for-decision, and
// create -> destroy -> create round trips must restore the exact free-slot
// mask. Seeds are fixed: every run replays the same sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "gpu/arch.hpp"
#include "gpu/mig_geometry.hpp"
#include "gpu/virtual_gpu.hpp"

namespace parva::gpu {
namespace {

/// Independent re-statement of the Fig. 1 rules (kept deliberately naive —
/// no sharing with the production tables beyond the published constants).
bool oracle_legal_start(int gpcs, int slot) {
  switch (gpcs) {
    case 1: return slot >= 0 && slot <= 6;
    case 2: return slot == 0 || slot == 2 || slot == 4;
    case 3: return slot == 0 || slot == 4;
    case 4: return slot == 0;
    case 7: return slot == 0;
    default: return false;
  }
}

int oracle_span(int gpcs, int slot) { return (gpcs == 3 && slot == 0) ? 4 : gpcs; }

std::uint8_t oracle_mask(int gpcs, int slot) {
  return static_cast<std::uint8_t>(((1u << oracle_span(gpcs, slot)) - 1u) << slot);
}

bool oracle_fits(std::uint8_t occupied, int gpcs, int slot) {
  return oracle_legal_start(gpcs, slot) && (occupied & oracle_mask(gpcs, slot)) == 0;
}

TEST(MigGeometryPropertyTest, PlacementPrimitivesMatchOracle) {
  for (int gpcs = 0; gpcs <= 8; ++gpcs) {
    const bool valid_size =
        std::find(kInstanceSizes.begin(), kInstanceSizes.end(), gpcs) != kInstanceSizes.end();
    const auto legal = legal_start_slots(gpcs);
    for (int slot = 0; slot < kGpcSlots; ++slot) {
      const bool listed = std::find(legal.begin(), legal.end(), slot) != legal.end();
      EXPECT_EQ(listed, valid_size && oracle_legal_start(gpcs, slot))
          << "gpcs=" << gpcs << " slot=" << slot;
      if (listed) {
        const Placement placement{gpcs, slot};
        EXPECT_TRUE(is_legal_placement(placement));
        EXPECT_EQ(placement.span(), oracle_span(gpcs, slot));
        EXPECT_EQ(placement.slot_mask(), oracle_mask(gpcs, slot));
      }
    }
    // Preferred slots are a non-empty subset of the legal slots (size 3
    // deliberately skips slot 0, where it would span — and waste — 4 slots).
    const auto preferred = preferred_start_slots(gpcs);
    EXPECT_EQ(preferred.empty(), legal.empty()) << gpcs;
    for (int slot : preferred) {
      EXPECT_TRUE(std::find(legal.begin(), legal.end(), slot) != legal.end())
          << "gpcs=" << gpcs << " slot=" << slot;
    }
    if (gpcs == 3) {
      EXPECT_TRUE(std::find(preferred.begin(), preferred.end(), 0) == preferred.end());
    }
  }
}

TEST(MigGeometryPropertyTest, RandomSequencesAgreeWithOracle) {
  Rng rng(0xFEEDFACEu);
  for (int trial = 0; trial < 300; ++trial) {
    VirtualGpu gpu(0);
    std::uint8_t oracle_occupied = 0;
    // Oracle-side live placements, keyed by the production handle.
    std::map<InstanceHandle, Placement> live;

    for (int step = 0; step < 40; ++step) {
      const bool try_destroy = !live.empty() && rng.next_double() < 0.35;
      if (try_destroy) {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.uniform_int(0, live.size() - 1)));
        ASSERT_TRUE(gpu.destroy_instance(it->first).ok());
        oracle_occupied = static_cast<std::uint8_t>(oracle_occupied & ~it->second.slot_mask());
        live.erase(it);
      } else {
        // Any size, any slot — including illegal ones on purpose.
        const int gpcs = static_cast<int>(rng.uniform_int(0, 8));
        const int slot = static_cast<int>(rng.uniform_int(0, kGpcSlots - 1));
        const auto created = gpu.create_instance_at(gpcs, slot);
        const bool oracle_ok = oracle_fits(oracle_occupied, gpcs, slot);
        ASSERT_EQ(created.ok(), oracle_ok)
            << "trial=" << trial << " step=" << step << " gpcs=" << gpcs << " slot=" << slot
            << " occupied=" << static_cast<int>(oracle_occupied);
        if (oracle_ok) {
          oracle_occupied = static_cast<std::uint8_t>(oracle_occupied | oracle_mask(gpcs, slot));
          live.emplace(created.value(), Placement{gpcs, slot});
        }
      }
      ASSERT_EQ(gpu.occupied_mask(), oracle_occupied);
    }
  }
}

TEST(MigGeometryPropertyTest, CreateDestroyRoundTripsRestoreFreeSlots) {
  Rng rng(0xC0FFEEu);
  for (int trial = 0; trial < 200; ++trial) {
    VirtualGpu gpu(0);
    // Base load: a few random legal placements.
    std::vector<InstanceHandle> base;
    for (int i = 0; i < 3; ++i) {
      const int gpcs = kInstanceSizes[rng.uniform_int(0, kInstanceSizes.size() - 1)];
      const auto slot = find_start_slot(gpu.occupied_mask(), gpcs);
      if (!slot.has_value()) continue;
      base.push_back(gpu.create_instance_at(gpcs, *slot).value());
    }
    const std::uint8_t before = gpu.occupied_mask();

    // Round trip: create whatever still fits, then destroy it again.
    std::vector<InstanceHandle> extra;
    for (int gpcs : kInstanceSizes) {
      const auto slot = find_start_slot(gpu.occupied_mask(), gpcs);
      if (slot.has_value()) extra.push_back(gpu.create_instance_at(gpcs, *slot).value());
    }
    for (auto it = extra.rbegin(); it != extra.rend(); ++it) {
      ASSERT_TRUE(gpu.destroy_instance(*it).ok());
    }
    EXPECT_EQ(gpu.occupied_mask(), before);

    // And a full re-create of the same extra set lands identically.
    std::vector<InstanceHandle> again;
    for (int gpcs : kInstanceSizes) {
      const auto slot = find_start_slot(gpu.occupied_mask(), gpcs);
      if (slot.has_value()) again.push_back(gpu.create_instance_at(gpcs, *slot).value());
    }
    EXPECT_EQ(again.size(), extra.size());
    gpu.reset();
    EXPECT_EQ(gpu.occupied_mask(), 0);
  }
}

TEST(MigGeometryPropertyTest, MaximalConfigEnumerationMatchesFigure1) {
  const auto configs = enumerate_maximal_configs();
  EXPECT_EQ(configs.size(), 19u);  // Fig. 1: exactly 19 maximal configurations

  std::set<std::vector<Placement>> unique;
  for (const GpuConfig& config : configs) {
    EXPECT_TRUE(config.valid());
    EXPECT_TRUE(config.maximal());
    // Every placement obeys the oracle and none overlap.
    std::uint8_t occupied = 0;
    for (const Placement& placement : config.placements) {
      ASSERT_TRUE(oracle_fits(occupied, placement.gpcs, placement.start_slot))
          << config.to_string();
      occupied = static_cast<std::uint8_t>(occupied | placement.slot_mask());
    }
    // Maximality against the oracle: no size fits anywhere.
    for (int gpcs : kInstanceSizes) {
      for (int slot = 0; slot < kGpcSlots; ++slot) {
        EXPECT_FALSE(oracle_fits(occupied, gpcs, slot)) << config.to_string();
      }
    }
    auto sorted = config.placements;
    std::sort(sorted.begin(), sorted.end());
    unique.insert(sorted);
  }
  EXPECT_EQ(unique.size(), configs.size());  // no duplicates

  // Every maximal config is realisable on the virtual GPU.
  for (const GpuConfig& config : configs) {
    VirtualGpu gpu(0);
    for (const Placement& placement : config.placements) {
      ASSERT_TRUE(gpu.create_instance_at(placement.gpcs, placement.start_slot).ok())
          << config.to_string();
    }
    EXPECT_EQ(gpu.occupied_mask(), config.slot_mask());
  }
}

}  // namespace
}  // namespace parva::gpu
