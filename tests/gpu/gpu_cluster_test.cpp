#include "gpu/gpu_cluster.hpp"

#include <gtest/gtest.h>

namespace parva::gpu {
namespace {

TEST(GpuClusterTest, InitialSize) {
  GpuCluster cluster(8);
  EXPECT_EQ(cluster.size(), 8u);
  EXPECT_EQ(cluster.gpus_in_use(), 0u);
}

TEST(GpuClusterTest, ElasticGrowth) {
  GpuCluster cluster(1, /*elastic=*/true);
  const auto id = cluster.create_instance(3, 2);  // index beyond current size
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(cluster.size(), 4u);
  EXPECT_EQ(id.value().gpu, 3);
}

TEST(GpuClusterTest, FixedClusterRefusesGrowth) {
  GpuCluster cluster(2, /*elastic=*/false);
  const auto id = cluster.create_instance(2, 1);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code(), ErrorCode::kCapacityExceeded);
}

TEST(GpuClusterTest, FindInstance) {
  GpuCluster cluster(2);
  const auto id = cluster.create_instance(0, 4).value();
  const MigInstance* instance = cluster.find_instance(id);
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(instance->gpcs(), 4);
  EXPECT_EQ(cluster.find_instance({5, 0}), nullptr);
  EXPECT_EQ(cluster.find_instance({0, 99}), nullptr);
}

TEST(GpuClusterTest, DestroyInstance) {
  GpuCluster cluster(1);
  const auto id = cluster.create_instance(0, 2).value();
  ASSERT_TRUE(cluster.destroy_instance(id).ok());
  EXPECT_EQ(cluster.find_instance(id), nullptr);
  EXPECT_FALSE(cluster.destroy_instance(id).ok());
}

TEST(GpuClusterTest, UsageAccounting) {
  GpuCluster cluster(3);
  (void)cluster.create_instance(0, 4);
  (void)cluster.create_instance(0, 3);
  (void)cluster.create_instance(2, 1);
  EXPECT_EQ(cluster.gpus_in_use(), 2u);
  EXPECT_EQ(cluster.total_allocated_gpcs(), 8);
}

TEST(GpuClusterTest, ResetClearsAll) {
  GpuCluster cluster(2);
  (void)cluster.create_instance(0, 7);
  (void)cluster.create_instance(1, 7);
  cluster.reset();
  EXPECT_EQ(cluster.gpus_in_use(), 0u);
  EXPECT_EQ(cluster.total_allocated_gpcs(), 0);
}

TEST(GpuClusterTest, OutOfRangeAccessThrows) {
  GpuCluster cluster(1);
  EXPECT_THROW(cluster.gpu(1), std::logic_error);
}

}  // namespace
}  // namespace parva::gpu
