#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace parva {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, SplitSingleField) {
  const auto fields = split("alone", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-space"), "no-space");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringsTest, ParseDouble) {
  double value = 0.0;
  EXPECT_TRUE(parse_double("2.5", value));
  EXPECT_DOUBLE_EQ(value, 2.5);
  EXPECT_FALSE(parse_double("2.5x", value));
  EXPECT_FALSE(parse_double("", value));
  EXPECT_TRUE(parse_double("-1e3", value));
  EXPECT_DOUBLE_EQ(value, -1000.0);
}

TEST(StringsTest, ParseUint) {
  unsigned long long value = 0;
  EXPECT_TRUE(parse_uint("123", value));
  EXPECT_EQ(value, 123ull);
  EXPECT_FALSE(parse_uint("-1", value));
  EXPECT_FALSE(parse_uint("1.5", value));
}

}  // namespace
}  // namespace parva
