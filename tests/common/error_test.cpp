#include "common/error.hpp"

#include <gtest/gtest.h>

namespace parva {
namespace {

TEST(ErrorTest, CarriesCodeAndMessage) {
  const Error error(ErrorCode::kOutOfMemory, "10 GiB exceeded");
  EXPECT_EQ(error.code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(error.message(), "10 GiB exceeded");
  EXPECT_EQ(error.to_string(), "out_of_memory: 10 GiB exceeded");
}

TEST(ErrorTest, EveryCodeHasAName) {
  for (const auto code :
       {ErrorCode::kInvalidArgument, ErrorCode::kNotFound, ErrorCode::kOutOfMemory,
        ErrorCode::kUnsupported, ErrorCode::kCapacityExceeded, ErrorCode::kInternal}) {
    EXPECT_STRNE(to_string(code), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  const Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  const Result<int> result(Error(ErrorCode::kNotFound, "missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, ValueOnErrorThrows) {
  const Result<int> result(Error(ErrorCode::kInternal, "boom"));
  EXPECT_THROW(result.value(), std::logic_error);
}

TEST(ResultTest, ErrorOnValueThrows) {
  const Result<int> result(1);
  EXPECT_THROW(result.error(), std::logic_error);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusTest, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.to_string(), "ok");
  EXPECT_THROW(status.error(), std::logic_error);
}

TEST(StatusTest, ErrorStatus) {
  const Status status(ErrorCode::kUnsupported, "no slot");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kUnsupported);
}

TEST(RequireTest, ThrowsWithMessage) {
  try {
    PARVA_REQUIRE(false, "contract");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("contract"), std::string::npos);
  }
}

}  // namespace
}  // namespace parva
