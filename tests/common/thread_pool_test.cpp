#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace parva {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("task failed");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SubmitExceptionSurfacesViaFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 200; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(sum.load(), 200 * 201 / 2);
}

}  // namespace
}  // namespace parva
