#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace parva {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("task failed");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SubmitExceptionSurfacesViaFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The caveat the work-stealing rewrite deletes: an outer parallel_for
  // task issuing an inner parallel_for on the SAME pool used to deadlock
  // (every worker waiting for workers). The cooperative caller drains its
  // own range, so this must terminate with every (i, j) pair visited.
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t i) {
    pool.parallel_for(kInner, [&](std::size_t j) { hits[i * kInner + j].fetch_add(1); });
  });
  for (std::size_t k = 0; k < hits.size(); ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "pair " << k;
  }
}

TEST(ThreadPoolTest, TriplyNestedParallelForCompletes) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(4, [&](std::size_t) { count.fetch_add(1); });
    });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForOnSingleWorkerPool) {
  // One worker, caller outside the pool: the caller and the lone worker
  // must between them drain both levels without any free worker to lean on.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(5, [&](std::size_t) {
    pool.parallel_for(7, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 35);
}

TEST(ThreadPoolTest, ExceptionInNestedParallelForPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t i) {
                                   pool.parallel_for(4, [&](std::size_t j) {
                                     if (i == 2 && j == 3) {
                                       throw std::runtime_error("inner failed");
                                     }
                                   });
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, OnWorkerThreadIdentifiesPoolMembership) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.on_worker_thread());
  auto future = pool.submit([&] {
    return pool.on_worker_thread() && !other.on_worker_thread();
  });
  EXPECT_TRUE(future.get());
}

TEST(ThreadPoolTest, SubmitFromWorkerRunsOnSamePool) {
  // A child task submitted from inside a worker lands on that worker's
  // deque and still runs (popped by the owner or stolen by a sibling).
  ThreadPool pool(2);
  std::atomic<int> child_ran{0};
  pool.parallel_for(2, [&](std::size_t) {
    pool.submit([&] { child_ran.fetch_add(1); });
  });
  // Children were enqueued but not joined by the parallel_for; wait for
  // them through the pool (futures would also work, this exercises drain).
  pool.parallel_for(1, [](std::size_t) {});
  for (int spin = 0; spin < 10'000 && child_ran.load() < 2; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_EQ(child_ran.load(), 2);
}

TEST(ThreadPoolTest, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 200; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(sum.load(), 200 * 201 / 2);
}

}  // namespace
}  // namespace parva
