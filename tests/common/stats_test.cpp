#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace parva {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  const OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(OnlineStatsTest, MeanAndVariance) {
  OnlineStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats whole;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStatsTest, SumIsExactThroughHeavyMerging) {
  // sum() used to be reconstructed as mean * count; the Welford mean's
  // rounding error, amplified by the multiplication, drifted visibly over
  // long merge chains. The carried running sum must instead match a plain
  // accumulator bit-for-bit, because both perform the identical sequence
  // of additions.
  double plain = 0.0;
  OnlineStats merged;
  Rng rng(13);
  for (int chunk = 0; chunk < 64; ++chunk) {
    OnlineStats part;
    for (int i = 0; i < 512; ++i) {
      // Large offset + tiny increments: worst case for mean * count.
      const double x = 1.0e9 + rng.uniform(0.0, 1.0e-3);
      part.add(x);
    }
    merged.merge(part);
    plain += part.sum();
  }
  EXPECT_EQ(merged.count(), 64u * 512u);
  EXPECT_DOUBLE_EQ(merged.sum(), plain);
  // The old reconstruction is measurably off on this input.
  EXPECT_NE(merged.mean() * static_cast<double>(merged.count()), 0.0);
}

TEST(OnlineStatsTest, SumMatchesAdditionOrder) {
  OnlineStats stats;
  double plain = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double x = 0.1 * static_cast<double>(i % 7);
    stats.add(x);
    plain += x;
  }
  EXPECT_DOUBLE_EQ(stats.sum(), plain);
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SamplesTest, PercentileInterpolates) {
  Samples samples;
  for (int i = 1; i <= 100; ++i) samples.add(static_cast<double>(i));
  EXPECT_NEAR(samples.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(samples.percentile(100.0), 100.0, 1e-12);
  EXPECT_NEAR(samples.p50(), 50.5, 1e-12);
  EXPECT_NEAR(samples.p99(), 99.01, 1e-9);
}

TEST(SamplesTest, SingleValue) {
  Samples samples;
  samples.add(42.0);
  EXPECT_DOUBLE_EQ(samples.p50(), 42.0);
  EXPECT_DOUBLE_EQ(samples.p99(), 42.0);
}

TEST(SamplesTest, FractionAbove) {
  Samples samples;
  for (int i = 1; i <= 10; ++i) samples.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(samples.fraction_above(7.0), 0.3);
  EXPECT_DOUBLE_EQ(samples.fraction_above(0.0), 1.0);
  EXPECT_DOUBLE_EQ(samples.fraction_above(10.0), 0.0);
}

TEST(SamplesTest, AddAfterPercentileKeepsOrderCorrect) {
  Samples samples;
  samples.add(5.0);
  samples.add(1.0);
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  (void)samples.p50();
  samples.add(0.5);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(samples.percentile(0.0), 0.5);
}

TEST(SamplesTest, Merge) {
  Samples a;
  a.add(1.0);
  Samples b;
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(SamplesTest, EmptySetReportsZeroInsteadOfThrowing) {
  const Samples empty;
  // Failure-phase outcomes can legitimately complete zero requests; the
  // aggregate accessors must degrade like mean() instead of aborting.
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(99.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.fraction_above(10.0), 0.0);
  // Out-of-range percentiles still throw, empty or not.
  EXPECT_THROW((void)empty.percentile(-1.0), std::logic_error);
  EXPECT_THROW((void)empty.percentile(101.0), std::logic_error);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.add(0.0);    // first bin
  histogram.add(9.999);  // last bin
  histogram.add(10.0);   // boundary lands in last bin
  histogram.add(-5.0);   // clamped to first
  histogram.add(15.0);   // clamped to last
  EXPECT_EQ(histogram.total(), 5u);
  EXPECT_EQ(histogram.bin_count(0), 2u);
  EXPECT_EQ(histogram.bin_count(4), 3u);
  EXPECT_DOUBLE_EQ(histogram.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.bin_hi(4), 10.0);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

}  // namespace
}  // namespace parva
