#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/strings.hpp"

namespace parva {
namespace {

TEST(TextTableTest, RendersAligned) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "22"});
  const std::string out = table.render();
  // Header present, separator present, rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Columns aligned: "1" and "22" start at the same offset.
  const auto lines = split(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].find('1'), lines[3].find("22"));
}

TEST(TextTableTest, ArityMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::logic_error);
}

TEST(TextTableTest, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::logic_error);
}

TEST(TextTableTest, NumericRow) {
  TextTable table({"label", "v1", "v2"});
  table.add_row_numeric("row", {1.234, 5.678}, 1);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("row,1.2,5.7"), std::string::npos);
}

TEST(TextTableTest, CsvEscaping) {
  TextTable table({"field"});
  table.add_row({"has,comma"});
  table.add_row({"has\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTableTest, RowCount) {
  TextTable table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  EXPECT_EQ(table.rows(), 1u);
}

}  // namespace
}  // namespace parva
