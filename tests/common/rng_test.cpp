#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace parva {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    ASSERT_GE(x, -2.0);
    ASSERT_LT(x, 3.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto x = rng.uniform_int(3, 5);
    ASSERT_GE(x, 3u);
    ASSERT_LE(x, 5u);
    saw_lo |= (x == 3);
    saw_hi |= (x == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  OnlineStats stats;
  const double rate = 4.0;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.exponential(rate));
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 0.01);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  OnlineStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(7);
  Rng parent2(7);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
  // Child differs from a fresh parent stream.
  Rng parent3(7);
  (void)parent3.split();
  EXPECT_NE(child1.next_u64(), parent3.next_u64());
}

}  // namespace
}  // namespace parva
