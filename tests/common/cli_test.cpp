#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace parva {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> args(argv);
  return CliArgs(static_cast<int>(args.size()), args.data());
}

TEST(CliTest, EqualsForm) {
  const auto args = make({"prog", "--rate=42.5"});
  EXPECT_TRUE(args.has("rate"));
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 42.5);
}

TEST(CliTest, SpaceForm) {
  const auto args = make({"prog", "--name", "hello"});
  EXPECT_EQ(args.get("name", ""), "hello");
}

TEST(CliTest, BooleanFlag) {
  const auto args = make({"prog", "--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
}

TEST(CliTest, Positional) {
  const auto args = make({"prog", "input.csv", "--n", "3", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "output.csv");
  EXPECT_EQ(args.get_int("n", 0), 3);
}

TEST(CliTest, FallbacksWhenAbsent) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(args.get_int("missing", -2), -2);
  EXPECT_TRUE(args.get_bool("missing", true));
}

TEST(CliTest, MalformedDoubleFallsBack) {
  const auto args = make({"prog", "--x=abc"});
  EXPECT_DOUBLE_EQ(args.get_double("x", 9.0), 9.0);
}

TEST(CliTest, ProgramName) {
  const auto args = make({"myprog"});
  EXPECT_EQ(args.program(), "myprog");
}

}  // namespace
}  // namespace parva
