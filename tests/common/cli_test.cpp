#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace parva {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> args(argv);
  return CliArgs(static_cast<int>(args.size()), args.data());
}

TEST(CliTest, EqualsForm) {
  const auto args = make({"prog", "--rate=42.5"});
  EXPECT_TRUE(args.has("rate"));
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 42.5);
}

TEST(CliTest, SpaceForm) {
  const auto args = make({"prog", "--name", "hello"});
  EXPECT_EQ(args.get("name", ""), "hello");
}

TEST(CliTest, BooleanFlag) {
  const auto args = make({"prog", "--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
}

TEST(CliTest, Positional) {
  const auto args = make({"prog", "input.csv", "--n", "3", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "output.csv");
  EXPECT_EQ(args.get_int("n", 0), 3);
}

TEST(CliTest, FallbacksWhenAbsent) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(args.get_int("missing", -2), -2);
  EXPECT_TRUE(args.get_bool("missing", true));
}

TEST(CliTest, MalformedDoubleFallsBack) {
  const auto args = make({"prog", "--x=abc"});
  EXPECT_DOUBLE_EQ(args.get_double("x", 9.0), 9.0);
}

TEST(CliTest, ProgramName) {
  const auto args = make({"myprog"});
  EXPECT_EQ(args.program(), "myprog");
}

// The bugfix-sweep regressions: integer parsing is strict (whole-string),
// repeated flags are tracked so front ends can hard-error, and
// int_in_range distinguishes malformed/out-of-range from absent.
TEST(CliTest, MalformedIntFallsBack) {
  const auto args = make({"prog", "--n=4x", "--m=", "--k=0x10", "--neg=-3"});
  EXPECT_EQ(args.get_int("n", 7), 7);    // trailing junk
  EXPECT_EQ(args.get_int("m", 7), 7);    // empty value
  EXPECT_EQ(args.get_int("k", 7), 7);    // hex is not base-10
  EXPECT_EQ(args.get_int("neg", 7), -3);  // signs are fine
}

TEST(CliTest, IntInRange) {
  const auto args = make({"prog", "--shards=4", "--zero=0", "--big=99999", "--junk=4x"});
  EXPECT_TRUE(args.int_in_range("shards", 1, 4096));
  EXPECT_FALSE(args.int_in_range("zero", 1, 4096));    // below min
  EXPECT_FALSE(args.int_in_range("big", 1, 4096));     // above max
  EXPECT_FALSE(args.int_in_range("junk", 1, 4096));    // malformed
  EXPECT_FALSE(args.int_in_range("absent", 1, 4096));  // missing entirely
}

TEST(CliTest, RepeatedFlagsAreTracked) {
  const auto clean = make({"prog", "--a=1", "--b=2"});
  EXPECT_TRUE(clean.repeated().empty());

  const auto dup = make({"prog", "--a=1", "--b=2", "--a=3", "--b", "4", "--a=5"});
  // Last occurrence wins in the parsed value...
  EXPECT_EQ(dup.get_int("a", 0), 5);
  EXPECT_EQ(dup.get_int("b", 0), 4);
  // ...but each duplicated name is reported once, in first-seen order.
  ASSERT_EQ(dup.repeated().size(), 2u);
  EXPECT_EQ(dup.repeated()[0], "a");
  EXPECT_EQ(dup.repeated()[1], "b");
}

}  // namespace
}  // namespace parva
