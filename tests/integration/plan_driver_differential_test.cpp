// Differential tests between the planning layer (core::GpuPlan, what the
// Segment Allocator reasons about) and the driver layer (gpu::VirtualGpu,
// what the control plane enforces). Any divergence means the scheduler
// could emit maps the driver rejects — the class of bug that bricks a
// rollout. Random seeded sequences of create/destroy operations must
// succeed or fail identically on both layers, leaving identical occupancy.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/plan.hpp"
#include "gpu/virtual_gpu.hpp"

namespace parva {
namespace {

core::Triplet synthetic_triplet(int gpcs) {
  core::Triplet triplet;
  triplet.gpcs = gpcs;
  triplet.batch = 8;
  triplet.procs = 1;
  triplet.throughput = 100.0;
  triplet.latency_ms = 10.0;
  return triplet;
}

class PlanDriverDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanDriverDifferential, RandomOpSequencesAgree) {
  Rng rng(GetParam());
  constexpr std::array<int, 5> kSizes = {1, 2, 3, 4, 7};

  for (int episode = 0; episode < 20; ++episode) {
    core::GpuPlan plan(0);
    gpu::VirtualGpu driver(0);
    // Track driver handles parallel to plan segment order.
    std::vector<gpu::InstanceHandle> handles;

    for (int op = 0; op < 40; ++op) {
      const bool remove = !handles.empty() && rng.next_double() < 0.3;
      if (remove) {
        const auto index =
            static_cast<std::size_t>(rng.uniform_int(0, handles.size() - 1));
        const core::PlacedSegment removed = plan.remove_segment(index);
        ASSERT_TRUE(driver.destroy_instance(handles[index]).ok())
            << "seed " << GetParam() << ": driver rejected removing "
            << removed.placement.gpcs << "@" << removed.placement.start_slot;
        handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(index));
      } else {
        const int gpcs = kSizes[rng.uniform_int(0, kSizes.size() - 1)];
        // Pick an explicit slot half the time (exercising try_place_at /
        // create_instance_at), the preferred path otherwise.
        if (rng.next_double() < 0.5) {
          const auto starts = gpu::legal_start_slots(gpcs);
          const int start = starts[rng.uniform_int(0, starts.size() - 1)];
          const bool plan_ok = plan.try_place_at(0, synthetic_triplet(gpcs), start);
          const auto driver_result = driver.create_instance_at(gpcs, start);
          ASSERT_EQ(plan_ok, driver_result.ok())
              << "seed " << GetParam() << ": " << gpcs << "@" << start
              << " plan=" << plan_ok << " driver=" << driver_result.ok();
          if (plan_ok) handles.push_back(driver_result.value());
        } else {
          const bool plan_ok = plan.try_place(0, synthetic_triplet(gpcs));
          // The driver's preferred-slot path must agree with the planner's.
          const bool driver_fits = driver.can_fit(gpcs);
          ASSERT_EQ(plan_ok, driver_fits)
              << "seed " << GetParam() << ": size " << gpcs;
          if (plan_ok) {
            const auto driver_result = driver.create_instance(gpcs);
            ASSERT_TRUE(driver_result.ok());
            // Identical slot choice.
            ASSERT_EQ(plan.segments().back().placement.start_slot,
                      driver.find_instance(driver_result.value())->placement.start_slot)
                << "seed " << GetParam();
            handles.push_back(driver_result.value());
          }
        }
      }
      // Occupancy must match exactly after every operation.
      ASSERT_EQ(plan.occupied_mask(), driver.occupied_mask()) << "seed " << GetParam();
      ASSERT_EQ(plan.allocated_gpcs(), driver.allocated_gpcs()) << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanDriverDifferential,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u, 707u, 808u));

}  // namespace
}  // namespace parva
