// Integration tests across the whole stack: scheduler -> deployer ->
// simulated cluster -> discrete-event serving -> metrics, for every
// scenario. These encode the paper's headline claims as executable
// invariants.
#include <gtest/gtest.h>

#include <map>

#include "core/deployer.hpp"
#include "core/metrics.hpp"
#include "core/parvagpu.hpp"
#include "core/reconfigure.hpp"
#include "scenarios/experiment.hpp"
#include "serving/cluster_sim.hpp"
#include "tests/core/test_support.hpp"

namespace parva {
namespace {

using core::testing::builtin_profiles;
using scenarios::all_scenarios;
using scenarios::ExperimentContext;
using scenarios::Framework;

const ExperimentContext& context() {
  static const ExperimentContext ctx = ExperimentContext::create();
  return ctx;
}

// === Paper claim: ParvaGPU never violates an SLO (Fig. 8). ===
class SloComplianceProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(SloComplianceProperty, ParvaGpuFullyCompliant) {
  const auto& sc = scenarios::scenario(GetParam());
  core::ParvaGpuScheduler scheduler(builtin_profiles());
  const auto schedule = scheduler.schedule(sc.services).value();
  serving::ClusterSimulation sim(schedule.deployment, sc.services, context().perf());
  serving::SimulationOptions options;
  options.duration_ms = 6'000.0;
  options.warmup_ms = 500.0;
  const auto result = sim.run(options);
  EXPECT_DOUBLE_EQ(result.worst_compliance(), 1.0) << GetParam();
  // And the measured slack stays low (paper band 3-5%; we allow < 12%).
  EXPECT_LT(result.internal_slack, 0.12) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, SloComplianceProperty,
                         ::testing::Values("S1", "S2", "S3", "S4", "S5", "S6"));

// === Paper claim: ParvaGPU's deployment map materialises on real
//     control-plane semantics without a single rejected call. ===
class DeployabilityProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(DeployabilityProperty, PlanDeploysOnSimulatedCluster) {
  const auto& sc = scenarios::scenario(GetParam());
  core::ParvaGpuScheduler scheduler(builtin_profiles());
  const auto schedule = scheduler.schedule(sc.services).value();

  gpu::GpuCluster cluster(8);  // one p4de.24xlarge; grows elastically
  gpu::NvmlSim nvml(cluster);
  perfmodel::AnalyticalPerfModel perf(perfmodel::ModelCatalog::builtin());
  core::Deployer deployer(nvml, perf);
  const auto state = deployer.deploy(schedule.deployment);
  ASSERT_TRUE(state.ok()) << state.error().to_string();
  EXPECT_EQ(cluster.gpus_in_use(), static_cast<std::size_t>(schedule.deployment.gpu_count));
  // No control-plane operation failed.
  for (const auto& op : nvml.operation_log()) {
    EXPECT_EQ(op.find("FAILED"), std::string::npos) << op;
  }
  ASSERT_TRUE(deployer.teardown(state.value()).ok());
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, DeployabilityProperty,
                         ::testing::Values("S1", "S2", "S3", "S4", "S5", "S6"));

// === Paper claim: variants relate as published. ===
TEST(EndToEndTest, VariantOrderingAcrossScenarios) {
  for (const auto& sc : all_scenarios()) {
    const auto parva = run_experiment(context(), Framework::kParvaGpu, sc);
    const auto single = run_experiment(context(), Framework::kParvaGpuSingle, sc);
    const auto unopt = run_experiment(context(), Framework::kParvaGpuUnoptimized, sc);
    ASSERT_TRUE(parva.feasible && single.feasible && unopt.feasible) << sc.name;
    EXPECT_LE(parva.gpu_count, single.gpu_count) << sc.name;
    EXPECT_LE(parva.gpu_count, unopt.gpu_count) << sc.name;
    EXPECT_LE(parva.internal_slack, single.internal_slack + 1e-9) << sc.name;
  }
}

// === Paper claim: the SLO-change path reconfigures only the touched
//     service and the result still serves all load compliantly. ===
TEST(EndToEndTest, ReconfigurationKeepsClusterServing) {
  const auto& sc = scenarios::scenario("S2");
  core::ParvaGpuScheduler scheduler(builtin_profiles());
  (void)scheduler.schedule(sc.services).value();
  auto plan = scheduler.last_plan();
  auto configured = scheduler.last_configured();

  // Tighten inception's SLO (service id 4 in S2) to the S3 level.
  core::ServiceSpec updated = sc.services[4];
  ASSERT_EQ(updated.model, "inceptionv3");
  updated.slo_latency_ms = 282;
  core::Reconfigurer reconfigurer{core::SegmentConfigurator(), core::SegmentAllocator()};
  ASSERT_TRUE(
      reconfigurer.update_service(plan, configured, updated, builtin_profiles()).ok());

  std::vector<core::ServiceSpec> services = sc.services;
  services[4] = updated;
  const auto deployment = core::ParvaGpuScheduler::to_deployment(plan, "ParvaGPU");
  core::Deployment with_models = deployment;
  for (auto& unit : with_models.units) {
    for (const auto& spec : services) {
      if (spec.id == unit.service_id) unit.model = spec.model;
    }
  }
  serving::ClusterSimulation sim(with_models, services, context().perf());
  serving::SimulationOptions options;
  options.duration_ms = 4'000.0;
  const auto result = sim.run(options);
  EXPECT_DOUBLE_EQ(result.worst_compliance(), 1.0);
}

// === Paper claim: two-stage scheduling stays fast as services scale
//     (Fig. 11): 10x the services must cost far less than 100x the time
//     of the heavyweight baseline. ===
TEST(EndToEndTest, SchedulingScalesNearLinearly) {
  const auto fold1 = scenarios::scale_scenario(scenarios::scenario("S5"), 1);
  const auto fold6 = scenarios::scale_scenario(scenarios::scenario("S5"), 6);
  auto median = [&](const scenarios::Scenario& sc) {
    std::vector<double> delays;
    for (int i = 0; i < 7; ++i) {
      delays.push_back(
          run_experiment(context(), Framework::kParvaGpu, sc).scheduling_delay_ms);
    }
    std::sort(delays.begin(), delays.end());
    return delays[delays.size() / 2];
  };
  const double d1 = median(fold1);
  const double d6 = median(fold6);
  EXPECT_LT(d6, 60.0 * std::max(d1, 0.005))
      << "ParvaGPU's delay must not blow up with service count";
}

// === Deterministic serving capacity: the DES measured rate matches the
//     offered rate for every service of every scenario (no starvation). ===
TEST(EndToEndTest, NoServiceStarvation) {
  const auto& sc = scenarios::scenario("S6");
  core::ParvaGpuScheduler scheduler(builtin_profiles());
  const auto schedule = scheduler.schedule(sc.services).value();
  serving::ClusterSimulation sim(schedule.deployment, sc.services, context().perf());
  serving::SimulationOptions options;
  options.duration_ms = 4'000.0;
  const auto result = sim.run(options);
  for (const auto& outcome : result.services) {
    EXPECT_GT(outcome.measured_rate, 0.85 * outcome.offered_rate)
        << "service " << outcome.service_id;
  }
}

}  // namespace
}  // namespace parva
