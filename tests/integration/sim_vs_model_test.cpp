// Differential test: discrete-event simulator vs. the analytical perf law.
//
// The simulator executes a deployment with jittered per-batch service times
// derived from the unit's ground-truth latency; the analytical model
// predicts the same operating point in closed form (L(g,b,p) and T(g,b,p)).
// The two implementations are independent enough that agreement pins both:
//
//  * at saturation (offered rate slightly above capacity, paced arrivals)
//    the measured completion rate must match the analytic throughput within
//    5% — including the paper's InceptionV3 anchors at g=1, b=4;
//  * below saturation a lone request is served as a batch of one, so the
//    median latency must match the fill-scaled analytic latency within 5%
//    and the measured rate must track the offered rate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gpu/mig_geometry.hpp"
#include "perfmodel/analytical_model.hpp"
#include "serving/cluster_sim.hpp"

namespace parva::serving {
namespace {

struct OperatingPoint {
  std::string model;
  int gpcs = 1;
  int batch = 1;
  int procs = 1;
};

class SimVsModelTest : public ::testing::Test {
 protected:
  /// Builds a single-unit deployment pinned at the operating point, with
  /// ground truth taken from the analytical model (as the MIG path does).
  core::Deployment deployment_at(const OperatingPoint& point,
                                 const perfmodel::PerfPoint& perf_point) {
    core::DeployedUnit unit;
    unit.service_id = 0;
    unit.model = point.model;
    unit.gpu_index = 0;
    unit.gpc_grant = point.gpcs;
    unit.placement = gpu::Placement{point.gpcs, gpu::preferred_start_slots(point.gpcs).front()};
    unit.batch = point.batch;
    unit.procs = point.procs;
    unit.planned_throughput = unit.actual_throughput = perf_point.throughput;
    unit.planned_latency_ms = unit.actual_latency_ms = perf_point.latency_ms;
    unit.sm_occupancy = perf_point.sm_occupancy;
    unit.memory_gib = perf_point.memory_gib;

    core::Deployment deployment;
    deployment.framework = "test";
    deployment.uses_mig = true;
    deployment.gpu_count = 1;
    deployment.units.push_back(std::move(unit));
    return deployment;
  }

  SimulationOptions long_options() {
    SimulationOptions options;
    options.duration_ms = 20'000.0;
    options.warmup_ms = 2'000.0;
    options.seed = 11;
    return options;
  }

  /// Sustained request throughput of a saturated run, from the timeline
  /// buckets. `measured_rate` would overstate capacity: it counts every
  /// accepted arrival, including the backlog drained after the horizon, so
  /// an oversaturated unit still "measures" the offered rate. Completions
  /// inside the window are the honest signal; the first two buckets are
  /// skipped to let the queue reach steady state (all batches full).
  double sustained_rate(const OperatingPoint& point, const SimulationResult& result,
                        double bucket_ms) {
    constexpr std::size_t kSkip = 2;
    if (result.timeline.size() <= kSkip) return 0.0;
    std::uint64_t batches = 0;
    for (std::size_t b = kSkip; b < result.timeline.size(); ++b) {
      batches += static_cast<std::uint64_t>(result.timeline[b].batches);
    }
    const double span_s =
        static_cast<double>(result.timeline.size() - kSkip) * bucket_ms / 1000.0;
    return static_cast<double>(batches) * static_cast<double>(point.batch) / span_s;
  }

  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
};

// The model x (g,b,p) grid both implementations must agree on.
const OperatingPoint kGrid[] = {
    {"inceptionv3", 1, 4, 1},  // paper anchor: 354 req/s
    {"inceptionv3", 1, 4, 2},  // paper anchor: 444 req/s
    {"inceptionv3", 1, 4, 3},  // paper anchor: 446 req/s
    {"resnet-50", 1, 8, 1},   {"resnet-50", 2, 16, 2}, {"resnet-50", 3, 32, 1},
    {"vgg-19", 2, 8, 1},      {"vgg-19", 4, 16, 2},    {"mobilenetv2", 1, 16, 2},
    {"bert-large", 2, 8, 1},  {"densenet-121", 1, 8, 1},
};

TEST_F(SimVsModelTest, SaturatedThroughputMatchesAnalyticModelWithin5Percent) {
  for (const OperatingPoint& point : kGrid) {
    const auto evaluated =
        perf_.evaluate_mig(point.model, point.gpcs, point.batch, point.procs);
    ASSERT_TRUE(evaluated.ok()) << point.model;
    const double analytic_rate = evaluated.value().throughput;

    // Offer well past capacity: the unit saturates (full batches back to
    // back) and the in-window completion rate is its true throughput.
    const std::vector<core::ServiceSpec> services = {
        {0, point.model, 1e9, analytic_rate * 1.3}};
    const core::Deployment deployment = deployment_at(point, evaluated.value());
    ClusterSimulation sim(deployment, services, perf_);
    SimulationOptions options = long_options();
    options.warmup_ms = 0.0;
    options.timeline_bucket_ms = 1'000.0;
    const SimulationResult result = sim.run(options);

    EXPECT_NEAR(sustained_rate(point, result, options.timeline_bucket_ms), analytic_rate,
                0.05 * analytic_rate)
        << point.model << " g=" << point.gpcs << " b=" << point.batch
        << " p=" << point.procs;
  }
}

TEST_F(SimVsModelTest, InceptionAnchorsReproduceWithinTolerance) {
  // The paper's Section III-B example rates for InceptionV3 on a 1-GPC
  // instance at batch 4: ~354/444/446 req/s for p = 1/2/3. The built-in
  // calibration lands at 416/462/465 (see EXPERIMENTS.md) — within 20% of
  // the paper, exact about the p=2/3 MPS ordering — and the simulator must
  // track the *calibrated* surface within 5%.
  const double anchors[] = {354.0, 444.0, 446.0};
  double previous_rate = 0.0;
  for (int procs = 1; procs <= 3; ++procs) {
    const auto evaluated = perf_.evaluate_mig("inceptionv3", 1, 4, procs);
    ASSERT_TRUE(evaluated.ok());
    const double analytic_rate = evaluated.value().throughput;
    EXPECT_NEAR(analytic_rate, anchors[procs - 1], 0.20 * anchors[procs - 1]) << procs;
    EXPECT_GT(analytic_rate, previous_rate);  // more processes, more rate
    previous_rate = analytic_rate;

    const OperatingPoint point{"inceptionv3", 1, 4, procs};
    const std::vector<core::ServiceSpec> services = {
        {0, "inceptionv3", 1e9, analytic_rate * 1.3}};
    const core::Deployment deployment = deployment_at(point, evaluated.value());
    ClusterSimulation sim(deployment, services, perf_);
    SimulationOptions options = long_options();
    options.warmup_ms = 0.0;
    options.timeline_bucket_ms = 1'000.0;
    const SimulationResult result = sim.run(options);
    EXPECT_NEAR(sustained_rate(point, result, options.timeline_bucket_ms), analytic_rate,
                0.05 * analytic_rate)
        << "p=" << procs;
  }
}

TEST_F(SimVsModelTest, SubSaturationMedianLatencyMatchesScaledAnalyticLatency) {
  for (const OperatingPoint& point : kGrid) {
    const auto evaluated =
        perf_.evaluate_mig(point.model, point.gpcs, point.batch, point.procs);
    ASSERT_TRUE(evaluated.ok()) << point.model;
    const perfmodel::WorkloadTraits* traits = perf_.catalog().find(point.model);
    ASSERT_NE(traits, nullptr);

    // A lone arrival is served immediately as a batch of one, so its
    // latency is the full-batch latency scaled by W(1)/W(b).
    const double full_work =
        perfmodel::AnalyticalPerfModel::batch_work_ms(*traits, point.batch);
    const double solo_work = perfmodel::AnalyticalPerfModel::batch_work_ms(*traits, 1);
    const double solo_latency = evaluated.value().latency_ms * solo_work / full_work;

    // Pace arrivals far enough apart that the unit is idle at each arrival.
    const double offered_rate = 1000.0 / (solo_latency * 1.25);
    const std::vector<core::ServiceSpec> services = {{0, point.model, 1e9, offered_rate}};
    const core::Deployment deployment = deployment_at(point, evaluated.value());
    ClusterSimulation sim(deployment, services, perf_);
    const SimulationResult result = sim.run(long_options());

    ASSERT_GT(result.services[0].requests, 100u) << point.model;
    EXPECT_NEAR(result.services[0].request_latency_ms.percentile(50.0), solo_latency,
                0.05 * solo_latency)
        << point.model << " g=" << point.gpcs << " b=" << point.batch
        << " p=" << point.procs;
    // Nothing queues, so completions track arrivals.
    EXPECT_NEAR(result.services[0].measured_rate, offered_rate, 0.05 * offered_rate)
        << point.model;
  }
}

}  // namespace
}  // namespace parva::serving
