#include "telemetry/event_log.hpp"

#include <gtest/gtest.h>

#include <string>

namespace parva::telemetry {
namespace {

TEST(EventLogTest, RecordAssignsMonotonicSequence) {
  EventLog log;
  log.record(EventKind::kGpuFailure, 10.0, 2);
  log.record(EventKind::kUnitActivated, 20.0, 1, 3);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[0].kind, EventKind::kGpuFailure);
  EXPECT_EQ(events[0].gpu, 2);
  EXPECT_EQ(events[1].service_id, 3);
}

TEST(EventLogTest, CapacityBoundsAndCountsDrops) {
  EventLog log(2);
  log.record(EventKind::kRequestShed, 1.0);
  log.record(EventKind::kRequestShed, 2.0);
  log.record(EventKind::kRequestShed, 3.0);
  log.record(EventKind::kRequestShed, 4.0);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.capacity(), 2u);
  // Sequence numbers keep advancing through drops, so the export can state
  // its own completeness.
  EXPECT_EQ(log.snapshot().back().seq, 1u);
}

TEST(EventLogTest, ZeroCapacityClampsToOne) {
  EventLog log(0);
  log.record(EventKind::kHealthEvent, 5.0);
  EXPECT_EQ(log.size(), 1u);
}

TEST(EventLogTest, KindNamesAreStable) {
  EXPECT_STREQ(to_string(EventKind::kRequestShed), "request_shed");
  EXPECT_STREQ(to_string(EventKind::kBatchCompleted), "batch_completed");
  EXPECT_STREQ(to_string(EventKind::kGpuFailure), "gpu_failure");
  EXPECT_STREQ(to_string(EventKind::kUnitActivated), "unit_activated");
  EXPECT_STREQ(to_string(EventKind::kInstanceCreated), "instance_created");
  EXPECT_STREQ(to_string(EventKind::kInstanceDestroyed), "instance_destroyed");
  EXPECT_STREQ(to_string(EventKind::kCreateRetry), "create_retry");
  EXPECT_STREQ(to_string(EventKind::kFallbackPlacement), "fallback_placement");
  EXPECT_STREQ(to_string(EventKind::kEpochDecision), "epoch_decision");
  EXPECT_STREQ(to_string(EventKind::kDisplacement), "displacement");
  EXPECT_STREQ(to_string(EventKind::kRepairCompleted), "repair_completed");
  EXPECT_STREQ(to_string(EventKind::kPlanDiff), "plan_diff");
  EXPECT_STREQ(to_string(EventKind::kScheduleCompleted), "schedule_completed");
  EXPECT_STREQ(to_string(EventKind::kHealthEvent), "health_event");
}

TEST(EventLogTest, DetailPayloadIsPreserved) {
  EventLog log;
  log.record(EventKind::kPlanDiff, 0.0, -1, 7, 2.0, "removed=1 added=2 untouched=9");
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail, "removed=1 added=2 untouched=9");
  EXPECT_DOUBLE_EQ(events[0].value, 2.0);
}

}  // namespace
}  // namespace parva::telemetry
