// Integration contract of the telemetry wiring: with a sink attached, the
// simulator's results are identical to a run without one (telemetry only
// reads state), and the recorded counters agree with the result struct.
#include <gtest/gtest.h>

#include "core/parvagpu.hpp"
#include "serving/cluster_sim.hpp"
#include "telemetry/telemetry.hpp"
#include "tests/core/test_support.hpp"

namespace parva::serving {
namespace {

using core::testing::builtin_profiles;
using core::testing::service;

class TelemetrySimTest : public ::testing::Test {
 protected:
  core::Deployment schedule(const std::vector<core::ServiceSpec>& services) {
    core::ParvaGpuScheduler scheduler(builtin_profiles());
    return scheduler.schedule(services).value().deployment;
  }

  SimulationOptions fast_options(std::uint64_t seed = 42) {
    SimulationOptions options;
    options.duration_ms = 3'000.0;
    options.warmup_ms = 500.0;
    options.seed = seed;
    return options;
  }

  perfmodel::AnalyticalPerfModel perf_{perfmodel::ModelCatalog::builtin()};
};

TEST_F(TelemetrySimTest, ResultsIdenticalWithAndWithoutTelemetry) {
  const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 829),
                                                   service(1, "vgg-19", 397, 354)};
  const core::Deployment deployment = schedule(services);
  ClusterSimulation sim(deployment, services, perf_);

  const SimulationResult plain = sim.run(fast_options(7));

  telemetry::Telemetry telemetry;
  SimulationOptions instrumented = fast_options(7);
  instrumented.telemetry = &telemetry;
  const SimulationResult observed = sim.run(instrumented);

  ASSERT_EQ(plain.services.size(), observed.services.size());
  for (std::size_t s = 0; s < plain.services.size(); ++s) {
    EXPECT_EQ(plain.services[s].requests, observed.services[s].requests);
    EXPECT_EQ(plain.services[s].batches, observed.services[s].batches);
    EXPECT_EQ(plain.services[s].violated_batches, observed.services[s].violated_batches);
    EXPECT_EQ(plain.services[s].shed_requests, observed.services[s].shed_requests);
    EXPECT_DOUBLE_EQ(plain.services[s].request_latency_ms.mean(),
                     observed.services[s].request_latency_ms.mean());
  }
  EXPECT_EQ(plain.events_processed, observed.events_processed);
  EXPECT_DOUBLE_EQ(plain.internal_slack, observed.internal_slack);
}

TEST_F(TelemetrySimTest, CountersAgreeWithResult) {
  const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 829)};
  const core::Deployment deployment = schedule(services);
  ClusterSimulation sim(deployment, services, perf_);

  telemetry::Telemetry telemetry;
  SimulationOptions options = fast_options();
  options.telemetry = &telemetry;
  const SimulationResult result = sim.run(options);

  double batches = -1.0;
  double requests = -1.0;
  double events = -1.0;
  double latency_count = -1.0;
  for (const auto& s : telemetry.metrics().scrape()) {
    if (s.name == "parva_sim_batches_total") batches = s.value;
    if (s.name == "parva_sim_requests_total" && s.labels == "service=\"0\"") {
      requests = s.value;
    }
    if (s.name == "parva_sim_events_total") events = s.value;
    if (s.name == "parva_sim_request_latency_ms") latency_count = s.count;
  }
  ASSERT_EQ(result.services.size(), 1u);
  EXPECT_DOUBLE_EQ(batches, static_cast<double>(result.services[0].batches));
  EXPECT_DOUBLE_EQ(requests, static_cast<double>(result.services[0].requests));
  EXPECT_DOUBLE_EQ(latency_count, static_cast<double>(result.services[0].requests));
  EXPECT_DOUBLE_EQ(events, static_cast<double>(result.events_processed));
}

TEST_F(TelemetrySimTest, SchedulerEmitsCompletionEvent) {
  telemetry::Telemetry telemetry;
  core::ParvaGpuOptions options;
  options.telemetry = &telemetry;
  core::ParvaGpuScheduler scheduler(builtin_profiles(), options);
  const std::vector<core::ServiceSpec> services = {service(0, "resnet-50", 205, 829)};
  ASSERT_TRUE(scheduler.schedule(services).ok());

  bool saw_schedule = false;
  for (const auto& event : telemetry.events().snapshot()) {
    if (event.kind == telemetry::EventKind::kScheduleCompleted) saw_schedule = true;
  }
  EXPECT_TRUE(saw_schedule);
  double runs = 0.0;
  for (const auto& s : telemetry.metrics().scrape()) {
    if (s.name == "parva_schedule_runs_total") runs = s.value;
  }
  EXPECT_DOUBLE_EQ(runs, 1.0);
}

}  // namespace
}  // namespace parva::serving
