#include "telemetry/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace parva::telemetry {
namespace {

double scalar(const MetricsRegistry& registry, const std::string& name,
              const std::string& labels = "") {
  for (const MetricSnapshot& s : registry.scrape()) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  ADD_FAILURE() << "series not found: " << name << "{" << labels << "}";
  return 0.0;
}

TEST(MetricsRegistryTest, CounterAccumulates) {
  MetricsRegistry registry;
  Counter c = registry.counter("requests_total", "Requests");
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(scalar(registry, "requests_total"), 3.5);
}

TEST(MetricsRegistryTest, GetOrCreateSharesOneSeries) {
  MetricsRegistry registry;
  registry.counter("hits_total").inc();
  registry.counter("hits_total").inc();
  EXPECT_EQ(registry.series_count(), 1u);
  EXPECT_DOUBLE_EQ(scalar(registry, "hits_total"), 2.0);
}

TEST(MetricsRegistryTest, LabelsCreateDistinctSeries) {
  MetricsRegistry registry;
  registry.counter("shed_total", "", "service=\"0\"").inc(3.0);
  registry.counter("shed_total", "", "service=\"1\"").inc(7.0);
  EXPECT_EQ(registry.series_count(), 2u);
  EXPECT_DOUBLE_EQ(scalar(registry, "shed_total", "service=\"0\""), 3.0);
  EXPECT_DOUBLE_EQ(scalar(registry, "shed_total", "service=\"1\""), 7.0);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW((void)registry.gauge("x"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("x", {1.0}), std::logic_error);
}

TEST(MetricsRegistryTest, HistogramBoundsMismatchThrows) {
  MetricsRegistry registry;
  (void)registry.histogram("latency_ms", {1.0, 5.0});
  EXPECT_NO_THROW((void)registry.histogram("latency_ms", {1.0, 5.0}));
  EXPECT_THROW((void)registry.histogram("latency_ms", {1.0, 10.0}), std::logic_error);
}

TEST(MetricsRegistryTest, GaugeKeepsLastValue) {
  MetricsRegistry registry;
  Gauge g = registry.gauge("fleet_gpus");
  g.set(12.0);
  g.set(9.0);
  EXPECT_DOUBLE_EQ(scalar(registry, "fleet_gpus"), 9.0);
}

TEST(MetricsRegistryTest, HistogramBucketsSumAndCount) {
  MetricsRegistry registry;
  HistogramMetric h = registry.histogram("latency_ms", {1.0, 5.0, 25.0});
  for (double v : {0.5, 3.0, 4.0, 30.0, 100.0}) h.observe(v);
  const auto snapshots = registry.scrape();
  ASSERT_EQ(snapshots.size(), 1u);
  const MetricSnapshot& s = snapshots.front();
  EXPECT_EQ(s.kind, MetricKind::kHistogram);
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.bucket_counts.size(), 4u);  // three finite bounds + (+Inf)
  EXPECT_DOUBLE_EQ(s.bucket_counts[0], 1.0);  // <= 1
  EXPECT_DOUBLE_EQ(s.bucket_counts[1], 2.0);  // (1, 5]
  EXPECT_DOUBLE_EQ(s.bucket_counts[2], 0.0);  // (5, 25]
  EXPECT_DOUBLE_EQ(s.bucket_counts[3], 2.0);  // > 25
  EXPECT_DOUBLE_EQ(s.sum, 137.5);
  EXPECT_DOUBLE_EQ(s.count, 5.0);
}

TEST(MetricsRegistryTest, DefaultHandlesAreNoOps) {
  Counter c;
  Gauge g;
  HistogramMetric h;
  c.inc();
  g.set(1.0);
  h.observe(1.0);  // must not crash; nothing is registered anywhere
}

TEST(MetricsRegistryTest, ScrapeSortsByNameThenLabels) {
  MetricsRegistry registry;
  registry.counter("b_total", "", "k=\"2\"").inc();
  registry.counter("b_total", "", "k=\"1\"").inc();
  registry.counter("a_total").inc();
  const auto snapshots = registry.scrape();
  ASSERT_EQ(snapshots.size(), 3u);
  EXPECT_EQ(snapshots[0].name, "a_total");
  EXPECT_EQ(snapshots[1].labels, "k=\"1\"");
  EXPECT_EQ(snapshots[2].labels, "k=\"2\"");
}

TEST(MetricsRegistryTest, ShardGrowthKeepsEarlierValues) {
  // Interleave registration and writes so each new series forces the
  // caller's shard to grow after earlier slots already hold counts.
  MetricsRegistry registry;
  constexpr int kSeries = 200;
  for (int i = 0; i < kSeries; ++i) {
    registry.counter("series_" + std::to_string(i) + "_total").inc(static_cast<double>(i + 1));
  }
  const auto snapshots = registry.scrape();
  ASSERT_EQ(snapshots.size(), static_cast<std::size_t>(kSeries));
  for (int i = 0; i < kSeries; ++i) {
    EXPECT_DOUBLE_EQ(scalar(registry, "series_" + std::to_string(i) + "_total"),
                     static_cast<double>(i + 1));
  }
}

TEST(MetricsRegistryTest, ConcurrentWritersMergeExactly) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter c = registry.counter("concurrent_total");
      HistogramMetric h = registry.histogram("concurrent_ms", {10.0, 100.0});
      for (int i = 0; i < kIncrements; ++i) {
        c.inc();
        h.observe(static_cast<double>(i % 200));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(scalar(registry, "concurrent_total"),
                   static_cast<double>(kThreads) * kIncrements);
  for (const MetricSnapshot& s : registry.scrape()) {
    if (s.name != "concurrent_ms") continue;
    EXPECT_DOUBLE_EQ(s.count, static_cast<double>(kThreads) * kIncrements);
  }
}

// Regression: scrape() must be a pure function of the contribution
// multiset, not of shard registration (thread-arrival) order. Double
// addition is not associative, so the pre-fix registration-order merge let
// two runs whose threads first touched the registry in a different order
// scrape values differing in the last ulp -- breaking byte-identical
// .prom/.csv exports. 1e16 absorbs 1.0 (the ulp at 1e16 is 2.0), turning
// any order-dependent merge into a full 1.0 difference.
TEST(MetricsRegistryTest, ScrapeMergeIsIndependentOfShardRegistrationOrder) {
  const std::vector<double> values = {1e16, 1.0, -1e16};
  auto scrape_with_order = [&](const std::vector<std::size_t>& order) {
    MetricsRegistry registry;
    Counter c = registry.counter("merge_total");
    for (std::size_t idx : order) {
      // Sequential start+join pins shard registration order to `order`.
      std::thread t([&] { c.inc(values[idx]); });
      t.join();
    }
    return scalar(registry, "merge_total");
  };
  const double sum_012 = scrape_with_order({0, 1, 2});
  const double sum_021 = scrape_with_order({0, 2, 1});
  const double sum_210 = scrape_with_order({2, 1, 0});
  EXPECT_EQ(sum_012, sum_021);
  EXPECT_EQ(sum_021, sum_210);
}

TEST(MetricsRegistryTest, FreshRegistryReusesThreadCacheSafely) {
  // The thread-local shard cache is keyed by a process-unique registry id;
  // a new registry on the same thread must not see the old one's slots.
  {
    MetricsRegistry first;
    first.counter("v_total").inc(5.0);
  }
  MetricsRegistry second;
  second.counter("v_total").inc(1.0);
  EXPECT_DOUBLE_EQ(scalar(second, "v_total"), 1.0);
}

}  // namespace
}  // namespace parva::telemetry
