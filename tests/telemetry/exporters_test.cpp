// Golden-file tests for the three exporters. The expected strings are
// exact: exporters emit no timestamps and scrape in sorted (name, labels)
// order, so any byte change here is a deliberate format change.
#include "telemetry/exporters.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"

namespace parva::telemetry {
namespace {

/// A small, fixed registry exercising every metric kind and label shape.
void fill_sample(MetricsRegistry& registry) {
  registry.counter("requests_total", "Requests served", "service=\"1\"").inc(3.0);
  registry.counter("requests_total", "Requests served", "service=\"0\"").inc(5.0);
  registry.gauge("fleet_gpus", "GPUs in use").set(4.0);
  HistogramMetric h = registry.histogram("latency_ms", {1.0, 5.0}, "Batch latency");
  h.observe(0.5);
  h.observe(2.0);
  h.observe(10.0);
}

TEST(ExportersTest, PrometheusGolden) {
  MetricsRegistry registry;
  fill_sample(registry);
  const std::string expected =
      "# HELP fleet_gpus GPUs in use\n"
      "# TYPE fleet_gpus gauge\n"
      "fleet_gpus 4\n"
      "# HELP latency_ms Batch latency\n"
      "# TYPE latency_ms histogram\n"
      "latency_ms_bucket{le=\"1\"} 1\n"
      "latency_ms_bucket{le=\"5\"} 2\n"
      "latency_ms_bucket{le=\"+Inf\"} 3\n"
      "latency_ms_sum 12.5\n"
      "latency_ms_count 3\n"
      "# HELP requests_total Requests served\n"
      "# TYPE requests_total counter\n"
      "requests_total{service=\"0\"} 5\n"
      "requests_total{service=\"1\"} 3\n";
  EXPECT_EQ(to_prometheus(registry), expected);
}

TEST(ExportersTest, CsvSummaryGolden) {
  MetricsRegistry registry;
  fill_sample(registry);
  const std::string expected =
      "metric,labels,value\n"
      "fleet_gpus,,4\n"
      "latency_ms_count,,3\n"
      "latency_ms_sum,,12.5\n"
      "latency_ms_mean,,4.16667\n"
      "latency_ms_p50,,5\n"
      "latency_ms_p95,,5\n"
      "latency_ms_p99,,5\n"
      "requests_total,\"service=\"\"0\"\"\",5\n"
      "requests_total,\"service=\"\"1\"\"\",3\n";
  EXPECT_EQ(to_csv_summary(registry), expected);
}

// The bugfix regression: the CSV/.prom quantiles and Samples::percentile
// must agree when observations sit exactly on bucket bounds — one rank
// convention (rank = q/100 * (n-1), linear interpolation) applied to
// le-inclusive cumulative buckets. Before the fix the exporter had no
// quantile at all and ad-hoc consumers used the nearest-rank convention,
// so a CSV p99 and a report p99 could disagree by a whole bucket.
TEST(ExportersTest, HistogramQuantileMatchesSamplesPercentileOnBounds) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0, 8.0, 16.0};
  MetricsRegistry registry;
  HistogramMetric h = registry.histogram("on_bounds_ms", bounds, "");
  Samples samples;
  // 17 observations, every one exactly on a bucket bound, skewed low.
  const std::vector<double> values = {1, 1, 1, 1, 1, 2, 2, 2, 2, 4, 4, 4, 8, 8, 8, 16, 16};
  for (const double v : values) {
    h.observe(v);
    samples.add(v);
  }
  const std::vector<MetricSnapshot> scraped = registry.scrape();
  ASSERT_EQ(scraped.size(), 1u);
  for (const double q : {0.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(histogram_quantile(scraped[0], q), samples.percentile(q)) << "q=" << q;
  }
}

TEST(ExportersTest, HistogramQuantileEdgeCases) {
  MetricsRegistry registry;
  HistogramMetric h = registry.histogram("edge_ms", {1.0, 5.0}, "");
  // Empty histogram: 0.0, not a crash.
  EXPECT_EQ(histogram_quantile(registry.scrape()[0], 99.0), 0.0);
  // Single observation: that observation's bucket at every quantile.
  h.observe(3.0);
  EXPECT_EQ(histogram_quantile(registry.scrape()[0], 0.0), 5.0);
  EXPECT_EQ(histogram_quantile(registry.scrape()[0], 100.0), 5.0);
  // Overflow observations clamp to the highest finite bound.
  h.observe(100.0);
  EXPECT_EQ(histogram_quantile(registry.scrape()[0], 100.0), 5.0);
  // Scalar snapshots report 0.0.
  MetricsRegistry scalars;
  scalars.counter("c_total", "").inc();
  EXPECT_EQ(histogram_quantile(scalars.scrape()[0], 50.0), 0.0);
}

TEST(ExportersTest, JsonLinesGolden) {
  EventLog log;
  log.record(EventKind::kGpuFailure, 10'000.0, 2);
  log.record(EventKind::kRepairCompleted, 10'800.0, 2, -1, 800.0, "replaced=3 retries=1");
  log.record(EventKind::kRequestShed, 10'100.5, -1, 4);
  const std::string expected =
      "{\"seq\":0,\"t_ms\":10000,\"kind\":\"gpu_failure\",\"gpu\":2}\n"
      "{\"seq\":1,\"t_ms\":10800,\"kind\":\"repair_completed\",\"gpu\":2,\"value\":800,"
      "\"detail\":\"replaced=3 retries=1\"}\n"
      "{\"seq\":2,\"t_ms\":10100.5,\"kind\":\"request_shed\",\"service\":4}\n";
  EXPECT_EQ(to_json_lines(log), expected);
}

TEST(ExportersTest, JsonEscapesQuotesAndBackslashes) {
  EventLog log;
  log.record(EventKind::kHealthEvent, 1.0, 0, -1, 0.0, "path=\"a\\b\"");
  const std::string out = to_json_lines(log);
  EXPECT_NE(out.find("\"detail\":\"path=\\\"a\\\\b\\\"\""), std::string::npos) << out;
}

TEST(ExportersTest, MetricValueFormatting) {
  EXPECT_EQ(format_metric_value(0.0), "0");
  EXPECT_EQ(format_metric_value(42.0), "42");
  EXPECT_EQ(format_metric_value(-3.0), "-3");
  EXPECT_EQ(format_metric_value(12.5), "12.5");
  EXPECT_EQ(format_metric_value(1.0 / 3.0), "0.333333");
}

TEST(ExportersTest, EmptyInputsExportEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(to_prometheus(registry), "");
  EXPECT_EQ(to_csv_summary(registry), "metric,labels,value\n");
  EventLog log;
  EXPECT_EQ(to_json_lines(log), "");
}

}  // namespace
}  // namespace parva::telemetry
