// CachedPerfModel must be a transparent memo: identical results (bit-level)
// to the wrapped model for every query, hits on repeats, and correct
// caching of failed evaluations.
#include "perfmodel/perf_cache.hpp"

#include <gtest/gtest.h>

namespace parva::perfmodel {
namespace {

class PerfCacheTest : public ::testing::Test {
 protected:
  AnalyticalPerfModel model_{ModelCatalog::builtin()};
  CachedPerfModel cache_{model_};
};

void expect_same(const Result<PerfPoint>& got, const Result<PerfPoint>& want) {
  ASSERT_EQ(got.ok(), want.ok());
  if (!got.ok()) {
    EXPECT_EQ(got.error().code(), want.error().code());
    return;
  }
  EXPECT_EQ(got.value().throughput, want.value().throughput);
  EXPECT_EQ(got.value().latency_ms, want.value().latency_ms);
  EXPECT_EQ(got.value().sm_occupancy, want.value().sm_occupancy);
  EXPECT_EQ(got.value().memory_gib, want.value().memory_gib);
}

TEST_F(PerfCacheTest, MigResultsIdenticalToModel) {
  const WorkloadTraits* traits = model_.catalog().find("resnet-50");
  ASSERT_NE(traits, nullptr);
  for (int gpcs : {1, 2, 3, 4, 7}) {
    for (int batch : {1, 8, 128}) {
      for (int procs : {1, 3}) {
        expect_same(cache_.evaluate_mig(*traits, gpcs, batch, procs),
                    model_.evaluate_mig(*traits, gpcs, batch, procs));
      }
    }
  }
}

TEST_F(PerfCacheTest, MpsResultsIdenticalToModel) {
  const WorkloadTraits* traits = model_.catalog().find("vgg-16");
  ASSERT_NE(traits, nullptr);
  for (double fraction : {0.1, 0.5, 1.0}) {
    for (int batch : {1, 16, 128}) {
      for (double inflation : {1.0, 1.3}) {
        expect_same(cache_.evaluate_mps_share(*traits, fraction, batch, 1, inflation),
                    model_.evaluate_mps_share(*traits, fraction, batch, 1, inflation));
      }
    }
  }
}

TEST_F(PerfCacheTest, RepeatsHitTheMemo) {
  const WorkloadTraits* traits = model_.catalog().find("resnet-50");
  ASSERT_NE(traits, nullptr);
  (void)cache_.evaluate_mig(*traits, 2, 16, 1);
  EXPECT_EQ(cache_.hits(), 0u);
  EXPECT_EQ(cache_.misses(), 1u);
  for (int i = 0; i < 5; ++i) {
    expect_same(cache_.evaluate_mig(*traits, 2, 16, 1),
                model_.evaluate_mig(*traits, 2, 16, 1));
  }
  EXPECT_EQ(cache_.hits(), 5u);
  EXPECT_EQ(cache_.misses(), 1u);
}

TEST_F(PerfCacheTest, FailuresAreCachedToo) {
  // bert-large at batch 128 on one GPC exceeds the memory grant: the model
  // fails, and the cached failure must replay without re-evaluating.
  const WorkloadTraits* traits = model_.catalog().find("bert-large");
  ASSERT_NE(traits, nullptr);
  const auto direct = model_.evaluate_mig(*traits, 1, 128, 3);
  ASSERT_FALSE(direct.ok());
  expect_same(cache_.evaluate_mig(*traits, 1, 128, 3), direct);
  expect_same(cache_.evaluate_mig(*traits, 1, 128, 3), direct);
  EXPECT_EQ(cache_.hits(), 1u);
  EXPECT_EQ(cache_.misses(), 1u);
}

TEST_F(PerfCacheTest, DistinguishesMigFromMpsAndKeysOnAllArguments) {
  const WorkloadTraits* traits = model_.catalog().find("mobilenetv2");
  ASSERT_NE(traits, nullptr);
  // gpcs=1 (mig) and fraction with the same bit pattern must not collide.
  expect_same(cache_.evaluate_mig(*traits, 1, 8, 1), model_.evaluate_mig(*traits, 1, 8, 1));
  expect_same(cache_.evaluate_mps_share(*traits, 1.0, 8, 1, 1.0),
              model_.evaluate_mps_share(*traits, 1.0, 8, 1, 1.0));
  // Same point, different inflation: distinct entries.
  expect_same(cache_.evaluate_mps_share(*traits, 1.0, 8, 1, 1.2),
              model_.evaluate_mps_share(*traits, 1.0, 8, 1, 1.2));
  EXPECT_EQ(cache_.misses(), 3u);
}

}  // namespace
}  // namespace parva::perfmodel
