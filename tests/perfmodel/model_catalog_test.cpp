#include "perfmodel/model_catalog.hpp"

#include <gtest/gtest.h>

namespace parva::perfmodel {
namespace {

TEST(ModelCatalogTest, BuiltinHasElevenModels) {
  const ModelCatalog& catalog = ModelCatalog::builtin();
  EXPECT_EQ(catalog.size(), 11u);
}

TEST(ModelCatalogTest, TableIvModelsPresent) {
  const ModelCatalog& catalog = ModelCatalog::builtin();
  for (const char* name :
       {"bert-large", "densenet-121", "densenet-169", "densenet-201", "inceptionv3",
        "mobilenetv2", "resnet-101", "resnet-152", "resnet-50", "vgg-16", "vgg-19"}) {
    EXPECT_NE(catalog.find(name), nullptr) << name;
  }
}

TEST(ModelCatalogTest, ParameterCountsMatchTableIv) {
  const ModelCatalog& catalog = ModelCatalog::builtin();
  EXPECT_DOUBLE_EQ(catalog.at("bert-large").params_millions, 330.0);
  EXPECT_DOUBLE_EQ(catalog.at("mobilenetv2").params_millions, 3.5);
  EXPECT_DOUBLE_EQ(catalog.at("vgg-19").params_millions, 143.7);
  EXPECT_DOUBLE_EQ(catalog.at("resnet-50").params_millions, 25.6);
}

TEST(ModelCatalogTest, UnknownModel) {
  const ModelCatalog& catalog = ModelCatalog::builtin();
  EXPECT_EQ(catalog.find("gpt-5"), nullptr);
  EXPECT_THROW(catalog.at("gpt-5"), std::logic_error);
}

TEST(ModelCatalogTest, TraitsArePhysicallySensible) {
  for (const WorkloadTraits& traits : ModelCatalog::builtin().all()) {
    EXPECT_GT(traits.w0, 0.0) << traits.name;
    EXPECT_GT(traits.w1, 0.0) << traits.name;
    EXPECT_GT(traits.pi0, 0.0) << traits.name;
    EXPECT_GT(traits.pi1, 0.0) << traits.name;
    EXPECT_GT(traits.host_ms, 0.0) << traits.name;
    EXPECT_GT(traits.mem0_gib, 0.0) << traits.name;
    EXPECT_GT(traits.mem1_gib, 0.0) << traits.name;
    EXPECT_GE(traits.mem_intensity, 0.0) << traits.name;
    EXPECT_LE(traits.mem_intensity, 1.0) << traits.name;
  }
}

TEST(ModelCatalogTest, BertIsTheHeaviestModel) {
  const ModelCatalog& catalog = ModelCatalog::builtin();
  const double bert_w1 = catalog.at("bert-large").w1;
  for (const WorkloadTraits& traits : catalog.all()) {
    if (traits.name != "bert-large") {
      EXPECT_LT(traits.w1, bert_w1) << traits.name;
    }
  }
}

TEST(ModelCatalogTest, CustomCatalog) {
  ModelCatalog catalog({WorkloadTraits{"toy", 1.0, 1.0, 1.0, 1.0, 0.1, 0.1, 1.0, 1.0, 0.1, 0.2}});
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_NE(catalog.find("toy"), nullptr);
  EXPECT_EQ(catalog.names(), std::vector<std::string>{"toy"});
}

}  // namespace
}  // namespace parva::perfmodel
