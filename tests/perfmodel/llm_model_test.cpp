// Unit tests for the token-based LLM latency model: catalog integrity, the
// prefill/decode laws and their scaling properties, and the degenerate
// guards the DES engine's bitwise contract leans on (DESIGN.md §4.7).
#include "perfmodel/llm_model.hpp"

#include <gtest/gtest.h>

#include "perfmodel/model_catalog.hpp"

namespace parva::perfmodel {
namespace {

TEST(LlmCatalogTest, BuiltinRowsAreWellFormed) {
  const LlmCatalog& catalog = LlmCatalog::builtin();
  EXPECT_GE(catalog.size(), 3u);
  for (const LlmTraits& traits : catalog.all()) {
    EXPECT_FALSE(traits.name.empty());
    EXPECT_GT(traits.params_billions, 0.0) << traits.name;
    EXPECT_GT(traits.weight_gib, 0.0) << traits.name;
    EXPECT_GT(traits.prefill_tok_per_s_1g, 0.0) << traits.name;
    EXPECT_GT(traits.decode_tok_per_s_1g, 0.0) << traits.name;
    EXPECT_GT(traits.decode_batch_knee, 1.0) << traits.name;
    EXPECT_GT(traits.kv_bytes_per_token, 0.0) << traits.name;
    // Bigger models prefill slower than smaller ones per GPC.
    EXPECT_LT(traits.decode_tok_per_s_1g, traits.prefill_tok_per_s_1g) << traits.name;
  }
  EXPECT_NE(catalog.find("llama-7b"), nullptr);
  EXPECT_EQ(catalog.find("resnet-50"), nullptr);
  EXPECT_THROW(catalog.at("no-such-model"), std::exception);
}

TEST(LlmCatalogTest, DefaultTraitsCoverUncataloguedModels) {
  const LlmTraits& traits = default_llm_traits();
  EXPECT_GT(traits.prefill_tok_per_s_1g, 0.0);
  EXPECT_GT(traits.decode_tok_per_s_1g, 0.0);
  // Zero weights: a synthetic LLM workload attached to a CNN model name
  // must never turn memory-infeasible through the default traits.
  EXPECT_EQ(traits.weight_gib, 0.0);
}

TEST(LlmModelTest, PrefillScalesLinearlyInTokensAndInverselyInGpcs) {
  const LlmTraits& traits = LlmCatalog::builtin().at("llama-7b");
  const double base = prefill_ms(traits, 1.0, 512.0);
  EXPECT_GT(base, 0.0);
  EXPECT_DOUBLE_EQ(prefill_ms(traits, 1.0, 1024.0), 2.0 * base);
  EXPECT_NEAR(prefill_ms(traits, 4.0, 512.0), base / 4.0, 1e-12);
  EXPECT_EQ(prefill_ms(traits, 1.0, 0.0), 0.0);
  EXPECT_EQ(prefill_ms(traits, 1.0, -5.0), 0.0);
}

TEST(LlmModelTest, DecodeRateSaturatesAtTheKnee) {
  const LlmTraits& traits = LlmCatalog::builtin().at("llama-7b");
  // R(g, 1) = d1 * g.
  EXPECT_NEAR(decode_tok_per_s(traits, 1.0, 1), traits.decode_tok_per_s_1g, 1e-9);
  EXPECT_NEAR(decode_tok_per_s(traits, 3.0, 1), 3.0 * traits.decode_tok_per_s_1g, 1e-9);
  // Monotone non-decreasing in live count, bounded by d1 * g * k.
  double last = 0.0;
  for (int live = 1; live <= 256; live *= 2) {
    const double rate = decode_tok_per_s(traits, 2.0, live);
    EXPECT_GE(rate, last);
    EXPECT_LE(rate, 2.0 * traits.decode_tok_per_s_1g * traits.decode_batch_knee + 1e-9);
    last = rate;
  }
  // Far past the knee the rate approaches the ceiling.
  EXPECT_GT(decode_tok_per_s(traits, 2.0, 1024),
            0.9 * 2.0 * traits.decode_tok_per_s_1g * traits.decode_batch_knee);
}

TEST(LlmModelTest, DecodeStepTimeGrowsWithSharingAndLiveCount) {
  const LlmTraits& traits = LlmCatalog::builtin().at("llama-3b");
  const double solo = decode_step_ms(traits, 2.0, 1, 1, 32);
  EXPECT_GT(solo, 0.0);
  // Two MPS processes halve the per-process bandwidth: steps take twice as
  // long.
  EXPECT_NEAR(decode_step_ms(traits, 2.0, 2, 1, 32), 2.0 * solo, 1e-9);
  // More live requests move more tokens per step; per-step time grows even
  // though aggregate throughput improves.
  EXPECT_GT(decode_step_ms(traits, 2.0, 1, 8, 32), solo);
  // Chunk scaling is exactly linear.
  EXPECT_NEAR(decode_step_ms(traits, 2.0, 1, 4, 64),
              2.0 * decode_step_ms(traits, 2.0, 1, 4, 32), 1e-9);
}

TEST(LlmModelTest, PrefillCostShareIsAProperFraction) {
  for (const LlmTraits& traits : LlmCatalog::builtin().all()) {
    const double share = prefill_cost_share(traits);
    EXPECT_GT(share, 0.0) << traits.name;
    EXPECT_LT(share, 1.0) << traits.name;
  }
}

TEST(LlmModelTest, WithLlmCatalogExtendsBuiltinWithoutChangingIt) {
  const ModelCatalog& base = ModelCatalog::builtin();
  const ModelCatalog& extended = ModelCatalog::with_llm();
  EXPECT_EQ(extended.size(), base.size() + LlmCatalog::builtin().size());
  // Every builtin row survives untouched (same traits object semantics).
  for (const std::string& name : base.names()) {
    ASSERT_NE(extended.find(name), nullptr) << name;
    EXPECT_EQ(extended.find(name)->params_millions, base.find(name)->params_millions);
  }
  // Every LLM row resolves, and its w1 equals the reference-shape token
  // work (prefill + saturated decode) in ms — the calibration contract
  // that keeps the scheduler's sizing consistent with the DES token laws.
  for (const LlmTraits& traits : LlmCatalog::builtin().all()) {
    const auto* row = extended.find(traits.name);
    ASSERT_NE(row, nullptr) << traits.name;
    const double saturated =
        traits.decode_tok_per_s_1g * traits.decode_batch_knee * traits.decode_batch_knee /
        (2.0 * traits.decode_batch_knee - 1.0);
    const double expected_w1 =
        traits.reference_prompt_tokens / traits.prefill_tok_per_s_1g * 1000.0 +
        traits.reference_gen_tokens / saturated * 1000.0;
    EXPECT_NEAR(row->w1, expected_w1, expected_w1 * 0.05) << traits.name;
  }
}

}  // namespace
}  // namespace parva::perfmodel
