#include "perfmodel/analytical_model.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace parva::perfmodel {
namespace {

class AnalyticalModelTest : public ::testing::Test {
 protected:
  AnalyticalPerfModel model_{ModelCatalog::builtin()};
};

TEST_F(AnalyticalModelTest, InceptionAnchorShape) {
  // Section III-B anchor shapes (absolute numbers are calibration-specific,
  // the relations are the paper's findings):
  // (1) g=1,b=4: process stacking gives diminishing throughput but
  //     multiplies latency.
  const auto g1p1 = model_.evaluate_mig("inceptionv3", 1, 4, 1).value();
  const auto g1p2 = model_.evaluate_mig("inceptionv3", 1, 4, 2).value();
  const auto g1p3 = model_.evaluate_mig("inceptionv3", 1, 4, 3).value();
  EXPECT_GT(g1p2.throughput, g1p1.throughput);
  EXPECT_LT(g1p3.throughput - g1p2.throughput, 0.15 * g1p2.throughput);
  EXPECT_GT(g1p2.latency_ms, 1.5 * g1p1.latency_ms);
  EXPECT_GT(g1p3.latency_ms, 2.2 * g1p1.latency_ms);

  // (2) g=4,b=8: stacking roughly doubles throughput at near-flat latency.
  const auto g4p1 = model_.evaluate_mig("inceptionv3", 4, 8, 1).value();
  const auto g4p2 = model_.evaluate_mig("inceptionv3", 4, 8, 2).value();
  const auto g4p3 = model_.evaluate_mig("inceptionv3", 4, 8, 3).value();
  EXPECT_GT(g4p2.throughput, 1.9 * g4p1.throughput);
  EXPECT_LT(g4p2.latency_ms, g4p1.latency_ms);  // host overhead pipelines away
  EXPECT_GT(g4p3.throughput, g4p2.throughput);
  EXPECT_LT(g4p3.latency_ms, 1.5 * g4p1.latency_ms);
}

TEST_F(AnalyticalModelTest, ThroughputLatencyIdentity) {
  // T = 1000 * p * b / L must hold by construction.
  const auto point = model_.evaluate_mig("resnet-50", 2, 16, 2).value();
  EXPECT_NEAR(point.throughput, 1000.0 * 2 * 16 / point.latency_ms, 1e-9);
}

TEST_F(AnalyticalModelTest, LatencyDecreasesWithInstanceSize) {
  double previous = 1e18;
  for (int g : {1, 2, 3, 4, 7}) {
    const auto point = model_.evaluate_mig("vgg-16", g, 32, 1).value();
    EXPECT_LE(point.latency_ms, previous + 1e-9) << "g=" << g;
    previous = point.latency_ms;
  }
}

TEST_F(AnalyticalModelTest, ThroughputIncreasesWithBatch) {
  double previous = 0.0;
  for (int b : {1, 2, 4, 8, 16, 32}) {
    const auto point = model_.evaluate_mig("resnet-101", 2, b, 1).value();
    EXPECT_GE(point.throughput, previous) << "b=" << b;
    previous = point.throughput;
  }
}

TEST_F(AnalyticalModelTest, OutOfMemoryAtLargeBatchOnSmallInstance) {
  // 1g.10gb cannot hold 3 processes at batch 128 for most models.
  const auto result = model_.evaluate_mig("inceptionv3", 1, 128, 3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kOutOfMemory);
  // The same point on a 7g.80gb instance fits.
  EXPECT_TRUE(model_.evaluate_mig("inceptionv3", 7, 128, 3).ok());
}

TEST_F(AnalyticalModelTest, InvalidInstanceSize) {
  const auto result = model_.evaluate_mig("resnet-50", 5, 8, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kInvalidArgument);
}

TEST_F(AnalyticalModelTest, UnknownModel) {
  const auto result = model_.evaluate_mig("unknown", 1, 1, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
}

TEST_F(AnalyticalModelTest, PreconditionsThrow) {
  const auto& traits = ModelCatalog::builtin().at("resnet-50");
  EXPECT_THROW((void)model_.evaluate_mig(traits, 1, 0, 1), std::logic_error);
  EXPECT_THROW((void)model_.evaluate_mig(traits, 1, 1, 0), std::logic_error);
}

TEST_F(AnalyticalModelTest, MpsShareFractionValidation) {
  const auto& traits = ModelCatalog::builtin().at("resnet-50");
  EXPECT_FALSE(model_.evaluate_mps_share(traits, 0.0, 8, 1, 0.0).ok());
  EXPECT_FALSE(model_.evaluate_mps_share(traits, 1.5, 8, 1, 0.0).ok());
  EXPECT_TRUE(model_.evaluate_mps_share(traits, 1.0, 8, 1, 0.0).ok());
}

TEST_F(AnalyticalModelTest, InterferenceInflatesLatency) {
  const auto& traits = ModelCatalog::builtin().at("resnet-50");
  const auto clean = model_.evaluate_mps_share(traits, 0.5, 16, 1, 0.0).value();
  const auto inflated = model_.evaluate_mps_share(traits, 0.5, 16, 1, 0.2).value();
  EXPECT_GT(inflated.latency_ms, clean.latency_ms);
  EXPECT_LT(inflated.throughput, clean.throughput);
  // The GPU part stretches by exactly (1 + inflation); host time does not.
  EXPECT_NEAR((inflated.latency_ms - traits.host_ms) / (clean.latency_ms - traits.host_ms),
              1.2, 1e-9);
}

TEST_F(AnalyticalModelTest, FullGpuShareMatchesSevenGpcInstanceCompute) {
  // A 100% MPS share and a 7-GPC MIG instance expose the same compute; the
  // memory grants differ only by rounding (80 GiB either way).
  const auto& traits = ModelCatalog::builtin().at("vgg-19");
  const auto share = model_.evaluate_mps_share(traits, 1.0, 32, 1, 0.0).value();
  const auto mig = model_.evaluate_mig(traits, 7, 32, 1).value();
  EXPECT_NEAR(share.latency_ms, mig.latency_ms, 1e-9);
}

TEST_F(AnalyticalModelTest, OccupancyWithinBounds) {
  for (const auto& traits : ModelCatalog::builtin().all()) {
    for (int g : {1, 4, 7}) {
      for (int p : {1, 3}) {
        const auto result = model_.evaluate_mig(traits, g, 16, p);
        if (!result.ok()) continue;
        EXPECT_GE(result.value().sm_occupancy, 0.0) << traits.name;
        EXPECT_LE(result.value().sm_occupancy, 1.0) << traits.name;
      }
    }
  }
}

TEST_F(AnalyticalModelTest, SampleLatencyJitterBounded) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const double sample = AnalyticalPerfModel::sample_latency_ms(100.0, rng);
    ASSERT_GE(sample, 91.0 - 1e-9);
    ASSERT_LE(sample, 109.0 + 1e-9);
  }
}

TEST_F(AnalyticalModelTest, H100GenerationScalesCompute) {
  // Same MIG geometry, faster GPCs (paper Section V: Ampere..Blackwell
  // share the instance layout). Compute-bound points speed up by the
  // generation factor; host overhead does not.
  AnalyticalPerfModel h100(ModelCatalog::builtin(), kH100);
  const auto& traits = ModelCatalog::builtin().at("vgg-16");
  const auto a100_point = model_.evaluate_mig(traits, 2, 32, 1).value();
  const auto h100_point = h100.evaluate_mig(traits, 2, 32, 1).value();
  EXPECT_LT(h100_point.latency_ms, a100_point.latency_ms);
  EXPECT_GT(h100_point.throughput, 1.5 * a100_point.throughput);
  // The GPU part scales exactly by the factor; host_ms is unchanged.
  EXPECT_NEAR((a100_point.latency_ms - traits.host_ms) /
                  (h100_point.latency_ms - traits.host_ms),
              kH100.compute_scale, 1e-9);
  EXPECT_STREQ(h100.generation().name, "H100-80GB");
}

TEST_F(AnalyticalModelTest, H100DoesNotChangeMemoryFeasibility) {
  AnalyticalPerfModel h100(ModelCatalog::builtin(), kH100);
  // OOM boundaries are identical: memory grants are per-profile.
  EXPECT_FALSE(h100.evaluate_mig("inceptionv3", 1, 128, 3).ok());
  EXPECT_TRUE(h100.evaluate_mig("inceptionv3", 7, 128, 3).ok());
}

// Property sweep across the whole grid: results are finite, positive, and
// memory accounting is exact.
class GridProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GridProperty, EveryFeasiblePointIsSane) {
  const auto [g, b, p] = GetParam();
  AnalyticalPerfModel model(ModelCatalog::builtin());
  for (const auto& traits : ModelCatalog::builtin().all()) {
    const auto result = model.evaluate_mig(traits, g, b, p);
    const double expected_mem =
        static_cast<double>(p) * AnalyticalPerfModel::process_memory_gib(traits, b);
    if (expected_mem > gpu::instance_memory_gib(g)) {
      EXPECT_FALSE(result.ok()) << traits.name;
      continue;
    }
    ASSERT_TRUE(result.ok()) << traits.name;
    const PerfPoint& point = result.value();
    EXPECT_GT(point.latency_ms, 0.0);
    EXPECT_GT(point.throughput, 0.0);
    EXPECT_NEAR(point.memory_gib, expected_mem, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GridProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7),
                       ::testing::Values(1, 8, 32, 128),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace parva::perfmodel
