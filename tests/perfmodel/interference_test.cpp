#include "perfmodel/interference.hpp"

#include <gtest/gtest.h>

namespace parva::perfmodel {
namespace {

class InterferenceTest : public ::testing::Test {
 protected:
  const ModelCatalog& catalog_ = ModelCatalog::builtin();
};

TEST_F(InterferenceTest, NoCoRunnersNoInterference) {
  const auto& victim = catalog_.at("resnet-50");
  EXPECT_DOUBLE_EQ(true_interference(victim, {}), 0.0);
  EXPECT_DOUBLE_EQ(gpulet_predicted_interference(victim, {}), 0.0);
  EXPECT_DOUBLE_EQ(igniter_predicted_interference(victim, {}), 0.0);
}

TEST_F(InterferenceTest, HomogeneousCoRunnersAreFree) {
  // Same-model MPS sharing is handled by the MPS law, not the
  // interference model (ParvaGPU's design premise).
  const auto& victim = catalog_.at("resnet-50");
  const CoRunner same{&victim, 0.5};
  EXPECT_DOUBLE_EQ(true_interference(victim, {&same, 1}), 0.0);
}

TEST_F(InterferenceTest, TrueInterferenceFormula) {
  const auto& victim = catalog_.at("resnet-50");
  const auto& other = catalog_.at("vgg-16");
  const CoRunner co{&other, 0.5};
  EXPECT_NEAR(true_interference(victim, {&co, 1}),
              kTrueContention * other.mem_intensity * 0.5, 1e-12);
}

TEST_F(InterferenceTest, GpuletIsOptimistic) {
  const auto& victim = catalog_.at("resnet-50");
  const auto& other = catalog_.at("bert-large");
  const CoRunner co{&other, 0.7};
  EXPECT_LT(gpulet_predicted_interference(victim, {&co, 1}),
            true_interference(victim, {&co, 1}));
}

TEST_F(InterferenceTest, IgniterIsNoisyButBounded) {
  const auto& victim = catalog_.at("densenet-121");
  const auto& other = catalog_.at("vgg-19");
  const CoRunner co{&other, 0.6};
  const double truth = kIgniterContention * other.mem_intensity * 0.6;
  const double predicted = igniter_predicted_interference(victim, {&co, 1});
  EXPECT_GE(predicted, truth * (1.0 - kIgniterNoise) - 1e-12);
  EXPECT_LE(predicted, truth * (1.0 + kIgniterNoise) + 1e-12);
  // Deterministic: same pair, same prediction.
  EXPECT_DOUBLE_EQ(predicted, igniter_predicted_interference(victim, {&co, 1}));
}

TEST_F(InterferenceTest, InterferenceAccumulatesAcrossCoRunners) {
  const auto& victim = catalog_.at("resnet-50");
  const auto& a = catalog_.at("vgg-16");
  const auto& b = catalog_.at("bert-large");
  const std::vector<CoRunner> both = {{&a, 0.3}, {&b, 0.3}};
  const std::vector<CoRunner> only_a = {{&a, 0.3}};
  const std::vector<CoRunner> only_b = {{&b, 0.3}};
  EXPECT_NEAR(true_interference(victim, both),
              true_interference(victim, only_a) + true_interference(victim, only_b), 1e-12);
}

TEST_F(InterferenceTest, ScalesWithCoRunnerFraction) {
  const auto& victim = catalog_.at("resnet-50");
  const auto& other = catalog_.at("vgg-16");
  const CoRunner small{&other, 0.2};
  const CoRunner large{&other, 0.8};
  EXPECT_LT(true_interference(victim, {&small, 1}), true_interference(victim, {&large, 1}));
}

TEST_F(InterferenceTest, NullTraitsRejected) {
  const auto& victim = catalog_.at("resnet-50");
  const CoRunner bad{nullptr, 0.5};
  EXPECT_THROW((void)true_interference(victim, {&bad, 1}), std::logic_error);
}

}  // namespace
}  // namespace parva::perfmodel
