#include "scenarios/experiment.hpp"

#include <gtest/gtest.h>

namespace parva::scenarios {
namespace {

const ExperimentContext& context() {
  static const ExperimentContext ctx = ExperimentContext::create();
  return ctx;
}

TEST(ExperimentTest, FrameworkNames) {
  EXPECT_EQ(framework_name(Framework::kGpulet), "gpulet");
  EXPECT_EQ(framework_name(Framework::kIgniter), "iGniter");
  EXPECT_EQ(framework_name(Framework::kMigServing), "MIG-serving");
  EXPECT_EQ(framework_name(Framework::kParvaGpu), "ParvaGPU");
  EXPECT_EQ(framework_name(Framework::kParvaGpuSingle), "ParvaGPU-single");
  EXPECT_EQ(framework_name(Framework::kParvaGpuUnoptimized), "ParvaGPU-unoptimized");
}

TEST(ExperimentTest, FrameworkLists) {
  EXPECT_EQ(headline_frameworks().size(), 4u);
  EXPECT_EQ(all_frameworks().size(), 6u);
}

TEST(ExperimentTest, ContextProfilesAllModels) {
  EXPECT_EQ(context().profiles().size(), 11u);
}

TEST(ExperimentTest, MakeSchedulerProducesDistinctInstances) {
  auto a = context().make_scheduler(Framework::kParvaGpu);
  auto b = context().make_scheduler(Framework::kParvaGpu);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "ParvaGPU");
}

TEST(ExperimentTest, RunWithoutSimulation) {
  const auto result = run_experiment(context(), Framework::kParvaGpu, scenario("S1"));
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.ran_simulation);
  EXPECT_GT(result.gpu_count, 0);
  EXPECT_GE(result.internal_slack, 0.0);
  EXPECT_LE(result.internal_slack, 1.0);
  EXPECT_EQ(result.framework, "ParvaGPU");
  EXPECT_EQ(result.scenario, "S1");
}

TEST(ExperimentTest, RunWithSimulation) {
  ExperimentOptions options;
  options.run_simulation = true;
  options.sim.duration_ms = 2'000.0;
  options.sim.warmup_ms = 200.0;
  const auto result = run_experiment(context(), Framework::kParvaGpu, scenario("S1"), options);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.ran_simulation);
  EXPECT_DOUBLE_EQ(result.slo_compliance, 1.0);
  EXPECT_GE(result.measured_internal_slack, 0.0);
}

TEST(ExperimentTest, InfeasibleFrameworkReported) {
  const auto result = run_experiment(context(), Framework::kIgniter, scenario("S5"));
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.failure.find("capacity_exceeded"), std::string::npos);
}

TEST(ExperimentTest, ParvaGpuBeatsEveryBaselineOnGpuCount) {
  for (const auto& sc : all_scenarios()) {
    const auto parva = run_experiment(context(), Framework::kParvaGpu, sc);
    ASSERT_TRUE(parva.feasible) << sc.name;
    for (Framework framework :
         {Framework::kGpulet, Framework::kIgniter, Framework::kMigServing}) {
      const auto other = run_experiment(context(), framework, sc);
      if (!other.feasible) continue;
      EXPECT_LE(parva.gpu_count, other.gpu_count)
          << sc.name << " vs " << framework_name(framework);
    }
  }
}

TEST(ExperimentTest, TailExclusiveFragmentationNeverExceedsStrict) {
  for (Framework framework : all_frameworks()) {
    const auto result = run_experiment(context(), framework, scenario("S3"));
    if (!result.feasible) continue;
    EXPECT_LE(result.fragmentation_excl_tail,
              result.external_fragmentation + 0.15)
        << framework_name(framework);
  }
}

TEST(ExperimentTest, SeedSweepMatchesSerialRuns) {
  const std::uint64_t seeds[] = {11ULL, 23ULL, 47ULL};
  ExperimentOptions options;
  options.run_simulation = true;
  options.sim.duration_ms = 2'000.0;
  options.sim.warmup_ms = 200.0;
  const auto sweep =
      run_experiment_seeds(context(), Framework::kParvaGpu, scenario("S1"), options, seeds);
  ASSERT_EQ(sweep.size(), 3u);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    options.sim.seed = seeds[i];
    const auto serial = run_experiment(context(), Framework::kParvaGpu, scenario("S1"), options);
    ASSERT_TRUE(sweep[i].feasible);
    EXPECT_EQ(sweep[i].gpu_count, serial.gpu_count);
    EXPECT_EQ(sweep[i].slo_compliance, serial.slo_compliance);
    EXPECT_EQ(sweep[i].worst_service_compliance, serial.worst_service_compliance);
    EXPECT_EQ(sweep[i].measured_internal_slack, serial.measured_internal_slack);
    EXPECT_EQ(sweep[i].worst_p99_over_slo, serial.worst_p99_over_slo);
  }
}

TEST(ExperimentTest, SeedSweepCarriesSchedulingFailure) {
  const std::uint64_t seeds[] = {11ULL};
  ExperimentOptions options;
  options.run_simulation = true;
  const auto sweep =
      run_experiment_seeds(context(), Framework::kIgniter, scenario("S5"), options, seeds);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_FALSE(sweep[0].feasible);
  EXPECT_FALSE(sweep[0].failure.empty());
}

}  // namespace
}  // namespace parva::scenarios
