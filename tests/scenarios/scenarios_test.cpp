#include "scenarios/scenarios.hpp"

#include <gtest/gtest.h>

#include <set>

namespace parva::scenarios {
namespace {

TEST(ScenariosTest, SixScenariosInOrder) {
  const auto& all = all_scenarios();
  ASSERT_EQ(all.size(), 6u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, "S" + std::to_string(i + 1));
  }
}

TEST(ScenariosTest, S1HasSixModels) {
  EXPECT_EQ(scenario("S1").services.size(), 6u);
}

TEST(ScenariosTest, S2ThroughS6HaveElevenModels) {
  for (const char* name : {"S2", "S3", "S4", "S5", "S6"}) {
    EXPECT_EQ(scenario(name).services.size(), 11u) << name;
  }
}

TEST(ScenariosTest, TableIvSpotChecks) {
  const auto& s2 = scenario("S2");
  const auto& s5 = scenario("S5");
  auto find = [](const Scenario& sc, const std::string& model) -> const core::ServiceSpec& {
    for (const auto& spec : sc.services) {
      if (spec.model == model) return spec;
    }
    throw std::logic_error("not in scenario");
  };
  EXPECT_DOUBLE_EQ(find(s2, "bert-large").request_rate, 19);
  EXPECT_DOUBLE_EQ(find(s2, "bert-large").slo_latency_ms, 6434);
  EXPECT_DOUBLE_EQ(find(s2, "resnet-50").request_rate, 829);
  EXPECT_DOUBLE_EQ(find(s5, "mobilenetv2").request_rate, 5009);
  EXPECT_DOUBLE_EQ(find(s5, "mobilenetv2").slo_latency_ms, 59);
}

TEST(ScenariosTest, IdsAreUniqueWithinScenario) {
  for (const auto& sc : all_scenarios()) {
    std::set<int> ids;
    for (const auto& spec : sc.services) {
      EXPECT_TRUE(ids.insert(spec.id).second) << sc.name;
    }
  }
}

TEST(ScenariosTest, RatesGrowFromS3ToS4) {
  // S4 keeps S3's SLOs but raises every rate (Table IV design).
  const auto& s3 = scenario("S3");
  const auto& s4 = scenario("S4");
  ASSERT_EQ(s3.services.size(), s4.services.size());
  for (std::size_t i = 0; i < s3.services.size(); ++i) {
    EXPECT_EQ(s3.services[i].model, s4.services[i].model);
    EXPECT_DOUBLE_EQ(s3.services[i].slo_latency_ms, s4.services[i].slo_latency_ms);
    EXPECT_GT(s4.services[i].request_rate, s3.services[i].request_rate);
  }
}

TEST(ScenariosTest, UnknownScenarioThrows) {
  EXPECT_THROW(scenario("S9"), std::logic_error);
}

TEST(ScenariosTest, ScaleScenarioReplicatesWithFreshIds) {
  const Scenario scaled = scale_scenario(scenario("S5"), 3);
  EXPECT_EQ(scaled.name, "S5x3");
  ASSERT_EQ(scaled.services.size(), 33u);
  std::set<int> ids;
  for (const auto& spec : scaled.services) {
    EXPECT_TRUE(ids.insert(spec.id).second);
  }
  // Replicas preserve rates and SLOs.
  EXPECT_DOUBLE_EQ(scaled.services[0].request_rate, scaled.services[11].request_rate);
  EXPECT_DOUBLE_EQ(scaled.services[0].slo_latency_ms, scaled.services[22].slo_latency_ms);
}

TEST(ScenariosTest, ScaleFoldOneIsIdentityModuloName) {
  const Scenario scaled = scale_scenario(scenario("S2"), 1);
  EXPECT_EQ(scaled.services.size(), scenario("S2").services.size());
}

TEST(ScenariosTest, ScaleRejectsZeroFold) {
  EXPECT_THROW(scale_scenario(scenario("S1"), 0), std::logic_error);
}

}  // namespace
}  // namespace parva::scenarios
