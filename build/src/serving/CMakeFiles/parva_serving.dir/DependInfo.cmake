
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serving/autoscaler.cpp" "src/serving/CMakeFiles/parva_serving.dir/autoscaler.cpp.o" "gcc" "src/serving/CMakeFiles/parva_serving.dir/autoscaler.cpp.o.d"
  "/root/repo/src/serving/cluster_sim.cpp" "src/serving/CMakeFiles/parva_serving.dir/cluster_sim.cpp.o" "gcc" "src/serving/CMakeFiles/parva_serving.dir/cluster_sim.cpp.o.d"
  "/root/repo/src/serving/trace.cpp" "src/serving/CMakeFiles/parva_serving.dir/trace.cpp.o" "gcc" "src/serving/CMakeFiles/parva_serving.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parva_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/parva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/parva_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/parva_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/parva_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
