# Empty dependencies file for parva_serving.
# This may be replaced when dependencies are built.
