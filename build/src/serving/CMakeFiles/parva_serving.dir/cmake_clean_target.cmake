file(REMOVE_RECURSE
  "libparva_serving.a"
)
