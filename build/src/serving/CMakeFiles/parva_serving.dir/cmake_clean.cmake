file(REMOVE_RECURSE
  "CMakeFiles/parva_serving.dir/autoscaler.cpp.o"
  "CMakeFiles/parva_serving.dir/autoscaler.cpp.o.d"
  "CMakeFiles/parva_serving.dir/cluster_sim.cpp.o"
  "CMakeFiles/parva_serving.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/parva_serving.dir/trace.cpp.o"
  "CMakeFiles/parva_serving.dir/trace.cpp.o.d"
  "libparva_serving.a"
  "libparva_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parva_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
