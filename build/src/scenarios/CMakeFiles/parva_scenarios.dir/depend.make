# Empty dependencies file for parva_scenarios.
# This may be replaced when dependencies are built.
