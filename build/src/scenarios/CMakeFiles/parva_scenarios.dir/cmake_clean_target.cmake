file(REMOVE_RECURSE
  "libparva_scenarios.a"
)
