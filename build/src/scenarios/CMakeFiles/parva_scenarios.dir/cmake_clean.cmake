file(REMOVE_RECURSE
  "CMakeFiles/parva_scenarios.dir/experiment.cpp.o"
  "CMakeFiles/parva_scenarios.dir/experiment.cpp.o.d"
  "CMakeFiles/parva_scenarios.dir/scenarios.cpp.o"
  "CMakeFiles/parva_scenarios.dir/scenarios.cpp.o.d"
  "libparva_scenarios.a"
  "libparva_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parva_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
