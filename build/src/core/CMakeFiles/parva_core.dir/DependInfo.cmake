
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocator.cpp" "src/core/CMakeFiles/parva_core.dir/allocator.cpp.o" "gcc" "src/core/CMakeFiles/parva_core.dir/allocator.cpp.o.d"
  "/root/repo/src/core/configurator.cpp" "src/core/CMakeFiles/parva_core.dir/configurator.cpp.o" "gcc" "src/core/CMakeFiles/parva_core.dir/configurator.cpp.o.d"
  "/root/repo/src/core/deployer.cpp" "src/core/CMakeFiles/parva_core.dir/deployer.cpp.o" "gcc" "src/core/CMakeFiles/parva_core.dir/deployer.cpp.o.d"
  "/root/repo/src/core/deployment.cpp" "src/core/CMakeFiles/parva_core.dir/deployment.cpp.o" "gcc" "src/core/CMakeFiles/parva_core.dir/deployment.cpp.o.d"
  "/root/repo/src/core/live_update.cpp" "src/core/CMakeFiles/parva_core.dir/live_update.cpp.o" "gcc" "src/core/CMakeFiles/parva_core.dir/live_update.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/parva_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/parva_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/parvagpu.cpp" "src/core/CMakeFiles/parva_core.dir/parvagpu.cpp.o" "gcc" "src/core/CMakeFiles/parva_core.dir/parvagpu.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/parva_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/parva_core.dir/plan.cpp.o.d"
  "/root/repo/src/core/reconfigure.cpp" "src/core/CMakeFiles/parva_core.dir/reconfigure.cpp.o" "gcc" "src/core/CMakeFiles/parva_core.dir/reconfigure.cpp.o.d"
  "/root/repo/src/core/repair.cpp" "src/core/CMakeFiles/parva_core.dir/repair.cpp.o" "gcc" "src/core/CMakeFiles/parva_core.dir/repair.cpp.o.d"
  "/root/repo/src/core/service.cpp" "src/core/CMakeFiles/parva_core.dir/service.cpp.o" "gcc" "src/core/CMakeFiles/parva_core.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parva_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/parva_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/parva_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/parva_profiler.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
