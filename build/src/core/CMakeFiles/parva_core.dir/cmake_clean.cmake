file(REMOVE_RECURSE
  "CMakeFiles/parva_core.dir/allocator.cpp.o"
  "CMakeFiles/parva_core.dir/allocator.cpp.o.d"
  "CMakeFiles/parva_core.dir/configurator.cpp.o"
  "CMakeFiles/parva_core.dir/configurator.cpp.o.d"
  "CMakeFiles/parva_core.dir/deployer.cpp.o"
  "CMakeFiles/parva_core.dir/deployer.cpp.o.d"
  "CMakeFiles/parva_core.dir/deployment.cpp.o"
  "CMakeFiles/parva_core.dir/deployment.cpp.o.d"
  "CMakeFiles/parva_core.dir/live_update.cpp.o"
  "CMakeFiles/parva_core.dir/live_update.cpp.o.d"
  "CMakeFiles/parva_core.dir/metrics.cpp.o"
  "CMakeFiles/parva_core.dir/metrics.cpp.o.d"
  "CMakeFiles/parva_core.dir/parvagpu.cpp.o"
  "CMakeFiles/parva_core.dir/parvagpu.cpp.o.d"
  "CMakeFiles/parva_core.dir/plan.cpp.o"
  "CMakeFiles/parva_core.dir/plan.cpp.o.d"
  "CMakeFiles/parva_core.dir/reconfigure.cpp.o"
  "CMakeFiles/parva_core.dir/reconfigure.cpp.o.d"
  "CMakeFiles/parva_core.dir/repair.cpp.o"
  "CMakeFiles/parva_core.dir/repair.cpp.o.d"
  "CMakeFiles/parva_core.dir/service.cpp.o"
  "CMakeFiles/parva_core.dir/service.cpp.o.d"
  "libparva_core.a"
  "libparva_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parva_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
