# Empty compiler generated dependencies file for parva_core.
# This may be replaced when dependencies are built.
