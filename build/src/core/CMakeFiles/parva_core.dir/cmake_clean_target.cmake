file(REMOVE_RECURSE
  "libparva_core.a"
)
