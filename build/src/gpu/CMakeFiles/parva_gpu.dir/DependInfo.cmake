
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/dcgm_sim.cpp" "src/gpu/CMakeFiles/parva_gpu.dir/dcgm_sim.cpp.o" "gcc" "src/gpu/CMakeFiles/parva_gpu.dir/dcgm_sim.cpp.o.d"
  "/root/repo/src/gpu/fault_plan.cpp" "src/gpu/CMakeFiles/parva_gpu.dir/fault_plan.cpp.o" "gcc" "src/gpu/CMakeFiles/parva_gpu.dir/fault_plan.cpp.o.d"
  "/root/repo/src/gpu/gpu_cluster.cpp" "src/gpu/CMakeFiles/parva_gpu.dir/gpu_cluster.cpp.o" "gcc" "src/gpu/CMakeFiles/parva_gpu.dir/gpu_cluster.cpp.o.d"
  "/root/repo/src/gpu/mig_geometry.cpp" "src/gpu/CMakeFiles/parva_gpu.dir/mig_geometry.cpp.o" "gcc" "src/gpu/CMakeFiles/parva_gpu.dir/mig_geometry.cpp.o.d"
  "/root/repo/src/gpu/nvml_sim.cpp" "src/gpu/CMakeFiles/parva_gpu.dir/nvml_sim.cpp.o" "gcc" "src/gpu/CMakeFiles/parva_gpu.dir/nvml_sim.cpp.o.d"
  "/root/repo/src/gpu/virtual_gpu.cpp" "src/gpu/CMakeFiles/parva_gpu.dir/virtual_gpu.cpp.o" "gcc" "src/gpu/CMakeFiles/parva_gpu.dir/virtual_gpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parva_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
