file(REMOVE_RECURSE
  "CMakeFiles/parva_gpu.dir/dcgm_sim.cpp.o"
  "CMakeFiles/parva_gpu.dir/dcgm_sim.cpp.o.d"
  "CMakeFiles/parva_gpu.dir/fault_plan.cpp.o"
  "CMakeFiles/parva_gpu.dir/fault_plan.cpp.o.d"
  "CMakeFiles/parva_gpu.dir/gpu_cluster.cpp.o"
  "CMakeFiles/parva_gpu.dir/gpu_cluster.cpp.o.d"
  "CMakeFiles/parva_gpu.dir/mig_geometry.cpp.o"
  "CMakeFiles/parva_gpu.dir/mig_geometry.cpp.o.d"
  "CMakeFiles/parva_gpu.dir/nvml_sim.cpp.o"
  "CMakeFiles/parva_gpu.dir/nvml_sim.cpp.o.d"
  "CMakeFiles/parva_gpu.dir/virtual_gpu.cpp.o"
  "CMakeFiles/parva_gpu.dir/virtual_gpu.cpp.o.d"
  "libparva_gpu.a"
  "libparva_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parva_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
