file(REMOVE_RECURSE
  "libparva_gpu.a"
)
