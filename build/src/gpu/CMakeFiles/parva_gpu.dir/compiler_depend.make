# Empty compiler generated dependencies file for parva_gpu.
# This may be replaced when dependencies are built.
