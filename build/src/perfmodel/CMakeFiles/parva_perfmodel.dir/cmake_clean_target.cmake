file(REMOVE_RECURSE
  "libparva_perfmodel.a"
)
