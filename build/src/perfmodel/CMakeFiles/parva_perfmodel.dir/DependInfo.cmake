
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/analytical_model.cpp" "src/perfmodel/CMakeFiles/parva_perfmodel.dir/analytical_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/parva_perfmodel.dir/analytical_model.cpp.o.d"
  "/root/repo/src/perfmodel/interference.cpp" "src/perfmodel/CMakeFiles/parva_perfmodel.dir/interference.cpp.o" "gcc" "src/perfmodel/CMakeFiles/parva_perfmodel.dir/interference.cpp.o.d"
  "/root/repo/src/perfmodel/model_catalog.cpp" "src/perfmodel/CMakeFiles/parva_perfmodel.dir/model_catalog.cpp.o" "gcc" "src/perfmodel/CMakeFiles/parva_perfmodel.dir/model_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parva_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/parva_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
