# Empty dependencies file for parva_perfmodel.
# This may be replaced when dependencies are built.
