file(REMOVE_RECURSE
  "CMakeFiles/parva_perfmodel.dir/analytical_model.cpp.o"
  "CMakeFiles/parva_perfmodel.dir/analytical_model.cpp.o.d"
  "CMakeFiles/parva_perfmodel.dir/interference.cpp.o"
  "CMakeFiles/parva_perfmodel.dir/interference.cpp.o.d"
  "CMakeFiles/parva_perfmodel.dir/model_catalog.cpp.o"
  "CMakeFiles/parva_perfmodel.dir/model_catalog.cpp.o.d"
  "libparva_perfmodel.a"
  "libparva_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parva_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
