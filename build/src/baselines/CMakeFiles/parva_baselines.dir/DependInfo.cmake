
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/gpulet.cpp" "src/baselines/CMakeFiles/parva_baselines.dir/gpulet.cpp.o" "gcc" "src/baselines/CMakeFiles/parva_baselines.dir/gpulet.cpp.o.d"
  "/root/repo/src/baselines/gslice.cpp" "src/baselines/CMakeFiles/parva_baselines.dir/gslice.cpp.o" "gcc" "src/baselines/CMakeFiles/parva_baselines.dir/gslice.cpp.o.d"
  "/root/repo/src/baselines/igniter.cpp" "src/baselines/CMakeFiles/parva_baselines.dir/igniter.cpp.o" "gcc" "src/baselines/CMakeFiles/parva_baselines.dir/igniter.cpp.o.d"
  "/root/repo/src/baselines/mig_serving.cpp" "src/baselines/CMakeFiles/parva_baselines.dir/mig_serving.cpp.o" "gcc" "src/baselines/CMakeFiles/parva_baselines.dir/mig_serving.cpp.o.d"
  "/root/repo/src/baselines/mps_partition.cpp" "src/baselines/CMakeFiles/parva_baselines.dir/mps_partition.cpp.o" "gcc" "src/baselines/CMakeFiles/parva_baselines.dir/mps_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parva_common.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/parva_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/parva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/parva_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/parva_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
