# Empty compiler generated dependencies file for parva_baselines.
# This may be replaced when dependencies are built.
