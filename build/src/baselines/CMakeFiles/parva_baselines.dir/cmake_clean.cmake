file(REMOVE_RECURSE
  "CMakeFiles/parva_baselines.dir/gpulet.cpp.o"
  "CMakeFiles/parva_baselines.dir/gpulet.cpp.o.d"
  "CMakeFiles/parva_baselines.dir/gslice.cpp.o"
  "CMakeFiles/parva_baselines.dir/gslice.cpp.o.d"
  "CMakeFiles/parva_baselines.dir/igniter.cpp.o"
  "CMakeFiles/parva_baselines.dir/igniter.cpp.o.d"
  "CMakeFiles/parva_baselines.dir/mig_serving.cpp.o"
  "CMakeFiles/parva_baselines.dir/mig_serving.cpp.o.d"
  "CMakeFiles/parva_baselines.dir/mps_partition.cpp.o"
  "CMakeFiles/parva_baselines.dir/mps_partition.cpp.o.d"
  "libparva_baselines.a"
  "libparva_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parva_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
