file(REMOVE_RECURSE
  "libparva_baselines.a"
)
