file(REMOVE_RECURSE
  "CMakeFiles/parva_common.dir/cli.cpp.o"
  "CMakeFiles/parva_common.dir/cli.cpp.o.d"
  "CMakeFiles/parva_common.dir/logging.cpp.o"
  "CMakeFiles/parva_common.dir/logging.cpp.o.d"
  "CMakeFiles/parva_common.dir/stats.cpp.o"
  "CMakeFiles/parva_common.dir/stats.cpp.o.d"
  "CMakeFiles/parva_common.dir/strings.cpp.o"
  "CMakeFiles/parva_common.dir/strings.cpp.o.d"
  "CMakeFiles/parva_common.dir/table.cpp.o"
  "CMakeFiles/parva_common.dir/table.cpp.o.d"
  "CMakeFiles/parva_common.dir/thread_pool.cpp.o"
  "CMakeFiles/parva_common.dir/thread_pool.cpp.o.d"
  "libparva_common.a"
  "libparva_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parva_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
