file(REMOVE_RECURSE
  "libparva_common.a"
)
