# Empty dependencies file for parva_common.
# This may be replaced when dependencies are built.
