file(REMOVE_RECURSE
  "libparva_profiler.a"
)
