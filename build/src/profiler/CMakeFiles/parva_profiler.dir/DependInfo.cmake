
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/measured_profiler.cpp" "src/profiler/CMakeFiles/parva_profiler.dir/measured_profiler.cpp.o" "gcc" "src/profiler/CMakeFiles/parva_profiler.dir/measured_profiler.cpp.o.d"
  "/root/repo/src/profiler/profile_store.cpp" "src/profiler/CMakeFiles/parva_profiler.dir/profile_store.cpp.o" "gcc" "src/profiler/CMakeFiles/parva_profiler.dir/profile_store.cpp.o.d"
  "/root/repo/src/profiler/profile_types.cpp" "src/profiler/CMakeFiles/parva_profiler.dir/profile_types.cpp.o" "gcc" "src/profiler/CMakeFiles/parva_profiler.dir/profile_types.cpp.o.d"
  "/root/repo/src/profiler/profiler.cpp" "src/profiler/CMakeFiles/parva_profiler.dir/profiler.cpp.o" "gcc" "src/profiler/CMakeFiles/parva_profiler.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parva_common.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/parva_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/parva_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
