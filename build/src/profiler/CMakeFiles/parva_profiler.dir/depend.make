# Empty dependencies file for parva_profiler.
# This may be replaced when dependencies are built.
