file(REMOVE_RECURSE
  "CMakeFiles/parva_profiler.dir/measured_profiler.cpp.o"
  "CMakeFiles/parva_profiler.dir/measured_profiler.cpp.o.d"
  "CMakeFiles/parva_profiler.dir/profile_store.cpp.o"
  "CMakeFiles/parva_profiler.dir/profile_store.cpp.o.d"
  "CMakeFiles/parva_profiler.dir/profile_types.cpp.o"
  "CMakeFiles/parva_profiler.dir/profile_types.cpp.o.d"
  "CMakeFiles/parva_profiler.dir/profiler.cpp.o"
  "CMakeFiles/parva_profiler.dir/profiler.cpp.o.d"
  "libparva_profiler.a"
  "libparva_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parva_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
