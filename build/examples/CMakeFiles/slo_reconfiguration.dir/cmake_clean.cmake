file(REMOVE_RECURSE
  "CMakeFiles/slo_reconfiguration.dir/slo_reconfiguration.cpp.o"
  "CMakeFiles/slo_reconfiguration.dir/slo_reconfiguration.cpp.o.d"
  "slo_reconfiguration"
  "slo_reconfiguration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_reconfiguration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
