# Empty compiler generated dependencies file for slo_reconfiguration.
# This may be replaced when dependencies are built.
