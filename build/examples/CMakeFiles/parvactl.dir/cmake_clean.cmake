file(REMOVE_RECURSE
  "CMakeFiles/parvactl.dir/parvactl.cpp.o"
  "CMakeFiles/parvactl.dir/parvactl.cpp.o.d"
  "parvactl"
  "parvactl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parvactl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
