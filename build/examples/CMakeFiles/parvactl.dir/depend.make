# Empty dependencies file for parvactl.
# This may be replaced when dependencies are built.
