file(REMOVE_RECURSE
  "CMakeFiles/cloud_deployment.dir/cloud_deployment.cpp.o"
  "CMakeFiles/cloud_deployment.dir/cloud_deployment.cpp.o.d"
  "cloud_deployment"
  "cloud_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
