# Empty compiler generated dependencies file for cloud_deployment.
# This may be replaced when dependencies are built.
