# Empty compiler generated dependencies file for autoscaling.
# This may be replaced when dependencies are built.
