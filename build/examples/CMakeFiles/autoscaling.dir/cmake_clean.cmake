file(REMOVE_RECURSE
  "CMakeFiles/autoscaling.dir/autoscaling.cpp.o"
  "CMakeFiles/autoscaling.dir/autoscaling.cpp.o.d"
  "autoscaling"
  "autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
