# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_tests "/root/repo/build/tests/common_tests")
set_tests_properties(common_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;parva_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gpu_tests "/root/repo/build/tests/gpu_tests")
set_tests_properties(gpu_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;parva_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(perfmodel_tests "/root/repo/build/tests/perfmodel_tests")
set_tests_properties(perfmodel_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;27;parva_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(profiler_tests "/root/repo/build/tests/profiler_tests")
set_tests_properties(profiler_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;32;parva_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_tests "/root/repo/build/tests/core_tests")
set_tests_properties(core_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;37;parva_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_tests "/root/repo/build/tests/baselines_tests")
set_tests_properties(baselines_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;50;parva_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(serving_tests "/root/repo/build/tests/serving_tests")
set_tests_properties(serving_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;57;parva_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(scenarios_tests "/root/repo/build/tests/scenarios_tests")
set_tests_properties(scenarios_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;63;parva_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_tests "/root/repo/build/tests/integration_tests")
set_tests_properties(integration_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;67;parva_test;/root/repo/tests/CMakeLists.txt;0;")
