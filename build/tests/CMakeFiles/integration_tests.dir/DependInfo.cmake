
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/plan_driver_differential_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/plan_driver_differential_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/plan_driver_differential_test.cpp.o.d"
  "/root/repo/tests/integration/sim_vs_model_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/sim_vs_model_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/sim_vs_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/parva_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/parva_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/parva_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/parva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/parva_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/parva_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/parva_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/parva_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
