file(REMOVE_RECURSE
  "CMakeFiles/serving_tests.dir/serving/autoscaler_test.cpp.o"
  "CMakeFiles/serving_tests.dir/serving/autoscaler_test.cpp.o.d"
  "CMakeFiles/serving_tests.dir/serving/cluster_sim_test.cpp.o"
  "CMakeFiles/serving_tests.dir/serving/cluster_sim_test.cpp.o.d"
  "CMakeFiles/serving_tests.dir/serving/fault_sim_test.cpp.o"
  "CMakeFiles/serving_tests.dir/serving/fault_sim_test.cpp.o.d"
  "CMakeFiles/serving_tests.dir/serving/trace_test.cpp.o"
  "CMakeFiles/serving_tests.dir/serving/trace_test.cpp.o.d"
  "serving_tests"
  "serving_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
