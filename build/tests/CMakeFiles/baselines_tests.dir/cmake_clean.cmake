file(REMOVE_RECURSE
  "CMakeFiles/baselines_tests.dir/baselines/gpulet_test.cpp.o"
  "CMakeFiles/baselines_tests.dir/baselines/gpulet_test.cpp.o.d"
  "CMakeFiles/baselines_tests.dir/baselines/gslice_test.cpp.o"
  "CMakeFiles/baselines_tests.dir/baselines/gslice_test.cpp.o.d"
  "CMakeFiles/baselines_tests.dir/baselines/igniter_test.cpp.o"
  "CMakeFiles/baselines_tests.dir/baselines/igniter_test.cpp.o.d"
  "CMakeFiles/baselines_tests.dir/baselines/mig_serving_test.cpp.o"
  "CMakeFiles/baselines_tests.dir/baselines/mig_serving_test.cpp.o.d"
  "CMakeFiles/baselines_tests.dir/baselines/mps_partition_test.cpp.o"
  "CMakeFiles/baselines_tests.dir/baselines/mps_partition_test.cpp.o.d"
  "baselines_tests"
  "baselines_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
