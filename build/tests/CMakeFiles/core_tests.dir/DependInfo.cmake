
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/allocator_fuzz_test.cpp" "tests/CMakeFiles/core_tests.dir/core/allocator_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/allocator_fuzz_test.cpp.o.d"
  "/root/repo/tests/core/allocator_test.cpp" "tests/CMakeFiles/core_tests.dir/core/allocator_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/allocator_test.cpp.o.d"
  "/root/repo/tests/core/configurator_test.cpp" "tests/CMakeFiles/core_tests.dir/core/configurator_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/configurator_test.cpp.o.d"
  "/root/repo/tests/core/deployer_test.cpp" "tests/CMakeFiles/core_tests.dir/core/deployer_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/deployer_test.cpp.o.d"
  "/root/repo/tests/core/live_update_test.cpp" "tests/CMakeFiles/core_tests.dir/core/live_update_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/live_update_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cpp.o.d"
  "/root/repo/tests/core/parvagpu_test.cpp" "tests/CMakeFiles/core_tests.dir/core/parvagpu_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/parvagpu_test.cpp.o.d"
  "/root/repo/tests/core/plan_test.cpp" "tests/CMakeFiles/core_tests.dir/core/plan_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/plan_test.cpp.o.d"
  "/root/repo/tests/core/reconfigure_test.cpp" "tests/CMakeFiles/core_tests.dir/core/reconfigure_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/reconfigure_test.cpp.o.d"
  "/root/repo/tests/core/repair_test.cpp" "tests/CMakeFiles/core_tests.dir/core/repair_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/repair_test.cpp.o.d"
  "/root/repo/tests/core/service_test.cpp" "tests/CMakeFiles/core_tests.dir/core/service_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/service_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/parva_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/parva_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/parva_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/parva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/parva_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/parva_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/parva_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/parva_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
