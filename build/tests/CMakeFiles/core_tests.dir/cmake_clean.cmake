file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/allocator_fuzz_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/allocator_fuzz_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/allocator_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/allocator_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/configurator_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/configurator_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/deployer_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/deployer_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/live_update_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/live_update_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/metrics_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/metrics_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/parvagpu_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/parvagpu_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/plan_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/plan_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/reconfigure_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/reconfigure_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/repair_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/repair_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/service_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/service_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
