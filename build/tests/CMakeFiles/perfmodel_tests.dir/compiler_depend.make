# Empty compiler generated dependencies file for perfmodel_tests.
# This may be replaced when dependencies are built.
