file(REMOVE_RECURSE
  "CMakeFiles/perfmodel_tests.dir/perfmodel/analytical_model_test.cpp.o"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/analytical_model_test.cpp.o.d"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/interference_test.cpp.o"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/interference_test.cpp.o.d"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/model_catalog_test.cpp.o"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/model_catalog_test.cpp.o.d"
  "perfmodel_tests"
  "perfmodel_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfmodel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
