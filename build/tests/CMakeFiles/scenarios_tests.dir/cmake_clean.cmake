file(REMOVE_RECURSE
  "CMakeFiles/scenarios_tests.dir/scenarios/experiment_test.cpp.o"
  "CMakeFiles/scenarios_tests.dir/scenarios/experiment_test.cpp.o.d"
  "CMakeFiles/scenarios_tests.dir/scenarios/scenarios_test.cpp.o"
  "CMakeFiles/scenarios_tests.dir/scenarios/scenarios_test.cpp.o.d"
  "scenarios_tests"
  "scenarios_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenarios_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
