# Empty compiler generated dependencies file for scenarios_tests.
# This may be replaced when dependencies are built.
