file(REMOVE_RECURSE
  "CMakeFiles/profiler_tests.dir/profiler/measured_profiler_test.cpp.o"
  "CMakeFiles/profiler_tests.dir/profiler/measured_profiler_test.cpp.o.d"
  "CMakeFiles/profiler_tests.dir/profiler/profile_store_test.cpp.o"
  "CMakeFiles/profiler_tests.dir/profiler/profile_store_test.cpp.o.d"
  "CMakeFiles/profiler_tests.dir/profiler/profiler_test.cpp.o"
  "CMakeFiles/profiler_tests.dir/profiler/profiler_test.cpp.o.d"
  "profiler_tests"
  "profiler_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiler_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
