file(REMOVE_RECURSE
  "CMakeFiles/gpu_tests.dir/gpu/dcgm_sim_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/dcgm_sim_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/fault_plan_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/fault_plan_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/gpu_cluster_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/gpu_cluster_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/mig_geometry_property_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/mig_geometry_property_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/mig_geometry_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/mig_geometry_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/nvml_sim_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/nvml_sim_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/virtual_gpu_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/virtual_gpu_test.cpp.o.d"
  "gpu_tests"
  "gpu_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
