# Empty compiler generated dependencies file for fig9_scheduling_delay.
# This may be replaced when dependencies are built.
