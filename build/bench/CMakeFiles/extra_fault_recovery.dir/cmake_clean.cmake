file(REMOVE_RECURSE
  "CMakeFiles/extra_fault_recovery.dir/extra_fault_recovery.cpp.o"
  "CMakeFiles/extra_fault_recovery.dir/extra_fault_recovery.cpp.o.d"
  "extra_fault_recovery"
  "extra_fault_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_fault_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
