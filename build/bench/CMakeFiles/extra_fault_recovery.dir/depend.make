# Empty dependencies file for extra_fault_recovery.
# This may be replaced when dependencies are built.
