file(REMOVE_RECURSE
  "CMakeFiles/table4_scenarios.dir/table4_scenarios.cpp.o"
  "CMakeFiles/table4_scenarios.dir/table4_scenarios.cpp.o.d"
  "table4_scenarios"
  "table4_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
