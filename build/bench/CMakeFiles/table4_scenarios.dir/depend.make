# Empty dependencies file for table4_scenarios.
# This may be replaced when dependencies are built.
