file(REMOVE_RECURSE
  "CMakeFiles/extra_autoscaling.dir/extra_autoscaling.cpp.o"
  "CMakeFiles/extra_autoscaling.dir/extra_autoscaling.cpp.o.d"
  "extra_autoscaling"
  "extra_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
