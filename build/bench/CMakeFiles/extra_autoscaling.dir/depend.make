# Empty dependencies file for extra_autoscaling.
# This may be replaced when dependencies are built.
