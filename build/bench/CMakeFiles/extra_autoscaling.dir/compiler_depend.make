# Empty compiler generated dependencies file for extra_autoscaling.
# This may be replaced when dependencies are built.
