# Empty dependencies file for extra_gpu_generations.
# This may be replaced when dependencies are built.
