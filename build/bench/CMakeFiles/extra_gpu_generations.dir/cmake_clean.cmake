file(REMOVE_RECURSE
  "CMakeFiles/extra_gpu_generations.dir/extra_gpu_generations.cpp.o"
  "CMakeFiles/extra_gpu_generations.dir/extra_gpu_generations.cpp.o.d"
  "extra_gpu_generations"
  "extra_gpu_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_gpu_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
