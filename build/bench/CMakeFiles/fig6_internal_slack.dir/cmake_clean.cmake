file(REMOVE_RECURSE
  "CMakeFiles/fig6_internal_slack.dir/fig6_internal_slack.cpp.o"
  "CMakeFiles/fig6_internal_slack.dir/fig6_internal_slack.cpp.o.d"
  "fig6_internal_slack"
  "fig6_internal_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_internal_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
