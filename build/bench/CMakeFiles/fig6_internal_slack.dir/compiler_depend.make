# Empty compiler generated dependencies file for fig6_internal_slack.
# This may be replaced when dependencies are built.
