# Empty compiler generated dependencies file for fig3_fig4_profile_surface.
# This may be replaced when dependencies are built.
