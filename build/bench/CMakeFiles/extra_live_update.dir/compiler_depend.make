# Empty compiler generated dependencies file for extra_live_update.
# This may be replaced when dependencies are built.
