file(REMOVE_RECURSE
  "CMakeFiles/extra_live_update.dir/extra_live_update.cpp.o"
  "CMakeFiles/extra_live_update.dir/extra_live_update.cpp.o.d"
  "extra_live_update"
  "extra_live_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_live_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
