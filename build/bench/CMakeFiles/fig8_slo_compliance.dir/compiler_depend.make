# Empty compiler generated dependencies file for fig8_slo_compliance.
# This may be replaced when dependencies are built.
