file(REMOVE_RECURSE
  "CMakeFiles/fig8_slo_compliance.dir/fig8_slo_compliance.cpp.o"
  "CMakeFiles/fig8_slo_compliance.dir/fig8_slo_compliance.cpp.o.d"
  "fig8_slo_compliance"
  "fig8_slo_compliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_slo_compliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
