# Empty dependencies file for ablation_profile_grid.
# This may be replaced when dependencies are built.
