file(REMOVE_RECURSE
  "CMakeFiles/ablation_profile_grid.dir/ablation_profile_grid.cpp.o"
  "CMakeFiles/ablation_profile_grid.dir/ablation_profile_grid.cpp.o.d"
  "ablation_profile_grid"
  "ablation_profile_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_profile_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
