file(REMOVE_RECURSE
  "CMakeFiles/fig5_total_gpus.dir/fig5_total_gpus.cpp.o"
  "CMakeFiles/fig5_total_gpus.dir/fig5_total_gpus.cpp.o.d"
  "fig5_total_gpus"
  "fig5_total_gpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_total_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
