# Empty dependencies file for fig5_total_gpus.
# This may be replaced when dependencies are built.
