# Empty compiler generated dependencies file for fig10_scalability_gpus.
# This may be replaced when dependencies are built.
