file(REMOVE_RECURSE
  "CMakeFiles/fig10_scalability_gpus.dir/fig10_scalability_gpus.cpp.o"
  "CMakeFiles/fig10_scalability_gpus.dir/fig10_scalability_gpus.cpp.o.d"
  "fig10_scalability_gpus"
  "fig10_scalability_gpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scalability_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
