file(REMOVE_RECURSE
  "CMakeFiles/fig7_external_fragmentation.dir/fig7_external_fragmentation.cpp.o"
  "CMakeFiles/fig7_external_fragmentation.dir/fig7_external_fragmentation.cpp.o.d"
  "fig7_external_fragmentation"
  "fig7_external_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_external_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
