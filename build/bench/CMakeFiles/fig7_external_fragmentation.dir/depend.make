# Empty dependencies file for fig7_external_fragmentation.
# This may be replaced when dependencies are built.
