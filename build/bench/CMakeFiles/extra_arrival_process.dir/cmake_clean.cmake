file(REMOVE_RECURSE
  "CMakeFiles/extra_arrival_process.dir/extra_arrival_process.cpp.o"
  "CMakeFiles/extra_arrival_process.dir/extra_arrival_process.cpp.o.d"
  "extra_arrival_process"
  "extra_arrival_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_arrival_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
