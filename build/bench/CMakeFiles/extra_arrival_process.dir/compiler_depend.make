# Empty compiler generated dependencies file for extra_arrival_process.
# This may be replaced when dependencies are built.
