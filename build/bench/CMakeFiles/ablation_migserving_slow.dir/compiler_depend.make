# Empty compiler generated dependencies file for ablation_migserving_slow.
# This may be replaced when dependencies are built.
