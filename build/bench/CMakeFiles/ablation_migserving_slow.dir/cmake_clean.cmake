file(REMOVE_RECURSE
  "CMakeFiles/ablation_migserving_slow.dir/ablation_migserving_slow.cpp.o"
  "CMakeFiles/ablation_migserving_slow.dir/ablation_migserving_slow.cpp.o.d"
  "ablation_migserving_slow"
  "ablation_migserving_slow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_migserving_slow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
