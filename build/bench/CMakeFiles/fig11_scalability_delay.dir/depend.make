# Empty dependencies file for fig11_scalability_delay.
# This may be replaced when dependencies are built.
