# Empty dependencies file for ablation_opt_threshold.
# This may be replaced when dependencies are built.
