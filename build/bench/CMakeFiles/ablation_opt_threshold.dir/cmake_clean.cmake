file(REMOVE_RECURSE
  "CMakeFiles/ablation_opt_threshold.dir/ablation_opt_threshold.cpp.o"
  "CMakeFiles/ablation_opt_threshold.dir/ablation_opt_threshold.cpp.o.d"
  "ablation_opt_threshold"
  "ablation_opt_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_opt_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
