// Nesting-safe work-stealing thread pool for the parallel sweeps and the
// sharded DES engine (profiling grids, multi-seed simulations, shard
// windows). Two properties distinguish it from the fixed-queue pool it
// replaced:
//
//   * Work stealing. Each worker owns a deque: tasks submitted from a
//     worker thread push onto its own deque and are popped LIFO (children
//     run hot, right after their parent), tasks submitted from outside
//     land in a shared injector queue, and an idle worker steals the
//     OLDEST task of a sibling's deque. All queues hang off one mutex —
//     tasks here are coarse (whole simulations, shard windows), so the
//     scheduling policy matters and lock-free deques would not.
//
//   * Nesting-safe parallel_for. The caller is a full participant: it
//     claims indices from the same atomic cursor as the recruited workers,
//     so the loop completes even if every worker is busy — including when
//     the caller IS a pool worker executing an outer parallel_for task.
//     Nested fork-join of any depth on one shared pool cannot deadlock,
//     because each level's caller can always drain its own range
//     (tests/serving/nested_pool_test.cpp stresses this under tsan).
//
// The remaining sharp edge is submit() + future.get() from inside a pool
// task: the future is opaque, so a blocked parent cannot help run its
// children. Fork-join code must use parallel_for; submit() is for callers
// outside the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace parva {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future observes its completion/value.
  /// From a worker of this pool the task lands on that worker's own deque
  /// (LIFO, stealable); from any other thread it lands in the injector
  /// queue. Do not block on the future from inside a pool task — use
  /// parallel_for for fork-join.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs fn(i) for i in [0, n) and waits for completion. The calling
  /// thread participates (it claims indices alongside the recruited
  /// workers), so this is safe to call from inside a pool task — nested
  /// parallel_for on the same pool makes progress by construction.
  /// Every index is attempted even after a failure; the first exception
  /// (in completion order) is rethrown once all indices finished.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True iff the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

 private:
  using Task = std::function<void()>;

  /// One parallel_for execution. Shared (via shared_ptr) with recruited
  /// worker tasks, which may outlive the call: a stale helper that runs
  /// after completion sees an exhausted cursor and exits without touching
  /// `fn`, which is only valid while the caller waits.
  struct ForJob {
    ForJob(std::size_t count, const std::function<void(std::size_t)>& body)
        : n(count), fn(&body) {}

    const std::size_t n;
    const std::function<void(std::size_t)>* const fn;
    std::atomic<std::size_t> cursor{0};  ///< next unclaimed index
    std::atomic<std::size_t> done{0};    ///< fn calls finished (ok or not)
    Mutex mutex;
    // condition_variable_any: waits on MutexLock (the annotated guard).
    std::condition_variable_any cv;
    std::exception_ptr error PARVA_GUARDED_BY(mutex);
  };

  void enqueue(Task task);
  void worker_loop(std::size_t id);
  /// Claims indices of `job` until the range is exhausted; records the
  /// first error and signals the job's cv as the last index completes.
  static void drain(ForJob& job);
  bool have_task_locked() const PARVA_REQUIRES(mutex_);
  Task take_task_locked(std::size_t id) PARVA_REQUIRES(mutex_);

  // Written only by the constructor (before any worker can observe it) and
  // joined by the destructor; size() reads it lock-free on that basis.
  std::vector<std::thread> workers_;  // parva-audit: allow(R7)
  /// Per-worker deques (owner pops back, thieves steal front) plus the
  /// injector queue for external submissions, all behind one lock.
  std::vector<std::deque<Task>> local_ PARVA_GUARDED_BY(mutex_);
  std::deque<Task> injector_ PARVA_GUARDED_BY(mutex_);
  Mutex mutex_;
  // condition_variable_any: waits on MutexLock (the annotated scoped guard).
  std::condition_variable_any cv_;
  bool stopping_ PARVA_GUARDED_BY(mutex_) = false;
};

}  // namespace parva
