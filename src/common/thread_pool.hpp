// Fixed-size thread pool used for embarrassingly parallel sweeps (profiling
// grids, multi-seed simulations). Following the shared-memory idioms of the
// HPC guides: tasks own their inputs, results are merged at the join, and no
// locks appear on task hot paths.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace parva {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future observes its completion/value.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  // Written only by the constructor (before any worker can observe it) and
  // joined by the destructor; size() reads it lock-free on that basis.
  std::vector<std::thread> workers_;  // parva-audit: allow(R7)
  std::deque<std::function<void()>> queue_ PARVA_GUARDED_BY(mutex_);
  Mutex mutex_;
  // condition_variable_any: waits on MutexLock (the annotated scoped guard).
  std::condition_variable_any cv_;
  bool stopping_ PARVA_GUARDED_BY(mutex_) = false;
};

}  // namespace parva
