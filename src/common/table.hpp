// Text-table and CSV emission for bench output. Every bench prints both a
// human-readable aligned table (the "figure") and machine-readable CSV rows
// so results can be replotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace parva {

/// Column-aligned text table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: accepts doubles and formats them with `precision`.
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 2);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment and a separator under the header.
  std::string render() const;

  /// Renders the same data as CSV.
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Appends CSV content to a file (creating it with the header if absent).
void write_csv_file(const std::string& path, const std::string& csv);

}  // namespace parva
