#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace parva {

double sorted_sum(std::vector<double> values) {
  // Sorting the raw bit patterns (not the doubles) keeps the order total
  // even when NaNs slip in, and orders equal-magnitude values of either
  // sign consistently across platforms.
  std::vector<std::uint64_t> bits;
  bits.reserve(values.size());
  for (const double v : values) bits.push_back(std::bit_cast<std::uint64_t>(v));
  std::sort(bits.begin(), bits.end());
  double sum = 0.0;
  for (const std::uint64_t b : bits) sum += std::bit_cast<double>(b);
  return sum;
}

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Samples::merge(const Samples& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::min() const {
  PARVA_REQUIRE(!values_.empty(), "Samples::min on empty set");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  PARVA_REQUIRE(!values_.empty(), "Samples::max on empty set");
  return *std::max_element(values_.begin(), values_.end());
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::percentile(double p) const {
  PARVA_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  // Empty sets report 0.0 like mean(): callers aggregate outcomes where a
  // service can legitimately complete zero requests (e.g. every unit lost
  // mid-run), and that must not abort the whole report.
  if (values_.empty()) return 0.0;
  ensure_sorted();
  if (values_.size() == 1) return values_[0];
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::fraction_above(double threshold) const {
  if (values_.empty()) return 0.0;
  std::size_t above = 0;
  for (double v : values_) {
    if (v > threshold) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(values_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PARVA_REQUIRE(hi > lo, "Histogram range must be non-empty");
  PARVA_REQUIRE(bins > 0, "Histogram needs at least one bin");
}

void Histogram::add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  t = std::clamp(t, 0.0, 1.0);
  auto idx = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  if (idx == counts_.size()) --idx;  // x == hi lands in the last bin
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

}  // namespace parva
