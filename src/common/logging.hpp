// Tiny leveled logger. Thread-safe, writes to stderr; level selectable at
// runtime (PARVA_LOG_LEVEL env var or set_log_level()).
#pragma once

#include <sstream>
#include <string>

namespace parva {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
/// Emits one formatted record; applied under an internal mutex.
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace parva

#define PARVA_LOG(level)                                   \
  if (static_cast<int>(level) < static_cast<int>(::parva::log_level())) {} \
  else ::parva::detail::LogLine(level)

#define PARVA_LOG_DEBUG PARVA_LOG(::parva::LogLevel::kDebug)
#define PARVA_LOG_INFO PARVA_LOG(::parva::LogLevel::kInfo)
#define PARVA_LOG_WARN PARVA_LOG(::parva::LogLevel::kWarn)
#define PARVA_LOG_ERROR PARVA_LOG(::parva::LogLevel::kError)
