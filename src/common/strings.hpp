// Small string utilities shared across libraries.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace parva {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view input, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view input);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Formats a double with fixed precision (no locale surprises).
std::string format_double(double value, int precision);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Parses a double; returns false on malformed input.
bool parse_double(std::string_view text, double& out);

/// Parses a non-negative integer; returns false on malformed input.
bool parse_uint(std::string_view text, unsigned long long& out);

}  // namespace parva
