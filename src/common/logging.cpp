#include "common/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "common/thread_annotations.hpp"

namespace parva {
namespace {

// Process-wide logging state is the sanctioned exception to the no-globals
// rule (R3): the level is a lone atomic with no invariant beyond its own
// value, and the emit mutex exists precisely to serialize stderr writes.
std::atomic<LogLevel> g_level{LogLevel::kWarn};  // parva-audit: allow(R3)
Mutex g_emit_mutex;                              // parva-audit: allow(R3)

LogLevel initial_level() {
  const char* env = std::getenv("PARVA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string value(env);
  if (value == "debug") return LogLevel::kDebug;
  if (value == "info") return LogLevel::kInfo;
  if (value == "warn") return LogLevel::kWarn;
  if (value == "error") return LogLevel::kError;
  if (value == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

struct LevelInit {
  LevelInit() { g_level.store(initial_level()); }
  // Reads PARVA_LOG_LEVEL exactly once, before main(); mutable only in the
  // sense that static init runs its constructor.
} g_level_init;  // parva-audit: allow(R3)

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  MutexLock lock(g_emit_mutex);
  std::cerr << "[parva:" << level_tag(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace parva
