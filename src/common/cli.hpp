// Minimal command-line flag parsing for examples and benches.
// Supports --flag=value, --flag value, and boolean --flag forms.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace parva {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace parva
