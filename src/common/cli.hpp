// Minimal command-line flag parsing for examples and benches.
// Supports --flag=value, --flag value, and boolean --flag forms.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace parva {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Integer flag value. The whole value must parse as a base-10 integer
  /// (optional sign); anything else — including trailing junk like
  /// "4x" or an empty value — returns the fallback.
  long long get_int(const std::string& name, long long fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// True when `name` parses as a base-10 integer in [min_value, max_value].
  /// Distinguishes "absent" (fine, use the default) from "present but
  /// malformed / out of range" (a user error a CLI should reject loudly,
  /// not silently swallow into the fallback).
  bool int_in_range(const std::string& name, long long min_value, long long max_value) const;

  /// Flags that appeared more than once on the command line, in first-seen
  /// order. Parsing keeps the LAST occurrence's value; strict front ends
  /// treat a non-empty list as a usage error (a repeated flag is almost
  /// always a typo'd edit of the wrong copy).
  const std::vector<std::string>& repeated() const { return repeated_; }

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> repeated_;
  std::vector<std::string> positional_;
};

}  // namespace parva
