// Lightweight error handling primitives shared by all ParvaGPU libraries.
//
// Recoverable failures (e.g. "this segment does not fit on this GPU",
// "profile point hits out-of-memory") travel through Result<T>; programming
// errors (violated preconditions) throw std::logic_error via PARVA_REQUIRE.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace parva {

/// Error category for recoverable failures.
enum class ErrorCode {
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< lookup failed
  kOutOfMemory,       ///< simulated GPU memory exhausted
  kUnsupported,       ///< operation not representable (e.g. illegal MIG placement)
  kCapacityExceeded,  ///< demand exceeds what the scheduler can place
  kInternal,          ///< invariant violated inside a library
};

/// Human-readable name for an ErrorCode.
constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOutOfMemory: return "out_of_memory";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kCapacityExceeded: return "capacity_exceeded";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// A recoverable error: code plus context message.
class [[nodiscard]] Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    return std::string(parva::to_string(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Minimal expected-like container (std::expected is C++23; we target C++20).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : storage_(std::move(error)) {}      // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  /// Value access; throws if this holds an error (programming bug).
  const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(storage_);
  }
  T& value() & {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(storage_);
  }
  T&& value() && {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error on value");
    return std::get<Error>(storage_);
  }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? std::get<T>(storage_) : std::move(fallback); }

 private:
  std::variant<T, Error> storage_;
};

/// Result specialisation for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;                                     // success
  Status(Error error) : error_(std::move(error)) {}       // NOLINT(implicit)
  Status(ErrorCode code, std::string message) : error_(Error(code, std::move(message))) {}

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    if (ok()) throw std::logic_error("Status::error on success");
    return *error_;
  }
  std::string to_string() const { return ok() ? "ok" : error_->to_string(); }

  [[nodiscard]] static Status Ok() { return Status(); }

 private:
  std::optional<Error> error_;
};

}  // namespace parva

/// Precondition check: throws std::logic_error when violated. Use for caller
/// contract violations, never for data-dependent recoverable conditions.
#define PARVA_REQUIRE(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) throw std::logic_error(std::string("precondition failed: ") + (msg)); \
  } while (false)

/// Internal invariant check.
#define PARVA_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) throw std::logic_error(std::string("invariant violated: ") + (msg)); \
  } while (false)
