#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace parva {

std::vector<std::string> split(std::string_view input, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(input.substr(start));
      break;
    }
    fields.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view trim(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return input.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

bool parse_double(std::string_view text, double& out) {
  // std::from_chars for double is available in libstdc++ ≥ 11.
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_uint(std::string_view text, unsigned long long& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

}  // namespace parva
