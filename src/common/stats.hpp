// Streaming and batch statistics used by the profiler, the discrete-event
// simulator, and the benches (mean, variance, percentiles, histograms).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parva {

/// Canonical-order floating-point sum: sorts the values by IEEE-754 bit
/// pattern, then adds left to right. Double addition is not associative,
/// so the same multiset summed in two different orders can differ in the
/// last ulp; sorting first makes the result a pure function of the
/// multiset, which is what every exporter on the byte-identical path
/// needs (DESIGN.md §4.9, audit rule R14). Takes the vector by value --
/// the sort is destructive and callers usually pass a scratch buffer.
double sorted_sum(std::vector<double> values);

/// Welford-style streaming moments. O(1) space; numerically stable.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Exact running sum. Not reconstructed as mean * count: the Welford mean
  /// carries a rounding error that `* count` amplifies across long merge
  /// chains, while adding each sample (and each merged partial sum) once
  /// keeps sum() within one ulp-per-term of the true total.
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample container with percentile queries. Stores all samples;
/// intended for per-run latency distributions (≤ a few million points).
class Samples {
 public:
  void reserve(std::size_t n) { values_.reserve(n); }
  void add(double x) { values_.push_back(x); sorted_ = false; }
  void merge(const Samples& other);

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Percentile in [0,100]; linear interpolation between closest ranks.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

  /// Fraction of samples strictly above `threshold`.
  double fraction_above(double threshold) const;

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Fixed-bin histogram for quick distribution summaries in bench output.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace parva
