#include "common/thread_pool.hpp"

#include <utility>

namespace parva {

namespace {

/// Which pool (if any) owns the calling thread, and the worker's index in
/// it. Function-local thread_local: each worker thread binds itself once
/// at startup, so reads never race and no namespace-scope state exists.
struct WorkerSlot {
  const ThreadPool* pool = nullptr;
  std::size_t id = 0;
};

WorkerSlot& worker_slot() {
  thread_local WorkerSlot slot;
  return slot;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  {
    // Workers may start running before the constructor returns; size the
    // deque table under the lock they will read it under.
    MutexLock lock(mutex_);
    local_.resize(threads);
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() const { return worker_slot().pool == this; }

void ThreadPool::enqueue(Task task) {
  const WorkerSlot& slot = worker_slot();
  {
    MutexLock lock(mutex_);
    if (slot.pool == this) {
      // Child task of a running worker: own deque, popped LIFO by the
      // owner (cache-hot continuation) and stolen FIFO by siblings.
      local_[slot.id].push_back(std::move(task));
    } else {
      injector_.push_back(std::move(task));
    }
  }
  cv_.notify_one();
}

bool ThreadPool::have_task_locked() const {
  if (!injector_.empty()) return true;
  for (const auto& deque : local_) {
    if (!deque.empty()) return true;
  }
  return false;
}

ThreadPool::Task ThreadPool::take_task_locked(std::size_t id) {
  // Own deque newest-first, then the injector, then steal the oldest task
  // of the nearest sibling (round-robin from id+1 keeps thieves spread).
  if (!local_[id].empty()) {
    Task task = std::move(local_[id].back());
    local_[id].pop_back();
    return task;
  }
  if (!injector_.empty()) {
    Task task = std::move(injector_.front());
    injector_.pop_front();
    return task;
  }
  const std::size_t n = local_.size();
  for (std::size_t k = 1; k < n; ++k) {
    std::deque<Task>& victim = local_[(id + k) % n];
    if (!victim.empty()) {
      Task task = std::move(victim.front());
      victim.pop_front();
      return task;
    }
  }
  return {};
}

void ThreadPool::worker_loop(std::size_t id) {
  worker_slot() = {this, id};
  while (true) {
    Task task;
    {
      // Explicit predicate loop (not the wait(lock, pred) overload): the
      // thread-safety analysis treats a predicate lambda as a separate
      // function that touches guarded members without visibly holding the
      // capability.
      MutexLock lock(mutex_);
      while (!stopping_ && !have_task_locked()) cv_.wait(lock);
      if (stopping_ && !have_task_locked()) break;
      task = take_task_locked(id);
    }
    if (task) task();
  }
  worker_slot() = {};
}

void ThreadPool::drain(ForJob& job) {
  while (true) {
    const std::size_t i = job.cursor.fetch_add(1);
    if (i >= job.n) return;
    try {
      (*job.fn)(i);
    } catch (...) {
      MutexLock lock(job.mutex);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.done.fetch_add(1) + 1 == job.n) {
      // Completion edge: synchronise with the waiting caller. Taking the
      // job mutex before notifying closes the gap between its done-check
      // and its cv.wait.
      MutexLock lock(job.mutex);
      job.cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto job = std::make_shared<ForJob>(n, fn);
  // Recruit up to size() helpers; the caller participates regardless, so
  // helpers that never get a worker (or arrive after the range is drained)
  // are harmless no-ops holding a reference to the job.
  const std::size_t helpers = std::min(n - 1, size());
  for (std::size_t h = 0; h < helpers; ++h) {
    enqueue([job] { drain(*job); });
  }
  drain(*job);
  MutexLock lock(job->mutex);
  while (job->done.load() < n) job->cv.wait(lock);
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace parva
