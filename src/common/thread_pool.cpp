#include "common/thread_pool.hpp"

#include <atomic>

namespace parva {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      // Explicit predicate loop (not the wait(lock, pred) overload): the
      // thread-safety analysis treats a predicate lambda as a separate
      // function that touches guarded members without visibly holding the
      // capability.
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunked dynamic scheduling: an atomic cursor hands out indices; each
  // worker pulls until the range is exhausted.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t workers = std::min(n, size());
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(submit([cursor, n, &fn] {
      while (true) {
        const std::size_t i = cursor->fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  // Wait for every worker before rethrowing: an early rethrow would unwind
  // the caller's frame (and `fn`) while the other workers still call it.
  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace parva
