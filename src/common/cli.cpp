#include "common/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "common/strings.hpp"

namespace parva {
namespace {

/// Full-consumption base-10 integer parse: the strtoll that CLI validation
/// needs (atoll silently accepts "4x" as 4 and "" as 0).
bool parse_int_strict(const std::string& text, long long* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string name;
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      name = arg;
      value = argv[++i];
    } else {
      name = arg;
      value = "true";
    }
    if (flags_.count(name) != 0 &&
        std::find(repeated_.begin(), repeated_.end(), name) == repeated_.end()) {
      repeated_.push_back(name);
    }
    flags_[name] = std::move(value);
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) != 0; }

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  double value = 0.0;
  return parse_double(it->second, value) ? value : fallback;
}

long long CliArgs::get_int(const std::string& name, long long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  long long value = 0;
  return parse_int_strict(it->second, &value) ? value : fallback;
}

bool CliArgs::int_in_range(const std::string& name, long long min_value,
                           long long max_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return false;
  long long value = 0;
  if (!parse_int_strict(it->second, &value)) return false;
  return value >= min_value && value <= max_value;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace parva
