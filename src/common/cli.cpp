#include "common/cli.hpp"

#include <cstdlib>

#include "common/strings.hpp"

namespace parva {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) != 0; }

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  double value = 0.0;
  return parse_double(it->second, value) ? value : fallback;
}

long long CliArgs::get_int(const std::string& name, long long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::atoll(it->second.c_str());
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace parva
