// Clang thread-safety annotations (PARVA_GUARDED_BY and friends) plus
// capability-annotated mutex wrappers. Under Clang with -Wthread-safety the
// compiler proves every annotated member is only touched with its lock
// held; under GCC (which has no such analysis) every macro expands to
// nothing, so the annotations cost nothing and gate nothing locally. The
// clang-thread-safety CI job builds with -Wthread-safety -Werror to verify
// the annotations semantically; parva_audit rule R7 enforces syntactically
// that every mutable member of a mutex-owning class carries one.
//
// libstdc++'s std::mutex is not capability-annotated, so naively writing
// GUARDED_BY(mutex_) on members locked via std::lock_guard<std::mutex>
// produces false positives under Clang. parva::Mutex wraps std::mutex with
// the capability attribute and parva::MutexLock is the SCOPED_CAPABILITY
// guard; both degrade to the plain std types' behavior everywhere.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PARVA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PARVA_THREAD_ANNOTATION
#define PARVA_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define PARVA_CAPABILITY(x) PARVA_THREAD_ANNOTATION(capability(x))
#define PARVA_SCOPED_CAPABILITY PARVA_THREAD_ANNOTATION(scoped_lockable)
#define PARVA_GUARDED_BY(x) PARVA_THREAD_ANNOTATION(guarded_by(x))
#define PARVA_PT_GUARDED_BY(x) PARVA_THREAD_ANNOTATION(pt_guarded_by(x))
#define PARVA_REQUIRES(...) PARVA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PARVA_REQUIRES_SHARED(...) \
  PARVA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define PARVA_ACQUIRE(...) PARVA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PARVA_ACQUIRE_SHARED(...) \
  PARVA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PARVA_RELEASE(...) PARVA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PARVA_RELEASE_SHARED(...) \
  PARVA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PARVA_TRY_ACQUIRE(...) PARVA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PARVA_EXCLUDES(...) PARVA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PARVA_RETURN_CAPABILITY(x) PARVA_THREAD_ANNOTATION(lock_returned(x))
#define PARVA_NO_THREAD_SAFETY_ANALYSIS PARVA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace parva {

/// std::mutex with the Clang `capability` attribute so members can be
/// declared PARVA_GUARDED_BY(m_) and the analysis tracks acquisitions.
class PARVA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PARVA_ACQUIRE() { mutex_.lock(); }
  void unlock() PARVA_RELEASE() { mutex_.unlock(); }
  bool try_lock() PARVA_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// Escape hatch for std::condition_variable_any interop.
  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// std::shared_mutex counterpart for reader/writer members.
class PARVA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() PARVA_ACQUIRE() { mutex_.lock(); }
  void unlock() PARVA_RELEASE() { mutex_.unlock(); }
  void lock_shared() PARVA_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() PARVA_RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

/// Scoped exclusive guard over parva::Mutex: the std::lock_guard analogue
/// the analysis understands. Satisfies BasicLockable (relockable via
/// lock()/unlock()) so std::condition_variable_any can wait on it.
class PARVA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PARVA_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() PARVA_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // condition_variable_any::wait unlocks and relocks the guard around the
  // sleep; the analysis sees the capability as continuously held, which is
  // the intended semantics for the waiting thread's critical section.
  void lock() PARVA_ACQUIRE() { mutex_.lock(); }
  void unlock() PARVA_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// Scoped shared (reader) guard over parva::SharedMutex.
class PARVA_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mutex) PARVA_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~SharedMutexLock() PARVA_RELEASE() { mutex_.unlock_shared(); }
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

}  // namespace parva
