#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace parva {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  PARVA_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  PARVA_REQUIRE(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::add_row_numeric(const std::string& label, const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 != row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(header_, out);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string quoted = "\"";
    for (char ch : field) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) out += ',';
    out += escape(header_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

void TextTable::print(std::ostream& os) const { os << render(); }

void write_csv_file(const std::string& path, const std::string& csv) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return;  // best-effort; benches keep running without the file
  file << csv;
}

}  // namespace parva
