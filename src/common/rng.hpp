// Deterministic random number generation. All stochastic components in the
// simulator take an explicit seed so that every bench and test is
// reproducible run-to-run (see DESIGN.md §4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>

namespace parva {

/// Central registry of Rng::stream tag values (audit rule R10). Every
/// stream() call site must pass one of these enumerators: two call sites
/// sharing a tag value draw correlated streams, which silently destroys
/// the independence the per-entity stream derivation promises. Add new
/// tags here (and to detail::kAllStreamTags below, which carries the
/// pairwise-distinctness proof) rather than minting local constants.
enum class RngStreamTag : std::uint64_t {
  kArrival = 1,   ///< per-service arrival process (cluster_sim)
  kJitter = 2,    ///< per-unit batch-latency jitter
  kToken = 3,     ///< per-service token-length draws (generative LLM)
  kDispatch = 4,  ///< per-service power-of-two-choices dispatch probes
};

namespace detail {
inline constexpr RngStreamTag kAllStreamTags[] = {
    RngStreamTag::kArrival,
    RngStreamTag::kJitter,
    RngStreamTag::kToken,
    RngStreamTag::kDispatch,
};
constexpr bool stream_tags_pairwise_distinct() {
  for (std::size_t i = 0; i < sizeof(kAllStreamTags) / sizeof(kAllStreamTags[0]); ++i) {
    for (std::size_t j = i + 1; j < sizeof(kAllStreamTags) / sizeof(kAllStreamTags[0]);
         ++j) {
      if (kAllStreamTags[i] == kAllStreamTags[j]) return false;
    }
  }
  return true;
}
}  // namespace detail
static_assert(detail::stream_tags_pairwise_distinct(),
              "RngStreamTag values must be pairwise distinct: a shared value "
              "correlates the derived streams");

/// Thin deterministic RNG wrapper around SplitMix64 seeding + xoshiro256**.
/// Cheap to construct, cheap to copy, and stable across platforms (unlike
/// std::normal_distribution, our helpers use explicit algorithms).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_u64() % (hi - lo + 1);
  }

  /// Exponentially distributed sample with the given rate (events per unit
  /// time); used for Poisson arrival processes.
  double exponential(double rate);

  /// Standard normal via Box-Muller (stable across standard libraries).
  double normal(double mean, double stddev);

  /// Derives an independent child stream; used to give each simulated
  /// component its own stream without correlation.
  Rng split() { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

  /// Derives the (tag, index) stream of a seed as a pure function of its
  /// arguments — unlike split(), which depends on the parent's draw
  /// position. Per-entity streams built this way are stable no matter how
  /// many other entities exist or in what order they are constructed; the
  /// sharded event engine relies on this to give every service and every
  /// unit the exact same stream regardless of the shard partition.
  static Rng stream(std::uint64_t seed, std::uint64_t tag, std::uint64_t index) {
    std::uint64_t x = mix64(seed + 0x9e3779b97f4a7c15ULL * (tag + 1));
    x = mix64(x + 0x9e3779b97f4a7c15ULL * (index + 1));
    return Rng(x);
  }

  /// Registry-checked overload: the only form call sites should use (R10).
  static Rng stream(std::uint64_t seed, RngStreamTag tag, std::uint64_t index) {
    return stream(seed, static_cast<std::uint64_t>(tag), index);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  /// SplitMix64 finalizer: the same mix reseed() applies per state word.
  static constexpr std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t state_[4] = {};
};

inline double Rng::exponential(double rate) {
  // Inverse transform; clamp away from 0 to avoid -inf.
  double u = next_double();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

inline double Rng::normal(double mean, double stddev) {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = next_double();
  double u2 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(6.283185307179586 * u2);
}

}  // namespace parva
