// The telemetry handle wired through the stack: one MetricsRegistry plus
// one EventLog behind a nullable pointer.
//
// Every instrumented component takes a `Telemetry*` (via its options struct
// or a setter) and treats nullptr as "telemetry disabled": no registration,
// no recording, no allocation — the disabled path costs one pointer test.
// All existing outputs (CSVs, determinism fingerprints) are byte-identical
// whether telemetry is on or off, because instrumentation only *reads*
// simulation and control-plane state; it never participates in a decision
// or consumes randomness.
#pragma once

#include <cstddef>

#include "telemetry/event_log.hpp"
#include "telemetry/metrics_registry.hpp"

namespace parva::telemetry {

struct TelemetryOptions {
  /// Event-log capacity; appends beyond it are counted, not stored.
  std::size_t max_events = 65536;
  /// Emit per-batch serving events (kBatchCompleted). High volume — a DES
  /// run serves millions of batches — so off by default; counters and the
  /// latency histogram always aggregate regardless.
  bool request_events = false;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {})
      : options_(options), events_(options.max_events) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }
  const TelemetryOptions& options() const { return options_; }

 private:
  TelemetryOptions options_;
  MetricsRegistry metrics_;
  EventLog events_;
};

}  // namespace parva::telemetry
