#include "telemetry/exporters.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/table.hpp"

namespace parva::telemetry {
namespace {

/// Escapes a string for a JSON string literal or a Prometheus label value
/// (both use backslash escapes for quote and backslash; JSON additionally
/// needs control characters, which our payloads never contain but are
/// handled anyway).
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

void append_series_line(std::string& out, const std::string& name,
                        const std::string& labels, double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += format_metric_value(value);
  out += '\n';
}

/// Label body with an extra `le` label appended (histogram buckets).
std::string with_le(const std::string& labels, const std::string& le) {
  std::string out = labels;
  if (!out.empty()) out += ',';
  out += "le=\"" + le + "\"";
  return out;
}

}  // namespace

std::string format_metric_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  const std::vector<MetricSnapshot> snapshots = registry.scrape();
  std::string out;
  std::string last_name;
  for (const MetricSnapshot& snapshot : snapshots) {
    if (snapshot.name != last_name) {
      // HELP/TYPE preamble once per metric name; label variants follow.
      if (!snapshot.help.empty()) {
        out += "# HELP " + snapshot.name + " " + snapshot.help + "\n";
      }
      out += "# TYPE " + snapshot.name + " " + to_string(snapshot.kind) + "\n";
      last_name = snapshot.name;
    }
    switch (snapshot.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        append_series_line(out, snapshot.name, snapshot.labels, snapshot.value);
        break;
      case MetricKind::kHistogram: {
        // Prometheus buckets are cumulative.
        double cumulative = 0.0;
        for (std::size_t b = 0; b < snapshot.bounds.size(); ++b) {
          // The cumulative-bucket prefix sum is inherently ordered by index.
          // parva-audit: allow(R14): order fixed by construction.
          cumulative += snapshot.bucket_counts[b];
          append_series_line(out, snapshot.name + "_bucket",
                             with_le(snapshot.labels,
                                     format_metric_value(snapshot.bounds[b])),
                             cumulative);
        }
        // parva-audit: allow(R14): final +Inf term of the ordered prefix sum.
        cumulative += snapshot.bucket_counts.back();
        append_series_line(out, snapshot.name + "_bucket",
                           with_le(snapshot.labels, "+Inf"), cumulative);
        append_series_line(out, snapshot.name + "_sum", snapshot.labels, snapshot.sum);
        append_series_line(out, snapshot.name + "_count", snapshot.labels,
                           snapshot.count);
        break;
      }
    }
  }
  return out;
}

std::string to_json_lines(const EventLog& log) {
  std::string out;
  for (const Event& event : log.snapshot()) {
    out += "{\"seq\":" + std::to_string(event.seq);
    out += ",\"t_ms\":" + format_metric_value(event.t_ms);
    out += ",\"kind\":\"" + std::string(to_string(event.kind)) + "\"";
    if (event.gpu >= 0) out += ",\"gpu\":" + std::to_string(event.gpu);
    if (event.service_id >= 0) {
      out += ",\"service\":" + std::to_string(event.service_id);
    }
    if (event.value != 0.0) out += ",\"value\":" + format_metric_value(event.value);
    if (!event.detail.empty()) out += ",\"detail\":\"" + escape(event.detail) + "\"";
    out += "}\n";
  }
  return out;
}

double histogram_quantile(const MetricSnapshot& snapshot, double q) {
  if (snapshot.kind != MetricKind::kHistogram || snapshot.bounds.empty()) return 0.0;
  q = std::min(100.0, std::max(0.0, q));
  // Total over ALL buckets including +Inf: must equal snapshot.count, but
  // derive it from the buckets so a snapshot built by hand stays coherent.
  double total = 0.0;
  // Bucket counts are small non-negative integers stored as double.
  // parva-audit: allow(R14): integer-valued sum is exact in any order.
  for (const double c : snapshot.bucket_counts) total += c;
  const auto count = static_cast<std::size_t>(total);
  if (count == 0) return 0.0;

  // The value of the i-th (0-based) order statistic at bucket resolution:
  // the smallest le-bound whose cumulative count covers i + 1 observations
  // (le-inclusive convention, as to_prometheus exports). The +Inf overflow
  // bucket has no upper bound; clamp to the highest finite one.
  const auto order_stat = [&snapshot](std::size_t i) {
    double cumulative = 0.0;
    for (std::size_t b = 0; b < snapshot.bounds.size(); ++b) {
      // parva-audit: allow(R14): ordered prefix sum over exact integers.
      cumulative += snapshot.bucket_counts[b];
      if (cumulative >= static_cast<double>(i + 1)) return snapshot.bounds[b];
    }
    return snapshot.bounds.back();
  };

  // Samples::percentile's rank convention, verbatim.
  if (count == 1) return order_stat(0);
  const double rank = q / 100.0 * static_cast<double>(count - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, count - 1);
  const double frac = rank - static_cast<double>(lo);
  return order_stat(lo) * (1.0 - frac) + order_stat(hi) * frac;
}

std::string to_csv_summary(const MetricsRegistry& registry) {
  TextTable table({"metric", "labels", "value"});
  for (const MetricSnapshot& snapshot : registry.scrape()) {
    switch (snapshot.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        table.add_row({snapshot.name, snapshot.labels,
                       format_metric_value(snapshot.value)});
        break;
      case MetricKind::kHistogram: {
        table.add_row({snapshot.name + "_count", snapshot.labels,
                       format_metric_value(snapshot.count)});
        table.add_row({snapshot.name + "_sum", snapshot.labels,
                       format_metric_value(snapshot.sum)});
        const double mean = snapshot.count <= 0.0 ? 0.0 : snapshot.sum / snapshot.count;
        table.add_row({snapshot.name + "_mean", snapshot.labels,
                       format_metric_value(mean)});
        // Quantiles under the same rank convention as Samples::percentile,
        // so a CSV p99 and a Samples-derived p99 agree at bucket
        // resolution (exporters.hpp documents the reconciliation).
        for (const double q : {50.0, 95.0, 99.0}) {
          table.add_row({snapshot.name + "_p" + format_metric_value(q), snapshot.labels,
                         format_metric_value(histogram_quantile(snapshot, q))});
        }
        break;
      }
    }
  }
  return table.to_csv();
}

Status write_text_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status(ErrorCode::kNotFound, "cannot open " + path);
  file << content;
  if (!file) return Status(ErrorCode::kInternal, "short write to " + path);
  return Status::Ok();
}

}  // namespace parva::telemetry
