// Exporters over a scraped MetricsRegistry / EventLog snapshot:
//
//   * Prometheus text exposition (version 0.0.4): `# HELP` / `# TYPE`
//     preambles, `_bucket{le=...}` / `_sum` / `_count` histogram series.
//     No timestamps are emitted, so identical runs export identical text
//     (golden-testable).
//   * JSON lines: one event object per line, in sequence order.
//   * CSV summary: `metric,labels,value` rows through the same TextTable
//     CSV writer the bench results use, so telemetry summaries drop into
//     `results/` next to the figure CSVs.
#pragma once

#include <string>

#include "common/error.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics_registry.hpp"

namespace parva::telemetry {

/// Prometheus text exposition of every registered series.
std::string to_prometheus(const MetricsRegistry& registry);

/// JSON-lines dump of the event log (one object per line, seq order).
std::string to_json_lines(const EventLog& log);

/// CSV summary (header `metric,labels,value`; histograms flatten to
/// `<name>_sum` / `<name>_count` / `<name>_mean` / `<name>_p50` /
/// `<name>_p95` / `<name>_p99` rows). Row order follows the scrape's
/// (name, labels) sort.
std::string to_csv_summary(const MetricsRegistry& registry);

/// Estimates the q-th percentile (q in [0, 100]) of a histogram snapshot
/// using the SAME rank convention as Samples::percentile — rank
/// q/100 * (count - 1), linearly interpolated between order statistics —
/// over Prometheus le-INCLUSIVE cumulative buckets: the i-th order
/// statistic is attributed to the smallest bound whose cumulative count
/// reaches i + 1. Observations in the +Inf overflow bucket clamp to the
/// highest finite bound. When every observation sits exactly on a bucket
/// bound the estimate equals Samples::percentile on the raw values
/// bit-for-bit (tests/telemetry/exporters_test.cpp pins the
/// reconciliation); in between, it is the usual bucket-resolution
/// approximation. Returns 0.0 for empty histograms and scalar snapshots.
double histogram_quantile(const MetricSnapshot& snapshot, double q);

/// Deterministic value formatting shared by the exporters: integers print
/// bare, everything else with up to six significant decimals.
std::string format_metric_value(double value);

/// Writes `content` to `path`, truncating; parent directories must exist.
[[nodiscard]] Status write_text_file(const std::string& path, const std::string& content);

}  // namespace parva::telemetry
