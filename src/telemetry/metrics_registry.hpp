// Metrics registry: counters, gauges, and fixed-bucket histograms with a
// lock-free fast path.
//
// Counters and histograms write through per-thread shards (each registered
// thread owns a slot array of relaxed atomics; only the owner writes, so an
// update is one relaxed load+store — no CAS, no lock) that scrape() merges.
// Gauges are "set to X" semantics, which cannot be merged across shards, so
// each gauge is a single shared atomic slot (a set is still one relaxed
// store). Registration and scraping take a mutex; both happen at setup /
// export time, never in the serving or simulation hot path.
//
// Handles (Counter/Gauge/HistogramMetric) are cheap values that remain
// valid as long as the registry lives. A default-constructed handle is a
// no-op sink, so call sites can hold handles unconditionally and pay a
// predictable branch when telemetry is disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace parva::telemetry {

class MetricsRegistry;

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

/// Monotonically increasing value (merged across shards by summation).
class Counter {
 public:
  Counter() = default;
  void inc(double v = 1.0);

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Last-written value (single shared slot; no shard merging).
class Gauge {
 public:
  Gauge() = default;
  void set(double v);

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Fixed-bucket histogram: per-bound bucket counts plus sum and count,
/// Prometheus-style (an implicit +Inf bucket catches overflow).
class HistogramMetric {
 public:
  HistogramMetric() = default;
  void observe(double v);

 private:
  friend class MetricsRegistry;
  HistogramMetric(MetricsRegistry* registry, std::uint32_t base_slot,
                  const double* bounds, std::uint32_t bucket_count)
      : registry_(registry), base_slot_(base_slot), bounds_(bounds),
        bucket_count_(bucket_count) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t base_slot_ = 0;     ///< first bucket slot; then +Inf, sum, count
  const double* bounds_ = nullptr;  ///< finite upper bounds (registry-owned)
  std::uint32_t bucket_count_ = 0;  ///< finite bounds (excludes +Inf)
};

/// Point-in-time view of one metric series, produced by scrape().
struct MetricSnapshot {
  std::string name;
  std::string help;
  std::string labels;  ///< Prometheus label body, e.g. `service="3"` (may be empty)
  MetricKind kind = MetricKind::kCounter;

  double value = 0.0;  ///< counters and gauges

  // Histogram payload (empty for scalar metrics).
  std::vector<double> bounds;         ///< finite upper bounds, ascending
  std::vector<double> bucket_counts;  ///< per-bound counts + trailing +Inf bucket
  double sum = 0.0;
  double count = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by (name, labels). Kind and (for histograms) bounds must
  /// match on reuse; mismatches throw.
  Counter counter(const std::string& name, const std::string& help = "",
                  const std::string& labels = "");
  Gauge gauge(const std::string& name, const std::string& help = "",
              const std::string& labels = "");
  HistogramMetric histogram(const std::string& name, std::vector<double> bounds,
                            const std::string& help = "", const std::string& labels = "");

  /// Latency buckets (ms) shared by the serving-path histograms.
  static std::vector<double> default_latency_buckets_ms();

  /// Merged view of every registered series, sorted by (name, labels) so
  /// exporter output is stable run-to-run.
  std::vector<MetricSnapshot> scrape() const;

  std::size_t series_count() const;

 private:
  friend class Counter;
  friend class HistogramMetric;

  struct Shard {
    std::unique_ptr<std::atomic<double>[]> slots;
    std::size_t capacity = 0;
  };

  struct Series {
    std::string name;
    std::string help;
    std::string labels;
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t slot = 0;      ///< sharded base slot, or gauge index
    std::vector<double> bounds;  ///< histograms only
  };

  /// The calling thread's slot pointer for a sharded metric; registers the
  /// thread's shard (and grows it) on first touch of a new slot.
  std::atomic<double>* shard_slot(std::uint32_t slot);
  std::atomic<double>* shard_slot_slow(std::uint32_t slot);

  Series* find_series(const std::string& name, const std::string& labels)
      PARVA_REQUIRES(mutex_);

  mutable Mutex mutex_;
  /// deque: bounds stay address-stable for handles
  std::deque<Series> series_ PARVA_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<Shard>> shards_ PARVA_GUARDED_BY(mutex_);
  /// Cells are atomics written lock-free via Gauge handles; the deque's
  /// structure (growth) is mutated only under mutex_ and deque growth never
  /// moves existing elements.
  std::deque<std::atomic<double>> gauges_;
  std::size_t slot_count_ PARVA_GUARDED_BY(mutex_) = 0;  ///< sharded slots allocated
  const std::uint64_t id_;  ///< process-unique, guards thread-local caches
};

}  // namespace parva::telemetry
