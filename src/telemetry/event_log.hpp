// Structured event tracing: a bounded, thread-safe log of typed spans and
// events from the control plane (Deployer, Reconfigurer, RepairCoordinator,
// Autoscaler) and the serving loop (cluster_sim). Events carry simulated
// time, not wall clock, so a log replays identically run-to-run and the
// JSON-lines export is golden-testable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace parva::telemetry {

/// Event taxonomy. One enum across subsystems so a merged log reads as a
/// single audit trail of what the fleet did.
enum class EventKind : std::uint8_t {
  // serving/cluster_sim
  kRequestShed,     ///< dropped by a failure (dying unit or no live unit)
  kBatchCompleted,  ///< one served batch (emitted only with request_events)
  kLlmAdmissionReject,  ///< batch refused: KV ledger could not fit it
  kLlmEviction,         ///< resident batch evicted to free KV capacity
  kGpuFailure,      ///< XID-style device loss executed mid-run
  kUnitActivated,   ///< repair replacement came online
  // core/deployer + gpu/nvml_sim
  kInstanceCreated,
  kInstanceDestroyed,
  kCreateRetry,         ///< transient NVML_ERROR_IN_USE, will back off
  kFallbackPlacement,   ///< planned slot stayed blocked; alternate slot used
  // serving/autoscaler
  kEpochDecision,
  // core/repair
  kDisplacement,     ///< units displaced by a device loss
  kRepairCompleted,  ///< replacements live; value = recovery_ms
  // core/reconfigure + core/parvagpu
  kPlanDiff,           ///< segments removed/added/untouched by an update
  kScheduleCompleted,  ///< one full scheduling run; value = delay_ms
  // gpu/dcgm_sim
  kHealthEvent,
};

const char* to_string(EventKind kind);

/// One log record. `gpu`, `service_id`, and `value` are kind-specific
/// (negative / zero when not meaningful); `detail` holds small free-form
/// `key=value` payload for fields that do not fit the fixed slots.
struct Event {
  std::uint64_t seq = 0;  ///< assigned by the log; stable sort key
  double t_ms = 0.0;      ///< simulated time
  EventKind kind = EventKind::kRequestShed;
  int gpu = -1;
  int service_id = -1;
  double value = 0.0;
  std::string detail;
};

/// Bounded append-only log. Appends beyond the capacity are counted in
/// dropped() rather than silently discarded, so exports can state their own
/// completeness.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 65536);

  void record(Event event);

  /// Convenience append.
  void record(EventKind kind, double t_ms, int gpu = -1, int service_id = -1,
              double value = 0.0, std::string detail = "");

  std::vector<Event> snapshot() const;
  std::size_t size() const;
  std::size_t dropped() const;
  std::size_t capacity() const { return capacity_; }

 private:
  mutable Mutex mutex_;
  std::vector<Event> events_ PARVA_GUARDED_BY(mutex_);
  const std::size_t capacity_;  ///< immutable after construction; capacity() is lock-free
  std::uint64_t next_seq_ PARVA_GUARDED_BY(mutex_) = 0;
  std::size_t dropped_ PARVA_GUARDED_BY(mutex_) = 0;
};

}  // namespace parva::telemetry
