#include "telemetry/event_log.hpp"

namespace parva::telemetry {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kRequestShed: return "request_shed";
    case EventKind::kBatchCompleted: return "batch_completed";
    case EventKind::kLlmAdmissionReject: return "llm_admission_reject";
    case EventKind::kLlmEviction: return "llm_eviction";
    case EventKind::kGpuFailure: return "gpu_failure";
    case EventKind::kUnitActivated: return "unit_activated";
    case EventKind::kInstanceCreated: return "instance_created";
    case EventKind::kInstanceDestroyed: return "instance_destroyed";
    case EventKind::kCreateRetry: return "create_retry";
    case EventKind::kFallbackPlacement: return "fallback_placement";
    case EventKind::kEpochDecision: return "epoch_decision";
    case EventKind::kDisplacement: return "displacement";
    case EventKind::kRepairCompleted: return "repair_completed";
    case EventKind::kPlanDiff: return "plan_diff";
    case EventKind::kScheduleCompleted: return "schedule_completed";
    case EventKind::kHealthEvent: return "health_event";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void EventLog::record(Event event) {
  MutexLock lock(mutex_);
  event.seq = next_seq_++;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void EventLog::record(EventKind kind, double t_ms, int gpu, int service_id, double value,
                      std::string detail) {
  Event event;
  event.kind = kind;
  event.t_ms = t_ms;
  event.gpu = gpu;
  event.service_id = service_id;
  event.value = value;
  event.detail = std::move(detail);
  record(std::move(event));
}

std::vector<Event> EventLog::snapshot() const {
  MutexLock lock(mutex_);
  return events_;
}

std::size_t EventLog::size() const {
  MutexLock lock(mutex_);
  return events_.size();
}

std::size_t EventLog::dropped() const {
  MutexLock lock(mutex_);
  return dropped_;
}

}  // namespace parva::telemetry
