#include "telemetry/metrics_registry.hpp"

#include <algorithm>
#include <cstdint>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace parva::telemetry {
namespace {

/// Per-thread cache of (registry id -> shard slot array). Registry ids are
/// process-unique and never reused, so a stale cache entry for a destroyed
/// registry can never alias a live one.
struct ThreadShardCache {
  struct Entry {
    std::uint64_t registry_id = 0;
    std::atomic<double>* slots = nullptr;
    std::size_t capacity = 0;
  };
  std::vector<Entry> entries;

  Entry* find(std::uint64_t registry_id) {
    for (Entry& entry : entries) {
      if (entry.registry_id == registry_id) return &entry;
    }
    return nullptr;
  }
};

// Deliberate thread-local state: each thread owns its cache entries
// outright, so there is nothing shared to race on, and registry ids are
// never reused, so a stale entry cannot alias a live registry.
thread_local ThreadShardCache t_shard_cache;  // parva-audit: allow(R3)

std::uint64_t next_registry_id() {
  // relaxed: id allocation needs atomicity only; nothing is published
  // under the counter value.
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Single-writer add: only the owning thread writes a sharded slot, so the
/// relaxed read-back of its own previous store is exact (scrapers only
/// read). The release store pairs with the acquire loads in scrape(): a
/// scrape that observes this write also observes every update the writer
/// completed before it, bounding cross-metric skew during a live scrape to
/// the single in-flight update per thread.
inline void shard_add(std::atomic<double>* slot, double v) {
  slot->store(slot->load(std::memory_order_relaxed) + v, std::memory_order_release);
}

}  // namespace

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void Counter::inc(double v) {
  if (registry_ == nullptr) return;
  shard_add(registry_->shard_slot(slot_), v);
}

void Gauge::set(double v) {
  if (cell_ == nullptr) return;
  // relaxed: gauges are last-writer-wins snapshots with no cross-slot
  // invariant; the store itself is atomic and scrape() tolerates any
  // interleaving.
  cell_->store(v, std::memory_order_relaxed);
}

void HistogramMetric::observe(double v) {
  if (registry_ == nullptr) return;
  // Bounds are ascending; the first bound >= v names the bucket, the +Inf
  // bucket at bucket_count_ catches the rest. Bucket lists are short
  // (~a dozen), so a linear scan is cache-friendly and branch-predictable.
  std::uint32_t bucket = bucket_count_;
  for (std::uint32_t i = 0; i < bucket_count_; ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  shard_add(registry_->shard_slot(base_slot_ + bucket), 1.0);
  shard_add(registry_->shard_slot(base_slot_ + bucket_count_ + 1), v);    // sum
  shard_add(registry_->shard_slot(base_slot_ + bucket_count_ + 2), 1.0);  // count
}

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Series* MetricsRegistry::find_series(const std::string& name,
                                                      const std::string& labels) {
  for (Series& series : series_) {
    if (series.name == name && series.labels == labels) return &series;
  }
  return nullptr;
}

Counter MetricsRegistry::counter(const std::string& name, const std::string& help,
                                 const std::string& labels) {
  MutexLock lock(mutex_);
  if (Series* existing = find_series(name, labels)) {
    PARVA_REQUIRE(existing->kind == MetricKind::kCounter,
                  "metric re-registered with a different kind: " + name);
    return Counter(this, existing->slot);
  }
  Series series;
  series.name = name;
  series.help = help;
  series.labels = labels;
  series.kind = MetricKind::kCounter;
  series.slot = static_cast<std::uint32_t>(slot_count_);
  slot_count_ += 1;
  series_.push_back(std::move(series));
  return Counter(this, series_.back().slot);
}

Gauge MetricsRegistry::gauge(const std::string& name, const std::string& help,
                             const std::string& labels) {
  MutexLock lock(mutex_);
  if (Series* existing = find_series(name, labels)) {
    PARVA_REQUIRE(existing->kind == MetricKind::kGauge,
                  "metric re-registered with a different kind: " + name);
    return Gauge(&gauges_[existing->slot]);
  }
  Series series;
  series.name = name;
  series.help = help;
  series.labels = labels;
  series.kind = MetricKind::kGauge;
  series.slot = static_cast<std::uint32_t>(gauges_.size());
  gauges_.emplace_back(0.0);
  series_.push_back(std::move(series));
  return Gauge(&gauges_.back());
}

HistogramMetric MetricsRegistry::histogram(const std::string& name,
                                           std::vector<double> bounds,
                                           const std::string& help,
                                           const std::string& labels) {
  PARVA_REQUIRE(!bounds.empty(), "histogram needs at least one bucket bound");
  PARVA_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()),
                "histogram bounds must be ascending");
  MutexLock lock(mutex_);
  if (Series* existing = find_series(name, labels)) {
    PARVA_REQUIRE(existing->kind == MetricKind::kHistogram,
                  "metric re-registered with a different kind: " + name);
    PARVA_REQUIRE(existing->bounds == bounds,
                  "histogram re-registered with different bounds: " + name);
    return HistogramMetric(this, existing->slot, existing->bounds.data(),
                           static_cast<std::uint32_t>(existing->bounds.size()));
  }
  Series series;
  series.name = name;
  series.help = help;
  series.labels = labels;
  series.kind = MetricKind::kHistogram;
  series.slot = static_cast<std::uint32_t>(slot_count_);
  series.bounds = std::move(bounds);
  // Slots: one per finite bound, one +Inf bucket, sum, count.
  slot_count_ += series.bounds.size() + 3;
  series_.push_back(std::move(series));
  const Series& stored = series_.back();
  return HistogramMetric(this, stored.slot, stored.bounds.data(),
                         static_cast<std::uint32_t>(stored.bounds.size()));
}

std::vector<double> MetricsRegistry::default_latency_buckets_ms() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0};
}

std::atomic<double>* MetricsRegistry::shard_slot(std::uint32_t slot) {
  ThreadShardCache::Entry* entry = t_shard_cache.find(id_);
  if (entry != nullptr && slot < entry->capacity) return entry->slots + slot;
  return shard_slot_slow(slot);
}

std::atomic<double>* MetricsRegistry::shard_slot_slow(std::uint32_t slot) {
  MutexLock lock(mutex_);
  PARVA_REQUIRE(slot < slot_count_, "metric slot out of range");
  // Allocate (or grow) this thread's shard to the registry's current slot
  // count, carrying existing values forward. The retired (smaller) array is
  // removed from the merge set under the same mutex scrape() takes, so the
  // carried values are summed exactly once.
  ThreadShardCache::Entry* entry = t_shard_cache.find(id_);
  const std::size_t capacity = std::max<std::size_t>(slot_count_, 64);
  auto shard = std::make_unique<Shard>();
  shard->slots = std::make_unique<std::atomic<double>[]>(capacity);
  shard->capacity = capacity;
  for (std::size_t i = 0; i < capacity; ++i) {
    // relaxed: the shard is only published to scrape() via shards_ under
    // mutex_ below; no other thread can observe these initializing stores.
    shard->slots[i].store(0.0, std::memory_order_relaxed);
  }
  if (entry != nullptr && entry->slots != nullptr) {
    for (std::size_t i = 0; i < entry->capacity; ++i) {
      // relaxed: carries this thread's own single-writer values into the
      // grown shard (same-thread reads are exact); publication of the new
      // shard happens under mutex_.
      shard->slots[i].store(entry->slots[i].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    shards_.erase(std::remove_if(shards_.begin(), shards_.end(),
                                 [&](const std::unique_ptr<Shard>& s) {
                                   return s->slots.get() == entry->slots;
                                 }),
                  shards_.end());
  }
  std::atomic<double>* slots = shard->slots.get();
  shards_.push_back(std::move(shard));
  if (entry == nullptr) {
    t_shard_cache.entries.push_back({id_, slots, capacity});
  } else {
    entry->slots = slots;
    entry->capacity = capacity;
  }
  return slots + slot;
}

std::vector<MetricSnapshot> MetricsRegistry::scrape() const {
  MutexLock lock(mutex_);
  // Merge shards into one flat slot array. shards_ is ordered by thread
  // arrival, i.e. by scheduling, and double addition is not associative --
  // summing in registration order would let two identical runs scrape
  // values differing in the last ulp and break byte-identical .prom/.csv
  // exports. parva::sorted_sum orders each slot's contributions by bit
  // pattern first, making the merged value a pure function of the
  // contribution multiset.
  std::vector<double> merged(slot_count_, 0.0);
  std::vector<double> contributions;
  contributions.reserve(shards_.size());
  for (std::size_t i = 0; i < slot_count_; ++i) {
    contributions.clear();
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (i >= shard->capacity) continue;
      // acquire: pairs with the release store in shard_add(); see there.
      contributions.push_back(shard->slots[i].load(std::memory_order_acquire));
    }
    merged[i] = sorted_sum(contributions);
  }

  std::vector<MetricSnapshot> out;
  out.reserve(series_.size());
  for (const Series& series : series_) {
    MetricSnapshot snapshot;
    snapshot.name = series.name;
    snapshot.help = series.help;
    snapshot.labels = series.labels;
    snapshot.kind = series.kind;
    switch (series.kind) {
      case MetricKind::kCounter:
        snapshot.value = merged[series.slot];
        break;
      case MetricKind::kGauge:
        // relaxed: last-writer-wins snapshot; see Gauge::set().
        snapshot.value = gauges_[series.slot].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        const std::size_t buckets = series.bounds.size();
        snapshot.bounds = series.bounds;
        snapshot.bucket_counts.resize(buckets + 1);
        for (std::size_t b = 0; b <= buckets; ++b) {
          snapshot.bucket_counts[b] = merged[series.slot + b];
        }
        snapshot.sum = merged[series.slot + buckets + 1];
        snapshot.count = merged[series.slot + buckets + 2];
        break;
      }
    }
    out.push_back(std::move(snapshot));
  }
  std::sort(out.begin(), out.end(), [](const MetricSnapshot& a, const MetricSnapshot& b) {
    return a.name != b.name ? a.name < b.name : a.labels < b.labels;
  });
  return out;
}

std::size_t MetricsRegistry::series_count() const {
  MutexLock lock(mutex_);
  return series_.size();
}

}  // namespace parva::telemetry
