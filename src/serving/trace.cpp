#include "serving/trace.hpp"

#include <algorithm>
#include <cmath>

namespace parva::serving {

RateTrace::RateTrace(std::vector<TraceKnot> knots) : knots_(std::move(knots)) {
  PARVA_REQUIRE(!knots_.empty(), "trace needs at least one knot");
  // Stable sort + coalesce: knots sharing a t_hours collapse to the
  // last-specified one. A non-stable sort here once made multiplier_at
  // order-dependent when knot times collided (e.g. surge(0, ...) emits the
  // base knot and the surge knot both at t=0); stable ordering plus
  // deduplication makes the trace a function of its knot list, not of the
  // sort's tie-breaking.
  std::stable_sort(knots_.begin(), knots_.end(),
                   [](const TraceKnot& a, const TraceKnot& b) { return a.t_hours < b.t_hours; });
  std::size_t kept = 0;
  for (std::size_t i = 0; i < knots_.size(); ++i) {
    if (kept > 0 && knots_[i].t_hours == knots_[kept - 1].t_hours) {
      knots_[kept - 1] = knots_[i];  // later-specified knot wins
    } else {
      knots_[kept++] = knots_[i];
    }
  }
  knots_.resize(kept);
  for (const TraceKnot& knot : knots_) {
    PARVA_REQUIRE(knot.t_hours >= 0.0 && knot.t_hours < 24.0, "knots live in [0, 24)");
    PARVA_REQUIRE(knot.multiplier >= 0.0, "multiplier must be non-negative");
  }
}

RateTrace RateTrace::diurnal() {
  return RateTrace({
      {0.0, 0.40},  // midnight
      {4.0, 0.30},  // deepest night
      {7.0, 0.60},  // morning ramp
      {10.0, 1.00}, // business hours
      {14.0, 0.95},
      {18.0, 1.10}, // after-work rise
      {21.0, 1.25}, // evening peak
      {23.0, 0.70},
  });
}

RateTrace RateTrace::flat(double multiplier) { return RateTrace({{0.0, multiplier}}); }

RateTrace RateTrace::surge(double from_hour, double to_hour, double factor) {
  PARVA_REQUIRE(from_hour < to_hour, "surge window must be ordered");
  std::vector<TraceKnot> knots = {{0.0, 1.0}};
  if (from_hour > 0.25) knots.push_back({from_hour - 0.25, 1.0});
  knots.push_back({from_hour, factor});
  knots.push_back({to_hour, factor});
  if (to_hour + 0.25 < 24.0) knots.push_back({to_hour + 0.25, 1.0});
  return RateTrace(std::move(knots));
}

double RateTrace::multiplier_at(double t_hours) const {
  double t = std::fmod(t_hours, 24.0);
  if (t < 0.0) t += 24.0;
  if (knots_.size() == 1) return knots_.front().multiplier;

  // Find the surrounding knots (wrapping across midnight). Knots are kept
  // sorted by the constructor, so the first knot after `t` is a binary
  // search, not a scan — multiplier_at sits in the autoscaler's inner loop.
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), t,
      [](double value, const TraceKnot& knot) { return value < knot.t_hours; });
  const TraceKnot* before = nullptr;
  const TraceKnot* after = nullptr;
  double before_t = 0.0;
  double after_t = 0.0;
  if (it == knots_.begin()) {
    before = &knots_.back();  // wrapped copy from yesterday
    before_t = before->t_hours - 24.0;
    after = &knots_.front();
    after_t = after->t_hours;
  } else if (it == knots_.end()) {
    before = &knots_.back();
    before_t = before->t_hours;
    after = &knots_.front();  // wrapped copy into tomorrow
    after_t = after->t_hours + 24.0;
  } else {
    before = &*(it - 1);
    before_t = before->t_hours;
    after = &*it;
    after_t = after->t_hours;
  }
  const double span = after_t - before_t;
  const double frac = span <= 0.0 ? 0.0 : (t - before_t) / span;
  return before->multiplier + (after->multiplier - before->multiplier) * frac;
}

double RateTrace::peak() const {
  double peak = 0.0;
  for (const TraceKnot& knot : knots_) peak = std::max(peak, knot.multiplier);
  return peak;
}

}  // namespace parva::serving
