// Discrete-event simulation of the inference-serving cluster.
//
// Executes any Deployment (ParvaGPU's or a baseline's) under open-loop
// Poisson request arrivals:
//   * each deployed unit runs `procs` concurrent server processes, each
//     serving batches up to the unit's configured batch size;
//   * requests are dispatched to the unit with the lowest expected delay
//     (queue backlog over capacity), matching a front-end load balancer;
//   * a free process immediately serves whatever is queued (up to the
//     batch size) — adaptive batching, no assembly stalls;
//   * batch service times are the unit's ground-truth latency (including
//     any MPS interference inflation baked into actual_latency_ms) scaled
//     to the actual fill level, with multiplicative jitter;
//   * per-batch SM-time is charged to a DCGM-style activity counter, from
//     which Eq. 3 internal slack is measured exactly as the paper does.
//
// SLO accounting follows Section IV-C1: a batch violates when any request
// it contains exceeds the service's (full) SLO latency from arrival to
// completion; the compliance rate is 1 - violating/total batches.
//
// Fault execution: a FaultPlan's scheduled GPU losses run mid-simulation —
// every unit on the failed device stops serving, its queued and in-flight
// requests are shed, and requests arriving for a service with no live unit
// are shed on arrival. Replacement units produced by the repair path
// (core/repair.hpp) enter the deployment dormant and activate at their
// scheduled time, so SLO compliance is measured *through* the failure:
// the result splits into pre-failure / degraded / post-recovery phases and
// an optional bucketed compliance timeline.
//
// Sharded execution (DESIGN.md §4.5): `options.shards` partitions the
// services (and their units) across N independent sub-engines that advance
// in conservative time windows and exchange cross-shard events (GPU
// failures) at window barriers. Every event source carries a canonical
// (time, seq) key that is a pure function of the workload (see
// shard_engine.hpp), and all randomness is drawn from per-service /
// per-unit streams, so the merged output — results, CSV exports,
// determinism fingerprints, telemetry — is byte-identical for every shard
// count and thread schedule (tests/serving/parallel_engine_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/deployment.hpp"
#include "gpu/fault_plan.hpp"
#include "perfmodel/analytical_model.hpp"
#include "serving/llm_engine.hpp"
#include "serving/shard_engine.hpp"
#include "telemetry/telemetry.hpp"

namespace parva {
class ThreadPool;
}

namespace parva::serving {

/// Request arrival process. The paper's evaluation drives each service at a
/// "specified request rate" (a paced load generator), which kDeterministic
/// models; kPoisson adds open-loop burstiness for robustness studies.
/// kBursty models streaming chat traffic: each gap is exponential at
/// either a boosted burst rate (probability `burst_prob`) or a compensating
/// slow rate, preserving the offered rate overall (DESIGN.md §4.7).
enum class ArrivalProcess { kDeterministic, kPoisson, kBursty };

/// A unit that starts dormant and comes up mid-run (a repair replacement).
struct UnitActivation {
  std::size_t unit_index = 0;  ///< index into deployment.units
  double at_ms = 0.0;          ///< activation time
};

struct SimulationOptions {
  double duration_ms = 20'000.0;  ///< simulated time after warm-up
  double warmup_ms = 2'000.0;     ///< discarded start-up transient
  std::uint64_t seed = 42;
  ArrivalProcess arrivals = ArrivalProcess::kDeterministic;

  /// Scheduled faults executed mid-run (nullptr = healthy fleet). Only the
  /// plan's gpu_failures are interpreted here; transient create faults act
  /// on the control plane, not on serving.
  const gpu::FaultPlan* fault_plan = nullptr;

  /// Units that are dormant at t=0 and activate mid-run (repair
  /// replacements). Indices refer to the simulated deployment's units.
  std::vector<UnitActivation> activations;

  /// Boundary between the degraded and recovered phases. When 0 it is
  /// derived from the latest activation (or never reached without one).
  double recovered_at_ms = 0.0;

  /// Bucket width for the compliance timeline; 0 disables the timeline.
  double timeline_bucket_ms = 0.0;

  /// Observability sink (nullptr = disabled, the default). The simulator
  /// only *writes* counters/histograms/events derived from its existing
  /// accounting; results are byte-identical with telemetry on or off.
  /// Safe to share across concurrent simulations (seed sweeps aggregate).
  telemetry::Telemetry* telemetry = nullptr;

  /// Shard count for parallel execution (1 = single sub-engine, the
  /// default). Services are partitioned deterministically (LPT on offered
  /// rate); outputs are byte-identical for every value.
  int shards = 1;

  /// Pool that executes shard windows concurrently. nullptr runs shards
  /// sequentially on the calling thread — same outputs, no parallelism —
  /// so decomposition correctness never depends on a pool being present.
  /// Sharing one pool between a sweep (sim_runner) and the shards of its
  /// jobs is safe: ThreadPool::parallel_for is nesting-safe (the caller
  /// participates), so this may be the very pool run() was submitted to.
  ThreadPool* shard_pool = nullptr;

  /// How each shard schedules its pending arrivals (DESIGN.md §4.6).
  /// kAuto picks the tournament tree strictly above
  /// kArrivalTournamentThreshold local services and the flat scan at or
  /// below it (exactly 16 local services → flat scan); forcing either
  /// changes per-event cost only — outputs are byte-identical for every
  /// value (tests/serving/arrival_scheduler_test.cpp).
  ArrivalSchedulerKind arrival_scheduler = ArrivalSchedulerKind::kAuto;

  /// Forces lockstep window barriers every `shard_window_ms` of simulated
  /// time in addition to the barriers at cross-shard events. 0 (default)
  /// lets windows extend conservatively to the next scheduled cross-shard
  /// event: with today's event set (static fault/activation schedules)
  /// that bound is exact, so the engine barriers only when it must. Tests
  /// force small windows to exercise the barrier path; outputs are
  /// byte-identical either way.
  double shard_window_ms = 0.0;

  /// Generative-LLM execution policies (DESIGN.md §4.7). Only services
  /// carrying a core::LlmWorkload engage them; fixed-latency services are
  /// byte-identically unaffected by every setting.
  LlmSimOptions llm;

  /// kBursty arrival shaping: gaps draw the boosted rate
  /// `rate * burst_factor` with probability `burst_prob`, otherwise a slow
  /// rate chosen so the mean gap still matches the offered rate.
  double burst_factor = 6.0;
  double burst_prob = 0.2;
};

/// Per-service outcome.
struct ServiceOutcome {
  int service_id = -1;
  std::size_t requests = 0;
  std::size_t batches = 0;
  std::size_t violated_batches = 0;
  /// Requests dropped by failures: queued/in-flight on a dying unit, or
  /// arriving while the service had no live unit.
  std::size_t shed_requests = 0;
  Samples request_latency_ms;
  double offered_rate = 0.0;
  double measured_rate = 0.0;  ///< completed requests / duration

  // Generative-LLM accounting (all zero for fixed-latency services).
  /// Requests refused admission because the KV ledger could not fit them.
  std::size_t rejected_requests = 0;
  /// Requests evicted mid-decode to free KV capacity for newer work.
  std::size_t evicted_requests = 0;
  /// Total decode tokens emitted by completed requests.
  std::uint64_t generated_tokens = 0;
  /// Arrival -> prefill completion (time to first token), measured batches.
  Samples prefill_latency_ms;
  /// Prefill completion -> last token, measured batches with decode work.
  Samples decode_latency_ms;

  double compliance() const {
    return batches == 0 ? 1.0
                        : 1.0 - static_cast<double>(violated_batches) /
                                    static_cast<double>(batches);
  }
};

/// Request-level compliance of one failure phase of the run. Unlike the
/// batch-level service metric, shed requests count against the phase — a
/// request dropped by a device loss is an SLO miss, so degraded-mode
/// compliance genuinely dips even when the surviving units keep every
/// batch they serve within its deadline.
struct PhaseStats {
  std::size_t batches = 0;
  std::size_t violated_batches = 0;
  std::size_t requests = 0;           ///< requests completed in the phase
  std::size_t violated_requests = 0;  ///< completed past the SLO
  std::size_t shed_requests = 0;      ///< dropped by failures in the phase

  double compliance() const {
    const std::size_t offered = requests + shed_requests;
    return offered == 0 ? 1.0
                        : 1.0 - static_cast<double>(violated_requests + shed_requests) /
                                    static_cast<double>(offered);
  }
};

/// One bucket of the compliance-vs-time series.
struct TimelineBucket {
  double t_ms = 0.0;  ///< bucket start (relative to warm-up end)
  std::size_t batches = 0;
  std::size_t violated_batches = 0;
  std::size_t shed_requests = 0;

  double compliance() const {
    return batches == 0 ? 1.0
                        : 1.0 - static_cast<double>(violated_batches) /
                                    static_cast<double>(batches);
  }
};

struct SimulationResult {
  std::vector<ServiceOutcome> services;
  /// Discrete events the engine processed (arrivals, completions, faults,
  /// activations) — the numerator of the events/sec engine metric.
  std::size_t events_processed = 0;
  /// DCGM-style SM activity per deployed unit (parallel to deployment.units).
  std::vector<double> unit_activity;
  /// Eq. 3 internal slack measured from the activities.
  double internal_slack = 0.0;

  /// Failure bookkeeping (negative when the run saw no device loss).
  double failure_at_ms = -1.0;
  double recovered_at_ms = -1.0;
  std::size_t requests_shed = 0;
  /// Compliance split by phase: before the first device loss, between loss
  /// and recovery (degraded mode), and after recovery.
  PhaseStats pre_failure;
  PhaseStats degraded;
  PhaseStats post_recovery;

  /// Compliance-vs-time series (empty unless timeline_bucket_ms > 0).
  std::vector<TimelineBucket> timeline;

  /// Execution metadata (one entry per shard; size == options.shards).
  /// `shard_events` is deterministic (part of the workload partition);
  /// `shard_busy_ms` is measured wall-clock per shard — the scaling
  /// numerator for bench reporting — and, like any timing, is excluded
  /// from determinism fingerprints.
  std::vector<std::size_t> shard_events;
  std::vector<double> shard_busy_ms;

  /// LLM totals across services (zero when no service carries a workload).
  std::size_t requests_rejected = 0;
  std::size_t requests_evicted = 0;
  std::uint64_t generated_tokens = 0;
  /// Peak KV-ledger occupancy per deployed unit as a fraction of its
  /// capacity (parallel to deployment.units; 0 for fixed-latency units and
  /// for LLM units whose ledger is disabled).
  std::vector<double> unit_kv_peak;

  /// Batch-weighted SLO compliance across all services (Fig. 8 metric).
  double overall_compliance() const;
  /// Lowest per-service compliance.
  double worst_compliance() const;
};

class ClusterSimulation {
 public:
  ClusterSimulation(const core::Deployment& deployment,
                    std::span<const core::ServiceSpec> services,
                    const perfmodel::AnalyticalPerfModel& perf)
      : deployment_(&deployment), services_(services.begin(), services.end()), perf_(&perf) {}

  SimulationResult run(const SimulationOptions& options) const;

 private:
  const core::Deployment* deployment_;
  std::vector<core::ServiceSpec> services_;
  const perfmodel::AnalyticalPerfModel* perf_;
};

}  // namespace parva::serving
