// Discrete-event simulation of the inference-serving cluster.
//
// Executes any Deployment (ParvaGPU's or a baseline's) under open-loop
// Poisson request arrivals:
//   * each deployed unit runs `procs` concurrent server processes, each
//     serving batches up to the unit's configured batch size;
//   * requests are dispatched to the unit with the lowest expected delay
//     (queue backlog over capacity), matching a front-end load balancer;
//   * a free process immediately serves whatever is queued (up to the
//     batch size) — adaptive batching, no assembly stalls;
//   * batch service times are the unit's ground-truth latency (including
//     any MPS interference inflation baked into actual_latency_ms) scaled
//     to the actual fill level, with multiplicative jitter;
//   * per-batch SM-time is charged to a DCGM-style activity counter, from
//     which Eq. 3 internal slack is measured exactly as the paper does.
//
// SLO accounting follows Section IV-C1: a batch violates when any request
// it contains exceeds the service's (full) SLO latency from arrival to
// completion; the compliance rate is 1 - violating/total batches.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/deployment.hpp"
#include "perfmodel/analytical_model.hpp"

namespace parva::serving {

/// Request arrival process. The paper's evaluation drives each service at a
/// "specified request rate" (a paced load generator), which kDeterministic
/// models; kPoisson adds open-loop burstiness for robustness studies.
enum class ArrivalProcess { kDeterministic, kPoisson };

struct SimulationOptions {
  double duration_ms = 20'000.0;  ///< simulated time after warm-up
  double warmup_ms = 2'000.0;     ///< discarded start-up transient
  std::uint64_t seed = 42;
  ArrivalProcess arrivals = ArrivalProcess::kDeterministic;
};

/// Per-service outcome.
struct ServiceOutcome {
  int service_id = -1;
  std::size_t requests = 0;
  std::size_t batches = 0;
  std::size_t violated_batches = 0;
  Samples request_latency_ms;
  double offered_rate = 0.0;
  double measured_rate = 0.0;  ///< completed requests / duration

  double compliance() const {
    return batches == 0 ? 1.0
                        : 1.0 - static_cast<double>(violated_batches) /
                                    static_cast<double>(batches);
  }
};

struct SimulationResult {
  std::vector<ServiceOutcome> services;
  /// DCGM-style SM activity per deployed unit (parallel to deployment.units).
  std::vector<double> unit_activity;
  /// Eq. 3 internal slack measured from the activities.
  double internal_slack = 0.0;
  /// Batch-weighted SLO compliance across all services (Fig. 8 metric).
  double overall_compliance() const;
  /// Lowest per-service compliance.
  double worst_compliance() const;
};

class ClusterSimulation {
 public:
  ClusterSimulation(const core::Deployment& deployment,
                    std::span<const core::ServiceSpec> services,
                    const perfmodel::AnalyticalPerfModel& perf)
      : deployment_(&deployment), services_(services.begin(), services.end()), perf_(&perf) {}

  SimulationResult run(const SimulationOptions& options) const;

 private:
  const core::Deployment* deployment_;
  std::vector<core::ServiceSpec> services_;
  const perfmodel::AnalyticalPerfModel* perf_;
};

}  // namespace parva::serving
