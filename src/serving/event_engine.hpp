// The discrete-event engine underneath ClusterSimulation: a flat binary
// min-heap of plain-value events ordered by a canonical (time, seq) key,
// and a slot pool recycling in-flight batch storage.
//
// Determinism by construction: the heap orders by (time, seq) where `seq`
// is a *canonical stream key* (see shard_engine.hpp) assigned by the event
// source, not by enqueue order. Every source — a service's arrival stream,
// a unit's completion stream, the fault schedule, the activation schedule —
// owns a stream id and numbers its own events, so the key of an event is a
// pure function of (source, occurrence index). That makes the pop order of
// equal-timestamp events fully determined AND invariant under any shard
// partition of the sources: N per-shard heaps merged on (time, seq) pop
// the exact same global order as one heap holding everything
// (tests/serving/parallel_engine_test.cpp, shard_merge_property_test.cpp).
//
// Pooling: completions used to live in per-unit std::map<id, batch> tables
// plus a std::set of ids dropped by device losses — a rb-tree allocation
// per batch and an O(log n) lookup per completion on the hottest path. The
// BatchPool replaces both: slots are recycled vectors (capacity survives
// reuse, so steady state allocates nothing), completions address their slot
// directly, and a per-slot generation counter invalidates the completions
// of batches a device loss destroyed.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace parva::serving {

/// Event kinds, ordered by time in the event queue. Arrivals live in
/// per-service streams outside the heap (see cluster_sim.cpp) and only
/// batch completions, device losses, and activations are heap events.
enum class EventKind : std::uint8_t {
  kBatchComplete,  ///< fixed-latency batch finished
  kGpuFailure,
  kUnitActivate,
  // Generative-LLM phase structure (DESIGN.md §4.7). Both draw their
  // sequence numbers from the owning unit's completion stream, so keys
  // are a pure function of the unit's trajectory and shard-invariant.
  kLlmPrefillDone,  ///< prompt pass finished; decode chain starts
  kLlmDecodeStep,   ///< each live request advanced one decode chunk
};

struct SimEvent {
  double time_ms = 0.0;
  std::uint64_t seq = 0;       ///< canonical stream key: the deterministic tie-break
  EventKind kind = EventKind::kBatchComplete;
  int unit_index = -1;         ///< completions/activations: unit; failures: gpu
  std::uint32_t slot = 0;      ///< completions: batch-pool slot
  std::uint32_t generation = 0;///< completions: slot generation at issue
};

/// Flat binary min-heap on (time_ms, seq). Events are plain values in one
/// contiguous vector; push/pop never allocate once the backing storage has
/// grown to the simulation's high-water mark. The caller assigns `seq`
/// (canonical stream keys); the heap only orders.
class EventQueue {
 public:
  explicit EventQueue(std::size_t reserve_hint = 1024) { heap_.reserve(reserve_hint); }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Enqueues an event carrying its pre-assigned canonical key.
  void push(const SimEvent& event) {
    heap_.push_back(event);
    sift_up(heap_.size() - 1);
  }

  const SimEvent& top() const { return heap_.front(); }

  SimEvent pop() {
    SimEvent out = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

 private:
  static bool before(const SimEvent& a, const SimEvent& b) {
    if (a.time_ms != b.time_ms) return a.time_ms < b.time_ms;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t left = 2 * i + 1;
      if (left >= n) break;
      const std::size_t right = left + 1;
      std::size_t least = left;
      if (right < n && before(heap_[right], heap_[left])) least = right;
      if (!before(heap_[least], heap_[i])) break;
      std::swap(heap_[i], heap_[least]);
      i = least;
    }
  }

  std::vector<SimEvent> heap_;
};

/// Recycled storage for batches in flight. `Payload` is the per-batch
/// content (a vector of requests); its heap capacity survives release, so a
/// simulation at steady state stops allocating entirely.
template <typename Payload>
class SlotPool {
 public:
  struct Slot {
    Payload payload;
    std::uint32_t generation = 0;
    bool live = false;
  };

  /// Hands out a slot (recycling released ones). The payload arrives
  /// cleared but with its previous capacity.
  std::uint32_t acquire() {
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[index].live = true;
    return index;
  }

  /// Invalidates the slot: bumps the generation (pending references go
  /// stale), clears the payload keeping capacity, and recycles the index.
  void release(std::uint32_t index) {
    Slot& slot = slots_[index];
    slot.live = false;
    ++slot.generation;
    slot.payload.clear();
    free_.push_back(index);
  }

  Slot& operator[](std::uint32_t index) { return slots_[index]; }
  const Slot& operator[](std::uint32_t index) const { return slots_[index]; }

  /// True when `generation` still addresses the live batch it was issued
  /// for (false after the slot died with its GPU or was recycled).
  bool current(std::uint32_t index, std::uint32_t generation) const {
    const Slot& slot = slots_[index];
    return slot.live && slot.generation == generation;
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace parva::serving
