// Epoch-based autoscaling on top of ParvaGPU's reconfiguration path.
//
// The paper motivates minimal GPU fleets under *fluctuating* cloud demand;
// this module closes the loop: each epoch it reads the offered rates from a
// trace, re-runs the Segment Configurator for services whose provisioned
// capacity has drifted out of band, re-places only those services
// (Section III-F), and verifies the epoch in the discrete-event simulator.
// Comparing the integral of GPUs over the day against static peak
// provisioning quantifies the elasticity win.
#pragma once

#include <vector>

#include "core/parvagpu.hpp"
#include "core/reconfigure.hpp"
#include "serving/cluster_sim.hpp"
#include "serving/trace.hpp"

namespace parva::serving {

struct AutoscalerOptions {
  double epoch_minutes = 30.0;
  /// Capacity must stay within [rate * low, rate * high]; outside the band
  /// the service is reconfigured (high bound prevents slack, low bound
  /// prevents violations).
  double band_low = 1.0;
  double band_high = 1.6;
  /// Verify each epoch with a short simulation.
  bool verify_with_simulation = true;
  double verify_duration_ms = 2'000.0;
  std::uint64_t seed = 7;

  /// Scheduled device losses over the day (nullptr = healthy fleet). Each
  /// GpuFailureEvent's at_ms is wall time from 0 h (hours x 3.6e6); at the
  /// epoch containing it the failed GPU's segments vanish from the plan, so
  /// the capacity-band check sees the deficit exactly like a demand surge
  /// and re-places the displaced services on the remaining fleet.
  const gpu::FaultPlan* fault_plan = nullptr;

  /// Observability sink (nullptr = disabled). Each epoch emits a decision
  /// event plus fleet-size/reconfiguration counters; reports are identical
  /// either way.
  telemetry::Telemetry* telemetry = nullptr;
};

struct EpochRecord {
  double t_hours = 0.0;
  double multiplier = 1.0;
  int gpus = 0;
  int services_reconfigured = 0;
  double offered_total = 0.0;  ///< sum of offered rates, req/s
  double slo_compliance = 1.0; ///< 1.0 when verification is off
  double internal_slack = 0.0;
  int gpus_lost = 0;           ///< device losses executed this epoch
};

struct AutoscaleReport {
  std::vector<EpochRecord> epochs;
  double gpu_hours = 0.0;        ///< integral of fleet size over the day
  double peak_gpus = 0.0;
  double static_gpu_hours = 0.0; ///< 24 h x the static peak-provisioned fleet
  int total_reconfigurations = 0;
  int total_gpu_failures = 0;    ///< device losses executed over the day

  double saving_vs_static() const {
    return static_gpu_hours <= 0.0 ? 0.0 : 1.0 - gpu_hours / static_gpu_hours;
  }
};

class Autoscaler {
 public:
  Autoscaler(const profiler::ProfileSet& profiles, const perfmodel::AnalyticalPerfModel& perf,
             AutoscalerOptions options = {})
      : profiles_(&profiles), perf_(&perf), options_(options) {}

  /// Runs one simulated day of the base services under the trace.
  [[nodiscard]] Result<AutoscaleReport> run_day(std::span<const core::ServiceSpec> base_services,
                                  const RateTrace& trace) const;

 private:
  const profiler::ProfileSet* profiles_;
  const perfmodel::AnalyticalPerfModel* perf_;
  AutoscalerOptions options_;
};

}  // namespace parva::serving
