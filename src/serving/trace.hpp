// Time-varying load traces: piecewise-linear request-rate multipliers over
// a day. Cloud inference demand is strongly diurnal; the autoscaler
// (autoscaler.hpp) follows a trace and reconfigures the cluster per epoch.
#pragma once

#include <vector>

#include "common/error.hpp"

namespace parva::serving {

/// One knot of the trace: at `t_hours`, offered rates are `multiplier` x
/// the base scenario rates. Between knots the multiplier interpolates
/// linearly; beyond the last knot it wraps (period = 24 h).
struct TraceKnot {
  double t_hours = 0.0;
  double multiplier = 1.0;
};

class RateTrace {
 public:
  /// Knots are sorted by time; knots sharing the same `t_hours` coalesce to
  /// the last-specified one, so a trace is a well-defined function of its
  /// knot list regardless of input order.
  explicit RateTrace(std::vector<TraceKnot> knots);

  /// A classic diurnal curve: quiet night (0.3x), morning ramp, midday
  /// plateau (1.0x), evening peak (1.25x), late-night fall.
  static RateTrace diurnal();

  /// Flat trace (constant multiplier) — the static-provisioning baseline.
  static RateTrace flat(double multiplier = 1.0);

  /// A step surge: base level with a `factor`x spike between the two hours.
  static RateTrace surge(double from_hour, double to_hour, double factor);

  double multiplier_at(double t_hours) const;
  double peak() const;
  const std::vector<TraceKnot>& knots() const { return knots_; }

 private:
  std::vector<TraceKnot> knots_;  ///< sorted by t_hours, within [0, 24)
};

}  // namespace parva::serving
