#include "serving/llm_engine.hpp"

namespace parva::serving {

const char* to_string(LlmAdmissionPolicy policy) {
  switch (policy) {
    case LlmAdmissionPolicy::kReject: return "reject";
    case LlmAdmissionPolicy::kEvict: return "evict";
  }
  return "unknown";
}

const char* to_string(LlmEvictionPolicy policy) {
  switch (policy) {
    case LlmEvictionPolicy::kFifo: return "fifo";
    case LlmEvictionPolicy::kLru: return "lru";
  }
  return "unknown";
}

const char* to_string(LlmDispatchPolicy policy) {
  switch (policy) {
    case LlmDispatchPolicy::kLeastLoaded: return "least-loaded";
    case LlmDispatchPolicy::kRoundRobin: return "round-robin";
    case LlmDispatchPolicy::kPowerOfTwo: return "p2c";
  }
  return "unknown";
}

bool parse_llm_admission(std::string_view text, LlmAdmissionPolicy* out) {
  if (text == "reject") {
    *out = LlmAdmissionPolicy::kReject;
    return true;
  }
  if (text == "evict") {
    *out = LlmAdmissionPolicy::kEvict;
    return true;
  }
  return false;
}

bool parse_llm_eviction(std::string_view text, LlmEvictionPolicy* out) {
  if (text == "fifo") {
    *out = LlmEvictionPolicy::kFifo;
    return true;
  }
  if (text == "lru") {
    *out = LlmEvictionPolicy::kLru;
    return true;
  }
  return false;
}

bool parse_llm_dispatch(std::string_view text, LlmDispatchPolicy* out) {
  if (text == "least-loaded") {
    *out = LlmDispatchPolicy::kLeastLoaded;
    return true;
  }
  if (text == "round-robin") {
    *out = LlmDispatchPolicy::kRoundRobin;
    return true;
  }
  if (text == "p2c") {
    *out = LlmDispatchPolicy::kPowerOfTwo;
    return true;
  }
  return false;
}

}  // namespace parva::serving
