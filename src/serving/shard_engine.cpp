#include "serving/shard_engine.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>

namespace parva::serving {

std::vector<int> partition_services(const std::vector<double>& rates, int shards) {
  PARVA_REQUIRE(shards >= 1, "shard count must be >= 1");
  std::vector<int> assignment(rates.size(), 0);
  if (shards == 1 || rates.empty()) return assignment;

  // LPT: place services in descending rate order (ties: ascending index)
  // onto the least-loaded shard (ties: lowest shard id).
  std::vector<std::size_t> order(rates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rates[a] > rates[b];
  });
  std::vector<double> load(static_cast<std::size_t>(shards), 0.0);
  for (const std::size_t s : order) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < load.size(); ++k) {
      if (load[k] < load[best]) best = k;
    }
    assignment[s] = static_cast<int>(best);
    load[best] += rates[s];
  }
  return assignment;
}

std::vector<BufferedRecord> merge_records(
    std::vector<std::vector<BufferedRecord>> buffers) {
  // K-way merge on the canonical key. Each buffer arrives sorted (shards
  // emit in processing order, which is key order), so repeated head-min
  // picks are exact; K is the shard count, i.e. small.
  std::size_t total = 0;
  for (const auto& buffer : buffers) total += buffer.size();
  std::vector<BufferedRecord> merged;
  merged.reserve(total);
  std::vector<std::size_t> cursor(buffers.size(), 0);
  while (merged.size() < total) {
    std::size_t best = buffers.size();
    for (std::size_t k = 0; k < buffers.size(); ++k) {
      if (cursor[k] >= buffers[k].size()) continue;
      if (best == buffers.size() ||
          record_before(buffers[k][cursor[k]], buffers[best][cursor[best]])) {
        best = k;
      }
    }
    PARVA_CHECK(best < buffers.size(), "merge lost a record");
    merged.push_back(buffers[best][cursor[best]++]);
  }
  return merged;
}

ArrivalStreams::ArrivalStreams(const std::vector<std::size_t>& service_indices,
                               ArrivalSchedulerKind kind)
    : time_(service_indices.size(), std::numeric_limits<double>::infinity()),
      seq_(service_indices.size(), 0) {
  streams_.reserve(service_indices.size());
  for (const std::size_t global : service_indices) {
    streams_.emplace_back(arrival_stream_id(global));
  }
  const std::size_t n = service_indices.size();
  kind_ = kind;
  if (kind_ == ArrivalSchedulerKind::kAuto) {
    kind_ = n > kArrivalTournamentThreshold ? ArrivalSchedulerKind::kTournament
                                            : ArrivalSchedulerKind::kFlatScan;
  }
  if (kind_ == ArrivalSchedulerKind::kTournament) {
    // Complete binary tournament over bit_ceil(n) leaves; the spare leaves
    // (and every empty slot) hold kNoSlot, which loses every match. All
    // slots start retired, so the whole tree starts at kNoSlot.
    leaf_base_ = std::bit_ceil(std::max<std::size_t>(n, 1));
    tree_.assign(2 * leaf_base_, kNoSlot);
  }
}

std::uint32_t ArrivalStreams::play(std::uint32_t a, std::uint32_t b) const {
  if (a == kNoSlot) return b;
  if (b == kNoSlot) return a;
  if (time_[a] != time_[b]) return time_[a] < time_[b] ? a : b;
  if (seq_[a] != seq_[b]) return seq_[a] < seq_[b] ? a : b;
  return a;  // equal keys: both retired (time == inf), unobservable choice
}

void ArrivalStreams::replay_matches(std::size_t s) {
  std::size_t node = leaf_base_ + s;
  while (node > 1) {
    node /= 2;
    tree_[node] = play(tree_[2 * node], tree_[2 * node + 1]);
  }
}

void ArrivalStreams::arm(std::size_t s, double time_ms) {
  time_[s] = time_ms;
  seq_[s] = streams_[s].next();
  if (kind_ == ArrivalSchedulerKind::kTournament) {
    tree_[leaf_base_ + s] = static_cast<std::uint32_t>(s);
    replay_matches(s);
  }
}

void ArrivalStreams::retire(std::size_t s) {
  time_[s] = std::numeric_limits<double>::infinity();
  if (kind_ == ArrivalSchedulerKind::kTournament) {
    tree_[leaf_base_ + s] = kNoSlot;
    replay_matches(s);
  }
}

std::size_t ArrivalStreams::scan_earliest() const {
  const std::size_t n = time_.size();
  std::size_t best = n;
  double best_time = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < n; ++s) {
    if (time_[s] < best_time) {
      best_time = time_[s];
      best = s;
    }
  }
  if (best == n) return best;
  for (std::size_t s = best + 1; s < n; ++s) {
    if (time_[s] == best_time && seq_[s] < seq_[best]) best = s;
  }
  return best;
}

std::size_t ArrivalStreams::earliest() const {
  if (kind_ != ArrivalSchedulerKind::kTournament) return scan_earliest();
  if (time_.empty()) return 0;
  const std::uint32_t champion = tree_[1];
  return champion == kNoSlot ? time_.size() : champion;
}

}  // namespace parva::serving
