// Policy vocabulary and helpers for generative-LLM execution in the
// cluster simulation (DESIGN.md §4.7).
//
// A service with a core::LlmWorkload runs phase-structured: an admitted
// batch holds its slot through one Prefill event and then a chain of
// Decode steps, while a per-instance KV-cache ledger tracks resident
// token memory. Two policy axes are selectable per run:
//   admission — what happens when a batch's KV need exceeds free ledger
//               capacity: kReject refuses it up front (reserving
//               prompt+generation worst-case so decode never overflows),
//               kEvict admits on prompt footprint alone and evicts
//               resident batches (FIFO or LRU victim order) when decode
//               growth overflows.
//   dispatch  — which replica an arriving LLM request queues at:
//               least-loaded (the fixed-latency default), round-robin, or
//               power-of-two-choices.
// All choices are deterministic: victim order comes from per-unit
// admission/touch stamps, and p2c draws from a dedicated per-service RNG
// stream so fixed-latency services are unperturbed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace parva::serving {

/// What to do when an arriving batch does not fit in the KV ledger.
enum class LlmAdmissionPolicy : std::uint8_t {
  kReject,  ///< refuse the batch; reservation covers prompt + generation
  kEvict,   ///< admit on prompt footprint; evict victims on decode growth
};

/// Victim order when kEvict must free KV capacity.
enum class LlmEvictionPolicy : std::uint8_t {
  kFifo,  ///< oldest admission stamp first
  kLru,   ///< least-recently-advanced batch first
};

/// Replica choice for an arriving LLM request.
enum class LlmDispatchPolicy : std::uint8_t {
  kLeastLoaded,  ///< same backlog/capacity score as fixed-latency dispatch
  kRoundRobin,   ///< per-service cursor over live replicas
  kPowerOfTwo,   ///< two RNG probes, lower backlog score wins
};

/// Per-run LLM execution knobs (SimulationOptions.llm).
struct LlmSimOptions {
  LlmAdmissionPolicy admission = LlmAdmissionPolicy::kReject;
  LlmEvictionPolicy eviction = LlmEvictionPolicy::kFifo;
  LlmDispatchPolicy dispatch = LlmDispatchPolicy::kLeastLoaded;
  /// Tokens each live request advances per Decode event. Smaller chunks
  /// track KV growth more finely at the cost of more events.
  int decode_chunk_tokens = 32;
};

const char* to_string(LlmAdmissionPolicy policy);
const char* to_string(LlmEvictionPolicy policy);
const char* to_string(LlmDispatchPolicy policy);

/// Parse CLI spellings ("reject"/"evict", "fifo"/"lru",
/// "least-loaded"/"round-robin"/"p2c"). Return false on unknown input.
[[nodiscard]] bool parse_llm_admission(std::string_view text, LlmAdmissionPolicy* out);
[[nodiscard]] bool parse_llm_eviction(std::string_view text, LlmEvictionPolicy* out);
[[nodiscard]] bool parse_llm_dispatch(std::string_view text, LlmDispatchPolicy* out);

}  // namespace parva::serving
