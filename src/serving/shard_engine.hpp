// Building blocks of the sharded deterministic DES (DESIGN.md §4.5).
//
// The engine's determinism contract — equal outputs byte-for-byte no matter
// how many shards execute the simulation — rests on three primitives that
// live here so tests can attack each one in isolation:
//
//   1. Canonical sequence keys. Every event source owns a stream id (the
//      fault schedule, the activation schedule, one stream per service's
//      arrivals, one per unit's completions) and numbers its own events
//      with a local counter. The 64-bit key (stream_id << 40 | counter) is
//      a pure function of (source, occurrence index): it does not depend
//      on enqueue order, thread scheduling, or the shard partition. Events
//      are globally ordered by (time_ms, seq); the key makes that order a
//      property of the *workload*, not of the execution.
//
//   2. A deterministic shard partition. Services are assigned to shards by
//      longest-processing-time bin packing on offered rate (ties broken by
//      service index), so the partition is a pure function of
//      (services, shard count) and shard load is balanced.
//
//   3. A canonical merge. Per-shard buffers of telemetry records, each
//      sorted in its shard's processing order, merge into one stream
//      ordered by (time, seq, sub) — exactly the order a single-shard run
//      records them in. The sub-key serialises records emitted while
//      processing ONE event that fans out across shards (a GPU failure
//      shedding requests on several shards' units): it embeds the global
//      unit index, so the merged shed order equals the serial engine's
//      unit-index iteration order.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "telemetry/event_log.hpp"

namespace parva::serving {

// ---------------------------------------------------------------------------
// Canonical sequence keys.
// ---------------------------------------------------------------------------

/// Bits of the per-stream occurrence counter inside a canonical key. 2^40
/// events per stream is ~1.1e12 — far above any stream a simulation can
/// produce (a 10k req/s service over a week of simulated time issues ~6e9).
inline constexpr unsigned kSeqCounterBits = 40;
inline constexpr std::uint64_t kSeqCounterMask = (std::uint64_t{1} << kSeqCounterBits) - 1;

/// Stream-id layout. Faults and activations come first so that at an exact
/// timestamp tie a device loss precedes the arrivals and completions it
/// sheds — matching the order the pre-shard engine produced by pushing the
/// static schedules at t=0 with the lowest enqueue counters.
inline constexpr std::uint64_t kFaultStreamId = 0;
inline constexpr std::uint64_t kActivationStreamId = 1;

inline std::uint64_t arrival_stream_id(std::size_t service_index) {
  return 2 + static_cast<std::uint64_t>(service_index);
}
inline std::uint64_t completion_stream_id(std::size_t service_count,
                                          std::size_t unit_index) {
  return 2 + static_cast<std::uint64_t>(service_count) +
         static_cast<std::uint64_t>(unit_index);
}

/// The canonical key of occurrence `counter` of stream `stream_id`.
inline std::uint64_t canonical_seq(std::uint64_t stream_id, std::uint64_t counter) {
  PARVA_CHECK(counter <= kSeqCounterMask, "stream counter overflow");
  PARVA_CHECK(stream_id <= (~std::uint64_t{0} >> kSeqCounterBits),
              "stream id overflow");
  return (stream_id << kSeqCounterBits) | counter;
}

/// Issues consecutive canonical keys for one event source.
class SeqStream {
 public:
  SeqStream() = default;
  explicit SeqStream(std::uint64_t stream_id) : stream_id_(stream_id) {}

  std::uint64_t next() { return canonical_seq(stream_id_, counter_++); }
  std::uint64_t issued() const { return counter_; }

 private:
  std::uint64_t stream_id_ = 0;
  std::uint64_t counter_ = 0;
};

// ---------------------------------------------------------------------------
// Deterministic shard partition.
// ---------------------------------------------------------------------------

/// Assigns each service to a shard: longest-processing-time bin packing on
/// `rates` (offered request rate, the dominant event-volume driver). Ties —
/// equal rates, equally loaded shards — break toward the lower index, so
/// the result is a pure function of the inputs. Every service of a shard
/// carries its units with it; nothing else couples shards (dispatch is
/// intra-service, completions are intra-unit).
std::vector<int> partition_services(const std::vector<double>& rates, int shards);

// ---------------------------------------------------------------------------
// Canonical merge of per-shard record buffers.
// ---------------------------------------------------------------------------

/// One telemetry record buffered during sharded execution, keyed for the
/// canonical merge: `seq` is the canonical key of the event being processed
/// when the record was emitted, `sub` serialises multiple records emitted
/// under that one key (0 for the single-record common case; GPU-failure
/// shed records use (global unit index + 1) << 20 | per-unit emission, so
/// shards shedding under the same failure key interleave exactly as the
/// serial engine's unit-index loop does).
struct BufferedRecord {
  double t_ms = 0.0;
  std::uint64_t seq = 0;
  std::uint64_t sub = 0;
  telemetry::EventKind kind = telemetry::EventKind::kRequestShed;
  int gpu = -1;
  int service_id = -1;
  double value = 0.0;
};

/// Strict-weak order on the canonical record key (time, seq, sub). Keys are
/// unique by construction, so the merged order is total.
inline bool record_before(const BufferedRecord& a, const BufferedRecord& b) {
  if (a.t_ms != b.t_ms) return a.t_ms < b.t_ms;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.sub < b.sub;
}

/// Merges per-shard buffers (each sorted in shard processing order, which
/// is canonical-key order) into one canonically ordered stream. The result
/// is invariant under how records were distributed across the input
/// buffers — the property tests/serving/shard_merge_property_test.cpp
/// fuzzes.
std::vector<BufferedRecord> merge_records(std::vector<std::vector<BufferedRecord>> buffers);

// ---------------------------------------------------------------------------
// Per-service arrival streams.
// ---------------------------------------------------------------------------

/// How ArrivalStreams finds its earliest pending slot.
enum class ArrivalSchedulerKind : std::uint8_t {
  /// Pick by size(): tournament strictly above kArrivalTournamentThreshold
  /// services, flat scan at or below it — exactly 16 local services still
  /// takes the flat scan (where the slot array fits in a cache line or two
  /// and the tree's update walk buys nothing).
  kAuto,
  /// O(size) argmin scan over the slots. The original implementation,
  /// kept as the differential oracle for the tournament tree and as the
  /// small-shard fast path.
  kFlatScan,
  /// Index-stable loser-style tournament tree over the slots: O(log size)
  /// arm/retire, O(1) earliest. Selects the same winner as the flat scan
  /// bit-for-bit (lexicographic (time, seq) min; keys are unique across
  /// live slots because each service owns its stream id).
  kTournament,
};

/// kAuto boundary: at or below this many local services the flat scan wins
/// (the whole slot array is a couple of cache lines); strictly above it the
/// scan is the per-event bottleneck and the tree takes over. A shard with
/// zero local services (shards > services) builds a valid sentinel-only
/// structure under either scheduler: earliest() == size() == 0. Both sides
/// stay exercised by the differential battery regardless of which one kAuto
/// picks.
inline constexpr std::size_t kArrivalTournamentThreshold = 16;

/// The next pending arrival of one service: each service has at most one
/// outstanding arrival, so a (time, key) slot per service replaces heap
/// traffic entirely. Keys come from the service's own canonical stream, so
/// the slot state of a service is identical whether the stream lives in a
/// global engine or a shard — the regression contract of
/// tests/serving/seq_stability_test.cpp.
///
/// Slot selection is either a flat argmin scan or a tournament tree
/// (ArrivalSchedulerKind): a complete binary tournament whose leaves are
/// the slots and whose internal nodes hold the winner — the slot with the
/// lexicographically least (time, seq) — of their subtree. Re-arming or
/// retiring slot s replays only the log2(size) matches on s's leaf-to-root
/// path, and earliest() reads the root. Winner selection is byte-identical
/// to the flat argmin: (time, seq) pairs are unique across pending slots,
/// so the lexicographic min IS the min-time-then-min-seq slot
/// (tests/serving/arrival_scheduler_test.cpp fuzzes the equivalence,
/// equal-time ties included).
class ArrivalStreams {
 public:
  /// An empty set of streams (a shard before its services are bound).
  ArrivalStreams() = default;

  /// `service_indices[i]` is the global index of local service i (global
  /// indices feed stream ids; local indices feed slot selection).
  explicit ArrivalStreams(const std::vector<std::size_t>& service_indices,
                          ArrivalSchedulerKind kind = ArrivalSchedulerKind::kAuto);

  /// Arms local service `s` to arrive at `time_ms`, drawing the next
  /// canonical key of its stream.
  void arm(std::size_t s, double time_ms);

  /// Retires the pending arrival of local service `s` (after processing,
  /// or when it fell past the horizon).
  void retire(std::size_t s);

  std::size_t size() const { return time_.size(); }
  double time(std::size_t s) const { return time_[s]; }
  std::uint64_t seq(std::size_t s) const { return seq_[s]; }
  /// Canonical keys this service's stream has issued so far.
  std::uint64_t issued(std::size_t s) const { return streams_[s].issued(); }
  /// The scheduler actually in use (kAuto resolved at construction).
  ArrivalSchedulerKind kind() const { return kind_; }

  /// Local index of the earliest pending arrival by (time, seq), or size()
  /// when none is pending.
  std::size_t earliest() const;

 private:
  /// Replays the tournament matches on slot s's leaf-to-root path.
  void replay_matches(std::size_t s);
  /// Winner of a match: the lexicographically least (time, seq) slot;
  /// kNoSlot loses to everything, equal keys (only possible between
  /// retired slots, whose choice earliest() never observes) go left.
  std::uint32_t play(std::uint32_t a, std::uint32_t b) const;
  std::size_t scan_earliest() const;

  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  ArrivalSchedulerKind kind_ = ArrivalSchedulerKind::kFlatScan;
  std::vector<double> time_;
  std::vector<std::uint64_t> seq_;
  std::vector<SeqStream> streams_;
  /// Tournament nodes, heap layout: tree_[1] is the champion, node i plays
  /// tree_[2i] vs tree_[2i+1], leaves are tree_[leaf_base_ + s]. Empty in
  /// kFlatScan mode.
  std::vector<std::uint32_t> tree_;
  std::size_t leaf_base_ = 0;
};

}  // namespace parva::serving
