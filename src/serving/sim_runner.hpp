// Concurrent simulation driver: runs independent ClusterSimulation jobs
// (seed sweeps, scenario sweeps) across the shared thread pool.
//
// ClusterSimulation::run is a pure function of (deployment, services,
// options) — every random stream derives from options.seed — so jobs
// parallelize with no shared mutable state: each task owns its engine and
// writes one pre-sized result slot, merged at the join. Results are in job
// order and bit-identical to a serial loop (tests/serving/sim_runner_test).
//
// Sharded jobs: a job may set options.shards > 1 (DESIGN.md §4.5), but its
// options.shard_pool must NOT be the pool passed here — parallel_for is not
// nested-safe, and a shard waiting for workers occupied by its own parent
// task deadlocks. Leave shard_pool null (shards run sequentially, output is
// identical) or hand the shards their own dedicated pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "serving/cluster_sim.hpp"

namespace parva::serving {

/// One independent simulation to run.
struct SimulationJob {
  const core::Deployment* deployment = nullptr;
  std::span<const core::ServiceSpec> services;
  const perfmodel::AnalyticalPerfModel* perf = nullptr;
  SimulationOptions options;
};

/// Runs every job concurrently on `pool`; results land in job order.
std::vector<SimulationResult> run_simulations(std::span<const SimulationJob> jobs,
                                              ThreadPool& pool);

/// Seed sweep of one simulation: `base` with each seed substituted, run
/// concurrently; results in seed order.
std::vector<SimulationResult> run_seeds(const core::Deployment& deployment,
                                        std::span<const core::ServiceSpec> services,
                                        const perfmodel::AnalyticalPerfModel& perf,
                                        const SimulationOptions& base,
                                        std::span<const std::uint64_t> seeds,
                                        ThreadPool& pool);

}  // namespace parva::serving
