// Concurrent simulation driver: runs independent ClusterSimulation jobs
// (seed sweeps, scenario sweeps) across the shared thread pool.
//
// ClusterSimulation::run is a pure function of (deployment, services,
// options) — every random stream derives from options.seed — so jobs
// parallelize with no shared mutable state: each task owns its engine and
// writes one pre-sized result slot, merged at the join. Results are in job
// order and bit-identical to a serial loop (tests/serving/sim_runner_test).
//
// Sharded jobs share the sweep pool: a job with options.shards > 1 and no
// dedicated shard_pool runs its shard windows on `pool` itself.
// ThreadPool::parallel_for is nesting-safe (the caller claims indices from
// the same cursor as the recruited workers, so a parent task blocked at a
// window barrier still drives its own shards), which is what retired the
// old rule that the shard pool must be distinct from the sweep pool.
// Outputs are byte-identical either way
// (tests/serving/nested_pool_test.cpp, under tsan).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "serving/cluster_sim.hpp"

namespace parva::serving {

/// One independent simulation to run.
struct SimulationJob {
  const core::Deployment* deployment = nullptr;
  std::span<const core::ServiceSpec> services;
  const perfmodel::AnalyticalPerfModel* perf = nullptr;
  SimulationOptions options;
};

/// Runs every job concurrently on `pool`; results land in job order. A
/// sharded job (options.shards > 1) that names no shard_pool of its own
/// has its shards executed on `pool` too — one pool drives both levels.
std::vector<SimulationResult> run_simulations(std::span<const SimulationJob> jobs,
                                              ThreadPool& pool);

/// Seed sweep of one simulation: `base` with each seed substituted, run
/// concurrently; results in seed order.
std::vector<SimulationResult> run_seeds(const core::Deployment& deployment,
                                        std::span<const core::ServiceSpec> services,
                                        const perfmodel::AnalyticalPerfModel& perf,
                                        const SimulationOptions& base,
                                        std::span<const std::uint64_t> seeds,
                                        ThreadPool& pool);

}  // namespace parva::serving
