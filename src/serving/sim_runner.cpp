#include "serving/sim_runner.hpp"

namespace parva::serving {

std::vector<SimulationResult> run_simulations(std::span<const SimulationJob> jobs,
                                              ThreadPool& pool) {
  std::vector<SimulationResult> results(jobs.size());
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const SimulationJob& job = jobs[i];
    PARVA_REQUIRE(job.deployment != nullptr && job.perf != nullptr,
                  "simulation job missing deployment or perf model");
    ClusterSimulation sim(*job.deployment, job.services, *job.perf);
    SimulationOptions options = job.options;
    if (options.shards > 1 && options.shard_pool == nullptr) {
      // Nested fork-join on the sweep pool itself: parallel_for is
      // cooperative, so the shard windows of this job recruit idle sweep
      // workers and never deadlock. Sequential-shard outputs are
      // byte-identical, so this only changes where the work runs.
      options.shard_pool = &pool;
    }
    results[i] = sim.run(options);
  });
  return results;
}

std::vector<SimulationResult> run_seeds(const core::Deployment& deployment,
                                        std::span<const core::ServiceSpec> services,
                                        const perfmodel::AnalyticalPerfModel& perf,
                                        const SimulationOptions& base,
                                        std::span<const std::uint64_t> seeds,
                                        ThreadPool& pool) {
  std::vector<SimulationJob> jobs(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    jobs[i] = SimulationJob{&deployment, services, &perf, base};
    jobs[i].options.seed = seeds[i];
  }
  return run_simulations(jobs, pool);
}

}  // namespace parva::serving
