#include "serving/autoscaler.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace parva::serving {

Result<AutoscaleReport> Autoscaler::run_day(std::span<const core::ServiceSpec> base_services,
                                            const RateTrace& trace) const {
  PARVA_REQUIRE(options_.epoch_minutes > 0.0, "epoch must be positive");
  PARVA_REQUIRE(options_.band_high > options_.band_low, "band must be non-empty");

  // Initial deployment at the first epoch's rates.
  std::vector<core::ServiceSpec> current = {base_services.begin(), base_services.end()};
  const double first_multiplier = trace.multiplier_at(0.0);
  for (auto& spec : current) spec.request_rate *= first_multiplier;

  core::ParvaGpuScheduler scheduler(*profiles_);
  auto initial = scheduler.schedule(current);
  if (!initial.ok()) return initial.error();
  core::DeploymentPlan plan = scheduler.last_plan();
  std::vector<core::ConfiguredService> configured = scheduler.last_configured();
  const core::Reconfigurer reconfigurer{
      core::SegmentConfigurator(), core::SegmentAllocator(), options_.telemetry};

  // Static baseline: one-shot provisioning for the trace peak.
  AutoscaleReport report;
  {
    std::vector<core::ServiceSpec> peak = {base_services.begin(), base_services.end()};
    for (auto& spec : peak) spec.request_rate *= trace.peak();
    core::ParvaGpuScheduler peak_scheduler(*profiles_);
    auto peak_result = peak_scheduler.schedule(peak);
    if (!peak_result.ok()) return peak_result.error();
    report.static_gpu_hours = 24.0 * peak_result.value().deployment.gpu_count;
  }

  const double epoch_hours = options_.epoch_minutes / 60.0;
  Rng seed_stream(options_.seed);

  // Pending device losses, by wall time from 0 h.
  std::vector<gpu::GpuFailureEvent> failures;
  if (options_.fault_plan != nullptr) failures = options_.fault_plan->sorted_gpu_failures();
  std::size_t next_failure = 0;

  for (double t = 0.0; t < 24.0 - 1e-9; t += epoch_hours) {
    const double multiplier = trace.multiplier_at(t);

    EpochRecord record;
    record.t_hours = t;
    record.multiplier = multiplier;

    // Execute device losses whose time falls inside this epoch: the failed
    // GPU's segments vanish, so the band check below sees the displaced
    // services as under-provisioned — lost capacity is a surge.
    const double epoch_end_ms = (t + epoch_hours) * 3'600'000.0;
    for (; next_failure < failures.size() && failures[next_failure].at_ms < epoch_end_ms;
         ++next_failure) {
      if (plan.gpus_in_use() == 0) break;
      // Map the physical index onto the (compacted) plan fleet.
      const auto victim = static_cast<std::size_t>(failures[next_failure].gpu_index) %
                          plan.gpu_count();
      core::GpuPlan& lost = plan.gpu(victim);
      while (!lost.empty()) (void)lost.remove_segment(0);
      ++record.gpus_lost;
      ++report.total_gpu_failures;
    }

    // Update offered rates; reconfigure services out of the capacity band.
    for (std::size_t i = 0; i < current.size(); ++i) {
      current[i].request_rate = base_services[i].request_rate * multiplier;
      record.offered_total += current[i].request_rate;
    }
    for (const core::ServiceSpec& spec : current) {
      double capacity = 0.0;
      for (const auto& [gpu_index, segment] : plan.all_segments()) {
        if (segment->service_id == spec.id) capacity += segment->triplet.throughput;
      }
      const bool starving = capacity < spec.request_rate * options_.band_low;
      const bool bloated = capacity > spec.request_rate * options_.band_high;
      if (!starving && !bloated) continue;
      auto stats = reconfigurer.update_service(plan, configured, spec, *profiles_);
      if (!stats.ok()) return stats.error();
      ++record.services_reconfigured;
    }
    report.total_reconfigurations += record.services_reconfigured;

    record.gpus = static_cast<int>(plan.gpus_in_use());
    report.gpu_hours += record.gpus * epoch_hours;
    report.peak_gpus = std::max(report.peak_gpus, static_cast<double>(record.gpus));

    if (options_.verify_with_simulation) {
      core::Deployment deployment = core::ParvaGpuScheduler::to_deployment(plan, "ParvaGPU");
      for (auto& unit : deployment.units) {
        for (const auto& spec : current) {
          if (spec.id == unit.service_id) unit.model = spec.model;
        }
      }
      ClusterSimulation sim(deployment, current, *perf_);
      SimulationOptions sim_options;
      sim_options.duration_ms = options_.verify_duration_ms;
      sim_options.warmup_ms = options_.verify_duration_ms * 0.1;
      sim_options.seed = seed_stream.next_u64();
      sim_options.telemetry = options_.telemetry;
      const SimulationResult result = sim.run(sim_options);
      record.slo_compliance = result.overall_compliance();
      record.internal_slack = result.internal_slack;
    }
    if (options_.telemetry != nullptr) {
      telemetry::MetricsRegistry& m = options_.telemetry->metrics();
      m.counter("parva_autoscaler_epochs_total", "Autoscaler epochs evaluated").inc();
      m.counter("parva_autoscaler_reconfigurations_total",
                "Services re-placed after drifting out of the capacity band")
          .inc(static_cast<double>(record.services_reconfigured));
      m.gauge("parva_autoscaler_fleet_gpus", "GPUs in use at the latest epoch")
          .set(static_cast<double>(record.gpus));
      options_.telemetry->events().record(
          telemetry::EventKind::kEpochDecision, t * 3'600'000.0, /*gpu=*/-1,
          /*service_id=*/-1, static_cast<double>(record.gpus),
          "reconfigured=" + std::to_string(record.services_reconfigured) +
              " lost=" + std::to_string(record.gpus_lost));
    }
    report.epochs.push_back(record);
  }
  return report;
}

}  // namespace parva::serving
